"""Decode-and-dispatch emulator backend.

This is the reference evaluator, architecturally equivalent to the x86-64
emulator the original STOKE used: every instruction is dispatched through
the opcode table and its operands are re-resolved on every execution.  It
is deliberately the slow-but-simple backend; the JIT backend
(:mod:`repro.x86.jit`) reproduces the paper's two-orders-of-magnitude
throughput improvement over it (Section 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.x86.program import Program
from repro.x86.signals import Signal, SignalError
from repro.x86.state import MachineState


@dataclass(frozen=True)
class Outcome:
    """The result of executing a program on a machine state."""

    signal: Optional[Signal] = None

    @property
    def ok(self) -> bool:
        return self.signal is None


class Emulator:
    """Interpretive execution of loop-free programs."""

    def run(self, program: Program, state: MachineState) -> Outcome:
        """Execute ``program`` on ``state`` in place."""
        try:
            for instr in program.slots:
                instr.spec.exec_fn(state, instr.operands)
        except SignalError as exc:
            return Outcome(signal=exc.signal)
        return Outcome()

    def run_batch(self, program: Program,
                  states: "Sequence[MachineState]") -> list:
        """Execute on every state; returns per-state signals (None = ok).

        The emulator deliberately keeps per-test decode-and-dispatch —
        that is the backend's defining overhead, and batching it away
        would flatter the emulator side of the Section 5.1 throughput
        gap.  Only the loop over states is hoisted here so both backends
        expose the same batch interface.
        """
        slots = program.slots
        signals = [None] * len(states)
        for i, state in enumerate(states):
            try:
                for instr in slots:
                    instr.spec.exec_fn(state, instr.operands)
            except SignalError as exc:
                signals[i] = exc.signal
        return signals

    def run_from(self, program: Program, state: MachineState,
                 start: int, stop: Optional[int] = None) -> Outcome:
        """Execute only ``[start, stop)`` on a state already holding the
        prefix's effects — the emulator-side mirror of the JIT's
        ``run_from``, so differential tests cover both backends."""
        try:
            for instr in program.slots[start:stop]:
                instr.spec.exec_fn(state, instr.operands)
        except SignalError as exc:
            return Outcome(signal=exc.signal)
        return Outcome()

    def run_batch_from(self, program: Program,
                       states: "Sequence[MachineState]",
                       start: int, stop: Optional[int] = None) -> list:
        """Batched :meth:`run_from`; per-state signals (None = ok)."""
        segment = program.slots[start:stop]
        signals = [None] * len(states)
        for i, state in enumerate(states):
            try:
                for instr in segment:
                    instr.spec.exec_fn(state, instr.operands)
            except SignalError as exc:
                signals[i] = exc.signal
        return signals
