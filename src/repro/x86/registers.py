"""Register model for the x86-64 subset.

Sixteen 64-bit general-purpose registers (with 32-bit views, written with
zero-extension per x86-64 semantics) and sixteen 128-bit XMM registers.
"""

from __future__ import annotations

GP64_NAMES = (
    "rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
    "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
)

GP32_NAMES = (
    "eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi",
    "r8d", "r9d", "r10d", "r11d", "r12d", "r13d", "r14d", "r15d",
)

XMM_NAMES = tuple(f"xmm{i}" for i in range(16))

GP64_INDEX = {name: i for i, name in enumerate(GP64_NAMES)}
GP32_INDEX = {name: i for i, name in enumerate(GP32_NAMES)}
XMM_INDEX = {name: i for i, name in enumerate(XMM_NAMES)}

FLAG_NAMES = ("zf", "cf", "sf", "of", "pf")


def is_gp64(name: str) -> bool:
    """True if ``name`` is a 64-bit general-purpose register."""
    return name in GP64_INDEX


def is_gp32(name: str) -> bool:
    """True if ``name`` is a 32-bit general-purpose register view."""
    return name in GP32_INDEX


def is_xmm(name: str) -> bool:
    """True if ``name`` is an XMM register."""
    return name in XMM_INDEX
