"""Per-instruction bound execution steps for the incremental evaluator.

A third execution tier between the emulator (operand decode-and-dispatch
per instruction per state) and the JIT (whole-program compile): each
instruction is bound once to a closure with its operand decode already
resolved, and the closure is cached by instruction content.

The incremental cost evaluator interprets every proposal's suffix — a
never-before-seen program whose JIT compile (~400us) could never
amortize over a handful of test executions — so the per-instruction
dispatch cost is the knob that sets proposal throughput.  Hoisting the
``isinstance`` operand dispatch out of the execution loop roughly halves
it for the register-to-register moves and scalar-double arithmetic that
dominate the libimf kernels.

Only the hottest, simplest shapes are specialized; every other
instruction falls back to its opcode's generic ``exec_fn``, so a
bound-step walk is the emulator semantics by construction.  The
specializations mirror the corresponding ``exec_fn`` bodies statement
for statement (same scalar helpers, same masking) and
``tests/x86/test_stepper.py`` checks them differentially against the
generic interpreter on random programs and the libimf kernels.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.x86 import scalar
from repro.x86.operands import Imm, Reg64, Xmm
from repro.x86.scalar import MASK64

# One closure per distinct instruction.  Novel instructions (fresh
# immediates) accumulate over a long search, so the cache is capped and
# dropped wholesale when full — refilling is cheap.
_STEP_CACHE: Dict[object, Tuple[Callable, tuple]] = {}
_STEP_CACHE_CAP = 65536

# addsd-family semantics (``_sd_binop``): dst.lo = helper(dst.lo, src64).
_SD_BINOP_HELPERS = {
    "addsd": scalar.add_d,
    "subsd": scalar.sub_d,
    "mulsd": scalar.mul_d,
    "divsd": scalar.div_d,
    "minsd": scalar.min_d,
    "maxsd": scalar.max_d,
}

# movapd-family semantics (``_ex_mov128``): full 128-bit register copy.
_MOV128_NAMES = frozenset(("movapd", "movaps", "movdqa", "movups", "movdqu"))


def _bind(instr) -> Tuple[Callable, tuple]:
    """The ``(fn, operands)`` pair executing ``instr`` as ``fn(state,
    operands)``; specialized closures ignore the second argument."""
    spec = instr.spec
    ops = instr.operands
    name = instr.opcode

    helper = _SD_BINOP_HELPERS.get(name)
    if helper is not None and isinstance(ops[0], Xmm):
        # _sd_binop.ex: write_xmm_lo(dst, fn(xmm_lo[dst], read64(src)))
        si, di = ops[0].index, ops[1].index

        def step(state, _ops, fn=helper, si=si, di=di):
            lo = state.xmm_lo
            lo[di] = fn(lo[di], lo[si]) & MASK64

        return step, ops

    if name == "movsd" and isinstance(ops[0], Xmm) and isinstance(ops[1], Xmm):
        # _ex_movsd register form: low-quad copy, high quad preserved.
        si, di = ops[0].index, ops[1].index

        def step(state, _ops, si=si, di=di):
            lo = state.xmm_lo
            lo[di] = lo[si] & MASK64

        return step, ops

    if name in _MOV128_NAMES and isinstance(ops[0], Xmm) \
            and isinstance(ops[1], Xmm):
        # _ex_mov128 register form: both halves copied.
        si, di = ops[0].index, ops[1].index

        def step(state, _ops, si=si, di=di):
            lo, hi = state.xmm_lo, state.xmm_hi
            lo[di] = lo[si] & MASK64
            hi[di] = hi[si] & MASK64

        return step, ops

    if name == "movq" and isinstance(ops[1], Xmm):
        # _ex_movq to-xmm forms: write_xmm(dst, read64(src), 0).
        di = ops[1].index
        if isinstance(ops[0], Imm):
            value = ops[0].value & MASK64

            def step(state, _ops, di=di, value=value):
                state.xmm_lo[di] = value
                state.xmm_hi[di] = 0

            return step, ops
        if isinstance(ops[0], Xmm):
            si = ops[0].index

            def step(state, _ops, si=si, di=di):
                state.xmm_lo[di] = state.xmm_lo[si] & MASK64
                state.xmm_hi[di] = 0

            return step, ops
        if isinstance(ops[0], Reg64):
            si = ops[0].index

            def step(state, _ops, si=si, di=di):
                state.xmm_lo[di] = state.gp[si] & MASK64
                state.xmm_hi[di] = 0

            return step, ops

    if name == "ucomisd" and isinstance(ops[0], Xmm):
        # _ex_ucomisd: flags from ucomi_d(dst.lo, src64).
        si, di = ops[0].index, ops[1].index

        def step(state, _ops, fn=scalar.ucomi_d, si=si, di=di):
            lo = state.xmm_lo
            zf, pf, cf = fn(lo[di], lo[si])
            state.set_flags(zf, cf, 0, 0, pf)

        return step, ops

    return spec.exec_fn, ops


def step_of(instr) -> Tuple[Callable, tuple]:
    """Cached bound step of one instruction (content-addressed)."""
    cached = _STEP_CACHE.get(instr)
    if cached is not None:
        return cached
    step = _bind(instr)
    if len(_STEP_CACHE) >= _STEP_CACHE_CAP:
        _STEP_CACHE.clear()
    _STEP_CACHE[instr] = step
    return step


def bound_steps(slots) -> tuple:
    """Bound steps for the non-UNUSED instructions of a slot sequence."""
    return tuple(step_of(instr) for instr in slots if not instr.is_unused)
