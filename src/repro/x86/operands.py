"""Instruction operands: registers, immediates, and memory references.

Operands print in AT&T syntax to match the listings in the paper
(``mulss 8(rdi), xmm1``).  ``%``-prefixes are accepted by the assembler
but not printed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Union

from repro.x86.registers import GP32_NAMES, GP64_NAMES, XMM_NAMES


class Kind(enum.Enum):
    """Operand kind, used to match operands against opcode signatures."""

    R64 = "r64"
    R32 = "r32"
    XMM = "xmm"
    IMM = "imm"
    M32 = "m32"
    M64 = "m64"
    M128 = "m128"


@dataclass(frozen=True)
class Reg64:
    """A 64-bit general-purpose register."""

    index: int

    @property
    def kind(self) -> Kind:
        return Kind.R64

    @property
    def name(self) -> str:
        return GP64_NAMES[self.index]

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Reg32:
    """A 32-bit general-purpose register view (writes zero-extend)."""

    index: int

    @property
    def kind(self) -> Kind:
        return Kind.R32

    @property
    def name(self) -> str:
        return GP32_NAMES[self.index]

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Xmm:
    """A 128-bit XMM register."""

    index: int

    @property
    def kind(self) -> Kind:
        return Kind.XMM

    @property
    def name(self) -> str:
        return XMM_NAMES[self.index]

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Imm:
    """An immediate value, stored as a (possibly wide) unsigned integer.

    Immediates that encode floating-point bit patterns keep an optional
    ``note`` recording the literal the programmer wrote (e.g. ``1.5d``),
    which round-trips through the assembler.
    """

    value: int
    note: Optional[str] = None

    @property
    def kind(self) -> Kind:
        return Kind.IMM

    def __str__(self) -> str:
        if self.note is not None:
            return f"${self.note}"
        if -4096 < self.value < 4096:
            return f"${self.value}"
        return f"$0x{self.value:x}"


@dataclass(frozen=True)
class Mem:
    """A memory reference ``disp(base, index, scale)`` of 4, 8 or 16 bytes."""

    size: int
    base: int  # GP64 register index
    disp: int = 0
    index: Optional[int] = None  # GP64 register index
    scale: int = 1

    def __post_init__(self) -> None:
        if self.size not in (4, 8, 16):
            raise ValueError(f"unsupported memory operand size: {self.size}")
        if self.scale not in (1, 2, 4, 8):
            raise ValueError(f"unsupported scale: {self.scale}")

    @property
    def kind(self) -> Kind:
        return {4: Kind.M32, 8: Kind.M64, 16: Kind.M128}[self.size]

    def __str__(self) -> str:
        disp = str(self.disp) if self.disp else ""
        if self.index is None:
            return f"{disp}({GP64_NAMES[self.base]})"
        return f"{disp}({GP64_NAMES[self.base]},{GP64_NAMES[self.index]},{self.scale})"


Operand = Union[Reg64, Reg32, Xmm, Imm, Mem]

MEM_KINDS = frozenset({Kind.M32, Kind.M64, Kind.M128})


def is_memory(op: Operand) -> bool:
    """True if the operand references memory."""
    return isinstance(op, Mem)
