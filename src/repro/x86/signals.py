"""Signal model for the sandboxed evaluator.

The paper's cost function (Equation 9) penalizes rewrites whose execution
raises a signal the target does not.  In our subset the only trappable
events are memory-sandbox violations (SIGSEGV) and the execution of an
instruction outside the supported set (SIGILL); x86 floating-point
arithmetic is non-trapping by default and produces infinities and NaNs
instead.
"""

from __future__ import annotations

import enum


class Signal(enum.Enum):
    """The signals an execution can raise."""

    SIGSEGV = "SIGSEGV"
    SIGFPE = "SIGFPE"
    SIGILL = "SIGILL"


class SignalError(Exception):
    """Raised inside the evaluator when a program triggers a signal."""

    def __init__(self, signal: Signal, detail: str = ""):
        super().__init__(f"{signal.value}: {detail}" if detail else signal.value)
        self.signal = signal
        self.detail = detail


class SegFault(SignalError):
    """A memory access outside the sandbox's mapped segments."""

    def __init__(self, detail: str = ""):
        super().__init__(Signal.SIGSEGV, detail)
