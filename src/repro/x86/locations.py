"""Live-in/live-out locations.

The paper's test cases map *live-in hardware locations* to values, and
correctness is judged on the *live-out* locations ``l ∈ ℓ(T)``
(Section 2.2).  A :class:`Loc` names a register (or a slice of an XMM
register, since the aek kernels pass packed singles) together with the
type used to measure error:

* ``f64`` — low 64 bits interpreted as a double, ULP'-compared.
* ``f32`` — a 32-bit lane interpreted as a single, ULP'-compared.
* ``i64`` / ``i32`` — fixed-point values, compared by absolute distance
  (the original STOKE fixed-point error).

String grammar accepted by :func:`parse_loc`::

    rax            -> 64-bit integer register
    eax            -> 32-bit integer register
    xmm0           -> xmm0:d (low double)
    xmm0:d         -> low 64 bits as a double
    xmm0:hd        -> high 64 bits as a double
    xmm0:s0 .. s3  -> 32-bit single lanes, s0 = bits 31:0

Memory live-outs are expressed as :class:`MemLoc` (segment, offset, type).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.x86.registers import GP32_INDEX, GP64_INDEX, XMM_INDEX
from repro.x86.scalar import MASK32, MASK64
from repro.x86.state import MachineState


@dataclass(frozen=True)
class Loc:
    """A register location with bit-slice and value type."""

    reg: str  # canonical 64-bit GP name or xmm name
    lane: int  # for xmm: lane index in units of `width`; 0 for GP
    width: int  # 32 or 64
    ftype: str  # 'f64' | 'f32' | 'i64' | 'i32'

    def __str__(self) -> str:
        if self.reg in XMM_INDEX:
            if self.ftype == "f64":
                return f"{self.reg}:d" if self.lane == 0 else f"{self.reg}:hd"
            return f"{self.reg}:s{self.lane}"
        return self.reg if self.width == 64 else _GP32_OF[self.reg]

    def read(self, state: MachineState) -> int:
        """Extract the location's raw bits from a machine state."""
        if self.reg in XMM_INDEX:
            i = XMM_INDEX[self.reg]
            if self.width == 64:
                return state.xmm_lo[i] if self.lane == 0 else state.xmm_hi[i]
            quad = state.xmm_lo[i] if self.lane < 2 else state.xmm_hi[i]
            return (quad >> (32 * (self.lane & 1))) & MASK32
        value = state.gp[GP64_INDEX[self.reg]]
        return value & (MASK32 if self.width == 32 else MASK64)

    def write(self, state: MachineState, bits: int) -> None:
        """Inject raw bits into a machine state (used to set live-ins)."""
        if self.reg in XMM_INDEX:
            i = XMM_INDEX[self.reg]
            if self.width == 64:
                if self.lane == 0:
                    state.xmm_lo[i] = bits & MASK64
                else:
                    state.xmm_hi[i] = bits & MASK64
                return
            shift = 32 * (self.lane & 1)
            mask = MASK32 << shift
            if self.lane < 2:
                state.xmm_lo[i] = (state.xmm_lo[i] & ~mask) | ((bits & MASK32) << shift)
            else:
                state.xmm_hi[i] = (state.xmm_hi[i] & ~mask) | ((bits & MASK32) << shift)
            return
        i = GP64_INDEX[self.reg]
        if self.width == 32:
            state.gp[i] = bits & MASK32
        else:
            state.gp[i] = bits & MASK64


@dataclass(frozen=True)
class MemLoc:
    """A memory live-out: ``width``-bit value at ``segment[offset]``."""

    segment: str
    offset: int
    ftype: str  # 'f64' | 'f32' | 'i64' | 'i32'

    @property
    def width(self) -> int:
        return 64 if self.ftype.endswith("64") else 32

    def __str__(self) -> str:
        return f"[{self.segment}+{self.offset}]:{self.ftype}"

    def read(self, state: MachineState) -> int:
        seg = state.mem.segment(self.segment)
        size = self.width // 8
        return int.from_bytes(seg.data[self.offset : self.offset + size], "little")

    def write(self, state: MachineState, bits: int) -> None:
        seg = state.mem.segment(self.segment)
        size = self.width // 8
        mask = (1 << self.width) - 1
        seg.data[self.offset : self.offset + size] = (bits & mask).to_bytes(
            size, "little"
        )


def make_reader(loc) -> "callable":
    """Compile a location into a fast ``state -> bits`` closure.

    :meth:`Loc.read` re-resolves the register kind, index, and lane on
    every call; the evaluator reads every live-out location once per test
    case per proposal, so the Runner precompiles one closure per location
    with all of that resolution burned in.  Must return exactly the bits
    ``loc.read(state)`` returns.
    """
    if isinstance(loc, MemLoc):
        name = loc.segment
        start, end = loc.offset, loc.offset + loc.width // 8

        def read_mem(state, _name=name, _start=start, _end=end):
            return int.from_bytes(
                state.mem.segment(_name).data[_start:_end], "little")

        return read_mem
    if loc.reg in XMM_INDEX:
        i = XMM_INDEX[loc.reg]
        if loc.width == 64:
            if loc.lane == 0:
                return lambda state, _i=i: state.xmm_lo[_i]
            return lambda state, _i=i: state.xmm_hi[_i]
        shift = 32 * (loc.lane & 1)
        if loc.lane < 2:
            return lambda state, _i=i, _s=shift: \
                (state.xmm_lo[_i] >> _s) & MASK32
        return lambda state, _i=i, _s=shift: \
            (state.xmm_hi[_i] >> _s) & MASK32
    i = GP64_INDEX[loc.reg]
    if loc.width == 32:
        return lambda state, _i=i: state.gp[_i] & MASK32
    return lambda state, _i=i: state.gp[_i] & MASK64


_GP32_OF = {name64: name32 for name32, name64 in zip(
    ("eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi",
     "r8d", "r9d", "r10d", "r11d", "r12d", "r13d", "r14d", "r15d"),
    ("rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
     "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15"),
)}

_GP32_TO_64 = {v: k for k, v in _GP32_OF.items()}


def parse_loc(text: str):
    """Parse the location grammar described in the module docstring.

    Also accepts the ``str(MemLoc)`` form ``[segment+offset]:ftype``, so
    every location round-trips through its string rendering (the
    verification certificates serialize locations as strings).
    """
    text = text.strip()
    if text.startswith("["):
        body, bracket, spec = text.partition("]")
        segment, plus, offset = body[1:].partition("+")
        ftype = spec.lstrip(":") or "f64"
        if not bracket or not plus or not segment or \
                ftype not in ("f64", "f32", "i64", "i32"):
            raise ValueError(f"bad memory location: {text!r}")
        return MemLoc(segment, int(offset), ftype)
    if ":" in text:
        reg, spec = text.split(":", 1)
    else:
        reg, spec = text, None
    reg = reg.lstrip("%")
    if reg in XMM_INDEX:
        if spec is None or spec == "d":
            return Loc(reg, lane=0, width=64, ftype="f64")
        if spec == "hd":
            return Loc(reg, lane=1, width=64, ftype="f64")
        if spec in ("s0", "s1", "s2", "s3"):
            return Loc(reg, lane=int(spec[1]), width=32, ftype="f32")
        if spec == "i":
            return Loc(reg, lane=0, width=64, ftype="i64")
        raise ValueError(f"bad xmm location spec: {text!r}")
    if reg in GP64_INDEX:
        ftype = "i64" if spec is None or spec == "i64" else spec
        if ftype not in ("i64", "f64"):
            raise ValueError(f"bad GP location spec: {text!r}")
        return Loc(reg, lane=0, width=64, ftype=ftype)
    if reg in GP32_INDEX:
        return Loc(_GP32_TO_64[reg], lane=0, width=32, ftype="i32")
    raise ValueError(f"unknown location: {text!r}")
