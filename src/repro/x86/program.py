"""Loop-free programs over the x86-64 subset.

A :class:`Program` is a fixed-length tuple of slots; the search mutates
slots in place (functionally — programs are immutable values) and the
UNUSED token keeps the slot count constant while varying the line count,
exactly as in STOKE.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.x86.instruction import UNUSED, Instruction


class Program:
    """An immutable sequence of instruction slots."""

    __slots__ = ("slots", "_hash")

    def __init__(self, slots: Iterable[Instruction]):
        self.slots: Tuple[Instruction, ...] = tuple(slots)
        self._hash = None

    @classmethod
    def from_instructions(cls, instructions: Sequence[Instruction],
                          total_slots: int = 0) -> "Program":
        """Build a program, padding with UNUSED up to ``total_slots``."""
        slots: List[Instruction] = list(instructions)
        while len(slots) < total_slots:
            slots.append(UNUSED)
        return cls(slots)

    @property
    def code(self) -> Tuple[Instruction, ...]:
        """The non-UNUSED instructions, in order."""
        return tuple(i for i in self.slots if not i.is_unused)

    @property
    def loc(self) -> int:
        """Lines of code: the number of non-UNUSED slots."""
        return sum(1 for i in self.slots if not i.is_unused)

    @property
    def latency(self) -> int:
        """Static latency estimate: sum of per-instruction latencies."""
        return sum(i.latency for i in self.slots)

    def with_slot(self, index: int, instruction: Instruction) -> "Program":
        """A copy with one slot replaced."""
        slots = list(self.slots)
        slots[index] = instruction
        return Program(slots)

    def with_swap(self, i: int, j: int) -> "Program":
        """A copy with two slots interchanged."""
        slots = list(self.slots)
        slots[i], slots[j] = slots[j], slots[i]
        return Program(slots)

    def compact(self) -> "Program":
        """A copy with UNUSED slots removed (for display/verification)."""
        return Program(self.code)

    def padded(self, total_slots: int) -> "Program":
        """A copy padded with trailing UNUSED slots."""
        if total_slots < len(self.slots):
            raise ValueError("cannot shrink a program by padding")
        return Program.from_instructions(self.slots, total_slots)

    def to_text(self, include_unused: bool = False) -> str:
        """Render as AT&T-style assembly, one instruction per line."""
        lines = [str(i) for i in self.slots
                 if include_unused or not i.is_unused]
        return "\n".join(lines) + ("\n" if lines else "")

    def __len__(self) -> int:
        return len(self.slots)

    def __iter__(self):
        return iter(self.slots)

    def __getitem__(self, index: int) -> Instruction:
        return self.slots[index]

    def __eq__(self, other) -> bool:
        return isinstance(other, Program) and self.slots == other.slots

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self.slots)
        return self._hash

    def __repr__(self) -> str:
        return f"Program({self.loc} LOC / {len(self.slots)} slots)"
