"""The x86-64 subset substrate: ISA, assembler, and two evaluator backends.

Public surface::

    from repro.x86 import assemble, Program, Instruction, UNUSED
    from repro.x86 import Emulator, compile_program
    from repro.x86 import MachineState, Memory, Segment, TestCase
"""

from repro.x86.assembler import AsmError, assemble, disassemble, parse_instruction
from repro.x86.emulator import Emulator, Outcome
from repro.x86.instruction import UNUSED, Instruction
from repro.x86.jit import CompiledProgram, compile_program, generate_source
from repro.x86.liveness import dead_code_eliminate, uses_and_defs
from repro.x86.locations import Loc, MemLoc, parse_loc
from repro.x86.memory import Memory, Segment
from repro.x86.opcodes import OPCODES, OpcodeSpec, instruction_latency
from repro.x86.operands import Imm, Kind, Mem, Reg32, Reg64, Xmm
from repro.x86.program import Program
from repro.x86.signals import SegFault, Signal, SignalError
from repro.x86.state import MachineState
from repro.x86.testcase import TestCase, decode_from, encode_for, uniform_testcases

__all__ = [
    "AsmError",
    "assemble",
    "disassemble",
    "parse_instruction",
    "Emulator",
    "Outcome",
    "UNUSED",
    "Instruction",
    "CompiledProgram",
    "compile_program",
    "generate_source",
    "dead_code_eliminate",
    "uses_and_defs",
    "Loc",
    "MemLoc",
    "parse_loc",
    "Memory",
    "Segment",
    "OPCODES",
    "OpcodeSpec",
    "instruction_latency",
    "Imm",
    "Kind",
    "Mem",
    "Reg32",
    "Reg64",
    "Xmm",
    "Program",
    "SegFault",
    "Signal",
    "SignalError",
    "MachineState",
    "TestCase",
    "decode_from",
    "encode_for",
    "uniform_testcases",
]
