"""Test cases: maps from live-in hardware locations to values.

A test case (Section 2.2) assigns a raw bit pattern to each live-in
location and provides the initial memory image (the sandbox segments).
Building a :class:`~repro.x86.state.MachineState` from a test case copies
only writable segments, so large read-only constant tables are shared
across the millions of executions a search performs.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.fp.ieee754 import double_to_bits, single_to_bits
from repro.x86.locations import Loc, MemLoc, parse_loc
from repro.x86.memory import Memory, Segment
from repro.x86.state import MachineState

LocLike = Union[str, Loc, MemLoc]


def _as_loc(loc: LocLike):
    return loc if isinstance(loc, (Loc, MemLoc)) else parse_loc(loc)


class TestCase:
    """Live-in values plus the initial memory image."""

    __test__ = False  # not a pytest test class, despite the name
    __slots__ = ("inputs", "segments", "_template", "_pooled", "_snapshot",
                 "_dirt", "_checkpoints")

    def __init__(self, inputs: Dict[LocLike, int],
                 segments: Sequence[Segment] = ()):
        self.inputs: Dict[Loc, int] = {_as_loc(k): v for k, v in inputs.items()}
        self.segments: Tuple[Segment, ...] = tuple(segments)
        self._template: Optional[MachineState] = None
        self._pooled: Optional[MachineState] = None
        self._snapshot: Optional[tuple] = None
        # What the pooled state's current holder may have modified:
        # None (nothing — state is pristine), "all" (unknown — full
        # restore needed), or a (gp, xmm_lo, xmm_hi, mem) write set
        # promised via pooled_state(writes).
        self._dirt = None
        # Prefix checkpoints for incremental suffix evaluation, keyed by
        # the exact instruction tuple of the prefix they were captured
        # after (content-addressed: valid for any program sharing that
        # prefix).  Memory-bounded via the global checkpoint.STORE LRU.
        self._checkpoints: Dict[tuple, object] = {}

    @classmethod
    def from_values(cls, values: Dict[LocLike, float],
                    segments: Sequence[Segment] = ()) -> "TestCase":
        """Build from Python numbers, encoding by each location's type."""
        inputs: Dict[Loc, int] = {}
        for key, value in values.items():
            loc = _as_loc(key)
            inputs[loc] = encode_for(loc, value)
        return cls(inputs, segments)

    def template_state(self) -> MachineState:
        """The cached pristine template state for this test case.

        Shared and never reset: callers must treat it as read-only (the
        vector backend packs its lane arrays straight from templates and
        leaves them untouched).  Anything that executes a program needs
        :meth:`build_state` or :meth:`pooled_state` instead.
        """
        if self._template is None:
            mem = Memory(seg.copy() if seg.writable else seg
                         for seg in self.segments)
            state = MachineState(mem)
            for loc, bits in self.inputs.items():
                loc.write(state, bits)
            self._template = state
        return self._template

    def build_state(self) -> MachineState:
        """A fresh machine state initialized from this test case."""
        return self.template_state().copy()

    def pooled_state(self, writes: Optional[tuple] = None) -> MachineState:
        """This test's reusable machine state, reset in place.

        The first call builds the state (one :meth:`build_state` copy) and
        snapshots it; every later call restores the slots dirtied since
        then from the snapshot instead of allocating a fresh copy.  This
        is the evaluator's state pool: millions of proposal executions
        per search reuse one state per test case.

        ``writes`` is the caller's promise about what it will mutate
        before the next ``pooled_state`` call: the ``(gp_indices,
        xmm_lo_indices, xmm_hi_indices, writes_mem)`` write set of the
        one compiled program it is about to run (see the JIT's
        ``CompiledProgram.writes``).  The next call then resets just
        those slots.  Omit it to promise nothing — the next call does a
        full restore.

        The returned state is only valid until the next ``pooled_state``
        call on this test case; callers that need an independent state
        (or run the same test twice concurrently) must use
        :meth:`build_state`.
        """
        pooled = self._pooled
        dirt = self._dirt
        if pooled is None:
            pooled = self._pooled = self.build_state()
            self._snapshot = pooled.snapshot()
        elif dirt == "all":
            pooled.restore(self._snapshot)
        elif dirt is not None:
            # Precise write set promised by the previous holder: reset
            # only the slots that can actually differ from the snapshot.
            # (state.restore_slots inlined — this runs once per test per
            # proposal evaluation.)
            gp_idx, xl_idx, xh_idx, mem = dirt
            snap_gp, snap_lo, snap_hi, _flags, mem_snapshot = self._snapshot
            gp = pooled.gp
            for index in gp_idx:
                gp[index] = snap_gp[index]
            lo = pooled.xmm_lo
            for index in xl_idx:
                lo[index] = snap_lo[index]
            hi = pooled.xmm_hi
            for index in xh_idx:
                hi[index] = snap_hi[index]
            if mem:
                pooled.mem.restore_writable(mem_snapshot)
        self._dirt = writes if writes is not None else "all"
        return pooled

    # ------------------------------------------------------------------
    # prefix checkpoints (incremental suffix evaluation)

    def get_checkpoint(self, prefix: tuple):
        """The checkpoint captured after executing ``prefix`` on this
        test, or None.  Counts a global-store hit/miss either way."""
        from repro.x86 import checkpoint as _cp

        entry = self._checkpoints.get(prefix)
        if entry is None:
            _cp.STORE.stats["misses"] += 1
            return None
        _cp.STORE.stats["hits"] += 1
        _cp.STORE.touch(self, prefix)
        return entry

    def put_checkpoint(self, prefix: tuple, entry) -> None:
        """Register a captured checkpoint (may LRU-evict older ones)."""
        from repro.x86 import checkpoint as _cp

        self._checkpoints[prefix] = entry
        _cp.STORE.add(self, prefix, entry.nbytes)

    def prune_checkpoints(self, slots: tuple) -> None:
        """Drop checkpoints whose prefix the current program no longer
        shares (called when the search accepts a new program)."""
        from repro.x86 import checkpoint as _cp

        stale = [prefix for prefix in self._checkpoints
                 if slots[:len(prefix)] != prefix]
        for prefix in stale:
            entry = self._checkpoints.pop(prefix)
            _cp.STORE.remove(self, prefix, entry.nbytes)

    def value_of(self, loc: LocLike) -> int:
        return self.inputs[_as_loc(loc)]

    def replace(self, loc: LocLike, bits: int) -> "TestCase":
        """A copy with one live-in changed."""
        inputs = dict(self.inputs)
        inputs[_as_loc(loc)] = bits
        return TestCase._from_resolved(inputs, self.segments)

    @classmethod
    def _from_resolved(cls, inputs: Dict[Loc, int],
                       segments: Tuple[Segment, ...]) -> "TestCase":
        """Construct without re-normalizing keys (validation proposers
        create one test case per proposal; the ``__init__`` key
        resolution is pure overhead when every key is already a Loc)."""
        tc = cls.__new__(cls)
        tc.inputs = inputs
        tc.segments = segments
        tc._template = None
        tc._pooled = None
        tc._snapshot = None
        tc._dirt = None
        tc._checkpoints = {}
        return tc

    def __repr__(self) -> str:
        ins = ", ".join(f"{loc}=0x{bits:x}" for loc, bits in self.inputs.items())
        return f"TestCase({ins})"


def encode_for(loc: Loc, value: float) -> int:
    """Encode a Python number as raw bits for a location's type."""
    if loc.ftype == "f64":
        return double_to_bits(float(value))
    if loc.ftype == "f32":
        return single_to_bits(float(value))
    width_mask = (1 << loc.width) - 1
    return int(value) & width_mask


def decode_from(loc: Loc, bits: int):
    """Decode a location's raw bits back to a Python number."""
    from repro.fp.ieee754 import bits_to_double, bits_to_single

    if loc.ftype == "f64":
        return bits_to_double(bits)
    if loc.ftype == "f32":
        return bits_to_single(bits)
    return bits


def uniform_testcases(
    rng: random.Random,
    count: int,
    ranges: Dict[LocLike, Tuple[float, float]],
    segments_factory: Optional[Callable[[], Sequence[Segment]]] = None,
) -> List[TestCase]:
    """Draw test cases with each live-in uniform over its value range.

    The ranges play the role of the user-specified ``[l_min, l_max]``
    bounds of Equation 16: they both restrict the optimization to the
    inputs the user cares about and keep pointer-valued inputs inside the
    sandbox.
    """
    resolved = {_as_loc(k): v for k, v in ranges.items()}
    cases = []
    for _ in range(count):
        values = {loc: rng.uniform(lo, hi) for loc, (lo, hi) in resolved.items()}
        segments = segments_factory() if segments_factory else ()
        cases.append(TestCase.from_values(values, segments))
    return cases
