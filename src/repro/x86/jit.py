"""JIT backend: compile a program to one straight-line Python function.

The paper's implementation replaced STOKE's x86-64 emulator with a JIT
assembler and gained two orders of magnitude in test-case throughput
(Section 5.1).  This module is the analogous substitution for our
simulator, and earns its speedup the same way a real JIT does — by
compiling values into the host's native representation:

* A :class:`Program` is translated once into Python source and
  ``exec``-compiled; the function is reused for every test case.
* The code generator performs **static representation tracking**: each
  XMM half is known, at every program point, to be held either as a raw
  bit pattern (``b``), a native Python float (``d``), or a pair of
  widened singles (``s``).  Floating-point arithmetic compiles to native
  float operators (Python floats *are* IEEE doubles), and conversions are
  emitted only at representation boundaries (bit-level instructions,
  loads/stores, materialization at the end).  Straight-line code makes
  the tracking exact — there are no joins.

Bit-exactness is preserved for every 64-bit input pattern: float objects
carry finite values, infinities, signed zeros, and NaN payloads (widened
by hand) losslessly; arithmetic NaN results are canonicalized at the
float->bits boundary exactly as the emulator's helpers canonicalize them
(see scalar.d2u_c).  A hypothesis differential test plus an 8000-program
NaN-adversarial fuzz check the two backends agree bit-for-bit.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.x86 import scalar
from repro.x86.emulator import Outcome
from repro.x86.operands import Imm, Mem, Operand, Reg32, Reg64, Xmm
from repro.x86.program import Program
from repro.x86.signals import SignalError
from repro.x86.state import MachineState

_M32 = 0xFFFFFFFF
_M64 = 0xFFFFFFFFFFFFFFFF


def _jit_globals() -> Dict[str, object]:
    env = {
        name: getattr(scalar, name)
        for name in dir(scalar)
        if not name.startswith("_") and callable(getattr(scalar, name))
    }
    env["SignalError"] = SignalError
    env["float"] = float
    # Bound struct methods for the inline bits<->double reinterpretation
    # exprs the code generator emits on its hottest paths (u2d / d2u_c
    # semantics without the Python call frame per conversion).
    env["pack_d"] = scalar._PACK_D.pack
    env["pack_q"] = scalar._PACK_Q.pack
    env["unpack_d"] = scalar._PACK_D.unpack
    env["unpack_q"] = scalar._PACK_Q.unpack
    env["NAN_BITS"] = scalar._NAN_BITS
    env["__builtins__"] = {}
    return env


_GLOBALS = _jit_globals()


def float_literal(value: float) -> Optional[str]:
    """A source literal that reproduces ``value`` exactly, or None.

    ``repr`` round-trips all finite doubles (including -0.0 and
    denormals); infinities and NaNs have no literal form and callers fall
    back to the bits representation.
    """
    if math.isinf(value) or math.isnan(value):
        return None
    return repr(value)


class _Half:
    """Codegen-time knowledge about one XMM half."""

    __slots__ = ("valid", "dirty", "loaded")

    def __init__(self):
        self.valid: Set[str] = set()  # subset of {'b', 'd', 's'}
        self.dirty = False
        self.loaded = False


class _Ctx:
    """Representation-tracking code generation context."""

    def __init__(self):
        self.lines: List[str] = []
        self._ntemp = 0
        self.gp_loaded: Set[int] = set()
        self.gp_dirty: Set[int] = set()
        self.halves: Dict[Tuple[int, str], _Half] = {}

    # -- infrastructure ----------------------------------------------------

    def emit(self, line: str) -> None:
        self.lines.append(line)

    def temp(self) -> str:
        name = f"t{self._ntemp}"
        self._ntemp += 1
        return name

    def _half(self, index: int, part: str) -> _Half:
        key = (index, part)
        if key not in self.halves:
            self.halves[key] = _Half()
        return self.halves[key]

    @staticmethod
    def _var(index: int, part: str, repr_tag: str, lane: int = 0) -> str:
        suffix = f"s{lane}" if repr_tag == "s" else repr_tag
        return f"x{index}{part}{suffix}"

    # -- general-purpose registers (always bit patterns) ---------------------

    def gp(self, index: int) -> str:
        if index not in self.gp_loaded:
            self.emit(f"r{index} = gp[{index}]")
            self.gp_loaded.add(index)
        return f"r{index}"

    def set_gp(self, index: int, expr: str) -> None:
        self.gp_loaded.add(index)
        self.gp_dirty.add(index)
        self.emit(f"r{index} = {expr}")

    # -- XMM halves ----------------------------------------------------------

    def _ensure_loaded(self, index: int, part: str) -> None:
        half = self._half(index, part)
        if not half.loaded:
            array = "xl" if part == "l" else "xh"
            self.emit(f"{self._var(index, part, 'b')} = {array}[{index}]")
            half.loaded = True
            half.valid = {"b"}

    def bits(self, index: int, part: str = "l") -> str:
        """The half as a raw 64-bit pattern."""
        half = self._half(index, part)
        self._ensure_loaded(index, part)
        var = self._var(index, part, "b")
        if "b" not in half.valid:
            if "d" in half.valid:
                # A d-only half holds an arithmetic result; NaN payloads
                # canonicalize at this boundary (scalar.d2u_c inlined —
                # this conversion runs once per dirty half per test).
                d = self._var(index, part, "d")
                self.emit(f"{var} = NAN_BITS if {d} != {d} "
                          f"else unpack_q(pack_d({d}))[0]")
            else:  # 's'
                s0 = self._var(index, part, "s", 0)
                s1 = self._var(index, part, "s", 1)
                self.emit(f"{var} = f2u({s0}) | (f2u({s1}) << 32)")
            half.valid.add("b")
        return var

    def f64(self, index: int, part: str = "l") -> str:
        """The half as a native float."""
        half = self._half(index, part)
        self._ensure_loaded(index, part)
        var = self._var(index, part, "d")
        if "d" not in half.valid:
            # Inline u2d: every bits var is 64-bit-masked by construction
            # (state slots and operand readers only hold masked values),
            # so the slower masking helper is not needed here.
            self.emit(f"{var} = unpack_d(pack_q({self.bits(index, part)}))[0]")
            half.valid.add("d")
        return var

    def f32(self, index: int, lane: int) -> str:
        """One 32-bit lane (0-3) as a widened single."""
        part = "l" if lane < 2 else "h"
        sub = lane % 2
        half = self._half(index, part)
        self._ensure_loaded(index, part)
        var = self._var(index, part, "s", sub)
        if "s" not in half.valid:
            bits = self.bits(index, part)
            s0 = self._var(index, part, "s", 0)
            s1 = self._var(index, part, "s", 1)
            self.emit(f"{s0} = u2f32({bits} & 0x{_M32:x})")
            self.emit(f"{s1} = u2f32({bits} >> 32)")
            half.valid.add("s")
        return var

    def _set(self, index: int, part: str, repr_tag: str) -> None:
        half = self._half(index, part)
        half.loaded = True
        half.dirty = True
        half.valid = {repr_tag}

    def set_bits(self, index: int, expr: str, part: str = "l") -> None:
        self.emit(f"{self._var(index, part, 'b')} = {expr}")
        self._set(index, part, "b")

    def set_f64(self, index: int, expr: str, part: str = "l") -> None:
        self.emit(f"{self._var(index, part, 'd')} = {expr}")
        self._set(index, part, "d")

    def set_lanes(self, index: int, expr0: str, expr1: str,
                  part: str = "l") -> None:
        """Set both 32-bit lanes of a half from widened-single exprs."""
        s0 = self._var(index, part, "s", 0)
        s1 = self._var(index, part, "s", 1)
        if expr1 == s1:
            self.emit(f"{s0} = {expr0}")
        elif expr0 == s0:
            self.emit(f"{s1} = {expr1}")
        else:
            self.emit(f"{s0}, {s1} = {expr0}, {expr1}")
        self._set(index, part, "s")

    def set_lane(self, index: int, lane: int, expr: str) -> None:
        """Set one lane, preserving the other (scalar-single writes)."""
        part = "l" if lane < 2 else "h"
        sub = lane % 2
        other = self.f32(index, lane ^ 1) if lane < 2 else \
            self.f32(index, 2 + ((lane - 2) ^ 1))
        var = self._var(index, part, "s", sub)
        self.emit(f"{var} = {expr}")
        # `other` was materialized above, so both lane vars are now valid.
        del other
        self._set(index, part, "s")

    def has_repr(self, index: int, part: str, tag: str) -> bool:
        """Whether a half currently holds a valid ``tag`` representation."""
        half = self._half(index, part)
        return half.loaded and tag in half.valid

    def copy_half(self, dst: int, dst_part: str, src: int,
                  src_part: str) -> None:
        """Copy a half, transferring whatever representation is cheap.

        Bits take priority so raw patterns (NaN payloads included) copy
        exactly; the float representations are used only when the source
        holds an arithmetic result with no bits form.
        """
        if dst == src and dst_part == src_part:
            return
        src_half = self._half(src, src_part)
        self._ensure_loaded(src, src_part)
        if "b" in src_half.valid:
            self.set_bits(dst, self._var(src, src_part, "b"), dst_part)
        elif "d" in src_half.valid:
            self.set_f64(dst, self._var(src, src_part, "d"), dst_part)
        else:
            self.set_lanes(dst, self._var(src, src_part, "s", 0),
                           self._var(src, src_part, "s", 1), dst_part)

    # -- memory ---------------------------------------------------------------

    def addr(self, op: Mem) -> str:
        expr = self.gp(op.base)
        if op.index is not None:
            expr += f" + {self.gp(op.index)}*{op.scale}"
        if op.disp:
            expr += f" + {op.disp}" if op.disp > 0 else f" - {-op.disp}"
        if op.index is not None or op.disp:
            return f"(({expr}) & 0x{_M64:x})"
        return expr

    # -- operand readers --------------------------------------------------------

    def src_bits64(self, op: Operand) -> str:
        if isinstance(op, Xmm):
            return self.bits(op.index, "l")
        if isinstance(op, Reg64):
            return self.gp(op.index)
        if isinstance(op, Imm):
            return f"0x{op.value & _M64:x}"
        if isinstance(op, Mem):
            return f"mem.load8({self.addr(op)})"
        raise TypeError(f"cannot read 64 bits from {op!r}")

    def src_bits32(self, op: Operand) -> str:
        if isinstance(op, Xmm):
            return f"({self.bits(op.index, 'l')} & 0x{_M32:x})"
        if isinstance(op, (Reg64, Reg32)):
            return f"({self.gp(op.index)} & 0x{_M32:x})"
        if isinstance(op, Imm):
            return f"0x{op.value & _M32:x}"
        if isinstance(op, Mem):
            return f"mem.load4({self.addr(op)})"
        raise TypeError(f"cannot read 32 bits from {op!r}")

    def src_f64(self, op: Operand) -> str:
        if isinstance(op, Xmm):
            return self.f64(op.index, "l")
        if isinstance(op, Imm):
            literal = float_literal(scalar.u2d(op.value & _M64))
            if literal is not None:
                return literal
            return f"u2d(0x{op.value & _M64:x})"
        if isinstance(op, Mem):
            return f"unpack_d(pack_q(mem.load8({self.addr(op)})))[0]"
        if isinstance(op, Reg64):
            return f"unpack_d(pack_q({self.gp(op.index)}))[0]"
        raise TypeError(f"cannot read a double from {op!r}")

    def src_f32(self, op: Operand) -> str:
        if isinstance(op, Xmm):
            return self.f32(op.index, 0)
        if isinstance(op, Imm):
            literal = float_literal(scalar.u2f(op.value & _M32))
            if literal is not None:
                return literal
            return f"u2f32(0x{op.value & _M32:x})"
        if isinstance(op, Mem):
            return f"u2f32(mem.load4({self.addr(op)}))"
        if isinstance(op, (Reg64, Reg32)):
            return f"u2f32({self.gp(op.index)} & 0x{_M32:x})"
        raise TypeError(f"cannot read a single from {op!r}")

    def src128_bits(self, op: Operand) -> Tuple[str, str]:
        if isinstance(op, Xmm):
            return self.bits(op.index, "l"), self.bits(op.index, "h")
        if isinstance(op, Mem):
            lo, hi = self.temp(), self.temp()
            self.emit(f"{lo}, {hi} = mem.load16({self.addr(op)})")
            return lo, hi
        raise TypeError(f"cannot read 128 bits from {op!r}")

    def src_f64_halves(self, op: Operand) -> Tuple[str, str]:
        if isinstance(op, Xmm):
            return self.f64(op.index, "l"), self.f64(op.index, "h")
        if isinstance(op, Mem):
            base = self.temp()
            self.emit(f"{base} = {self.addr(op)}")
            return (f"u2d(mem.load8({base}))",
                    f"u2d(mem.load8({base} + 8))")
        raise TypeError(f"cannot read 128 bits from {op!r}")

    def src_f32_lanes(self, op: Operand) -> Tuple[str, str, str, str]:
        if isinstance(op, Xmm):
            return tuple(self.f32(op.index, lane) for lane in range(4))
        if isinstance(op, Mem):
            base = self.temp()
            self.emit(f"{base} = {self.addr(op)}")
            return tuple(f"u2f32(mem.load4({base} + {4 * k}))"
                         if k else f"u2f32(mem.load4({base}))"
                         for k in range(4))
        raise TypeError(f"cannot read 128 bits from {op!r}")


def _codegen(program: Program, comments: bool = False
             ) -> Tuple[List[str], List[str], Tuple]:
    """Generate (body, epilogue, writes) for a program.

    The body computes every live value; the epilogue writes dirty
    registers back into the ``gp``/``xl``/``xh`` arrays.  Both the
    single-run and the batched function templates wrap these same lines.
    ``writes`` is ``(gp_indices, xmm_lo_indices, xmm_hi_indices,
    writes_mem)`` — the exact state slots an execution can mutate, which
    the state pool uses to reset only dirty slots between runs.
    """
    ctx = _Ctx()
    for instr in program.slots:
        if instr.is_unused:
            continue
        if comments:
            ctx.emit(f"# {instr}")
        instr.spec.emit_fn(ctx, instr.operands)

    epilogue: List[str] = []
    xl_written: List[int] = []
    xh_written: List[int] = []
    for index in sorted(ctx.gp_dirty):
        epilogue.append(f"gp[{index}] = r{index}")
    for (index, part), half in sorted(ctx.halves.items()):
        if half.dirty:
            # bits() may emit conversion lines; they land in ctx.lines
            # (the body) before the body is rendered below.
            body_var = ctx.bits(index, part)
            array = "xl" if part == "l" else "xh"
            (xl_written if part == "l" else xh_written).append(index)
            epilogue.append(f"{array}[{index}] = {body_var}")
    writes = (tuple(sorted(ctx.gp_dirty)), tuple(xl_written),
              tuple(xh_written),
              any("mem.store" in line for line in ctx.lines))
    return ctx.lines, epilogue, writes


# The status flags the subset's cmp/test/ucomis* instructions define;
# initialized per execution, never read back (they are JIT-internal).
_PROLOGUE = "fz = fc = fs = fo = fp = 0"


def _render_scalar(body: List[str], epilogue: List[str],
                   name: str) -> str:
    lines = [f"def {name}(gp, xl, xh, mem):", f"    {_PROLOGUE}"]
    lines += [f"    {line}" for line in body + epilogue]
    return "\n".join(lines) + "\n"


def generate_source(program: Program, name: str = "__kernel",
                    comments: bool = False) -> str:
    """Translate a program to the source of one Python function.

    ``comments=True`` annotates each instruction's statements with the
    assembly line (useful for inspection; the search leaves it off since
    comment tokens measurably slow ``compile``).
    """
    body, epilogue, _ = _codegen(program, comments=comments)
    return _render_scalar(body, epilogue, name)


def generate_batch_source(program: Program,
                          name: str = "__kernel_batch") -> str:
    """Translate a program to a function over a whole batch of states.

    The generated function runs the kernel body once per ``(gp, xl, xh,
    mem)`` view in ``batch`` inside a single compiled-function call, so a
    proposal's entire test set is dispatched without re-entering Python
    between test cases.  A signalling test records its signal in
    ``signals[i]`` and the batch carries on with the next state — one
    faulting test must not tear down the rest of the batch.
    """
    body, epilogue, _ = _codegen(program)
    lines = [
        f"def {name}(batch, signals):",
        "    __i = 0",
        "    for gp, xl, xh, mem in batch:",
        "        try:",
        f"            {_PROLOGUE}",
    ]
    lines += [f"            {line}" for line in body + epilogue]
    lines += [
        "        except SignalError as __exc:",
        "            signals[__i] = __exc.signal",
        "        __i += 1",
    ]
    return "\n".join(lines) + "\n"


# Batch dispatch is tiered like a real JIT: a program's first few
# batches run through a generic Python driver loop around the scalar
# function (no extra compilation), and the specialized one-call outer
# loop is only generated once the program has proven hot.  Compiling the
# batch source costs ~a scalar compile; a search proposal is typically
# batch-dispatched once and then discarded, so eager specialization
# would pay that compile for every surviving proposal.
_BATCH_SPECIALIZE_AFTER = 4


class CompiledProgram:
    """A program compiled to a reusable Python function."""

    __slots__ = ("program", "source", "writes", "_fn", "_batch_fn",
                 "_batch_calls", "_stride")

    def __init__(self, program: Program):
        self.program = program
        body, epilogue, self.writes = _codegen(program)
        self.source = _render_scalar(body, epilogue, "__kernel")
        code = compile(self.source, "<jit>", "exec")
        env: Dict[str, object] = {}
        exec(code, _GLOBALS, env)  # noqa: S102
        self._fn = env["__kernel"]
        self._batch_fn = None
        self._batch_calls = 0
        self._stride = None

    def run(self, state: MachineState) -> Outcome:
        """Execute on a machine state in place.

        Status flags are JIT-internal and are not written back to
        ``state.flags``; they are never live-out in this system.
        """
        try:
            self._fn(state.gp, state.xmm_lo, state.xmm_hi, state.mem)
        except SignalError as exc:
            return Outcome(signal=exc.signal)
        return Outcome()

    def specialize_batch(self) -> None:
        """Compile the specialized batched entry point now.

        Normally :meth:`run_batch` tiers up on its own; benchmarks and
        tests call this to measure/exercise the steady-state path
        directly.
        """
        if self._batch_fn is None:
            code = compile(generate_batch_source(self.program),
                           "<jit-batch>", "exec")
            env: Dict[str, object] = {}
            exec(code, _GLOBALS, env)  # noqa: S102
            self._batch_fn = env["__kernel_batch"]

    def run_batch(self, states: "Sequence[MachineState]") -> List[object]:
        """Execute on every state in a single call.

        Returns a list of per-state signals (``None`` for clean runs),
        aligned with ``states``.  Each state is mutated in place exactly
        as :meth:`run` would mutate it; a signalling state is abandoned
        mid-program (architectural state undefined, as with ``run``) and
        the batch continues with the next state.

        Cold programs loop over the scalar function; once this program
        has been batch-dispatched ``_BATCH_SPECIALIZE_AFTER`` times, the
        whole test set executes inside one generated compiled-function
        call (see :func:`generate_batch_source`).
        """
        signals: List[object] = [None] * len(states)
        fn = self._batch_fn
        if fn is None:
            self._batch_calls += 1
            if self._batch_calls <= _BATCH_SPECIALIZE_AFTER:
                scalar = self._fn
                index = 0
                for state in states:
                    try:
                        scalar(state.gp, state.xmm_lo, state.xmm_hi,
                               state.mem)
                    except SignalError as exc:
                        signals[index] = exc.signal
                    index += 1
                return signals
            self.specialize_batch()
            fn = self._batch_fn
        fn([(s.gp, s.xmm_lo, s.xmm_hi, s.mem) for s in states], signals)
        return signals

    # ------------------------------------------------------------------
    # suffix entry points (incremental evaluation)

    @property
    def stride(self) -> int:
        """Checkpoint spacing for this program (0 = no checkpointing)."""
        if self._stride is None:
            from repro.x86.checkpoint import checkpoint_stride

            self._stride = checkpoint_stride(len(self.program.slots))
        return self._stride

    def resume_boundary(self, edit_index: int) -> int:
        """The checkpoint boundary to resume from after an edit at
        ``edit_index`` (0 = evaluate from scratch).  Boundaries step down
        past any point where the suffix would need prefix flag values."""
        from repro.x86.checkpoint import resume_boundary

        return resume_boundary(self.program, edit_index, self.stride)

    def segment(self, start: int, stop: Optional[int] = None
                ) -> "CompiledProgram":
        """The compiled ``[start, stop)`` slice of this program.

        Segments go through :func:`compile_program`, so a suffix shared
        by many proposals (or a prefix shared across checkpoint capture
        runs) compiles once and tiers up like any hot program.
        """
        slots = self.program.slots
        stop = len(slots) if stop is None else stop
        return compile_program(Program(slots[start:stop]))

    def run_from(self, start: int, state: MachineState,
                 stop: Optional[int] = None) -> Outcome:
        """Execute only ``[start, stop)`` on a state already holding the
        prefix's effects (a restored checkpoint).  ``run_from(0, s)`` is
        exactly ``run(s)``."""
        if start <= 0 and stop is None:
            return self.run(state)
        return self.segment(start, stop).run(state)

    def run_batch_from(self, start: int, states: "Sequence[MachineState]",
                       stop: Optional[int] = None) -> List[object]:
        """Batched :meth:`run_from`: one call over states that each hold
        their test's checkpoint at ``start``.  Per-state signal capture
        and tiered specialization come from the suffix's own
        :meth:`run_batch`."""
        if start <= 0 and stop is None:
            return self.run_batch(states)
        return self.segment(start, stop).run_batch(states)


# Bounded LRU over immutable program values.  Like CostFunction._cache,
# eviction is one-at-a-time from the cold end: wiping the whole cache at
# capacity used to stall the search on a compile storm right when the
# chain was deep into a long run.
_COMPILE_CACHE: "OrderedDict[Program, CompiledProgram]" = OrderedDict()
_COMPILE_CACHE_MAX = 8192
_COMPILE_CACHE_STATS = {"hits": 0, "misses": 0, "evictions": 0}


def compile_program(program: Program) -> CompiledProgram:
    """Compile a program for repeated execution (memoized).

    MCMC proposals frequently revisit recently seen programs (rejected
    perturbations of the current sample, swap/swap-back pairs), so
    compilation results are cached on the immutable program value.
    """
    cached = _COMPILE_CACHE.get(program)
    if cached is not None:
        _COMPILE_CACHE.move_to_end(program)
        _COMPILE_CACHE_STATS["hits"] += 1
        return cached
    _COMPILE_CACHE_STATS["misses"] += 1
    compiled = CompiledProgram(program)
    while len(_COMPILE_CACHE) >= _COMPILE_CACHE_MAX:
        _COMPILE_CACHE.popitem(last=False)
        _COMPILE_CACHE_STATS["evictions"] += 1
    _COMPILE_CACHE[program] = compiled
    return compiled


def compile_cache_stats() -> Dict[str, int]:
    """Hit/miss/eviction counters and current size of the compile cache."""
    stats = dict(_COMPILE_CACHE_STATS)
    stats["size"] = len(_COMPILE_CACHE)
    stats["max_size"] = _COMPILE_CACHE_MAX
    return stats


def clear_compile_cache() -> None:
    """Drop all cached compilations and reset the counters (test hook)."""
    _COMPILE_CACHE.clear()
    for key in _COMPILE_CACHE_STATS:
        _COMPILE_CACHE_STATS[key] = 0
