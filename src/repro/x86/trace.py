"""Instruction-level execution tracing.

A debugging aid over the emulator backend: runs a program one instruction
at a time and records which locations changed at each step, with values
rendered in both hex and floating-point form.  Used by the examples when
inspecting discovered rewrites and by tests that pin down individual
instruction behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.fp.ieee754 import bits_to_double
from repro.x86.program import Program
from repro.x86.registers import GP64_NAMES, XMM_NAMES
from repro.x86.signals import Signal, SignalError
from repro.x86.state import MachineState


@dataclass
class TraceStep:
    """One executed instruction and the locations it changed."""

    index: int
    text: str
    # location name -> (old bits, new bits)
    changes: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    signal: Optional[Signal] = None

    def render(self) -> str:
        parts = [f"[{self.index:3d}] {self.text}"]
        if self.signal is not None:
            parts.append(f"  !! {self.signal.value}")
        for name, (old, new) in self.changes.items():
            line = f"  {name}: 0x{old:x} -> 0x{new:x}"
            if name.startswith("xmm"):
                line += f"  ({bits_to_double(old)!r} -> {bits_to_double(new)!r})"
            parts.append(line)
        return "\n".join(parts)


@dataclass
class Trace:
    """A full program trace."""

    steps: List[TraceStep] = field(default_factory=list)

    @property
    def signal(self) -> Optional[Signal]:
        return self.steps[-1].signal if self.steps else None

    def render(self) -> str:
        return "\n".join(step.render() for step in self.steps)


def _snapshot(state: MachineState) -> Dict[str, int]:
    snap: Dict[str, int] = {}
    for i, name in enumerate(GP64_NAMES):
        snap[name] = state.gp[i]
    for i, name in enumerate(XMM_NAMES):
        snap[name] = state.xmm_lo[i]
        snap[f"{name}:hd"] = state.xmm_hi[i]
    return snap


def trace_program(program: Program, state: MachineState) -> Trace:
    """Execute on the emulator, recording per-instruction changes.

    The state is mutated in place, exactly as :class:`Emulator` would.
    """
    trace = Trace()
    before = _snapshot(state)
    for index, instr in enumerate(program.slots):
        if instr.is_unused:
            continue
        step = TraceStep(index=index, text=str(instr))
        try:
            instr.spec.exec_fn(state, instr.operands)
        except SignalError as exc:
            step.signal = exc.signal
            trace.steps.append(step)
            return trace
        after = _snapshot(state)
        for name, old in before.items():
            if after[name] != old:
                step.changes[name] = (old, after[name])
        before = after
        trace.steps.append(step)
    return trace
