"""Checkpointed prefix states for incremental suffix evaluation.

Every MCMC proposal edits at most one or two instructions of a loop-free
program, so the machine state reaching the first edited slot is identical
between a proposal and the program it was derived from.  This module
implements the prefix-state memoization that exploits it (the classic
superoptimizer trick — fast cost evaluation is what makes the whole
search go):

* :func:`checkpoint_stride` — how often to checkpoint, auto-sized from
  program length (``~sqrt(n)`` balances snapshot cost against replayed
  suffix length).
* :func:`resume_boundary` — the largest checkpoint boundary at or below
  an edit index from which a given program's suffix can be resumed.
  Status flags are the one piece of state the JIT never materializes
  (they live in locals of the compiled function), so a boundary where
  the suffix reads flags before writing them is not resumable and the
  boundary steps down until the flags dependence is enclosed.
* :class:`Checkpoint` — a write-set-aware snapshot of one test's pooled
  machine state at a boundary (only the GP/XMM slots and sandbox pages
  the running program's prefix can have written are copied), or a fault
  sentinel when the prefix itself signals on that test.
* :class:`CheckpointStore` — a byte-bounded LRU over every test case's
  checkpoints.  Checkpoints are keyed by the *content* of the program
  prefix they were captured after, so a stale entry can never be applied
  to a program it does not match: invalidation is structural, and the
  store only has to bound memory.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from repro.x86.program import Program
from repro.x86.signals import Signal

# Checkpoints across all test cases share one byte budget; the store
# evicts least-recently-used entries past it.  Snapshots here are a few
# dozen ints (plus sandbox pages for store-heavy kernels), so the
# default comfortably holds thousands of tests' worth.
DEFAULT_STORE_BUDGET = 32 * 1024 * 1024

# Rough per-slot accounting for the byte budget: a captured 64-bit value
# costs a Python int plus a tuple slot.
_BYTES_PER_SLOT = 32
_BYTES_BASE = 96


class PrefixKey(tuple):
    """A prefix-slots tuple that hashes itself at most once.

    Checkpoint dictionaries are keyed by prefix content, and one
    proposal evaluation looks its prefix up several times per test
    (checkpoint fetch, LRU touch, store insert).  Hashing a 30-slot
    tuple of instructions costs microseconds; caching the hash turns
    every lookup after the first into a dict probe.  The hash equals
    ``tuple.__hash__`` of the same elements, so these keys coexist with
    (and match) plain-tuple keys in the same dictionary.
    """

    def __hash__(self) -> int:
        try:
            return self._hash
        except AttributeError:
            value = tuple.__hash__(self)
            self._hash = value
            return value


def checkpoint_stride(n_slots: int) -> int:
    """Checkpoint spacing for a program of ``n_slots`` slots (0 = none).

    A stride of ``~sqrt(n)`` keeps both the number of snapshots per test
    and the expected replayed suffix overhang at ``O(sqrt(n))``.
    Programs shorter than 4 slots are not worth checkpointing — the
    suffix saved rarely exceeds the snapshot/restore cost.
    """
    if n_slots < 4:
        return 0
    return max(2, int(round(math.sqrt(n_slots))))


def flags_live_in(program: Program) -> Tuple[bool, ...]:
    """Per-index flags liveness: ``out[i]`` is True when some instruction
    at ``>= i`` reads the status flags before any instruction writes them.

    Resuming execution at index ``i`` with ``out[i]`` True would need the
    flag values produced by the prefix, which checkpoints do not carry
    (the JIT keeps flags in locals and never writes them back).
    """
    slots = program.slots
    out = [False] * (len(slots) + 1)
    live = False
    for i in range(len(slots) - 1, -1, -1):
        spec = slots[i].spec
        if spec.reads_flags:
            live = True
        elif spec.writes_flags:
            live = False
        out[i] = live
    return tuple(out)


def resume_boundary(program: Program, edit_index: int,
                    stride: Optional[int] = None) -> int:
    """The boundary to resume ``program`` from after an edit at ``edit_index``.

    Returns the largest multiple of ``stride`` that is ``<= edit_index``
    and at which the program's suffix has no live-in flags dependence;
    0 means "no usable boundary — evaluate from scratch".
    """
    n = len(program.slots)
    if stride is None:
        stride = checkpoint_stride(n)
    if stride <= 0 or edit_index <= 0:
        return 0
    boundary = (min(edit_index, n - 1) // stride) * stride
    if boundary <= 0:
        return 0
    flags = flags_live_in(program)
    while boundary > 0 and flags[boundary]:
        boundary -= stride
    return boundary


def union_writes(a: tuple, b: tuple) -> tuple:
    """Union of two ``(gp, xmm_lo, xmm_hi, mem)`` write sets."""
    return (tuple(sorted(set(a[0]) | set(b[0]))),
            tuple(sorted(set(a[1]) | set(b[1]))),
            tuple(sorted(set(a[2]) | set(b[2]))),
            a[3] or b[3])


# Per-instruction def-set contributions, memoized: program_writes runs
# once per proposal on the incremental path, and recomputing
# uses_and_defs for ~n slots dwarfed the work it was sizing.  Novel
# instructions (fresh immediates) accumulate, so the cache is capped and
# dropped wholesale when full — refilling is cheap.
_INSTR_WRITES_CACHE: Dict[object, tuple] = {}
_INSTR_WRITES_CACHE_CAP = 65536


def _instr_writes(instr) -> tuple:
    """``(gp_indices, xmm_indices, writes_mem)`` defs of one instruction."""
    cached = _INSTR_WRITES_CACHE.get(instr)
    if cached is not None:
        return cached
    from repro.x86.liveness import uses_and_defs
    from repro.x86.registers import GP64_NAMES, XMM_NAMES

    gp_index = {name: i for i, name in enumerate(GP64_NAMES)}
    xmm_index = {name: i for i, name in enumerate(XMM_NAMES)}
    gp, xmm = set(), set()
    mem = False
    _uses, defs = uses_and_defs(instr)
    for name in defs:
        if name == "mem":
            mem = True
        elif name in gp_index:
            gp.add(gp_index[name])
        elif name in xmm_index:
            xmm.add(xmm_index[name])
    entry = (frozenset(gp), frozenset(xmm), mem)
    if len(_INSTR_WRITES_CACHE) >= _INSTR_WRITES_CACHE_CAP:
        _INSTR_WRITES_CACHE.clear()
    _INSTR_WRITES_CACHE[instr] = entry
    return entry


def program_writes(program: Program, start: int = 0,
                   stop: Optional[int] = None) -> tuple:
    """Conservative ``(gp, xmm_lo, xmm_hi, mem)`` write set of a slice.

    The JIT reports exact write sets from codegen; this liveness-based
    over-approximation (XMM defs count both halves) serves the emulator
    backend and the interpreted-suffix promise, where any superset is
    safe for snapshot/restore.
    """
    gp, xmm = set(), set()
    mem = False
    for instr in program.slots[start:stop]:
        if instr.is_unused:
            continue
        gp_ids, xmm_ids, instr_mem = _instr_writes(instr)
        gp |= gp_ids
        xmm |= xmm_ids
        mem = mem or instr_mem
    xmm_sorted = tuple(sorted(xmm))
    return tuple(sorted(gp)), xmm_sorted, xmm_sorted, mem


class Checkpoint:
    """State of one test's pooled machine state at a prefix boundary.

    ``writes`` is the cumulative ``(gp_indices, xmm_lo_indices,
    xmm_hi_indices, writes_mem)`` write set of the prefix; only those
    slots (and, when ``writes_mem``, the writable sandbox pages) are
    captured, because everything else still holds the test's input
    values after a pooled reset.  A checkpoint with ``signal`` set is a
    fault sentinel: the prefix itself signalled on this test, so any
    program sharing the prefix signals identically without executing.
    """

    __slots__ = ("writes", "data", "signal", "nbytes")

    def __init__(self, writes: Optional[tuple], data: Optional[tuple],
                 signal: Optional[Signal], nbytes: int):
        self.writes = writes
        self.data = data
        self.signal = signal
        self.nbytes = nbytes

    @classmethod
    def capture(cls, state, writes: tuple) -> "Checkpoint":
        """Snapshot the named slots (and pages) of ``state``."""
        gp_idx, xl_idx, xh_idx, mem = writes
        data = state.snapshot_slots(gp_idx, xl_idx, xh_idx, mem)
        nbytes = _BYTES_BASE + _BYTES_PER_SLOT * (
            len(gp_idx) + len(xl_idx) + len(xh_idx))
        if data[3] is not None:
            nbytes += sum(len(image) for _seg, image in data[3])
        return cls(writes, data, None, nbytes)

    @classmethod
    def fault(cls, signal: Signal) -> "Checkpoint":
        """A sentinel recording that the prefix signals on this test."""
        return cls(None, None, signal, _BYTES_BASE)

    def apply(self, state) -> None:
        """Write the captured slots into ``state`` (a pooled, pristine
        state of the same test case this checkpoint was taken from)."""
        gp_idx, xl_idx, xh_idx, _mem = self.writes
        state.apply_slots(self.data, gp_idx, xl_idx, xh_idx)


class CheckpointStore:
    """Byte-bounded LRU over ``(test case, prefix)`` checkpoint entries.

    The store does not hold the checkpoints themselves — each
    :class:`~repro.x86.testcase.TestCase` keeps its own ``prefix ->
    Checkpoint`` dict for O(1) lookup — it tracks recency and total
    bytes, and deletes entries from the owning test on eviction.
    """

    def __init__(self, max_bytes: int = DEFAULT_STORE_BUDGET):
        self.max_bytes = max_bytes
        # (id(test), prefix) -> (test, nbytes); insertion order = LRU.
        self._entries: "OrderedDict[tuple, tuple]" = OrderedDict()
        self.total_bytes = 0
        self.stats: Dict[str, int] = {
            "hits": 0, "misses": 0, "stored": 0, "evictions": 0,
            "invalidated": 0,
        }

    def __len__(self) -> int:
        return len(self._entries)

    def touch(self, test, prefix) -> None:
        key = (id(test), prefix)
        if key in self._entries:
            self._entries.move_to_end(key)

    def add(self, test, prefix, nbytes: int) -> None:
        key = (id(test), prefix)
        old = self._entries.pop(key, None)
        if old is not None:
            self.total_bytes -= old[1]
        self._entries[key] = (test, nbytes)
        self.total_bytes += nbytes
        self.stats["stored"] += 1
        while self.total_bytes > self.max_bytes and len(self._entries) > 1:
            (_ident, old_prefix), (old_test, old_bytes) = \
                self._entries.popitem(last=False)
            self.total_bytes -= old_bytes
            old_test._checkpoints.pop(old_prefix, None)
            self.stats["evictions"] += 1

    def remove(self, test, prefix, nbytes: int) -> None:
        if self._entries.pop((id(test), prefix), None) is not None:
            self.total_bytes -= nbytes
            self.stats["invalidated"] += 1

    def clear(self) -> None:
        for (_ident, prefix), (test, _nbytes) in self._entries.items():
            test._checkpoints.pop(prefix, None)
        self._entries.clear()
        self.total_bytes = 0
        for key in self.stats:
            self.stats[key] = 0


# The process-wide store every TestCase registers its checkpoints with.
STORE = CheckpointStore()


def checkpoint_store_stats() -> Dict[str, int]:
    """Counters plus current size/byte occupancy of the global store."""
    stats = dict(STORE.stats)
    stats["entries"] = len(STORE)
    stats["bytes"] = STORE.total_bytes
    stats["max_bytes"] = STORE.max_bytes
    return stats


def set_checkpoint_budget(max_bytes: int) -> None:
    """Resize the global store's byte budget (benchmark/test hook)."""
    STORE.max_bytes = max_bytes


def clear_checkpoint_store() -> None:
    """Drop every checkpoint and reset the counters (test hook)."""
    STORE.clear()
