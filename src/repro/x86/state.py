"""Machine state for the x86-64 subset.

Sixteen 64-bit GP registers, sixteen 128-bit XMM registers (held as a
low/high pair of 64-bit unsigned ints), the five status flags the subset's
``cmp``/``test``/``ucomis*`` instructions define, and a sandboxed
:class:`~repro.x86.memory.Memory`.
"""

from __future__ import annotations

from typing import Optional

from repro.x86.memory import Memory
from repro.x86.operands import Imm, Mem, Operand, Reg32, Reg64, Xmm
from repro.x86.scalar import MASK32, MASK64


class MachineState:
    """Full architectural state operated on by the evaluators."""

    __slots__ = ("gp", "xmm_lo", "xmm_hi", "flags", "mem")

    def __init__(self, mem: Optional[Memory] = None):
        self.gp = [0] * 16
        self.xmm_lo = [0] * 16
        self.xmm_hi = [0] * 16
        self.flags = {"zf": 0, "cf": 0, "sf": 0, "of": 0, "pf": 0}
        self.mem = mem if mem is not None else Memory()

    def copy(self) -> "MachineState":
        fresh = MachineState(self.mem.copy())
        fresh.gp = list(self.gp)
        fresh.xmm_lo = list(self.xmm_lo)
        fresh.xmm_hi = list(self.xmm_hi)
        fresh.flags = dict(self.flags)
        return fresh

    def snapshot(self) -> tuple:
        """Capture register/flag/writable-memory values for `restore`.

        Together with :meth:`restore` this lets one state serve many
        executions (the evaluator's state pool) without the allocation
        cost of :meth:`copy` per run.
        """
        return (tuple(self.gp), tuple(self.xmm_lo), tuple(self.xmm_hi),
                dict(self.flags), self.mem.snapshot_writable())

    def restore(self, snapshot: tuple) -> None:
        """Reset this state in place to a previously taken `snapshot`."""
        gp, xmm_lo, xmm_hi, flags, mem_snapshot = snapshot
        self.gp[:] = gp
        self.xmm_lo[:] = xmm_lo
        self.xmm_hi[:] = xmm_hi
        self.flags.update(flags)
        self.mem.restore_writable(mem_snapshot)

    def restore_slots(self, snapshot: tuple, gp_indices, xl_indices,
                      xh_indices, mem: bool) -> None:
        """Reset only the named slots to their `snapshot` values.

        The fast path of the state pool: when the exact write set of the
        executions since the last reset is known (the JIT records it per
        compiled program), everything else is untouched by construction
        and does not need to be rewritten.  Flags are never restored here
        — the JIT keeps them in locals and never writes ``state.flags``.
        """
        gp, xmm_lo, xmm_hi, _flags, mem_snapshot = snapshot
        own_gp = self.gp
        for index in gp_indices:
            own_gp[index] = gp[index]
        own_lo = self.xmm_lo
        for index in xl_indices:
            own_lo[index] = xmm_lo[index]
        own_hi = self.xmm_hi
        for index in xh_indices:
            own_hi[index] = xmm_hi[index]
        if mem:
            self.mem.restore_writable(mem_snapshot)

    def snapshot_slots(self, gp_indices, xl_indices, xh_indices,
                       mem: bool) -> tuple:
        """Capture only the named slots (checkpoint capture fast path).

        The counterpart of :meth:`restore_slots`: where that resets a
        known write set back to a full snapshot, this records just a
        write set's current values so they can be re-applied later with
        :meth:`apply_slots`.  Flags are deliberately excluded — the JIT
        keeps them in locals, and resume boundaries are chosen so no
        suffix ever needs flags from its prefix.
        """
        gp = self.gp
        lo = self.xmm_lo
        hi = self.xmm_hi
        return (tuple(gp[i] for i in gp_indices),
                tuple(lo[i] for i in xl_indices),
                tuple(hi[i] for i in xh_indices),
                self.mem.snapshot_writable() if mem else None)

    def apply_slots(self, data: tuple, gp_indices, xl_indices,
                    xh_indices) -> None:
        """Write a :meth:`snapshot_slots` capture back into this state."""
        gp_vals, lo_vals, hi_vals, mem_snapshot = data
        gp = self.gp
        for index, value in zip(gp_indices, gp_vals):
            gp[index] = value
        lo = self.xmm_lo
        for index, value in zip(xl_indices, lo_vals):
            lo[index] = value
        hi = self.xmm_hi
        for index, value in zip(xh_indices, hi_vals):
            hi[index] = value
        if mem_snapshot is not None:
            self.mem.restore_writable(mem_snapshot)

    # ------------------------------------------------------------------
    # operand helpers used by the emulator backend

    def addr(self, op: Mem) -> int:
        """Effective address of a memory operand."""
        base = self.gp[op.base]
        index = self.gp[op.index] * op.scale if op.index is not None else 0
        return (base + index + op.disp) & MASK64

    def read64(self, op: Operand) -> int:
        """Read a 64-bit source value (xmm low quad for XMM operands)."""
        if isinstance(op, Xmm):
            return self.xmm_lo[op.index]
        if isinstance(op, Reg64):
            return self.gp[op.index]
        if isinstance(op, Imm):
            return op.value & MASK64
        if isinstance(op, Mem):
            return self.mem.load8(self.addr(op))
        raise TypeError(f"cannot read 64 bits from {op!r}")

    def read32(self, op: Operand) -> int:
        """Read a 32-bit source value (xmm low dword for XMM operands)."""
        if isinstance(op, Xmm):
            return self.xmm_lo[op.index] & MASK32
        if isinstance(op, (Reg32, Reg64)):
            return self.gp[op.index] & MASK32
        if isinstance(op, Imm):
            return op.value & MASK32
        if isinstance(op, Mem):
            return self.mem.load4(self.addr(op))
        raise TypeError(f"cannot read 32 bits from {op!r}")

    def read128(self, op: Operand) -> tuple:
        """Read a 128-bit source as a (lo, hi) pair."""
        if isinstance(op, Xmm):
            return self.xmm_lo[op.index], self.xmm_hi[op.index]
        if isinstance(op, Mem):
            return self.mem.load16(self.addr(op))
        raise TypeError(f"cannot read 128 bits from {op!r}")

    def write_gp64(self, op: Reg64, value: int) -> None:
        self.gp[op.index] = value & MASK64

    def write_gp32(self, op: Reg32, value: int) -> None:
        # 32-bit writes zero-extend into the full register (x86-64 rule).
        self.gp[op.index] = value & MASK32

    def write_xmm_lo(self, op: Xmm, value: int) -> None:
        """Write the low quad, preserving the high quad (SSE scalar rule)."""
        self.xmm_lo[op.index] = value & MASK64

    def write_xmm(self, op: Xmm, lo: int, hi: int) -> None:
        self.xmm_lo[op.index] = lo & MASK64
        self.xmm_hi[op.index] = hi & MASK64

    def set_flags(self, zf: int, cf: int, sf: int, of: int, pf: int) -> None:
        flags = self.flags
        flags["zf"], flags["cf"], flags["sf"], flags["of"], flags["pf"] = (
            zf, cf, sf, of, pf,
        )
