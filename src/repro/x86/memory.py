"""Segmented, sandboxed memory.

A :class:`Memory` is a small set of mapped segments.  Every load or store
is bounds-checked; an access that touches unmapped addresses raises
:class:`~repro.x86.signals.SegFault`, which the evaluators surface as a
SIGSEGV outcome.  This is the "full sandboxing for instructions which
dereference memory" of Section 5.1.

Little-endian byte order throughout, matching x86-64.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.x86.signals import SegFault

_MASK64 = 0xFFFFFFFFFFFFFFFF


class Segment:
    """A contiguous mapped range ``[base, base + len(data))``."""

    def __init__(self, name: str, base: int, data: bytes, writable: bool = True):
        self.name = name
        self.base = base & _MASK64
        self.data = bytearray(data)
        self.writable = writable

    @property
    def size(self) -> int:
        return len(self.data)

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int, size: int) -> bool:
        return self.base <= addr and addr + size <= self.end

    def copy(self) -> "Segment":
        return Segment(self.name, self.base, bytes(self.data), self.writable)

    def __repr__(self) -> str:
        mode = "rw" if self.writable else "r-"
        return f"Segment({self.name!r}, 0x{self.base:x}, {self.size} bytes, {mode})"


class Memory:
    """A sandbox of non-overlapping segments with checked access."""

    def __init__(self, segments: Iterable[Segment] = ()):
        self.segments: List[Segment] = []
        for seg in segments:
            self.map(seg)

    def map(self, segment: Segment) -> None:
        """Add a segment; overlapping maps are rejected."""
        for existing in self.segments:
            if segment.base < existing.end and existing.base < segment.end:
                raise ValueError(
                    f"segment {segment.name!r} overlaps {existing.name!r}"
                )
        self.segments.append(segment)

    def segment(self, name: str) -> Segment:
        """Look up a segment by name."""
        for seg in self.segments:
            if seg.name == name:
                return seg
        raise KeyError(name)

    def _find(self, addr: int, size: int) -> Segment:
        for seg in self.segments:
            if seg.contains(addr, size):
                return seg
        raise SegFault(f"access of {size} bytes at 0x{addr & _MASK64:x}")

    def load(self, addr: int, size: int) -> int:
        """Load ``size`` bytes at ``addr`` as an unsigned little-endian int."""
        addr &= _MASK64
        seg = self._find(addr, size)
        off = addr - seg.base
        return int.from_bytes(seg.data[off : off + size], "little")

    def store(self, addr: int, size: int, value: int) -> None:
        """Store ``size`` low bytes of ``value`` at ``addr``."""
        addr &= _MASK64
        seg = self._find(addr, size)
        if not seg.writable:
            raise SegFault(f"write to read-only segment {seg.name!r} at 0x{addr:x}")
        off = addr - seg.base
        seg.data[off : off + size] = (value & ((1 << (8 * size)) - 1)).to_bytes(
            size, "little"
        )

    # Fixed-width accessors used by the JIT-generated code (kept as
    # dedicated methods so generated source avoids a size argument).
    def load4(self, addr: int) -> int:
        return self.load(addr, 4)

    def load8(self, addr: int) -> int:
        return self.load(addr, 8)

    def load16(self, addr: int) -> tuple:
        lo = self.load(addr, 8)
        hi = self.load(addr + 8, 8)
        return lo, hi

    def store4(self, addr: int, value: int) -> None:
        self.store(addr, 4, value)

    def store8(self, addr: int, value: int) -> None:
        self.store(addr, 8, value)

    def store16(self, addr: int, lo: int, hi: int) -> None:
        self.store(addr, 8, lo)
        self.store(addr + 8, 8, hi)

    def copy(self) -> "Memory":
        """Deep-copy writable segments; read-only segments are shared."""
        fresh = Memory()
        for seg in self.segments:
            fresh.segments.append(seg.copy() if seg.writable else seg)
        return fresh

    # -- in-place reuse (the batched evaluator's state pool) ------------

    def snapshot_writable(self) -> tuple:
        """Immutable images of the writable segments, for `restore_writable`.

        Read-only segments cannot drift (stores to them fault before
        mutating), so only writable pages are captured.
        """
        return tuple((seg, bytes(seg.data))
                     for seg in self.segments if seg.writable)

    def restore_writable(self, snapshot: tuple) -> None:
        """Reset writable segments to a `snapshot_writable` image in place.

        Pages the last execution left untouched are detected by a C-speed
        bytes comparison and skipped, so programs with no stores pay one
        compare per page instead of a copy.
        """
        for seg, image in snapshot:
            if seg.data != image:
                seg.data[:] = image

    def __repr__(self) -> str:
        return f"Memory({self.segments!r})"
