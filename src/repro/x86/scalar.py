"""Bit-exact scalar semantics shared by the emulator and the JIT.

Every floating-point helper operates on raw bit patterns (Python ints) so
both evaluator backends stay in a single canonical value domain.  Python
``float`` arithmetic is IEEE-754 double with round-to-nearest-even, which
makes double-precision operations exact reinterpretations; the helpers add
the x86 behaviours Python hides (non-trapping division by zero, NaN
propagation in min/max, conversion saturation).

Single-precision add/sub/mul are computed exactly in double and rounded
once (exact because 24-bit significands fit losslessly in 53 bits);
division and square root, where double rounding could differ from true
single rounding, go through ``numpy.float32``.

NaN policy (shared by both backends, checked by the differential fuzz):
*arithmetic* NaN results — including min/max selections, roundsd, and
FP-format conversions of NaN — are canonicalized (0x7FF8... / 0x7FC0...),
because which payload host arithmetic propagates is compiler-codegen
dependent; *data moves* preserve payloads bit-exactly, with NaN
widening/narrowing done by hand so even signaling payloads round-trip
through the JIT's float domain.
"""

from __future__ import annotations

import math
import struct

import numpy as np

_PACK_D = struct.Struct("<d")
_PACK_Q = struct.Struct("<Q")
_PACK_F = struct.Struct("<f")
_PACK_I = struct.Struct("<I")

MASK64 = 0xFFFFFFFFFFFFFFFF
MASK32 = 0xFFFFFFFF
INT64_MIN_BITS = 0x8000000000000000
INT32_MIN_BITS = 0x80000000

_NAN_BITS = 0x7FF8000000000000
_NAN_BITS32 = 0x7FC00000

_HAS_FMA = hasattr(math, "fma")


def u2d(bits: int) -> float:
    """Reinterpret a 64-bit pattern as a double."""
    return _PACK_D.unpack(_PACK_Q.pack(bits & MASK64))[0]


def d2u_c(value: float) -> int:
    """Reinterpret a double as bits, canonicalizing NaN payloads.

    Arithmetic NaN results are canonicalized in this system (which NaN
    payload host arithmetic propagates is compiler-codegen-dependent, so
    exposing it would make the two backends diverge); this is the
    materialization used for values produced by arithmetic.  Pure data
    moves use :func:`d2u` and stay bit-exact.
    """
    if value != value:
        return _NAN_BITS
    return _PACK_Q.unpack(_PACK_D.pack(value))[0]


def d2u(value: float) -> int:
    """Reinterpret a double as a 64-bit pattern."""
    return _PACK_Q.unpack(_PACK_D.pack(value))[0]


def u2f(bits: int) -> float:
    """Reinterpret a 32-bit pattern as a single, widened exactly.

    NaN patterns are widened by hand (payload shifted into the double's
    fraction top bits, per IEEE) instead of via a C float cast, which
    would quieten signaling NaNs — keeping the float domain a lossless
    carrier for *every* 32-bit pattern, so the emulator and the JIT agree
    bit-for-bit even on sNaN payloads.
    """
    bits &= MASK32
    if (bits & 0x7F800000) == 0x7F800000 and bits & 0x007FFFFF:
        sign = (bits >> 31) & 1
        frac = bits & 0x007FFFFF
        return u2d((sign << 63) | 0x7FF0000000000000 | (frac << 29))
    return _PACK_F.unpack(_PACK_I.pack(bits))[0]


def f2u(value: float) -> int:
    """Round a double to single precision; return the 32-bit pattern.

    The exact inverse of :func:`u2f` on NaNs (payload narrowed by hand;
    a payload that would vanish keeps the quiet bit so the result stays
    a NaN).
    """
    if value != value:  # NaN
        bits64 = d2u(value)
        sign = bits64 >> 63
        frac = (bits64 & 0x000FFFFFFFFFFFFF) >> 29
        if frac == 0:
            frac = 0x00400000
        return (sign << 31) | 0x7F800000 | frac
    try:
        return _PACK_I.unpack(_PACK_F.pack(value))[0]
    except OverflowError:
        return 0xFF800000 if value < 0 else 0x7F800000


# ---------------------------------------------------------------------------
# double-precision arithmetic on bit patterns


def add_d(a: int, b: int) -> int:
    return d2u_c(u2d(a) + u2d(b))


def sub_d(a: int, b: int) -> int:
    return d2u_c(u2d(a) - u2d(b))


def mul_d(a: int, b: int) -> int:
    return d2u_c(u2d(a) * u2d(b))


def div_d(a: int, b: int) -> int:
    x, y = u2d(a), u2d(b)
    if x != x or y != y:
        return _NAN_BITS
    if y == 0.0:
        if x == 0.0 or math.isnan(x):
            return _NAN_BITS
        sign = math.copysign(1.0, x) * math.copysign(1.0, y)
        return d2u(math.copysign(math.inf, sign))
    return d2u_c(x / y)


def min_d(dst: int, src: int) -> int:
    """x86 MINSD ordering (returns src on ties/NaN); NaN canonicalized."""
    x, y = u2d(dst), u2d(src)
    result = dst if x < y else src
    return _NAN_BITS if u2d(result) != u2d(result) else result


def max_d(dst: int, src: int) -> int:
    """x86 MAXSD ordering (returns src on ties/NaN); NaN canonicalized."""
    x, y = u2d(dst), u2d(src)
    result = dst if x > y else src
    return _NAN_BITS if u2d(result) != u2d(result) else result


def sqrt_d(a: int) -> int:
    x = u2d(a)
    if math.isnan(x):
        return _NAN_BITS
    if x < 0.0:
        return _NAN_BITS if x != 0.0 else a  # sqrt(-0.0) = -0.0
    if math.isinf(x):
        return a
    return d2u(math.sqrt(x))


_TWO53 = 1 << 53


def _round_scaled_int(m: int, e: int) -> float:
    """Round ``m * 2**e`` (m > 0, exact) to the nearest double, ties even."""
    bl = m.bit_length()
    msb_exp = bl + e - 1
    if msb_exp >= -1022:
        drop = bl - 53
    else:
        drop = -1074 - e  # denormal target: fewer significand bits
    if drop > 0:
        rem = m & ((1 << drop) - 1)
        half = 1 << (drop - 1)
        m >>= drop
        e += drop
        if rem > half or (rem == half and m & 1):
            m += 1
    try:
        return math.ldexp(float(m), e)
    except OverflowError:
        return math.inf


def fma_d(a: int, b: int, c: int) -> int:
    """Fused multiply-add ``a*b + c`` with a single rounding.

    Uses ``math.fma`` when the host Python provides it; otherwise an
    exact integer-arithmetic softfloat path (the 106-bit product and the
    addend are aligned and summed as Python ints, then rounded once).
    """
    x, y, z = u2d(a), u2d(b), u2d(c)
    if _HAS_FMA:
        try:
            return d2u_c(math.fma(x, y, z))
        except ValueError:  # invalid operation, e.g. inf*0 + NaN
            return _NAN_BITS
    if math.isnan(x) or math.isnan(y) or math.isnan(z):
        return _NAN_BITS
    if math.isinf(x) or math.isinf(y):
        product = x * y
        if math.isnan(product):
            return _NAN_BITS
        if math.isinf(z) and (z > 0) != (product > 0):
            return _NAN_BITS
        return d2u(product)
    if math.isinf(z):
        return d2u(z)
    if x == 0.0 or y == 0.0:
        # The product is a (signed) exact zero; one rounding in the add.
        return d2u(x * y + z)

    mx, ex = math.frexp(x)
    my, ey = math.frexp(y)
    prod_m = int(mx * _TWO53) * int(my * _TWO53)
    prod_e = ex + ey - 106
    if z == 0.0:
        m, e = prod_m, prod_e
    else:
        mz, ez = math.frexp(z)
        add_m = int(mz * _TWO53)
        add_e = ez - 53
        if prod_e >= add_e:
            m = (prod_m << (prod_e - add_e)) + add_m
            e = add_e
        else:
            m = prod_m + (add_m << (add_e - prod_e))
            e = prod_e
    if m == 0:
        # Exact cancellation yields +0 in round-to-nearest.
        return d2u(0.0)
    if m < 0:
        return d2u(-_round_scaled_int(-m, e))
    return d2u(_round_scaled_int(m, e))


def fnma_d(a: int, b: int, c: int) -> int:
    """Fused negative multiply-add ``-(a*b) + c``."""
    return fma_d(d2u(-u2d(a)), b, c)


def fms_d(a: int, b: int, c: int) -> int:
    """Fused multiply-subtract ``a*b - c``."""
    return fma_d(a, b, d2u(-u2d(c)))


# ---------------------------------------------------------------------------
# single-precision arithmetic on 32-bit patterns


def f2u_c(value: float) -> int:
    """Single-precision counterpart of :func:`d2u_c`."""
    if value != value:
        return _NAN_BITS32
    return f2u(value)


def add_f(a: int, b: int) -> int:
    return f2u_c(u2f(a) + u2f(b))


def sub_f(a: int, b: int) -> int:
    return f2u_c(u2f(a) - u2f(b))


def mul_f(a: int, b: int) -> int:
    return f2u_c(u2f(a) * u2f(b))


def div_f(a: int, b: int) -> int:
    x, y = u2f(a), u2f(b)
    if x != x or y != y:
        return _NAN_BITS32
    if y == 0.0:
        if x == 0.0 or math.isnan(x):
            return _NAN_BITS32
        sign = math.copysign(1.0, x) * math.copysign(1.0, y)
        return f2u(math.copysign(math.inf, sign))
    with np.errstate(all="ignore"):
        return f2u_c(float(np.float32(x) / np.float32(y)))


def min_f(dst: int, src: int) -> int:
    x, y = u2f(dst), u2f(src)
    result = dst if x < y else src
    return _NAN_BITS32 if u2f(result) != u2f(result) else result


def max_f(dst: int, src: int) -> int:
    x, y = u2f(dst), u2f(src)
    result = dst if x > y else src
    return _NAN_BITS32 if u2f(result) != u2f(result) else result


def sqrt_f(a: int) -> int:
    x = u2f(a)
    if math.isnan(x):
        return _NAN_BITS32
    if x < 0.0:
        return _NAN_BITS32 if x != 0.0 else a
    if math.isinf(x):
        return a
    with np.errstate(all="ignore"):
        return f2u(float(np.sqrt(np.float32(x))))


def fma_f(a: int, b: int, c: int) -> int:
    """Single-precision fused multiply-add with one rounding."""
    return f2u(u2d(fma_d(d2u(u2f(a)), d2u(u2f(b)), d2u(u2f(c)))))


# ---------------------------------------------------------------------------
# conversions


def cvtsd2ss(a: int) -> int:
    """Double (64-bit pattern) to single (32-bit pattern); NaN canonical."""
    return f2u_c(u2d(a))


def cvtss2sd(a: int) -> int:
    """Single to double, exact for non-NaN; NaN canonicalized."""
    return d2u_c(u2f(a))


def cvtsd2ss_f(x: float) -> float:
    """Float-domain CVTSD2SS (used by the JIT); NaN canonical."""
    if x != x:
        return u2f(_NAN_BITS32)
    return f32r(x)


def cvtss2sd_f(x: float) -> float:
    """Float-domain CVTSS2SD (used by the JIT); NaN canonical."""
    if x != x:
        return u2d(_NAN_BITS)
    return x


def cvttsd2si64(a: int) -> int:
    """Truncating double -> int64; saturates to the x86 sentinel."""
    x = u2d(a)
    if math.isnan(x) or math.isinf(x):
        return INT64_MIN_BITS
    t = math.trunc(x)
    if not -(1 << 63) <= t < (1 << 63):
        return INT64_MIN_BITS
    return t & MASK64


def cvttsd2si32(a: int) -> int:
    x = u2d(a)
    if math.isnan(x) or math.isinf(x):
        return INT32_MIN_BITS
    t = math.trunc(x)
    if not -(1 << 31) <= t < (1 << 31):
        return INT32_MIN_BITS
    return t & MASK32


def cvtsd2si64(a: int) -> int:
    """Round-to-nearest-even double -> int64 (CVTSD2SI)."""
    x = u2d(a)
    if math.isnan(x) or math.isinf(x):
        return INT64_MIN_BITS
    t = _round_half_even(x)
    if not -(1 << 63) <= t < (1 << 63):
        return INT64_MIN_BITS
    return t & MASK64


def cvttss2si32(a: int) -> int:
    x = u2f(a)
    if math.isnan(x) or math.isinf(x):
        return INT32_MIN_BITS
    t = math.trunc(x)
    if not -(1 << 31) <= t < (1 << 31):
        return INT32_MIN_BITS
    return t & MASK32


def cvtsi2sd64(a: int) -> int:
    """Signed int64 -> double."""
    v = a - (1 << 64) if a & INT64_MIN_BITS else a
    return d2u(float(v))


def cvtsi2sd32(a: int) -> int:
    v = (a & MASK32) - (1 << 32) if a & INT32_MIN_BITS else a & MASK32
    return d2u(float(v))


def cvtsi2ss64(a: int) -> int:
    v = a - (1 << 64) if a & INT64_MIN_BITS else a
    return f2u(float(np.float32(v)))


def cvtsi2ss32(a: int) -> int:
    v = (a & MASK32) - (1 << 32) if a & INT32_MIN_BITS else a & MASK32
    return f2u(float(np.float32(v)))


def _round_half_even(x: float) -> int:
    """Round a finite double to the nearest integer, ties to even."""
    floor = math.floor(x)
    frac = x - floor
    if frac > 0.5:
        return floor + 1
    if frac < 0.5:
        return floor
    return floor + (floor & 1)


# ---------------------------------------------------------------------------
# float-domain helpers used by the representation-tracking JIT
#
# The JIT keeps values in Python-float form across instructions whenever
# the dataflow allows, so the common arithmetic ops compile to native
# float operators.  These helpers cover the cases that need IEEE fix-ups
# (division by zero, NaN rules) or rounding to single precision, operating
# directly on floats.


def f32r(x: float) -> float:
    """Round an *arithmetic result* to single precision, widened.

    NaN results are canonicalized (see :func:`d2u_c`'s rationale); f32r
    is only applied to arithmetic outputs, never to data moves.
    """
    if x != x:
        return u2f(_NAN_BITS32)
    try:
        return _PACK_F.unpack(_PACK_F.pack(x))[0]
    except OverflowError:
        return math.copysign(math.inf, x)


def u2f32(bits: int) -> float:
    """Reinterpret a 32-bit pattern as a single, widened (alias of u2f)."""
    return u2f(bits)


def div_dd(x: float, y: float) -> float:
    if x != x or y != y:
        return math.nan
    if y == 0.0:
        if x == 0.0 or math.isnan(x):
            return math.nan
        return math.copysign(math.inf, math.copysign(1.0, x)
                             * math.copysign(1.0, y))
    result = x / y
    return math.nan if result != result else result


def min_dd(dst: float, src: float) -> float:
    result = dst if dst < src else src
    return math.nan if result != result else result


def max_dd(dst: float, src: float) -> float:
    result = dst if dst > src else src
    return math.nan if result != result else result


def sqrt_dd(x: float) -> float:
    if math.isnan(x):
        return math.nan
    if x < 0.0:
        return math.nan
    if math.isinf(x):
        return x
    if x == 0.0:
        return x  # preserves -0.0
    return math.sqrt(x)


def fma_ddd(x: float, y: float, z: float) -> float:
    return u2d(fma_d(d2u(x), d2u(y), d2u(z)))


def div_ff(x: float, y: float) -> float:
    """Single-precision division on widened singles; NaN canonical."""
    if x != x or y != y:
        return u2f(_NAN_BITS32)
    if y == 0.0:
        if x == 0.0 or math.isnan(x):
            return math.nan
        return math.copysign(math.inf, math.copysign(1.0, x)
                             * math.copysign(1.0, y))
    with np.errstate(all="ignore"):
        result = float(np.float32(x) / np.float32(y))
    return u2f(_NAN_BITS32) if result != result else result


def sqrt_ff(x: float) -> float:
    if math.isnan(x) or x < 0.0:
        return math.nan if x != 0.0 else x
    if math.isinf(x):
        return x
    with np.errstate(all="ignore"):
        return float(np.sqrt(np.float32(x)))


def fma_fff(x: float, y: float, z: float) -> float:
    return u2f(fma_f(f2u(x), f2u(y), f2u(z)))


def ucomi_dd(x: float, y: float) -> tuple:
    """UCOMISD flags on float-domain operands."""
    if math.isnan(x) or math.isnan(y):
        return 1, 1, 1
    if x > y:
        return 0, 0, 0
    if x < y:
        return 0, 0, 1
    return 1, 0, 0


def cvttsd2si64_f(x: float) -> int:
    if math.isnan(x) or math.isinf(x):
        return INT64_MIN_BITS
    t = math.trunc(x)
    if not -(1 << 63) <= t < (1 << 63):
        return INT64_MIN_BITS
    return t & MASK64


def cvttsd2si32_f(x: float) -> int:
    if math.isnan(x) or math.isinf(x):
        return INT32_MIN_BITS
    t = math.trunc(x)
    if not -(1 << 31) <= t < (1 << 31):
        return INT32_MIN_BITS
    return t & MASK32


def cvtsd2si64_f(x: float) -> int:
    if math.isnan(x) or math.isinf(x):
        return INT64_MIN_BITS
    t = _round_half_even(x)
    if not -(1 << 63) <= t < (1 << 63):
        return INT64_MIN_BITS
    return t & MASK64


def sint64(bits: int) -> int:
    """Signed value of a 64-bit pattern."""
    return bits - (1 << 64) if bits & INT64_MIN_BITS else bits


def sint32(bits: int) -> int:
    b = bits & MASK32
    return b - (1 << 32) if b & INT32_MIN_BITS else b


def f32_from_i64(bits: int) -> float:
    """CVTSI2SS: signed 64-bit integer to single, widened."""
    return float(np.float32(sint64(bits)))


def f32_from_i32(bits: int) -> float:
    return float(np.float32(sint32(bits)))


def roundsd_f(x: float, mode: int) -> float:
    """ROUNDSD on a float-domain value: 0 nearest-even, 1 floor, 2 ceil,
    3 truncate; zero results keep x's sign; NaN canonicalized."""
    if math.isnan(x):
        return math.nan
    if math.isinf(x):
        return x
    if mode == 0:
        result = float(_round_half_even(x))
    elif mode == 1:
        result = float(math.floor(x))
    elif mode == 2:
        result = float(math.ceil(x))
    else:
        result = float(math.trunc(x))
    if result == 0.0:
        return math.copysign(result, x)
    return result


# ---------------------------------------------------------------------------
# comparisons and flags


def ucomi_d(dst: int, src: int) -> tuple:
    """UCOMISD flag results ``(zf, pf, cf)`` comparing dst against src."""
    x, y = u2d(dst), u2d(src)
    if math.isnan(x) or math.isnan(y):
        return 1, 1, 1
    if x > y:
        return 0, 0, 0
    if x < y:
        return 0, 0, 1
    return 1, 0, 0


def ucomi_f(dst: int, src: int) -> tuple:
    x, y = u2f(dst), u2f(src)
    if math.isnan(x) or math.isnan(y):
        return 1, 1, 1
    if x > y:
        return 0, 0, 0
    if x < y:
        return 0, 0, 1
    return 1, 0, 0


def parity(value: int) -> int:
    """x86 PF: 1 if the low byte has an even number of set bits."""
    return 1 - (bin(value & 0xFF).count("1") & 1)


def cmp_flags(a: int, b: int, width: int) -> tuple:
    """Flags ``(zf, cf, sf, of, pf)`` for ``cmp b, a`` semantics (a - b).

    ``a`` and ``b`` are unsigned patterns of ``width`` bits.
    """
    mask = (1 << width) - 1
    sign_bit = 1 << (width - 1)
    a &= mask
    b &= mask
    t = (a - b) & mask
    zf = 1 if t == 0 else 0
    cf = 1 if a < b else 0
    sf = 1 if t & sign_bit else 0
    of = 1 if ((a ^ b) & (a ^ t)) & sign_bit else 0
    return zf, cf, sf, of, parity(t)


def test_flags(a: int, b: int, width: int) -> tuple:
    """Flags for ``test``: logical AND, CF = OF = 0."""
    mask = (1 << width) - 1
    t = a & b & mask
    sign_bit = 1 << (width - 1)
    return (1 if t == 0 else 0, 0, 1 if t & sign_bit else 0, 0, parity(t))


# ---------------------------------------------------------------------------
# packed-single lane helpers (two 32-bit lanes per 64-bit half)


def ps_map(fn, a: int, b: int) -> int:
    """Apply a 32-bit lane operation across both lanes of a 64-bit half."""
    lo = fn(a & MASK32, b & MASK32)
    hi = fn((a >> 32) & MASK32, (b >> 32) & MASK32)
    return (hi << 32) | lo


def add_ps64(a: int, b: int) -> int:
    return ps_map(add_f, a, b)


def sub_ps64(a: int, b: int) -> int:
    return ps_map(sub_f, a, b)


def mul_ps64(a: int, b: int) -> int:
    return ps_map(mul_f, a, b)


def div_ps64(a: int, b: int) -> int:
    return ps_map(div_f, a, b)
