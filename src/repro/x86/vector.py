"""Vectorized structure-of-arrays execution backend.

The third evaluator backend (after the emulator and the JIT): a
:class:`~repro.x86.program.Program` is translated once into a sequence of
numpy operations over a *test-vector axis*.  Machine state is held as
structure-of-arrays — ``gp``/``xmm_lo``/``xmm_hi`` as ``(16, n_lanes)``
``uint64`` arrays whose columns are test cases ("lanes") and whose rows
are registers — so one instruction executes for the whole test set in a
handful of C-level array operations instead of ``n`` trips around the
Python interpreter.  This is the classic SIMD-across-tests layout the
paper's C++ evaluator gets from hardware vector units; numpy plays the
role of the vector ISA here.

Bit-exactness contract (checked by the differential suites in
``tests/core/test_batch_runner.py``): every instruction must produce the
same output bits as the emulator's ``exec_fn`` and the JIT's generated
code, including NaN-payload canonicalization (:mod:`repro.x86.scalar`'s
policy), signed zeros, denormals, and conversion saturation sentinels.
numpy float64/float32 arithmetic is IEEE-754 on the same hardware the
scalar backends run on, so the vector forms below are exact
reinterpretations of the scalar helpers, with NaN canonicalization
applied via masks.

Fault semantics: lanes fault independently.  Only per-lane operations
(memory accesses, opcode fallbacks) can raise — floating-point is
non-trapping throughout, with ``np.errstate`` suppressing IEEE flag
warnings — and a faulting lane records its signal and is *frozen*
(``active[lane] = False``): later per-lane operations skip it, and its
column is never scattered back, so the lane's architectural state after a
signal is undefined exactly as it is for the scalar backends.  Vectorized
register operations deliberately compute all lanes unconditionally,
including frozen ones — their columns are dead, and masking every array
op would cost more than it saves.

Like the JIT, the backend keeps status flags out of
:class:`~repro.x86.state.MachineState`: each execution starts from
all-clear flag vectors and never writes ``state.flags`` back (flags are
never live-out in this system, and incremental resume boundaries are
chosen flags-safe by :mod:`repro.x86.checkpoint`).

Instructions with no vectorized form — memory operands, shuffles, FMA,
packed singles — fall back to the emulator's ``exec_fn`` on a scratch
scalar state, lane by lane.  Correctness never depends on which path an
instruction takes; the curated vector set just has to cover the hot
kernels (it covers every register/immediate form the libimf kernels use).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Sequence

import numpy as np

from repro.x86 import scalar
from repro.x86.checkpoint import program_writes
from repro.x86.emulator import Outcome
from repro.x86.liveness import registers_referenced
from repro.x86.instruction import Instruction
from repro.x86.operands import Imm, Mem, Reg32, Reg64, Xmm
from repro.x86.program import Program
from repro.x86.signals import SignalError
from repro.x86.state import MachineState

_U64 = np.uint64
_U32 = np.uint32
_I64 = np.int64
_I32 = np.int32
_F64 = np.float64
_F32 = np.float32

_M64 = 0xFFFFFFFFFFFFFFFF
_M32 = 0xFFFFFFFF
_HI32 = 0xFFFFFFFF00000000

_M64U = _U64(_M64)
_M32U = _U64(_M32)
_HI32U = _U64(_HI32)
_ZERO = _U64(0)

_NAN64 = _U64(scalar._NAN_BITS)
_NAN32 = _U32(scalar._NAN_BITS32)
_INT64_MIN = _U64(scalar.INT64_MIN_BITS)
_INT32_MIN = _U64(scalar.INT32_MIN_BITS)

# Bounds for in-range (non-saturating) float -> int conversion; the
# float64 values -2^63 and -2^31 are exact, 2^63 and 2^31 likewise.
_TWO63 = _F64(2.0 ** 63)
_NEG_TWO63 = _F64(-(2.0 ** 63))
_TWO31 = _F64(2.0 ** 31)
_NEG_TWO31 = _F64(-(2.0 ** 31))

# x86 PF lookup over the low result byte (1 = even number of set bits).
_PARITY = np.array([scalar.parity(v) for v in range(256)], dtype=bool)


def _imm64_bits(value: int) -> np.uint64:
    return _U64(value & _M64)


def _imm_f64(value: int) -> np.float64:
    return np.array([value & _M64], dtype=_U64).view(_F64)[0]


def _imm_f32(value: int) -> np.float32:
    return np.array([value & _M32], dtype=_U32).view(_F32)[0]


# ---------------------------------------------------------------------------
# execution context


class _Lanes:
    """Structure-of-arrays machine state for one batched execution."""

    __slots__ = ("n", "gp", "xl", "xh", "zf", "cf", "sf", "of", "pf",
                 "mems", "active", "signals", "scratch")

    def __init__(self, states: Sequence[MachineState], gp_refs, xmm_refs,
                 packed: Optional[tuple] = None):
        n = len(states)
        self.n = n
        if packed is not None:
            # Adopt a pre-packed full-state image (see :func:`pack_states`
            # and the Runner's pack cache): ownership transfers — the
            # caller must pass freshly gathered arrays this execution may
            # mutate freely.
            self.gp, self.xl, self.xh = packed
        else:
            # Columns are lanes; rows (contiguous) are registers, so one
            # register's vector across the test set is a C-contiguous
            # view.  Only registers the program references are gathered —
            # packing all 48 rows costs more than executing a typical
            # kernel.  (Row assignment from a Python int list casts
            # element-wise through the uint64 dtype, so arbitrary 64-bit
            # patterns are preserved exactly; np.array on a bare int list
            # would go through float64 and corrupt anything above 2**53.)
            self.gp = np.zeros((16, n), dtype=_U64)
            for i in gp_refs:
                self.gp[i] = [s.gp[i] for s in states]
            self.xl = np.zeros((16, n), dtype=_U64)
            self.xh = np.zeros((16, n), dtype=_U64)
            for i in xmm_refs:
                self.xl[i] = [s.xmm_lo[i] for s in states]
                self.xh[i] = [s.xmm_hi[i] for s in states]
        # Flags start all-clear, mirroring the JIT prologue; they are
        # per-execution state, never carried in from MachineState.
        self.zf = np.zeros(n, dtype=bool)
        self.cf = np.zeros(n, dtype=bool)
        self.sf = np.zeros(n, dtype=bool)
        self.of = np.zeros(n, dtype=bool)
        self.pf = np.zeros(n, dtype=bool)
        # Memory stays per-lane: sandboxed segments are mutated in place
        # on the lane's own state, exactly as the scalar backends do.
        self.mems = [s.mem for s in states]
        self.active = [True] * n
        self.signals: List[object] = [None] * n
        # One scalar state reused by every per-lane fallback.
        self.scratch = MachineState(states[0].mem)

    def fault(self, lane: int, signal) -> None:
        self.signals[lane] = signal
        self.active[lane] = False


def pack_states(states: Sequence[MachineState]) -> tuple:
    """Pack full register files into ``(gp, xl, xh)`` lane arrays.

    One-time cost per distinct test: the Runner's vector fast path
    caches these columns and gathers each batch's ``packed`` image with
    one ``np.take`` per array instead of a per-state Python gather.  The
    explicit uint64 dtype keeps arbitrary 64-bit patterns exact.
    """
    gp = np.array([s.gp for s in states], dtype=_U64).T.copy()
    xl = np.array([s.xmm_lo for s in states], dtype=_U64).T.copy()
    xh = np.array([s.xmm_hi for s in states], dtype=_U64).T.copy()
    return gp, xl, xh


def make_column_readers(locs) -> tuple:
    """Compile live-out locations into ``(ctx, states) -> bits list``
    readers over a finished :class:`_Lanes` context.

    The vector analogue of :func:`repro.x86.locations.make_reader`: one
    ``tolist`` per location converts the whole row to Python ints in a
    single C call, instead of one closure call per test.  Register
    locations read the lane arrays; memory live-outs read each lane's
    (in-place mutated) sandbox, so they go through the per-state reader.
    Must return exactly the bits ``loc.read(state)`` would.
    """
    from repro.x86.locations import MemLoc, make_reader
    from repro.x86.registers import GP64_INDEX, XMM_INDEX

    readers = []
    for loc in locs:
        if isinstance(loc, MemLoc):
            read = make_reader(loc)
            readers.append(lambda ctx, states, _r=read:
                           [_r(s) for s in states])
        elif loc.reg in XMM_INDEX:
            i = XMM_INDEX[loc.reg]
            if loc.width == 64:
                attr = "xl" if loc.lane == 0 else "xh"
                readers.append(lambda ctx, states, _i=i, _a=attr:
                               getattr(ctx, _a)[_i].tolist())
            else:
                attr = "xl" if loc.lane < 2 else "xh"
                shift = _U64(32 * (loc.lane & 1))
                readers.append(lambda ctx, states, _i=i, _a=attr, _s=shift:
                               ((getattr(ctx, _a)[_i] >> _s)
                                & _M32U).tolist())
        else:
            i = GP64_INDEX[loc.reg]
            if loc.width == 32:
                readers.append(lambda ctx, states, _i=i:
                               (ctx.gp[_i] & _M32U).tolist())
            else:
                readers.append(lambda ctx, states, _i=i:
                               ctx.gp[_i].tolist())
    return tuple(readers)


# ---------------------------------------------------------------------------
# operand readers/writers (closure-generation time)


def _read64(op):
    """A ``ctx -> uint64 array (or scalar)`` reader of a 64-bit source."""
    if isinstance(op, Xmm):
        i = op.index
        return lambda ctx: ctx.xl[i]
    if isinstance(op, Reg64):
        i = op.index
        return lambda ctx: ctx.gp[i]
    if isinstance(op, Imm):
        v = _imm64_bits(op.value)
        return lambda ctx: v
    return None  # memory goes through the per-lane fallback


def _read32(op):
    if isinstance(op, Xmm):
        i = op.index
        return lambda ctx: ctx.xl[i] & _M32U
    if isinstance(op, (Reg64, Reg32)):
        i = op.index
        return lambda ctx: ctx.gp[i] & _M32U
    if isinstance(op, Imm):
        v = _U64(op.value & _M32)
        return lambda ctx: v
    return None


def _read_f64(op):
    """Reader of a 64-bit source reinterpreted as float64."""
    if isinstance(op, Xmm):
        i = op.index
        return lambda ctx: ctx.xl[i].view(_F64)
    if isinstance(op, Reg64):
        i = op.index
        return lambda ctx: ctx.gp[i].view(_F64)
    if isinstance(op, Imm):
        v = _imm_f64(op.value)
        return lambda ctx: v
    return None


def _read_f32(op):
    """Reader of a 32-bit source reinterpreted as float32."""
    if isinstance(op, Xmm):
        i = op.index
        return lambda ctx: (ctx.xl[i] & _M32U).astype(_U32).view(_F32)
    if isinstance(op, (Reg64, Reg32)):
        i = op.index
        return lambda ctx: (ctx.gp[i] & _M32U).astype(_U32).view(_F32)
    if isinstance(op, Imm):
        v = _imm_f32(op.value)
        return lambda ctx: v
    return None


def _canon_d(values) -> np.ndarray:
    """float64 array -> uint64 bits with arithmetic-NaN canonicalization
    (the vector form of :func:`repro.x86.scalar.d2u_c`)."""
    return np.where(np.isnan(values), _NAN64, values.view(_U64))


def _canon_f(values) -> np.ndarray:
    """float32 array -> uint64 bits (low dword) with canonical NaNs
    (the vector form of :func:`repro.x86.scalar.f2u_c`)."""
    return np.where(np.isnan(values), _NAN32, values.view(_U32)).astype(_U64)


def _merge_lo32(ctx, dst_index: int, bits64) -> None:
    """Write a 32-bit result into an XMM low dword, preserving the rest
    (the SSE scalar-single rule)."""
    ctx.xl[dst_index] = (ctx.xl[dst_index] & _HI32U) | bits64


# ---------------------------------------------------------------------------
# vector op builders
#
# Each builder takes an instruction's operands and returns a closure
# ``op(ctx)`` executing it across all lanes, or None when this operand
# form has no vector implementation (-> per-lane fallback).

_BUILDERS = {}


def _builder(*names):
    def wrap(fn):
        for name in names:
            _BUILDERS[name] = fn
        return fn
    return wrap


def _has_mem(ops) -> bool:
    return any(isinstance(op, Mem) for op in ops)


# -- scalar double arithmetic ------------------------------------------------

_SD_ARITH = {
    "addsd": lambda d, s: d + s,
    "subsd": lambda d, s: d - s,
    "mulsd": lambda d, s: d * s,
    "divsd": lambda d, s: d / s,
}


def _build_sd_binop(name):
    arith = _SD_ARITH.get(name)

    def build(ops):
        if _has_mem(ops):
            return None
        src = _read_f64(ops[0])
        d = ops[1].index
        if arith is not None:
            def op(ctx, _src=src, _d=d, _fn=arith):
                ctx.xl[_d] = _canon_d(_fn(ctx.xl[_d].view(_F64), _src(ctx)))
            return op
        # minsd/maxsd: x86 select semantics (src on ties/NaN), then
        # canonicalize a NaN selection.
        greater = name == "maxsd"
        src_bits = _read64(ops[0])

        def op(ctx, _src=src, _bits=src_bits, _d=d, _gt=greater):
            x = ctx.xl[_d].view(_F64)
            y = _src(ctx)
            take_dst = x > y if _gt else x < y
            res = np.where(take_dst, ctx.xl[_d], _bits(ctx))
            ctx.xl[_d] = np.where(np.isnan(res.view(_F64)), _NAN64, res)
        return op
    return build


for _name in ("addsd", "subsd", "mulsd", "divsd", "minsd", "maxsd"):
    _BUILDERS[_name] = _build_sd_binop(_name)


@_builder("sqrtsd")
def _build_sqrtsd(ops):
    if _has_mem(ops):
        return None
    src = _read_f64(ops[0])
    d = ops[1].index

    def op(ctx, _src=src, _d=d):
        ctx.xl[_d] = _canon_d(np.sqrt(_src(ctx)))
    return op


def _build_avx_sd_binop(name):
    # v<op>sd s1, s2, d:  d.lo = op(s2.lo, s1.lo);  d.hi = s2.hi
    base = name[1:]
    arith = _SD_ARITH.get(base)
    greater = base == "maxsd"
    is_minmax = base in ("minsd", "maxsd")

    def build(ops):
        if _has_mem(ops):
            return None
        s1_f = _read_f64(ops[0])
        s2 = ops[1].index
        d = ops[2].index
        if not is_minmax:
            def op(ctx, _s1=s1_f, _s2=s2, _d=d, _fn=arith):
                lo = _canon_d(_fn(ctx.xl[_s2].view(_F64), _s1(ctx)))
                ctx.xh[_d] = ctx.xh[_s2]
                ctx.xl[_d] = lo
            return op
        s1_bits = _read64(ops[0])

        def op(ctx, _s1=s1_f, _bits=s1_bits, _s2=s2, _d=d, _gt=greater):
            x = ctx.xl[_s2].view(_F64)
            y = _s1(ctx)
            take_dst = x > y if _gt else x < y
            res = np.where(take_dst, ctx.xl[_s2], _bits(ctx))
            lo = np.where(np.isnan(res.view(_F64)), _NAN64, res)
            ctx.xh[_d] = ctx.xh[_s2]
            ctx.xl[_d] = lo
        return op
    return build


for _name in ("vaddsd", "vsubsd", "vmulsd", "vdivsd", "vminsd", "vmaxsd"):
    _BUILDERS[_name] = _build_avx_sd_binop(_name)


# -- scalar single arithmetic ------------------------------------------------

_SS_ARITH = {
    "addss": lambda d, s: d + s,
    "subss": lambda d, s: d - s,
    "mulss": lambda d, s: d * s,
    "divss": lambda d, s: d / s,
}


def _build_ss_binop(name):
    arith = _SS_ARITH.get(name)
    greater = name == "maxss"

    def build(ops):
        if _has_mem(ops):
            return None
        src = _read_f32(ops[0])
        d = ops[1].index
        if arith is not None:
            def op(ctx, _src=src, _d=d, _fn=arith):
                x = (ctx.xl[_d] & _M32U).astype(_U32).view(_F32)
                _merge_lo32(ctx, _d, _canon_f(_fn(x, _src(ctx))))
            return op
        src_bits = _read32(ops[0])

        def op(ctx, _src=src, _bits=src_bits, _d=d, _gt=greater):
            dst_bits = ctx.xl[_d] & _M32U
            x = dst_bits.astype(_U32).view(_F32)
            y = _src(ctx)
            take_dst = x > y if _gt else x < y
            res = np.where(take_dst, dst_bits, _bits(ctx))
            res32 = res.astype(_U32)
            res = np.where(np.isnan(res32.view(_F32)), _NAN32,
                           res32).astype(_U64)
            _merge_lo32(ctx, _d, res)
        return op
    return build


for _name in ("addss", "subss", "mulss", "divss", "minss", "maxss"):
    _BUILDERS[_name] = _build_ss_binop(_name)


@_builder("sqrtss")
def _build_sqrtss(ops):
    if _has_mem(ops):
        return None
    src = _read_f32(ops[0])
    d = ops[1].index

    def op(ctx, _src=src, _d=d):
        _merge_lo32(ctx, _d, _canon_f(np.sqrt(_src(ctx))))
    return op


# -- packed double arithmetic ------------------------------------------------

def _build_pd_binop(name):
    arith = _SD_ARITH[name.replace("pd", "sd")]

    def build(ops):
        if _has_mem(ops):
            return None
        s = ops[0].index
        d = ops[1].index

        def op(ctx, _s=s, _d=d, _fn=arith):
            lo = _canon_d(_fn(ctx.xl[_d].view(_F64), ctx.xl[_s].view(_F64)))
            hi = _canon_d(_fn(ctx.xh[_d].view(_F64), ctx.xh[_s].view(_F64)))
            ctx.xl[_d] = lo
            ctx.xh[_d] = hi
        return op
    return build


for _name in ("addpd", "subpd", "mulpd", "divpd"):
    _BUILDERS[_name] = _build_pd_binop(_name)


# -- 128-bit bitwise ---------------------------------------------------------

_BITWISE = {
    "andpd": lambda d, s: d & s, "andps": lambda d, s: d & s,
    "pand": lambda d, s: d & s,
    "orpd": lambda d, s: d | s, "orps": lambda d, s: d | s,
    "por": lambda d, s: d | s,
    "xorpd": lambda d, s: d ^ s, "xorps": lambda d, s: d ^ s,
    "pxor": lambda d, s: d ^ s,
    "andnpd": lambda d, s: ~d & s,
}


def _build_bitwise(name):
    fn = _BITWISE[name]

    def build(ops):
        if _has_mem(ops):
            return None
        s = ops[0].index
        d = ops[1].index

        def op(ctx, _s=s, _d=d, _fn=fn):
            lo = _fn(ctx.xl[_d], ctx.xl[_s])
            hi = _fn(ctx.xh[_d], ctx.xh[_s])
            ctx.xl[_d] = lo
            ctx.xh[_d] = hi
        return op
    return build


for _name in _BITWISE:
    _BUILDERS[_name] = _build_bitwise(_name)


# -- moves -------------------------------------------------------------------

@_builder("movsd")
def _build_movsd(ops):
    if _has_mem(ops):
        return None
    s = ops[0].index
    d = ops[1].index

    def op(ctx, _s=s, _d=d):
        ctx.xl[_d] = ctx.xl[_s]
    return op


@_builder("movss")
def _build_movss(ops):
    if _has_mem(ops):
        return None
    s = ops[0].index
    d = ops[1].index

    def op(ctx, _s=s, _d=d):
        _merge_lo32(ctx, _d, ctx.xl[_s] & _M32U)
    return op


@_builder("movapd", "movaps", "movdqa", "movups", "movdqu")
def _build_mov128(ops):
    if _has_mem(ops):
        return None
    s = ops[0].index
    d = ops[1].index

    def op(ctx, _s=s, _d=d):
        ctx.xl[_d] = ctx.xl[_s]
        ctx.xh[_d] = ctx.xh[_s]
    return op


@_builder("movddup")
def _build_movddup(ops):
    if _has_mem(ops):
        return None
    s = ops[0].index
    d = ops[1].index

    def op(ctx, _s=s, _d=d):
        lo = ctx.xl[_s]
        ctx.xh[_d] = lo
        ctx.xl[_d] = lo
    return op


@_builder("movq")
def _build_movq(ops):
    if _has_mem(ops):
        return None
    src, dst = ops
    if isinstance(dst, Xmm):
        read = _read64(src)
        d = dst.index

        def op(ctx, _read=read, _d=d):
            ctx.xl[_d] = _read(ctx)  # broadcast for immediates
            ctx.xh[_d] = _ZERO
        return op
    read = _read64(src)
    d = dst.index

    def op(ctx, _read=read, _d=d):
        ctx.gp[_d] = _read(ctx)
    return op


@_builder("movd")
def _build_movd(ops):
    if _has_mem(ops):
        return None
    src, dst = ops
    read = _read32(src)
    d = dst.index
    if isinstance(dst, Xmm):
        def op(ctx, _read=read, _d=d):
            ctx.xl[_d] = _read(ctx)
            ctx.xh[_d] = _ZERO
        return op

    def op(ctx, _read=read, _d=d):
        ctx.gp[_d] = _read(ctx)
    return op


@_builder("mov", "movabs")
def _build_mov(ops):
    if _has_mem(ops):
        return None
    src, dst = ops
    d = dst.index
    read = _read64(src) if isinstance(dst, Reg64) else _read32(src)

    def op(ctx, _read=read, _d=d):
        ctx.gp[_d] = _read(ctx)
    return op


@_builder("lea")
def _build_lea(ops):
    # lea computes the effective address without touching memory, so it
    # vectorizes even though its source operand is a Mem.
    mem, dst = ops
    base = mem.base
    index = mem.index
    scale = _U64(mem.scale) if mem.index is not None else None
    disp = _U64(mem.disp & _M64)
    d = dst.index

    def op(ctx, _b=base, _i=index, _s=scale, _disp=disp, _d=d):
        addr = ctx.gp[_b] + _disp
        if _i is not None:
            addr = addr + ctx.gp[_i] * _s
        ctx.gp[_d] = addr
    return op


# -- GP ALU ------------------------------------------------------------------

_GP_ARITH = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "imul": lambda a, b: a * b,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
}


def _build_gp_binop(name):
    fn = _GP_ARITH[name]

    def build(ops):
        if _has_mem(ops):
            return None
        src, dst = ops
        d = dst.index
        if isinstance(dst, Reg64):
            read = _read64(src)

            def op(ctx, _read=read, _d=d, _fn=fn):
                ctx.gp[_d] = _fn(ctx.gp[_d], _read(ctx))
            return op
        read = _read32(src)

        def op(ctx, _read=read, _d=d, _fn=fn):
            ctx.gp[_d] = _fn(ctx.gp[_d] & _M32U, _read(ctx)) & _M32U
        return op
    return build


for _name in _GP_ARITH:
    _BUILDERS[_name] = _build_gp_binop(_name)


@_builder("not")
def _build_not(ops):
    dst = ops[0]
    d = dst.index
    if isinstance(dst, Reg64):
        def op(ctx, _d=d):
            ctx.gp[_d] = ~ctx.gp[_d]
        return op

    def op(ctx, _d=d):
        ctx.gp[_d] = (ctx.gp[_d] & _M32U) ^ _M32U
    return op


@_builder("neg")
def _build_neg(ops):
    dst = ops[0]
    d = dst.index
    if isinstance(dst, Reg64):
        def op(ctx, _d=d):
            ctx.gp[_d] = _ZERO - ctx.gp[_d]
        return op

    def op(ctx, _d=d):
        ctx.gp[_d] = (_ZERO - (ctx.gp[_d] & _M32U)) & _M32U
    return op


def _build_shift(name):
    def build(ops):
        imm, dst = ops
        d = dst.index
        wide = isinstance(dst, Reg64)
        n = imm.value & (63 if wide else 31)
        if name == "shl":
            count = _U64(n)
            if wide:
                def op(ctx, _d=d, _n=count):
                    ctx.gp[_d] = ctx.gp[_d] << _n
                return op

            def op(ctx, _d=d, _n=count):
                ctx.gp[_d] = ((ctx.gp[_d] & _M32U) << _n) & _M32U
            return op
        if name == "shr":
            count = _U64(n)
            if wide:
                def op(ctx, _d=d, _n=count):
                    ctx.gp[_d] = ctx.gp[_d] >> _n
                return op

            def op(ctx, _d=d, _n=count):
                ctx.gp[_d] = (ctx.gp[_d] & _M32U) >> _n
            return op
        # sar: arithmetic shift via a signed view of the operand width.
        if wide:
            count = _I64(n)

            def op(ctx, _d=d, _n=count):
                ctx.gp[_d] = (ctx.gp[_d].view(_I64) >> _n).view(_U64)
            return op
        count = _I32(n)

        def op(ctx, _d=d, _n=count):
            low = (ctx.gp[_d] & _M32U).astype(_U32)
            ctx.gp[_d] = (low.view(_I32) >> _n).view(_U32).astype(_U64)
        return op
    return build


for _name in ("shl", "shr", "sar"):
    _BUILDERS[_name] = _build_shift(_name)


# -- comparisons, flags, conditional moves -----------------------------------

def _set_cmp_flags(ctx, a, b, sign_bit):
    t = a - b
    if sign_bit == _U64(1 << 31):
        t = t & _M32U
    ctx.zf = t == _ZERO
    ctx.cf = a < b
    ctx.sf = (t & sign_bit) != _ZERO
    ctx.of = (((a ^ b) & (a ^ t)) & sign_bit) != _ZERO
    ctx.pf = _PARITY[(t & _U64(0xFF)).astype(np.intp)]


@_builder("cmp")
def _build_cmp(ops):
    if _has_mem(ops):
        return None
    b_op, a_op = ops  # AT&T: cmp b, a  sets flags from a - b
    a_index = a_op.index
    if isinstance(a_op, Reg64):
        read_b = _read64(b_op)
        sign = _U64(1 << 63)

        def op(ctx, _a=a_index, _read=read_b, _sign=sign):
            _set_cmp_flags(ctx, ctx.gp[_a], _read(ctx), _sign)
        return op
    read_b = _read32(b_op)
    sign = _U64(1 << 31)

    def op(ctx, _a=a_index, _read=read_b, _sign=sign):
        _set_cmp_flags(ctx, ctx.gp[_a] & _M32U, _read(ctx), _sign)
    return op


@_builder("test")
def _build_test(ops):
    if _has_mem(ops):
        return None
    b_op, a_op = ops
    a_index = a_op.index
    wide = isinstance(a_op, Reg64)
    read_b = _read64(b_op) if wide else _read32(b_op)
    sign = _U64(1 << 63) if wide else _U64(1 << 31)
    mask = _M64U if wide else _M32U

    def op(ctx, _a=a_index, _read=read_b, _sign=sign, _mask=mask):
        t = (ctx.gp[_a] & _mask) & _read(ctx)
        ctx.zf = t == _ZERO
        ctx.cf = np.zeros(ctx.n, dtype=bool)
        ctx.sf = (t & _sign) != _ZERO
        ctx.of = np.zeros(ctx.n, dtype=bool)
        ctx.pf = _PARITY[(t & _U64(0xFF)).astype(np.intp)]
    return op


def _build_ucomi(read_fn, view):
    def build(ops):
        if _has_mem(ops):
            return None
        src = read_fn(ops[0])
        d = ops[1].index

        def op(ctx, _src=src, _d=d):
            x = view(ctx, _d)
            y = _src(ctx)
            unordered = np.isnan(x) | np.isnan(y)
            ctx.zf = unordered | (x == y)
            ctx.pf = unordered
            ctx.cf = unordered | (x < y)
            ctx.sf = np.zeros(ctx.n, dtype=bool)
            ctx.of = np.zeros(ctx.n, dtype=bool)
        return op
    return build


_BUILDERS["ucomisd"] = _build_ucomi(
    _read_f64, lambda ctx, d: ctx.xl[d].view(_F64))
_BUILDERS["ucomiss"] = _build_ucomi(
    _read_f32, lambda ctx, d: (ctx.xl[d] & _M32U).astype(_U32).view(_F32))


_CONDITIONS = {
    "e": lambda c: c.zf,
    "ne": lambda c: ~c.zf,
    "b": lambda c: c.cf,
    "be": lambda c: c.cf | c.zf,
    "a": lambda c: ~(c.cf | c.zf),
    "ae": lambda c: ~c.cf,
    "s": lambda c: c.sf,
    "ns": lambda c: ~c.sf,
    "l": lambda c: c.sf != c.of,
    "ge": lambda c: c.sf == c.of,
    "le": lambda c: (c.sf != c.of) | c.zf,
    "g": lambda c: ~((c.sf != c.of) | c.zf),
}


def _build_cmov(cc):
    cond = _CONDITIONS[cc]

    def build(ops):
        if _has_mem(ops):
            return None
        src, dst = ops
        d = dst.index
        if isinstance(dst, Reg64):
            read = _read64(src)

            def op(ctx, _read=read, _d=d, _cond=cond):
                ctx.gp[_d] = np.where(_cond(ctx), _read(ctx), ctx.gp[_d])
            return op
        read = _read32(src)

        def op(ctx, _read=read, _d=d, _cond=cond):
            # x86-64: a 32-bit cmov zero-extends even when not taken.
            ctx.gp[_d] = np.where(_cond(ctx), _read(ctx),
                                  ctx.gp[_d] & _M32U)
        return op
    return build


for _cc in _CONDITIONS:
    _BUILDERS[f"cmov{_cc}"] = _build_cmov(_cc)


# -- conversions -------------------------------------------------------------

@_builder("cvtsd2ss")
def _build_cvtsd2ss(ops):
    if _has_mem(ops):
        return None
    src = _read_f64(ops[0])
    d = ops[1].index

    def op(ctx, _src=src, _d=d):
        _merge_lo32(ctx, _d, _canon_f(np.asarray(_src(ctx)).astype(_F32)))
    return op


@_builder("cvtss2sd")
def _build_cvtss2sd(ops):
    if _has_mem(ops):
        return None
    src = _read_f32(ops[0])
    d = ops[1].index

    def op(ctx, _src=src, _d=d):
        ctx.xl[_d] = _canon_d(np.asarray(_src(ctx)).astype(_F64))
    return op


def _trunc_to_int(values, lo_bound, hi_bound, wide):
    """Saturating float64 -> integer bits shared by the cvt*2si family.

    ``values`` must already be rounded (trunc/rint); NaN compares false
    against both bounds and lands on the x86 saturation sentinel.
    """
    in_range = (values >= lo_bound) & (values < hi_bound)
    safe = np.where(in_range, values, 0.0).astype(_I64).view(_U64)
    if wide:
        return np.where(in_range, safe, _INT64_MIN)
    return np.where(in_range, safe & _M32U, _INT32_MIN)


@_builder("cvttsd2si")
def _build_cvttsd2si(ops):
    if _has_mem(ops):
        return None
    src = _read_f64(ops[0])
    d = ops[1].index
    wide = isinstance(ops[1], Reg64)
    lo, hi = (_NEG_TWO63, _TWO63) if wide else (_NEG_TWO31, _TWO31)

    def op(ctx, _src=src, _d=d, _lo=lo, _hi=hi, _wide=wide):
        ctx.gp[_d] = _trunc_to_int(np.trunc(_src(ctx)), _lo, _hi, _wide)
    return op


@_builder("cvtsd2si")
def _build_cvtsd2si(ops):
    if _has_mem(ops):
        return None
    src = _read_f64(ops[0])
    d = ops[1].index

    def op(ctx, _src=src, _d=d):
        ctx.gp[_d] = _trunc_to_int(np.rint(_src(ctx)), _NEG_TWO63, _TWO63,
                                   True)
    return op


@_builder("cvttss2si")
def _build_cvttss2si(ops):
    if _has_mem(ops):
        return None
    src = _read_f32(ops[0])
    d = ops[1].index
    wide = isinstance(ops[1], Reg64)
    lo, hi = (_NEG_TWO63, _TWO63) if wide else (_NEG_TWO31, _TWO31)

    def op(ctx, _src=src, _d=d, _lo=lo, _hi=hi, _wide=wide):
        x = np.asarray(_src(ctx)).astype(_F64)
        ctx.gp[_d] = _trunc_to_int(np.trunc(x), _lo, _hi, _wide)
    return op


@_builder("cvtsi2sd")
def _build_cvtsi2sd(ops):
    if _has_mem(ops):
        return None
    src, dst = ops
    s = src.index
    d = dst.index
    if isinstance(src, Reg64):
        def op(ctx, _s=s, _d=d):
            ctx.xl[_d] = ctx.gp[_s].view(_I64).astype(_F64).view(_U64)
        return op

    def op(ctx, _s=s, _d=d):
        signed = (ctx.gp[_s] & _M32U).astype(_U32).view(_I32)
        ctx.xl[_d] = signed.astype(_F64).view(_U64)
    return op


@_builder("cvtsi2ss")
def _build_cvtsi2ss(ops):
    if _has_mem(ops):
        return None
    src, dst = ops
    s = src.index
    d = dst.index
    if isinstance(src, Reg64):
        def op(ctx, _s=s, _d=d):
            res = ctx.gp[_s].view(_I64).astype(_F32)
            _merge_lo32(ctx, _d, res.view(_U32).astype(_U64))
        return op

    def op(ctx, _s=s, _d=d):
        signed = (ctx.gp[_s] & _M32U).astype(_U32).view(_I32)
        _merge_lo32(ctx, _d, signed.astype(_F32).view(_U32).astype(_U64))
    return op


@_builder("cvtps2pd")
def _build_cvtps2pd(ops):
    if _has_mem(ops):
        return None
    s = ops[0].index
    d = ops[1].index

    def op(ctx, _s=s, _d=d):
        lanes = ctx.xl[_s]
        lo = _canon_d((lanes & _M32U).astype(_U32).view(_F32).astype(_F64))
        hi = _canon_d((lanes >> _U64(32)).astype(_U32).view(_F32)
                      .astype(_F64))
        ctx.xl[_d] = lo
        ctx.xh[_d] = hi
    return op


@_builder("cvtpd2ps")
def _build_cvtpd2ps(ops):
    if _has_mem(ops):
        return None
    s = ops[0].index
    d = ops[1].index

    def op(ctx, _s=s, _d=d):
        lo = _canon_f(ctx.xl[_s].view(_F64).astype(_F32))
        hi = _canon_f(ctx.xh[_s].view(_F64).astype(_F32))
        ctx.xl[_d] = lo | (hi << _U64(32))
        ctx.xh[_d] = _ZERO
    return op


_ROUND_MODES = {0: np.rint, 1: np.floor, 2: np.ceil, 3: np.trunc}


@_builder("roundsd")
def _build_roundsd(ops):
    if _has_mem(ops):
        return None
    imm, src, dst = ops
    round_fn = _ROUND_MODES[imm.value & 3]
    read = _read_f64(src)
    d = dst.index

    def op(ctx, _read=read, _d=d, _fn=round_fn):
        x = _read(ctx)
        r = _fn(x)
        # A zero result keeps the argument's sign (roundsd rule).
        r = np.where(r == 0.0, np.copysign(r, x), r)
        ctx.xl[_d] = _canon_d(r)
    return op


@_builder("nop")
def _build_nop(_ops):
    def op(_ctx):
        return None
    return op


# ---------------------------------------------------------------------------
# per-lane fallback


def _lane_fallback(instr: Instruction):
    """Execute one instruction lane-by-lane through the emulator's
    ``exec_fn`` on a scratch scalar state.

    This is the completeness path: memory operands (the only runtime
    fault source), shuffles, FMA, packed singles — anything without a
    vector form.  Inactive (faulted) lanes are skipped; a lane that
    signals here is frozen for the rest of the execution.
    """
    exec_fn = instr.spec.exec_fn
    operands = instr.operands
    reads_flags = instr.spec.reads_flags
    writes_flags = instr.spec.writes_flags

    def op(ctx):
        gp, xl, xh = ctx.gp, ctx.xl, ctx.xh
        scratch = ctx.scratch
        flags = scratch.flags
        active = ctx.active
        mems = ctx.mems
        for j in range(ctx.n):
            if not active[j]:
                continue
            scratch.gp[:] = gp[:, j].tolist()
            scratch.xmm_lo[:] = xl[:, j].tolist()
            scratch.xmm_hi[:] = xh[:, j].tolist()
            if reads_flags:
                flags["zf"] = int(ctx.zf[j])
                flags["cf"] = int(ctx.cf[j])
                flags["sf"] = int(ctx.sf[j])
                flags["of"] = int(ctx.of[j])
                flags["pf"] = int(ctx.pf[j])
            scratch.mem = mems[j]
            try:
                exec_fn(scratch, operands)
            except SignalError as exc:
                ctx.fault(j, exc.signal)
                continue
            gp[:, j] = scratch.gp
            xl[:, j] = scratch.xmm_lo
            xh[:, j] = scratch.xmm_hi
            if writes_flags:
                ctx.zf[j] = bool(flags["zf"])
                ctx.cf[j] = bool(flags["cf"])
                ctx.sf[j] = bool(flags["sf"])
                ctx.of[j] = bool(flags["of"])
                ctx.pf[j] = bool(flags["pf"])
    return op


def _vectorize_instr(instr: Instruction):
    builder = _BUILDERS.get(instr.opcode)
    if builder is not None:
        op = builder(instr.operands)
        if op is not None:
            return op, True
    return _lane_fallback(instr), False


# ---------------------------------------------------------------------------
# the compiled form


class VectorizedProgram:
    """A program translated once into per-instruction vector closures.

    Drop-in for the JIT's ``CompiledProgram`` surface as the Runner and
    the cost function consume it: ``writes``, :meth:`run`,
    :meth:`run_batch`, :meth:`run_from`, :meth:`run_batch_from` — all
    operating on ordinary scalar :class:`MachineState`s via a
    pack -> vector-execute -> scatter round trip.
    """

    __slots__ = ("program", "writes", "_ops", "_gp_refs", "_xmm_refs",
                 "vector_coverage")

    def __init__(self, program: Program):
        self.program = program
        # Liveness over-approximation (the JIT reports exact sets from
        # codegen); any superset is safe for the pooled-state promise.
        self.writes = program_writes(program)
        gp_refs, xmm_refs = registers_referenced(program)
        self._gp_refs = tuple(sorted(gp_refs))
        self._xmm_refs = tuple(sorted(xmm_refs))
        ops = []
        covered = 0
        total = 0
        for instr in program.slots:
            if instr.is_unused:
                ops.append(None)
                continue
            op, vectorized = _vectorize_instr(instr)
            ops.append(op)
            total += 1
            covered += vectorized
        self._ops = ops
        # Fraction of live instructions with a true vector form — a
        # diagnostic for benchmarks (fallback-heavy programs run at
        # emulator-like speed).
        self.vector_coverage = covered / total if total else 1.0

    # -- execution core ----------------------------------------------------

    def _execute(self, states: Sequence[MachineState], start: int = 0,
                 stop: Optional[int] = None) -> List[object]:
        if not states:
            return []
        ctx = _Lanes(states, self._gp_refs, self._xmm_refs)
        gp_idx, xl_idx, xh_idx, _mem = self.writes
        with np.errstate(all="ignore"):
            for op in self._ops[start:stop]:
                if op is not None:
                    op(ctx)
        # Scatter written rows back into the scalar states.  Faulted
        # lanes are skipped (state undefined after a signal, as with the
        # scalar backends).  ``tolist`` converts a whole row to Python
        # ints in one C call.
        signals = ctx.signals
        clean = [j for j in range(ctx.n) if signals[j] is None]
        if clean:
            for arr, indices, attr in ((ctx.gp, gp_idx, "gp"),
                                       (ctx.xl, xl_idx, "xmm_lo"),
                                       (ctx.xh, xh_idx, "xmm_hi")):
                for i in indices:
                    row = arr[i].tolist()
                    for j in clean:
                        getattr(states[j], attr)[i] = row[j]
        return signals

    # -- CompiledProgram-compatible surface --------------------------------

    def run(self, state: MachineState) -> Outcome:
        """Execute on one machine state in place (single-lane vector)."""
        signal = self._execute([state])[0]
        return Outcome(signal=signal)

    def run_batch(self, states: Sequence[MachineState]) -> List[object]:
        """Execute on every state; per-state signals (None = clean)."""
        return self._execute(states)

    def run_from(self, start: int, state: MachineState,
                 stop: Optional[int] = None) -> Outcome:
        """Execute only ``[start, stop)`` on a state already holding the
        prefix's effects (a restored checkpoint slice)."""
        signal = self._execute([state], start, stop)[0]
        return Outcome(signal=signal)

    def run_batch_from(self, start: int, states: Sequence[MachineState],
                       stop: Optional[int] = None) -> List[object]:
        """Batched :meth:`run_from`: resume every lane from its
        checkpoint at ``start`` in one vectorized pass."""
        return self._execute(states, start, stop)

    def run_batch_columns(self, states: Sequence[MachineState],
                          packed: Optional[tuple] = None):
        """Execute without scattering; returns ``(signals, lane context)``.

        The Runner's vector fast path reads live-out bits straight from
        the context's rows (:func:`make_column_readers`) instead of
        round-tripping through scalar states, so the states' register
        files are left untouched — only their memory can be mutated (in
        place, by per-lane stores).  ``packed`` optionally supplies a
        freshly gathered :func:`pack_states` image to adopt (ownership
        transfers) instead of gathering from ``states``.
        """
        if not states:
            return [], None
        ctx = _Lanes(states, self._gp_refs, self._xmm_refs, packed)
        with np.errstate(all="ignore"):
            for op in self._ops:
                if op is not None:
                    op(ctx)
        return ctx.signals, ctx


# Bounded LRU keyed on immutable program values, mirroring the JIT's
# compile cache: MCMC proposals revisit recently seen programs, and the
# current program's prefix segments recur across captures.
_VECTORIZE_CACHE: "OrderedDict[Program, VectorizedProgram]" = OrderedDict()
_VECTORIZE_CACHE_MAX = 8192


def vectorize_program(program: Program) -> VectorizedProgram:
    """Translate a program for repeated vector execution (memoized)."""
    cached = _VECTORIZE_CACHE.get(program)
    if cached is not None:
        _VECTORIZE_CACHE.move_to_end(program)
        return cached
    vectorized = VectorizedProgram(program)
    while len(_VECTORIZE_CACHE) >= _VECTORIZE_CACHE_MAX:
        _VECTORIZE_CACHE.popitem(last=False)
    _VECTORIZE_CACHE[program] = vectorized
    return vectorized


def clear_vectorize_cache() -> None:
    """Drop all cached translations (test hook)."""
    _VECTORIZE_CACHE.clear()
