"""Instructions and the UNUSED token.

A program in this system is a fixed-length sequence of slots, each holding
either a real instruction or the UNUSED token (Section 2.2): proposing
UNUSED deletes an instruction, replacing UNUSED inserts one.  UNUSED is
modelled as the zero-latency ``nop`` opcode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.x86.opcodes import OpcodeSpec, instruction_latency, spec_of
from repro.x86.operands import Operand


@dataclass(frozen=True, eq=True)
class Instruction:
    """An opcode plus its operands, in AT&T order (sources first)."""

    opcode: str
    operands: Tuple[Operand, ...] = ()

    def __post_init__(self) -> None:
        spec = spec_of(self.opcode)
        if not spec.accepts(self.operands):
            rendered = ", ".join(str(op) for op in self.operands)
            raise ValueError(
                f"invalid operands for {self.opcode}: {rendered or '(none)'}"
            )

    def __hash__(self) -> int:
        # Same value the dataclass-generated hash would produce, computed
        # once: instructions are immutable and sit in the slot tuples the
        # checkpoint store keys on, where they are re-hashed on every
        # prefix lookup of every proposal.
        try:
            return self._hash
        except AttributeError:
            value = hash((self.opcode, self.operands))
            object.__setattr__(self, "_hash", value)
            return value

    @property
    def spec(self) -> OpcodeSpec:
        # Resolved once per instruction: the incremental evaluator walks
        # slot tuples on every proposal (flags liveness, write sets,
        # suffix interpretation) and the registry lookup was a measurable
        # share of each walk.
        try:
            return self._spec
        except AttributeError:
            spec = spec_of(self.opcode)
            object.__setattr__(self, "_spec", spec)
            return spec

    @property
    def is_unused(self) -> bool:
        return self.opcode == "nop"

    @property
    def latency(self) -> int:
        try:
            return self._latency
        except AttributeError:
            value = instruction_latency(self.opcode, self.operands)
            object.__setattr__(self, "_latency", value)
            return value

    def __getstate__(self):
        # Drop memoized attributes: the spec holds exec/emit closures,
        # which do not pickle (programs cross process boundaries in the
        # parallel multi-chain search).
        return (self.opcode, self.operands)

    def __setstate__(self, state) -> None:
        object.__setattr__(self, "opcode", state[0])
        object.__setattr__(self, "operands", state[1])

    def __str__(self) -> str:
        if not self.operands:
            return self.opcode
        return f"{self.opcode} " + ", ".join(str(op) for op in self.operands)


UNUSED = Instruction("nop", ())
