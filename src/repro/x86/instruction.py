"""Instructions and the UNUSED token.

A program in this system is a fixed-length sequence of slots, each holding
either a real instruction or the UNUSED token (Section 2.2): proposing
UNUSED deletes an instruction, replacing UNUSED inserts one.  UNUSED is
modelled as the zero-latency ``nop`` opcode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.x86.opcodes import OpcodeSpec, instruction_latency, spec_of
from repro.x86.operands import Operand


@dataclass(frozen=True)
class Instruction:
    """An opcode plus its operands, in AT&T order (sources first)."""

    opcode: str
    operands: Tuple[Operand, ...] = ()

    def __post_init__(self) -> None:
        spec = spec_of(self.opcode)
        if not spec.accepts(self.operands):
            rendered = ", ".join(str(op) for op in self.operands)
            raise ValueError(
                f"invalid operands for {self.opcode}: {rendered or '(none)'}"
            )

    @property
    def spec(self) -> OpcodeSpec:
        return spec_of(self.opcode)

    @property
    def is_unused(self) -> bool:
        return self.opcode == "nop"

    @property
    def latency(self) -> int:
        return instruction_latency(self.opcode, self.operands)

    def __str__(self) -> str:
        if not self.operands:
            return self.opcode
        return f"{self.opcode} " + ", ".join(str(op) for op in self.operands)


UNUSED = Instruction("nop", ())
