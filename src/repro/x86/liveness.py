"""Def/use analysis and dead-code elimination.

Locations are tracked at register granularity (``"rax"``, ``"xmm3"``) plus
two pseudo-locations: ``"flags"`` for the status flags and ``"mem"`` for
any memory write.  Partial XMM writes (scalar SSE ops preserve bits the
instruction does not define) conservatively count as uses of the
destination, so dead-code elimination never removes an instruction whose
preserved bits might matter.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from repro.x86.instruction import Instruction
from repro.x86.operands import Mem, Reg32, Reg64, Xmm
from repro.x86.program import Program
from repro.x86.registers import GP64_NAMES, XMM_NAMES


def uses_and_defs(instr: Instruction) -> Tuple[Set[str], Set[str]]:
    """The (uses, defs) location sets of one instruction."""
    uses: Set[str] = set()
    defs: Set[str] = set()
    spec = instr.spec
    for op, sl in zip(instr.operands, spec.slots):
        if isinstance(op, (Reg64, Reg32)):
            name = GP64_NAMES[op.index]
            if sl.read:
                uses.add(name)
            if sl.write:
                defs.add(name)
        elif isinstance(op, Xmm):
            name = XMM_NAMES[op.index]
            if sl.read:
                uses.add(name)
            if sl.write:
                defs.add(name)
                if spec.partial_dst:
                    uses.add(name)
        elif isinstance(op, Mem):
            uses.add(GP64_NAMES[op.base])
            if op.index is not None:
                uses.add(GP64_NAMES[op.index])
            if sl.read:
                uses.add("mem")
            if sl.write:
                defs.add("mem")
    if spec.reads_flags:
        uses.add("flags")
    if spec.writes_flags:
        defs.add("flags")
    return uses, defs


def registers_referenced(program: Program) -> Tuple[Set[int], Set[int]]:
    """GP and XMM register indices referenced anywhere in a program."""
    gp: Set[int] = set()
    xmm: Set[int] = set()
    for instr in program:
        for op in instr.operands:
            if isinstance(op, (Reg64, Reg32)):
                gp.add(op.index)
            elif isinstance(op, Xmm):
                xmm.add(op.index)
            elif isinstance(op, Mem):
                gp.add(op.base)
                if op.index is not None:
                    gp.add(op.index)
    return gp, xmm


def dead_code_eliminate(program: Program, live_out: Set[str]) -> Program:
    """Remove instructions whose results are never observed.

    ``live_out`` holds register names (``"xmm0"``) and optionally
    ``"mem"``.  Slot positions are preserved by replacing dead
    instructions with UNUSED so that search-internal bookkeeping remains
    valid.
    """
    from repro.x86.instruction import UNUSED

    live = set(live_out)
    kept: List[Instruction] = [UNUSED] * len(program.slots)
    for i in range(len(program.slots) - 1, -1, -1):
        instr = program.slots[i]
        if instr.is_unused:
            continue
        uses, defs = uses_and_defs(instr)
        if defs & live or "mem" in defs and "mem" in live:
            kept[i] = instr
            live -= {d for d in defs if d != "mem"}
            live |= uses
    return Program(kept)
