"""The x86-64 subset opcode table.

Each :class:`OpcodeSpec` carries the operand signature used for validation
and for the search's random operand/opcode proposals, an approximate
Haswell latency used by the performance term (Section 5.2 / Figure 8), and
two semantic functions:

* ``exec_fn(state, ops)`` — interpretive semantics for the emulator
  backend (the original-STOKE-style evaluator), operating on raw bit
  patterns via the helpers in :mod:`repro.x86.scalar`;
* ``emit_fn(ctx, ops)`` — Python code generation for the
  representation-tracking JIT backend (Section 5.1), which keeps
  floating-point values in native float form across instructions.

A hypothesis differential test in ``tests/x86/test_differential.py``
checks the two backends agree bit-for-bit on random programs.

Subset restrictions (documented deviations from real x86-64):

* Only ``cmp``/``test``/``ucomisd``/``ucomiss`` define status flags; ALU
  instructions leave them untouched.
* ``movq $imm64, %xmm`` is accepted as a pseudo-op (the usual
  ``movabs`` + ``movq`` pair fused), so kernels can embed FP constants.
* NaN payloads produced by arithmetic (and by min/max selection and FP
  conversions of NaN) are canonicalized; data moves preserve payloads
  bit-exactly (see :mod:`repro.x86.scalar`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.x86 import scalar
from repro.x86.operands import (
    Imm,
    Kind,
    Mem,
    Operand,
    Reg32,
    Reg64,
    Xmm,
)

M32 = 0xFFFFFFFF
M64 = 0xFFFFFFFFFFFFFFFF
HI32 = 0xFFFFFFFF00000000

# Extra cycles charged when an instruction touches memory (L1 load).
MEM_EXTRA_LATENCY = 3


@dataclass(frozen=True)
class Slot:
    """One operand position: which kinds it accepts, and data direction."""

    kinds: frozenset
    read: bool = True
    write: bool = False


def slot(*kinds: Kind, read: bool = True, write: bool = False) -> Slot:
    return Slot(frozenset(kinds), read=read, write=write)


@dataclass(frozen=True)
class OpcodeSpec:
    """Static description + semantics of one opcode."""

    name: str
    slots: Tuple[Slot, ...]
    latency: int
    exec_fn: Callable
    emit_fn: Callable
    flavor: str = "float"  # 'float' | 'int' | 'move' | 'cmp' | 'nop'
    # Extra operand-combination constraint (e.g. mov cannot be mem->mem).
    valid_fn: Optional[Callable] = None
    # True when an XMM destination may preserve some of its old bits, so
    # liveness must treat the destination as read as well.
    partial_dst: bool = True
    reads_flags: bool = False
    writes_flags: bool = False

    def accepts(self, ops: Tuple[Operand, ...]) -> bool:
        """Signature check used by the assembler and the transforms."""
        if len(ops) != len(self.slots):
            return False
        for op, sl in zip(ops, self.slots):
            if op.kind not in sl.kinds:
                return False
        mem_count = sum(1 for op in ops if isinstance(op, Mem))
        if mem_count > 1:
            return False
        if self.valid_fn is not None and not self.valid_fn(ops):
            return False
        return True


OPCODES: dict = {}


def _register(spec: OpcodeSpec) -> None:
    if spec.name in OPCODES:
        raise ValueError(f"duplicate opcode {spec.name}")
    OPCODES[spec.name] = spec


def spec_of(name: str) -> OpcodeSpec:
    """Look up an opcode spec, raising KeyError with a helpful message."""
    try:
        return OPCODES[name]
    except KeyError:
        raise KeyError(f"unknown opcode: {name!r}") from None


# ---------------------------------------------------------------------------
# family builders
#
# AT&T operand order throughout: sources first, destination last.  Exec
# helpers use the convention helper(dst_value, src_value); emit templates
# are format strings over {d} (dst) and {s} (src) float expressions.

XMM_M64 = (Kind.XMM, Kind.M64)
XMM_M32 = (Kind.XMM, Kind.M32)
XMM_M128 = (Kind.XMM, Kind.M128)


def _sd_binop(helper: str, template: str):
    fn = getattr(scalar, helper)

    def ex(state, ops):
        src = state.read64(ops[0])
        dst = ops[1]
        state.write_xmm_lo(dst, fn(state.xmm_lo[dst.index], src))

    def em(ctx, ops):
        s = ctx.src_f64(ops[0])
        d = ctx.f64(ops[1].index)
        ctx.set_f64(ops[1].index, template.format(d=d, s=s))

    return ex, em


def _sd_unop(helper: str, template: str):
    fn = getattr(scalar, helper)

    def ex(state, ops):
        state.write_xmm_lo(ops[1], fn(state.read64(ops[0])))

    def em(ctx, ops):
        s = ctx.src_f64(ops[0])
        ctx.set_f64(ops[1].index, template.format(s=s))

    return ex, em


def _ss_binop(helper: str, template: str):
    fn = getattr(scalar, helper)

    def ex(state, ops):
        src = state.read32(ops[0])
        dst = ops[1]
        lo = state.xmm_lo[dst.index]
        state.write_xmm_lo(dst, (lo & HI32) | fn(lo & M32, src))

    def em(ctx, ops):
        s = ctx.src_f32(ops[0])
        d = ctx.f32(ops[1].index, 0)
        ctx.set_lane(ops[1].index, 0, template.format(d=d, s=s))

    return ex, em


def _ss_unop(helper: str, template: str):
    fn = getattr(scalar, helper)

    def ex(state, ops):
        dst = ops[1]
        lo = state.xmm_lo[dst.index]
        state.write_xmm_lo(dst, (lo & HI32) | fn(state.read32(ops[0])))

    def em(ctx, ops):
        s = ctx.src_f32(ops[0])
        ctx.set_lane(ops[1].index, 0, template.format(s=s))

    return ex, em


def _avx_sd_binop(helper: str, template: str):
    # v<op>sd s1, s2, d  computes  d.lo = op(s2.lo, s1.lo);  d.hi = s2.hi
    fn = getattr(scalar, helper)

    def ex(state, ops):
        s1 = state.read64(ops[0])
        s2 = ops[1]
        lo = fn(state.xmm_lo[s2.index], s1)
        state.write_xmm(ops[2], lo, state.xmm_hi[s2.index])

    def em(ctx, ops):
        s1 = ctx.src_f64(ops[0])
        s2 = ctx.f64(ops[1].index)
        d = ops[2].index
        t = ctx.temp()
        ctx.emit(f"{t} = {template.format(d=s2, s=s1)}")
        ctx.copy_half(d, "h", ops[1].index, "h")
        ctx.set_f64(d, t)

    return ex, em


def _avx_ss_binop(helper: str, template: str):
    fn = getattr(scalar, helper)

    def ex(state, ops):
        s1 = state.read32(ops[0])
        s2 = ops[1]
        lo = (state.xmm_lo[s2.index] & HI32) | fn(state.xmm_lo[s2.index] & M32, s1)
        state.write_xmm(ops[2], lo, state.xmm_hi[s2.index])

    def em(ctx, ops):
        s1 = ctx.src_f32(ops[0])
        s2l0 = ctx.f32(ops[1].index, 0)
        s2l1 = ctx.f32(ops[1].index, 1)
        d = ops[2].index
        t = ctx.temp()
        ctx.emit(f"{t} = {template.format(d=s2l0, s=s1)}")
        ctx.copy_half(d, "h", ops[1].index, "h")
        ctx.set_lanes(d, t, s2l1)

    return ex, em


def _fma_sd(order: str, bits_helper: str, float_helper: str,
            negate_product: bool = False, negate_addend: bool = False):
    # AT&T (o1, o2, d):
    #   132: d = fma(d, o1, o2)    213: d = fma(o2, d, o1)
    #   231: d = fma(o2, o1, d)
    fn = getattr(scalar, bits_helper)

    def args_of(o1, o2, d):
        if order == "132":
            return d, o1, o2
        if order == "213":
            return o2, d, o1
        return o2, o1, d

    def ex(state, ops):
        o1 = state.read64(ops[0])
        o2 = state.xmm_lo[ops[1].index]
        d = ops[2]
        a, b, c = args_of(o1, o2, state.xmm_lo[d.index])
        state.write_xmm_lo(d, fn(a, b, c))

    def em(ctx, ops):
        o1 = ctx.src_f64(ops[0])
        o2 = ctx.f64(ops[1].index)
        d = ctx.f64(ops[2].index)
        a, b, c = args_of(o1, o2, d)
        if negate_product:
            a = f"(-({a}))"
        if negate_addend:
            c = f"(-({c}))"
        ctx.set_f64(ops[2].index, f"{float_helper}({a}, {b}, {c})")

    return ex, em


def _fma_ss(order: str):
    fn = scalar.fma_f

    def args_of(o1, o2, d):
        if order == "132":
            return d, o1, o2
        if order == "213":
            return o2, d, o1
        return o2, o1, d

    def ex(state, ops):
        o1 = state.read32(ops[0])
        o2 = state.xmm_lo[ops[1].index] & M32
        d = ops[2]
        lo = state.xmm_lo[d.index]
        a, b, c = args_of(o1, o2, lo & M32)
        state.write_xmm_lo(d, (lo & HI32) | fn(a, b, c))

    def em(ctx, ops):
        o1 = ctx.src_f32(ops[0])
        o2 = ctx.f32(ops[1].index, 0)
        d = ctx.f32(ops[2].index, 0)
        a, b, c = args_of(o1, o2, d)
        ctx.set_lane(ops[2].index, 0, f"fma_fff({a}, {b}, {c})")

    return ex, em


def _pd_binop(helper: str, template: str):
    fn = getattr(scalar, helper)

    def ex(state, ops):
        slo, shi = state.read128(ops[0])
        dst = ops[1]
        state.write_xmm(
            dst,
            fn(state.xmm_lo[dst.index], slo),
            fn(state.xmm_hi[dst.index], shi),
        )

    def em(ctx, ops):
        slo, shi = ctx.src_f64_halves(ops[0])
        d = ops[1].index
        dlo, dhi = ctx.f64(d, "l"), ctx.f64(d, "h")
        tlo = ctx.temp()
        ctx.emit(f"{tlo} = {template.format(d=dlo, s=slo)}")
        ctx.set_f64(d, template.format(d=dhi, s=shi), part="h")
        ctx.set_f64(d, tlo, part="l")

    return ex, em


def _ps_binop(helper64: str, template: str):
    fn = getattr(scalar, helper64)

    def ex(state, ops):
        slo, shi = state.read128(ops[0])
        dst = ops[1]
        state.write_xmm(
            dst,
            fn(state.xmm_lo[dst.index], slo),
            fn(state.xmm_hi[dst.index], shi),
        )

    def em(ctx, ops):
        src = ctx.src_f32_lanes(ops[0])
        d = ops[1].index
        dst = [ctx.f32(d, lane) for lane in range(4)]
        temps = [ctx.temp() for _ in range(4)]
        for t, dv, sv in zip(temps, dst, src):
            ctx.emit(f"{t} = {template.format(d=dv, s=sv)}")
        ctx.set_lanes(d, temps[0], temps[1], part="l")
        ctx.set_lanes(d, temps[2], temps[3], part="h")

    return ex, em


def _bitwise128(pyop: str):
    # pyop is a Python operator template over (dst, src) bit patterns;
    # compiled once here into a lambda for the emulator.
    fn = eval(f"lambda d, s: {pyop.format(d='d', s='s')}")  # noqa: S307

    def ex(state, ops):
        slo, shi = state.read128(ops[0])
        dst = ops[1]
        state.write_xmm(dst, fn(state.xmm_lo[dst.index], slo),
                        fn(state.xmm_hi[dst.index], shi))

    def em(ctx, ops):
        slo, shi = ctx.src128_bits(ops[0])
        d = ops[1].index
        dlo, dhi = ctx.bits(d, "l"), ctx.bits(d, "h")
        t = ctx.temp()
        ctx.emit(f"{t} = {pyop.format(d=dlo, s=slo)}")
        ctx.set_bits(d, pyop.format(d=dhi, s=shi), part="h")
        ctx.set_bits(d, t, part="l")

    return ex, em


# ---------------------------------------------------------------------------
# scalar floating-point arithmetic

for _name, _helper, _tmpl, _lat in [
    ("addsd", "add_d", "{d} + {s}", 3),
    ("subsd", "sub_d", "{d} - {s}", 3),
    ("mulsd", "mul_d", "{d} * {s}", 5),
    ("divsd", "div_d", "div_dd({d}, {s})", 14),
    ("minsd", "min_d", "min_dd({d}, {s})", 3),
    ("maxsd", "max_d", "max_dd({d}, {s})", 3),
]:
    _ex, _em = _sd_binop(_helper, _tmpl)
    _register(OpcodeSpec(_name, (slot(*XMM_M64), slot(Kind.XMM, write=True)),
                         _lat, _ex, _em))

_ex, _em = _sd_unop("sqrt_d", "sqrt_dd({s})")
_register(OpcodeSpec("sqrtsd", (slot(*XMM_M64), slot(Kind.XMM, read=False, write=True)),
                     16, _ex, _em))

for _name, _helper, _tmpl, _lat in [
    ("addss", "add_f", "f32r({d} + {s})", 3),
    ("subss", "sub_f", "f32r({d} - {s})", 3),
    ("mulss", "mul_f", "f32r({d} * {s})", 5),
    ("divss", "div_f", "div_ff({d}, {s})", 11),
    ("minss", "min_f", "min_dd({d}, {s})", 3),
    ("maxss", "max_f", "max_dd({d}, {s})", 3),
]:
    _ex, _em = _ss_binop(_helper, _tmpl)
    _register(OpcodeSpec(_name, (slot(*XMM_M32), slot(Kind.XMM, write=True)),
                         _lat, _ex, _em))

_ex, _em = _ss_unop("sqrt_f", "sqrt_ff({s})")
_register(OpcodeSpec("sqrtss", (slot(*XMM_M32), slot(Kind.XMM, write=True)),
                     11, _ex, _em))

for _name, _helper, _tmpl, _lat in [
    ("vaddsd", "add_d", "{d} + {s}", 3),
    ("vsubsd", "sub_d", "{d} - {s}", 3),
    ("vmulsd", "mul_d", "{d} * {s}", 5),
    ("vdivsd", "div_d", "div_dd({d}, {s})", 14),
    ("vminsd", "min_d", "min_dd({d}, {s})", 3),
    ("vmaxsd", "max_d", "max_dd({d}, {s})", 3),
]:
    _ex, _em = _avx_sd_binop(_helper, _tmpl)
    _register(OpcodeSpec(
        _name,
        (slot(*XMM_M64), slot(Kind.XMM), slot(Kind.XMM, read=False, write=True)),
        _lat, _ex, _em, partial_dst=False))

for _name, _helper, _tmpl, _lat in [
    ("vaddss", "add_f", "f32r({d} + {s})", 3),
    ("vsubss", "sub_f", "f32r({d} - {s})", 3),
    ("vmulss", "mul_f", "f32r({d} * {s})", 5),
    ("vdivss", "div_f", "div_ff({d}, {s})", 11),
]:
    _ex, _em = _avx_ss_binop(_helper, _tmpl)
    _register(OpcodeSpec(
        _name,
        (slot(*XMM_M32), slot(Kind.XMM), slot(Kind.XMM, read=False, write=True)),
        _lat, _ex, _em, partial_dst=False))

for _order in ("132", "213", "231"):
    _ex, _em = _fma_sd(_order, "fma_d", "fma_ddd")
    _register(OpcodeSpec(
        f"vfmadd{_order}sd",
        (slot(*XMM_M64), slot(Kind.XMM), slot(Kind.XMM, write=True)),
        5, _ex, _em))
    _exs, _ems = _fma_ss(_order)
    _register(OpcodeSpec(
        f"vfmadd{_order}ss",
        (slot(*XMM_M32), slot(Kind.XMM), slot(Kind.XMM, write=True)),
        5, _exs, _ems))

_ex, _em = _fma_sd("213", "fnma_d", "fma_ddd", negate_product=True)
_register(OpcodeSpec(
    "vfnmadd213sd",
    (slot(*XMM_M64), slot(Kind.XMM), slot(Kind.XMM, write=True)),
    5, _ex, _em))
_ex, _em = _fma_sd("213", "fms_d", "fma_ddd", negate_addend=True)
_register(OpcodeSpec(
    "vfmsub213sd",
    (slot(*XMM_M64), slot(Kind.XMM), slot(Kind.XMM, write=True)),
    5, _ex, _em))

# ---------------------------------------------------------------------------
# packed floating-point arithmetic

for _name, _helper, _tmpl, _lat in [
    ("addpd", "add_d", "{d} + {s}", 3),
    ("subpd", "sub_d", "{d} - {s}", 3),
    ("mulpd", "mul_d", "{d} * {s}", 5),
    ("divpd", "div_d", "div_dd({d}, {s})", 14),
]:
    _ex, _em = _pd_binop(_helper, _tmpl)
    _register(OpcodeSpec(_name, (slot(*XMM_M128), slot(Kind.XMM, write=True)),
                         _lat, _ex, _em, partial_dst=False))

for _name, _helper, _tmpl, _lat in [
    ("addps", "add_ps64", "f32r({d} + {s})", 3),
    ("subps", "sub_ps64", "f32r({d} - {s})", 3),
    ("mulps", "mul_ps64", "f32r({d} * {s})", 5),
    ("divps", "div_ps64", "div_ff({d}, {s})", 11),
]:
    _ex, _em = _ps_binop(_helper, _tmpl)
    _register(OpcodeSpec(_name, (slot(*XMM_M128), slot(Kind.XMM, write=True)),
                         _lat, _ex, _em, partial_dst=False))

for _name, _tmpl in [
    ("andpd", "{d} & {s}"), ("orpd", "{d} | {s}"), ("xorpd", "{d} ^ {s}"),
    ("andnpd", f"({{d}} ^ 0x{M64:x}) & {{s}}"),
    ("andps", "{d} & {s}"), ("orps", "{d} | {s}"), ("xorps", "{d} ^ {s}"),
    ("pand", "{d} & {s}"), ("por", "{d} | {s}"), ("pxor", "{d} ^ {s}"),
]:
    _ex, _em = _bitwise128(_tmpl)
    _register(OpcodeSpec(_name, (slot(*XMM_M128), slot(Kind.XMM, write=True)),
                         1, _ex, _em, partial_dst=False))


# ---------------------------------------------------------------------------
# shuffles / unpacks


def _ex_unpcklpd(state, ops):
    slo, _ = state.read128(ops[0])
    dst = ops[1]
    state.write_xmm(dst, state.xmm_lo[dst.index], slo)


def _em_unpcklpd(ctx, ops):
    src, dst = ops
    if isinstance(src, Mem):
        ctx.set_bits(dst.index, f"mem.load8({ctx.addr(src)})", part="h")
    else:
        ctx.copy_half(dst.index, "h", src.index, "l")


_register(OpcodeSpec("unpcklpd", (slot(*XMM_M128), slot(Kind.XMM, write=True)),
                     1, _ex_unpcklpd, _em_unpcklpd))


def _ex_unpckhpd(state, ops):
    _, shi = state.read128(ops[0])
    dst = ops[1]
    state.write_xmm(dst, state.xmm_hi[dst.index], shi)


def _em_unpckhpd(ctx, ops):
    src, dst = ops
    ctx.copy_half(dst.index, "l", dst.index, "h")
    if isinstance(src, Mem):
        base = ctx.temp()
        ctx.emit(f"{base} = {ctx.addr(src)}")
        ctx.set_bits(dst.index, f"mem.load8({base} + 8)", part="h")
    elif src.index != dst.index:
        ctx.copy_half(dst.index, "h", src.index, "h")
    # src == dst: high half is unchanged.


_register(OpcodeSpec("unpckhpd", (slot(*XMM_M128), slot(Kind.XMM, write=True)),
                     1, _ex_unpckhpd, _em_unpckhpd))


def _ex_punpckldq(state, ops):
    slo, _ = state.read128(ops[0])
    dst = ops[1]
    dlo = state.xmm_lo[dst.index]
    new_lo = (dlo & M32) | ((slo & M32) << 32)
    new_hi = ((dlo >> 32) & M32) | (slo & HI32)
    state.write_xmm(dst, new_lo, new_hi)


def _em_punpckldq(ctx, ops):
    slo, _ = ctx.src128_bits(ops[0])
    d = ops[1].index
    dlo = ctx.bits(d, "l")
    t = ctx.temp()
    ctx.emit(f"{t} = {dlo}")
    ts = ctx.temp()
    ctx.emit(f"{ts} = {slo}")  # src may alias dst; snapshot before writes
    ctx.set_bits(d, f"({t} & 0x{M32:x}) | (({ts} & 0x{M32:x}) << 32)",
                 part="l")
    ctx.set_bits(d, f"(({t} >> 32) & 0x{M32:x}) | ({ts} & 0x{HI32:x})",
                 part="h")


_register(OpcodeSpec("punpckldq", (slot(*XMM_M128), slot(Kind.XMM, write=True)),
                     1, _ex_punpckldq, _em_punpckldq))


def _ex_pshufd(state, ops):
    imm = ops[0].value & 0xFF
    slo, shi = state.read128(ops[1])
    dwords = []
    for j in range(4):
        sel = (imm >> (2 * j)) & 3
        quad = slo if sel < 2 else shi
        dwords.append((quad >> (32 * (sel & 1))) & M32)
    state.write_xmm(ops[2], dwords[0] | (dwords[1] << 32),
                    dwords[2] | (dwords[3] << 32))


def _dword_expr(lo: str, hi: str, j: int) -> str:
    src = lo if j < 2 else hi
    shift = 32 * (j & 1)
    return f"(({src} >> {shift}) & 0x{M32:x})" if shift else f"({src} & 0x{M32:x})"


def _em_pshufd(ctx, ops):
    imm = ops[0].value & 0xFF
    slo, shi = ctx.src128_bits(ops[1])
    tl, th = ctx.temp(), ctx.temp()
    ctx.emit(f"{tl} = {slo}")
    ctx.emit(f"{th} = {shi}")
    sel = [(imm >> (2 * j)) & 3 for j in range(4)]
    exprs = [_dword_expr(tl, th, s) for s in sel]
    d = ops[2].index
    ctx.set_bits(d, f"{exprs[0]} | ({exprs[1]} << 32)", part="l")
    ctx.set_bits(d, f"{exprs[2]} | ({exprs[3]} << 32)", part="h")


_register(OpcodeSpec(
    "pshufd",
    (slot(Kind.IMM), slot(*XMM_M128), slot(Kind.XMM, read=False, write=True)),
    1, _ex_pshufd, _em_pshufd, partial_dst=False))


def _ex_pshuflw(state, ops):
    imm = ops[0].value & 0xFF
    slo, shi = state.read128(ops[1])
    words = [(slo >> (16 * j)) & 0xFFFF for j in range(4)]
    new_lo = 0
    for j in range(4):
        new_lo |= words[(imm >> (2 * j)) & 3] << (16 * j)
    state.write_xmm(ops[2], new_lo, shi)


def _em_pshuflw(ctx, ops):
    imm = ops[0].value & 0xFF
    slo, shi = ctx.src128_bits(ops[1])
    t = ctx.temp()
    ctx.emit(f"{t} = {slo}")
    th = ctx.temp()
    ctx.emit(f"{th} = {shi}")
    parts = []
    for j in range(4):
        sel = (imm >> (2 * j)) & 3
        expr = f"(({t} >> {16 * sel}) & 0xffff)" if sel else f"({t} & 0xffff)"
        parts.append(f"({expr} << {16 * j})" if j else expr)
    d = ops[2].index
    ctx.set_bits(d, " | ".join(parts), part="l")
    ctx.set_bits(d, th, part="h")


for _name in ("pshuflw", "vpshuflw"):
    _register(OpcodeSpec(
        _name,
        (slot(Kind.IMM), slot(*XMM_M128), slot(Kind.XMM, read=False, write=True)),
        1, _ex_pshuflw, _em_pshuflw, partial_dst=False))


# ---------------------------------------------------------------------------
# moves


def _ex_movsd(state, ops):
    src, dst = ops
    if isinstance(dst, Mem):
        state.mem.store8(state.addr(dst), state.xmm_lo[src.index])
    elif isinstance(src, Mem):
        state.write_xmm(dst, state.mem.load8(state.addr(src)), 0)
    else:
        state.write_xmm_lo(dst, state.xmm_lo[src.index])


def _em_movsd(ctx, ops):
    src, dst = ops
    if isinstance(dst, Mem):
        ctx.emit(f"mem.store8({ctx.addr(dst)}, {ctx.bits(src.index, 'l')})")
    elif isinstance(src, Mem):
        ctx.set_bits(dst.index, f"mem.load8({ctx.addr(src)})", part="l")
        ctx.set_bits(dst.index, "0", part="h")
    else:
        ctx.copy_half(dst.index, "l", src.index, "l")


def _not_mem_to_mem(ops):
    return not (isinstance(ops[0], Mem) and isinstance(ops[1], Mem))


_register(OpcodeSpec(
    "movsd",
    (slot(Kind.XMM, Kind.M64), slot(Kind.XMM, Kind.M64, read=False, write=True)),
    2, _ex_movsd, _em_movsd, flavor="move", valid_fn=_not_mem_to_mem))


def _ex_movss(state, ops):
    src, dst = ops
    if isinstance(dst, Mem):
        state.mem.store4(state.addr(dst), state.xmm_lo[src.index] & M32)
    elif isinstance(src, Mem):
        state.write_xmm(dst, state.mem.load4(state.addr(src)), 0)
    else:
        lo = state.xmm_lo[dst.index]
        state.write_xmm_lo(dst, (lo & HI32) | (state.xmm_lo[src.index] & M32))


def _em_movss(ctx, ops):
    src, dst = ops
    if isinstance(dst, Mem):
        if ctx.has_repr(src.index, "l", "s"):
            value = f"f2u({ctx.f32(src.index, 0)})"
        else:
            value = f"({ctx.bits(src.index, 'l')} & 0x{M32:x})"
        ctx.emit(f"mem.store4({ctx.addr(dst)}, {value})")
    elif isinstance(src, Mem):
        # Stay in bits so raw (non-FP) patterns copy exactly.
        ctx.set_bits(dst.index, f"mem.load4({ctx.addr(src)})", part="l")
        ctx.set_bits(dst.index, "0", part="h")
    elif ctx.has_repr(src.index, "l", "s"):
        ctx.set_lane(dst.index, 0, ctx.f32(src.index, 0))
    else:
        d = ctx.bits(dst.index, "l")
        s = ctx.bits(src.index, "l")
        ctx.set_bits(dst.index,
                     f"({d} & 0x{HI32:x}) | ({s} & 0x{M32:x})", part="l")


_register(OpcodeSpec(
    "movss",
    (slot(Kind.XMM, Kind.M32), slot(Kind.XMM, Kind.M32, read=False, write=True)),
    2, _ex_movss, _em_movss, flavor="move", valid_fn=_not_mem_to_mem))


def _ex_mov128(state, ops):
    src, dst = ops
    if isinstance(dst, Mem):
        state.mem.store16(state.addr(dst), state.xmm_lo[src.index],
                          state.xmm_hi[src.index])
    else:
        lo, hi = state.read128(src)
        state.write_xmm(dst, lo, hi)


def _em_mov128(ctx, ops):
    src, dst = ops
    if isinstance(dst, Mem):
        ctx.emit(
            f"mem.store16({ctx.addr(dst)}, {ctx.bits(src.index, 'l')}, "
            f"{ctx.bits(src.index, 'h')})"
        )
    elif isinstance(src, Mem):
        lo, hi = ctx.src128_bits(src)
        ctx.set_bits(dst.index, lo, part="l")
        ctx.set_bits(dst.index, hi, part="h")
    else:
        ctx.copy_half(dst.index, "l", src.index, "l")
        ctx.copy_half(dst.index, "h", src.index, "h")


for _name in ("movapd", "movaps", "movdqa", "movups", "movdqu"):
    _register(OpcodeSpec(
        _name,
        (slot(Kind.XMM, Kind.M128),
         slot(Kind.XMM, Kind.M128, read=False, write=True)),
        2, _ex_mov128, _em_mov128, flavor="move", valid_fn=_not_mem_to_mem,
        partial_dst=False))

_register(OpcodeSpec(
    "lddqu",
    (slot(Kind.M128), slot(Kind.XMM, read=False, write=True)),
    2, _ex_mov128, _em_mov128, flavor="move", partial_dst=False))


def _ex_movddup(state, ops):
    src = state.read64(ops[0])
    state.write_xmm(ops[1], src, src)


def _em_movddup(ctx, ops):
    src, dst = ops
    if isinstance(src, Mem):
        t = ctx.temp()
        ctx.emit(f"{t} = mem.load8({ctx.addr(src)})")
        ctx.set_bits(dst.index, t, part="l")
        ctx.set_bits(dst.index, t, part="h")
    else:
        ctx.copy_half(dst.index, "l", src.index, "l")
        ctx.copy_half(dst.index, "h", src.index, "l")


_register(OpcodeSpec(
    "movddup",
    (slot(*XMM_M64), slot(Kind.XMM, read=False, write=True)),
    1, _ex_movddup, _em_movddup, flavor="move", partial_dst=False))


def _ex_movq(state, ops):
    src, dst = ops
    if isinstance(dst, Xmm):
        # movq to xmm always zeroes the upper quad.
        state.write_xmm(dst, state.read64(src), 0)
    elif isinstance(dst, Reg64):
        state.write_gp64(dst, state.read64(src))
    else:  # Mem destination
        state.mem.store8(state.addr(dst), state.read64(src))


def _em_movq(ctx, ops):
    src, dst = ops
    if isinstance(dst, Xmm):
        if isinstance(src, Imm):
            from repro.x86.jit import float_literal

            literal = float_literal(scalar.u2d(src.value & M64))
            if literal is not None:
                ctx.set_f64(dst.index, literal, part="l")
            else:
                ctx.set_bits(dst.index, f"0x{src.value & M64:x}", part="l")
        elif isinstance(src, Xmm):
            ctx.copy_half(dst.index, "l", src.index, "l")
        else:
            ctx.set_bits(dst.index, ctx.src_bits64(src), part="l")
        ctx.set_bits(dst.index, "0", part="h")
    elif isinstance(dst, Reg64):
        ctx.set_gp(dst.index, ctx.src_bits64(src))
    else:
        ctx.emit(f"mem.store8({ctx.addr(dst)}, {ctx.src_bits64(src)})")


def _movq_valid(ops):
    src, dst = ops
    if isinstance(src, Mem) and isinstance(dst, Mem):
        return False
    if isinstance(src, Imm) and not isinstance(dst, Xmm):
        return False  # plain GP immediates use mov/movabs
    return isinstance(src, Xmm) or isinstance(dst, Xmm)


_register(OpcodeSpec(
    "movq",
    (slot(Kind.XMM, Kind.R64, Kind.M64, Kind.IMM),
     slot(Kind.XMM, Kind.R64, Kind.M64, read=False, write=True)),
    2, _ex_movq, _em_movq, flavor="move", valid_fn=_movq_valid,
    partial_dst=False))


def _ex_movd(state, ops):
    src, dst = ops
    if isinstance(dst, Xmm):
        state.write_xmm(dst, state.read32(src), 0)
    else:
        state.write_gp32(dst, state.read32(src))


def _em_movd(ctx, ops):
    src, dst = ops
    if isinstance(dst, Xmm):
        # Stay in bits so raw (non-FP) patterns copy exactly.
        ctx.set_bits(dst.index, ctx.src_bits32(src), part="l")
        ctx.set_bits(dst.index, "0", part="h")
    else:
        ctx.set_gp(dst.index, ctx.src_bits32(src))


def _movd_valid(ops):
    src, dst = ops
    return isinstance(src, Xmm) != isinstance(dst, Xmm)


_register(OpcodeSpec(
    "movd",
    (slot(Kind.XMM, Kind.R32, Kind.IMM), slot(Kind.XMM, Kind.R32, read=False, write=True)),
    2, _ex_movd, _em_movd, flavor="move", valid_fn=_movd_valid,
    partial_dst=False))


def _ex_mov(state, ops):
    src, dst = ops
    if isinstance(dst, Reg64):
        state.write_gp64(dst, state.read64(src))
    elif isinstance(dst, Reg32):
        state.write_gp32(dst, state.read32(src))
    elif dst.size == 8:
        state.mem.store8(state.addr(dst), state.read64(src))
    else:
        state.mem.store4(state.addr(dst), state.read32(src))


def _em_mov(ctx, ops):
    src, dst = ops
    if isinstance(dst, Reg64):
        ctx.set_gp(dst.index, ctx.src_bits64(src))
    elif isinstance(dst, Reg32):
        ctx.set_gp(dst.index, ctx.src_bits32(src))
    elif dst.size == 8:
        ctx.emit(f"mem.store8({ctx.addr(dst)}, {ctx.src_bits64(src)})")
    else:
        ctx.emit(f"mem.store4({ctx.addr(dst)}, {ctx.src_bits32(src)})")


def _mov_valid(ops):
    src, dst = ops
    if isinstance(src, Mem) and isinstance(dst, Mem):
        return False
    if isinstance(src, Mem) and isinstance(dst, (Reg64, Reg32)):
        need = 8 if isinstance(dst, Reg64) else 4
        return src.size == need
    if isinstance(dst, Mem) and isinstance(src, (Reg64, Reg32)):
        need = 8 if isinstance(src, Reg64) else 4
        return dst.size == need
    if isinstance(src, (Reg64, Reg32)) and isinstance(dst, (Reg64, Reg32)):
        return type(src) is type(dst)
    return not (isinstance(src, Imm) and isinstance(dst, Mem))


for _movname in ("mov", "movabs"):
    _register(OpcodeSpec(
        _movname,
        (slot(Kind.R64, Kind.R32, Kind.IMM, Kind.M64, Kind.M32),
         slot(Kind.R64, Kind.R32, Kind.M64, Kind.M32, read=False, write=True)),
        1, _ex_mov, _em_mov, flavor="move", valid_fn=_mov_valid))


def _ex_lea(state, ops):
    state.write_gp64(ops[1], state.addr(ops[0]))


def _em_lea(ctx, ops):
    ctx.set_gp(ops[1].index, ctx.addr(ops[0]))


_register(OpcodeSpec(
    "lea",
    (slot(Kind.M64, read=False), slot(Kind.R64, read=False, write=True)),
    1, _ex_lea, _em_lea, flavor="int"))


# ---------------------------------------------------------------------------
# GP ALU


def _gp_binop(expr64: str, expr32: str):
    fn64 = eval(f"lambda a, b: {expr64.format(a='a', b='b')}")  # noqa: S307
    fn32 = eval(f"lambda a, b: {expr32.format(a='a', b='b')}")  # noqa: S307

    def ex(state, ops):
        src, dst = ops
        if isinstance(dst, Reg64):
            state.write_gp64(dst, fn64(state.gp[dst.index], state.read64(src)))
        else:
            state.write_gp32(dst, fn32(state.gp[dst.index] & M32,
                                       state.read32(src)))

    def em(ctx, ops):
        src, dst = ops
        d = ctx.gp(dst.index)
        if isinstance(dst, Reg64):
            ctx.set_gp(dst.index,
                       expr64.format(a=d, b=ctx.src_bits64(src)))
        else:
            ctx.set_gp(dst.index,
                       expr32.format(a=f"({d} & 0x{M32:x})",
                                     b=ctx.src_bits32(src)))

    return ex, em


def _gp_slots():
    return (slot(Kind.R64, Kind.R32, Kind.IMM, Kind.M64, Kind.M32),
            slot(Kind.R64, Kind.R32, write=True))


def _gp_valid(ops):
    src, dst = ops
    if isinstance(src, Mem):
        need = 8 if isinstance(dst, Reg64) else 4
        return src.size == need
    if isinstance(src, (Reg64, Reg32)):
        return type(src) is type(dst)
    return True


for _name, _e64, _e32, _lat in [
    ("add", f"({{a}} + {{b}}) & 0x{M64:x}", f"({{a}} + {{b}}) & 0x{M32:x}", 1),
    ("sub", f"({{a}} - {{b}}) & 0x{M64:x}", f"({{a}} - {{b}}) & 0x{M32:x}", 1),
    ("imul", f"({{a}} * {{b}}) & 0x{M64:x}", f"({{a}} * {{b}}) & 0x{M32:x}", 3),
    ("and", "{a} & {b}", "{a} & {b}", 1),
    ("or", "{a} | {b}", "{a} | {b}", 1),
    ("xor", "{a} ^ {b}", "{a} ^ {b}", 1),
]:
    _ex, _em = _gp_binop(_e64, _e32)
    _register(OpcodeSpec(_name, _gp_slots(), _lat, _ex, _em, flavor="int",
                         valid_fn=_gp_valid))


def _ex_not(state, ops):
    dst = ops[0]
    if isinstance(dst, Reg64):
        state.write_gp64(dst, state.gp[dst.index] ^ M64)
    else:
        state.write_gp32(dst, (state.gp[dst.index] & M32) ^ M32)


def _em_not(ctx, ops):
    dst = ops[0]
    d = ctx.gp(dst.index)
    mask = M64 if isinstance(dst, Reg64) else M32
    ctx.set_gp(dst.index, f"({d} ^ 0x{mask:x}) & 0x{mask:x}")


_register(OpcodeSpec("not", (slot(Kind.R64, Kind.R32, write=True),),
                     1, _ex_not, _em_not, flavor="int"))


def _ex_neg(state, ops):
    dst = ops[0]
    if isinstance(dst, Reg64):
        state.write_gp64(dst, -state.gp[dst.index])
    else:
        state.write_gp32(dst, -(state.gp[dst.index] & M32))


def _em_neg(ctx, ops):
    dst = ops[0]
    d = ctx.gp(dst.index)
    mask = M64 if isinstance(dst, Reg64) else M32
    ctx.set_gp(dst.index, f"(-{d}) & 0x{mask:x}")


_register(OpcodeSpec("neg", (slot(Kind.R64, Kind.R32, write=True),),
                     1, _ex_neg, _em_neg, flavor="int"))


def _shift(kind: str):
    def ex(state, ops):
        imm, dst = ops
        if isinstance(dst, Reg64):
            n = imm.value & 63
            a = state.gp[dst.index]
            width = 64
        else:
            n = imm.value & 31
            a = state.gp[dst.index] & M32
            width = 32
        if kind == "shl":
            res = (a << n) & ((1 << width) - 1)
        elif kind == "shr":
            res = a >> n
        else:  # sar
            sign = a >> (width - 1)
            signed = a - (1 << width) if sign else a
            res = (signed >> n) & ((1 << width) - 1)
        if isinstance(dst, Reg64):
            state.write_gp64(dst, res)
        else:
            state.write_gp32(dst, res)

    def em(ctx, ops):
        imm, dst = ops
        d = ctx.gp(dst.index)
        if isinstance(dst, Reg64):
            n, mask, width = imm.value & 63, M64, 64
        else:
            n, mask, width = imm.value & 31, M32, 32
        a = d if isinstance(dst, Reg64) else f"({d} & 0x{M32:x})"
        if kind == "shl":
            ctx.set_gp(dst.index, f"({a} << {n}) & 0x{mask:x}")
        elif kind == "shr":
            ctx.set_gp(dst.index, f"{a} >> {n}")
        else:
            t = ctx.temp()
            ctx.emit(f"{t} = {a}")
            ctx.set_gp(
                dst.index,
                f"(({t} - (({t} >> {width - 1}) << {width})) >> {n})"
                f" & 0x{mask:x}",
            )

    return ex, em


for _name in ("shl", "shr", "sar"):
    _ex, _em = _shift(_name)
    _register(OpcodeSpec(_name, (slot(Kind.IMM), slot(Kind.R64, Kind.R32, write=True)),
                         1, _ex, _em, flavor="int"))


# ---------------------------------------------------------------------------
# comparisons, flags, and conditional moves


def _ex_cmp(state, ops):
    b_op, a_op = ops  # AT&T: cmp b, a  sets flags from a - b
    if isinstance(a_op, Reg64):
        flags = scalar.cmp_flags(state.gp[a_op.index], state.read64(b_op), 64)
    else:
        flags = scalar.cmp_flags(state.gp[a_op.index] & M32, state.read32(b_op), 32)
    zf, cf, sf, of, pf = flags
    state.set_flags(zf, cf, sf, of, pf)


def _em_cmp(ctx, ops):
    b_op, a_op = ops
    if isinstance(a_op, Reg64):
        a, b, w = ctx.gp(a_op.index), ctx.src_bits64(b_op), 64
    else:
        a, b, w = f"({ctx.gp(a_op.index)} & 0x{M32:x})", ctx.src_bits32(b_op), 32
    ctx.emit(f"fz, fc, fs, fo, fp = cmp_flags({a}, {b}, {w})")


_register(OpcodeSpec(
    "cmp",
    (slot(Kind.R64, Kind.R32, Kind.IMM, Kind.M64, Kind.M32),
     slot(Kind.R64, Kind.R32)),
    1, _ex_cmp, _em_cmp, flavor="cmp", valid_fn=_gp_valid, writes_flags=True))


def _ex_test(state, ops):
    b_op, a_op = ops
    if isinstance(a_op, Reg64):
        flags = scalar.test_flags(state.gp[a_op.index], state.read64(b_op), 64)
    else:
        flags = scalar.test_flags(state.gp[a_op.index] & M32, state.read32(b_op), 32)
    zf, cf, sf, of, pf = flags
    state.set_flags(zf, cf, sf, of, pf)


def _em_test(ctx, ops):
    b_op, a_op = ops
    if isinstance(a_op, Reg64):
        a, b, w = ctx.gp(a_op.index), ctx.src_bits64(b_op), 64
    else:
        a, b, w = f"({ctx.gp(a_op.index)} & 0x{M32:x})", ctx.src_bits32(b_op), 32
    ctx.emit(f"fz, fc, fs, fo, fp = test_flags({a}, {b}, {w})")


_register(OpcodeSpec(
    "test",
    (slot(Kind.R64, Kind.R32, Kind.IMM), slot(Kind.R64, Kind.R32)),
    1, _ex_test, _em_test, flavor="cmp", valid_fn=_gp_valid, writes_flags=True))


def _ex_ucomisd(state, ops):
    zf, pf, cf = scalar.ucomi_d(state.xmm_lo[ops[1].index], state.read64(ops[0]))
    state.set_flags(zf, cf, 0, 0, pf)


def _em_ucomisd(ctx, ops):
    s = ctx.src_f64(ops[0])
    d = ctx.f64(ops[1].index)
    ctx.emit(f"fz, fp, fc = ucomi_dd({d}, {s})")
    ctx.emit("fs = fo = 0")


_register(OpcodeSpec("ucomisd", (slot(*XMM_M64), slot(Kind.XMM)),
                     2, _ex_ucomisd, _em_ucomisd, flavor="cmp",
                     writes_flags=True))


def _ex_ucomiss(state, ops):
    zf, pf, cf = scalar.ucomi_f(state.xmm_lo[ops[1].index] & M32,
                                state.read32(ops[0]))
    state.set_flags(zf, cf, 0, 0, pf)


def _em_ucomiss(ctx, ops):
    s = ctx.src_f32(ops[0])
    d = ctx.f32(ops[1].index, 0)
    ctx.emit(f"fz, fp, fc = ucomi_dd({d}, {s})")
    ctx.emit("fs = fo = 0")


_register(OpcodeSpec("ucomiss", (slot(*XMM_M32), slot(Kind.XMM)),
                     2, _ex_ucomiss, _em_ucomiss, flavor="cmp",
                     writes_flags=True))


_CONDITIONS = {
    "e": ("flags['zf']", "fz"),
    "ne": ("not flags['zf']", "not fz"),
    "b": ("flags['cf']", "fc"),
    "be": ("flags['cf'] or flags['zf']", "(fc or fz)"),
    "a": ("not (flags['cf'] or flags['zf'])", "not (fc or fz)"),
    "ae": ("not flags['cf']", "not fc"),
    "s": ("flags['sf']", "fs"),
    "ns": ("not flags['sf']", "not fs"),
    "l": ("flags['sf'] != flags['of']", "fs != fo"),
    "ge": ("flags['sf'] == flags['of']", "fs == fo"),
    "le": ("flags['sf'] != flags['of'] or flags['zf']", "(fs != fo or fz)"),
    "g": ("not (flags['sf'] != flags['of'] or flags['zf'])",
          "not (fs != fo or fz)"),
}


def _cmov(cc: str):
    cond_state, cond_jit = _CONDITIONS[cc]
    cond_fn = eval(f"lambda flags: {cond_state}")  # noqa: S307

    def ex(state, ops):
        src, dst = ops
        if cond_fn(state.flags):
            if isinstance(dst, Reg64):
                state.write_gp64(dst, state.read64(src))
            else:
                state.write_gp32(dst, state.read32(src))
        elif isinstance(dst, Reg32):
            # x86-64: a 32-bit cmov zero-extends even when not taken.
            state.write_gp32(dst, state.gp[dst.index])

    def em(ctx, ops):
        src, dst = ops
        d = ctx.gp(dst.index)
        if isinstance(dst, Reg64):
            ctx.set_gp(dst.index,
                       f"{ctx.src_bits64(src)} if {cond_jit} else {d}")
        else:
            ctx.set_gp(dst.index,
                       f"{ctx.src_bits32(src)} if {cond_jit} "
                       f"else ({d} & 0x{M32:x})")

    return ex, em


for _cc in _CONDITIONS:
    _ex, _em = _cmov(_cc)
    _register(OpcodeSpec(
        f"cmov{_cc}",
        (slot(Kind.R64, Kind.R32, Kind.M64, Kind.M32),
         slot(Kind.R64, Kind.R32, write=True)),
        1, _ex, _em, flavor="int", valid_fn=_gp_valid, reads_flags=True))


# ---------------------------------------------------------------------------
# conversions


def _ex_cvtsd2ss(state, ops):
    dst = ops[1]
    lo = state.xmm_lo[dst.index]
    state.write_xmm_lo(dst, (lo & HI32) | scalar.cvtsd2ss(state.read64(ops[0])))


def _em_cvtsd2ss(ctx, ops):
    s = ctx.src_f64(ops[0])
    ctx.set_lane(ops[1].index, 0, f"cvtsd2ss_f({s})")


_register(OpcodeSpec("cvtsd2ss", (slot(*XMM_M64), slot(Kind.XMM, write=True)),
                     4, _ex_cvtsd2ss, _em_cvtsd2ss))


def _ex_cvtss2sd(state, ops):
    state.write_xmm_lo(ops[1], scalar.cvtss2sd(state.read32(ops[0])))


def _em_cvtss2sd(ctx, ops):
    # A widened single already *is* the exact double value (NaNs take
    # the canonicalizing helper path, matching the emulator).
    ctx.set_f64(ops[1].index, f"cvtss2sd_f({ctx.src_f32(ops[0])})")


_register(OpcodeSpec("cvtss2sd", (slot(*XMM_M32), slot(Kind.XMM, write=True)),
                     2, _ex_cvtss2sd, _em_cvtss2sd))


def _ex_cvttsd2si(state, ops):
    src = state.read64(ops[0])
    dst = ops[1]
    if isinstance(dst, Reg64):
        state.write_gp64(dst, scalar.cvttsd2si64(src))
    else:
        state.write_gp32(dst, scalar.cvttsd2si32(src))


def _em_cvttsd2si(ctx, ops):
    s = ctx.src_f64(ops[0])
    dst = ops[1]
    helper = "cvttsd2si64_f" if isinstance(dst, Reg64) else "cvttsd2si32_f"
    ctx.set_gp(dst.index, f"{helper}({s})")


_register(OpcodeSpec("cvttsd2si",
                     (slot(*XMM_M64), slot(Kind.R64, Kind.R32, read=False, write=True)),
                     4, _ex_cvttsd2si, _em_cvttsd2si))


def _ex_cvtsd2si(state, ops):
    state.write_gp64(ops[1], scalar.cvtsd2si64(state.read64(ops[0])))


def _em_cvtsd2si(ctx, ops):
    ctx.set_gp(ops[1].index, f"cvtsd2si64_f({ctx.src_f64(ops[0])})")


_register(OpcodeSpec("cvtsd2si",
                     (slot(*XMM_M64), slot(Kind.R64, read=False, write=True)),
                     4, _ex_cvtsd2si, _em_cvtsd2si))


def _ex_cvttss2si(state, ops):
    src = state.read32(ops[0])
    dst = ops[1]
    if isinstance(dst, Reg64):
        state.write_gp64(dst, scalar.cvttsd2si64(scalar.cvtss2sd(src)))
    else:
        state.write_gp32(dst, scalar.cvttss2si32(src))


def _em_cvttss2si(ctx, ops):
    s = ctx.src_f32(ops[0])
    dst = ops[1]
    helper = "cvttsd2si64_f" if isinstance(dst, Reg64) else "cvttsd2si32_f"
    ctx.set_gp(dst.index, f"{helper}({s})")


_register(OpcodeSpec("cvttss2si",
                     (slot(*XMM_M32), slot(Kind.R64, Kind.R32, read=False, write=True)),
                     4, _ex_cvttss2si, _em_cvttss2si))


def _ex_cvtsi2sd(state, ops):
    src = ops[0]
    if isinstance(src, Reg64) or (isinstance(src, Mem) and src.size == 8):
        value = scalar.cvtsi2sd64(state.read64(src))
    else:
        value = scalar.cvtsi2sd32(state.read32(src))
    state.write_xmm_lo(ops[1], value)


def _em_cvtsi2sd(ctx, ops):
    src = ops[0]
    wide = isinstance(src, Reg64) or (isinstance(src, Mem) and src.size == 8)
    if wide:
        ctx.set_f64(ops[1].index, f"float(sint64({ctx.src_bits64(src)}))")
    else:
        ctx.set_f64(ops[1].index, f"float(sint32({ctx.src_bits32(src)}))")


_register(OpcodeSpec(
    "cvtsi2sd",
    # Memory sources are 64-bit only: AT&T text cannot distinguish the
    # 32/64-bit memory forms without a size suffix.
    (slot(Kind.R64, Kind.R32, Kind.M64), slot(Kind.XMM, write=True)),
    4, _ex_cvtsi2sd, _em_cvtsi2sd))


def _ex_cvtsi2ss(state, ops):
    src = ops[0]
    dst = ops[1]
    if isinstance(src, Reg64) or (isinstance(src, Mem) and src.size == 8):
        value = scalar.cvtsi2ss64(state.read64(src))
    else:
        value = scalar.cvtsi2ss32(state.read32(src))
    lo = state.xmm_lo[dst.index]
    state.write_xmm_lo(dst, (lo & HI32) | value)


def _em_cvtsi2ss(ctx, ops):
    src = ops[0]
    wide = isinstance(src, Reg64) or (isinstance(src, Mem) and src.size == 8)
    if wide:
        expr = f"f32_from_i64({ctx.src_bits64(src)})"
    else:
        expr = f"f32_from_i32({ctx.src_bits32(src)})"
    ctx.set_lane(ops[1].index, 0, expr)


_register(OpcodeSpec(
    "cvtsi2ss",
    (slot(Kind.R64, Kind.R32, Kind.M64), slot(Kind.XMM, write=True)),
    4, _ex_cvtsi2ss, _em_cvtsi2ss))


def _ex_cvtps2pd(state, ops):
    # Widen the two low singles of src into two doubles.
    if isinstance(ops[0], Mem):
        addr = state.addr(ops[0])
        lanes = state.mem.load8(addr)
    else:
        lanes = state.xmm_lo[ops[0].index]
    lo = scalar.cvtss2sd(lanes & M32)
    hi = scalar.cvtss2sd((lanes >> 32) & M32)
    state.write_xmm(ops[1], lo, hi)


def _em_cvtps2pd(ctx, ops):
    src = ops[0]
    if isinstance(src, Mem):
        t = ctx.temp()
        ctx.emit(f"{t} = mem.load8({ctx.addr(src)})")
        lane0 = f"u2f32({t} & 0x{M32:x})"
        lane1 = f"u2f32({t} >> 32)"
    else:
        lane0 = ctx.f32(src.index, 0)
        lane1 = ctx.f32(src.index, 1)
    d = ops[1].index
    tl = ctx.temp()
    ctx.emit(f"{tl} = cvtss2sd_f({lane0})")  # snapshot: src may alias dst
    th = ctx.temp()
    ctx.emit(f"{th} = cvtss2sd_f({lane1})")
    ctx.set_f64(d, tl, part="l")
    ctx.set_f64(d, th, part="h")


_register(OpcodeSpec(
    "cvtps2pd", (slot(*XMM_M64), slot(Kind.XMM, read=False, write=True)),
    2, _ex_cvtps2pd, _em_cvtps2pd, partial_dst=False))


def _ex_cvtpd2ps(state, ops):
    # Narrow both doubles of src into the two low singles; upper zeroed.
    slo, shi = state.read128(ops[0])
    lanes = scalar.cvtsd2ss(slo) | (scalar.cvtsd2ss(shi) << 32)
    state.write_xmm(ops[1], lanes, 0)


def _em_cvtpd2ps(ctx, ops):
    src = ops[0]
    if isinstance(src, Mem):
        base = ctx.temp()
        ctx.emit(f"{base} = {ctx.addr(src)}")
        lo = f"u2d(mem.load8({base}))"
        hi = f"u2d(mem.load8({base} + 8))"
    else:
        lo = ctx.f64(src.index, "l")
        hi = ctx.f64(src.index, "h")
    d = ops[1].index
    tl, th = ctx.temp(), ctx.temp()
    ctx.emit(f"{tl} = cvtsd2ss_f({lo})")
    ctx.emit(f"{th} = cvtsd2ss_f({hi})")
    ctx.set_lanes(d, tl, th, part="l")
    ctx.set_bits(d, "0", part="h")


_register(OpcodeSpec(
    "cvtpd2ps", (slot(*XMM_M128), slot(Kind.XMM, read=False, write=True)),
    4, _ex_cvtpd2ps, _em_cvtpd2ps, partial_dst=False))


def _ex_roundsd(state, ops):
    imm = ops[0].value & 3
    src = scalar.u2d(state.read64(ops[1]))
    state.write_xmm_lo(ops[2], scalar.d2u_c(scalar.roundsd_f(src, imm)))


def _em_roundsd(ctx, ops):
    imm = ops[0].value & 3
    s = ctx.src_f64(ops[1])
    ctx.set_f64(ops[2].index, f"roundsd_f({s}, {imm})")


_register(OpcodeSpec(
    "roundsd",
    (slot(Kind.IMM), slot(*XMM_M64), slot(Kind.XMM, write=True)),
    6, _ex_roundsd, _em_roundsd))


def _ex_shufpd(state, ops):
    imm = ops[0].value
    slo, shi = state.read128(ops[1])
    dst = ops[2]
    dlo, dhi = state.xmm_lo[dst.index], state.xmm_hi[dst.index]
    new_lo = dhi if imm & 1 else dlo
    new_hi = shi if imm & 2 else slo
    state.write_xmm(dst, new_lo, new_hi)


def _em_shufpd(ctx, ops):
    imm = ops[0].value
    slo, shi = ctx.src128_bits(ops[1])
    d = ops[2].index
    dlo, dhi = ctx.bits(d, "l"), ctx.bits(d, "h")
    tl, th = ctx.temp(), ctx.temp()
    ctx.emit(f"{tl} = {dhi if imm & 1 else dlo}")
    ctx.emit(f"{th} = {shi if imm & 2 else slo}")
    ctx.set_bits(d, tl, part="l")
    ctx.set_bits(d, th, part="h")


_register(OpcodeSpec(
    "shufpd",
    (slot(Kind.IMM), slot(*XMM_M128), slot(Kind.XMM, write=True)),
    1, _ex_shufpd, _em_shufpd, partial_dst=False))


def _ex_haddpd(state, ops):
    # dst = [dst.lo + dst.hi, src.lo + src.hi]
    slo, shi = state.read128(ops[0])
    dst = ops[1]
    state.write_xmm(
        dst,
        scalar.add_d(state.xmm_lo[dst.index], state.xmm_hi[dst.index]),
        scalar.add_d(slo, shi),
    )


def _em_haddpd(ctx, ops):
    slo, shi = ctx.src_f64_halves(ops[0])
    d = ops[1].index
    dlo, dhi = ctx.f64(d, "l"), ctx.f64(d, "h")
    t = ctx.temp()
    ctx.emit(f"{t} = {dlo} + {dhi}")
    ctx.set_f64(d, f"{slo} + {shi}", part="h")
    ctx.set_f64(d, t, part="l")


_register(OpcodeSpec(
    "haddpd", (slot(*XMM_M128), slot(Kind.XMM, write=True)),
    5, _ex_haddpd, _em_haddpd, partial_dst=False))


def _ex_haddps(state, ops):
    # dst lanes = [d0+d1, d2+d3, s0+s1, s2+s3]
    slo, shi = state.read128(ops[0])
    dst = ops[1]
    dlo, dhi = state.xmm_lo[dst.index], state.xmm_hi[dst.index]

    def pair_sum(quad):
        return scalar.add_f(quad & M32, (quad >> 32) & M32)

    new_lo = pair_sum(dlo) | (pair_sum(dhi) << 32)
    new_hi = pair_sum(slo) | (pair_sum(shi) << 32)
    state.write_xmm(dst, new_lo, new_hi)


def _em_haddps(ctx, ops):
    src = ctx.src_f32_lanes(ops[0])
    d = ops[1].index
    dst = [ctx.f32(d, lane) for lane in range(4)]
    temps = [ctx.temp() for _ in range(4)]
    ctx.emit(f"{temps[0]} = f32r({dst[0]} + {dst[1]})")
    ctx.emit(f"{temps[1]} = f32r({dst[2]} + {dst[3]})")
    ctx.emit(f"{temps[2]} = f32r({src[0]} + {src[1]})")
    ctx.emit(f"{temps[3]} = f32r({src[2]} + {src[3]})")
    ctx.set_lanes(d, temps[0], temps[1], part="l")
    ctx.set_lanes(d, temps[2], temps[3], part="h")


_register(OpcodeSpec(
    "haddps", (slot(*XMM_M128), slot(Kind.XMM, write=True)),
    5, _ex_haddps, _em_haddps, partial_dst=False))


# SSE compare predicates (CMPSD/CMPPD imm8): mask of all-ones on true.
_CMP_PREDICATES = {
    0: lambda a, b: a == b,                       # eq (ordered)
    1: lambda a, b: a < b,                        # lt
    2: lambda a, b: a <= b,                       # le
    3: lambda a, b: a != a or b != b,             # unord
    4: lambda a, b: not (a == b),                 # neq (unordered counts)
    5: lambda a, b: not (a < b),                  # nlt
    6: lambda a, b: not (a <= b),                 # nle
    7: lambda a, b: a == a and b == b,            # ord
}


def _ex_cmpsd(state, ops):
    pred = _CMP_PREDICATES[ops[0].value & 7]
    src = scalar.u2d(state.read64(ops[1]))
    dst = ops[2]
    a = scalar.u2d(state.xmm_lo[dst.index])
    state.write_xmm_lo(dst, M64 if pred(a, src) else 0)


def _em_cmpsd(ctx, ops):
    pred = ops[0].value & 7
    s = ctx.src_f64(ops[1])
    d = ctx.f64(ops[2].index)
    exprs = {
        0: f"{d} == {s}",
        1: f"{d} < {s}",
        2: f"{d} <= {s}",
        3: f"({d} != {d} or {s} != {s})",
        4: f"not ({d} == {s})",
        5: f"not ({d} < {s})",
        6: f"not ({d} <= {s})",
        7: f"({d} == {d} and {s} == {s})",
    }
    ctx.set_bits(ops[2].index,
                 f"0x{M64:x} if {exprs[pred]} else 0", part="l")


_register(OpcodeSpec(
    "cmpsd",
    (slot(Kind.IMM), slot(*XMM_M64), slot(Kind.XMM, write=True)),
    3, _ex_cmpsd, _em_cmpsd))


def _ex_movlhps(state, ops):
    # dst.hi = src.lo; dst.lo unchanged.
    src, dst = ops
    state.write_xmm(dst, state.xmm_lo[dst.index], state.xmm_lo[src.index])


def _em_movlhps(ctx, ops):
    src, dst = ops
    ctx.copy_half(dst.index, "h", src.index, "l")


_register(OpcodeSpec(
    "movlhps", (slot(Kind.XMM), slot(Kind.XMM, write=True)),
    1, _ex_movlhps, _em_movlhps, flavor="move"))


def _ex_movhlps(state, ops):
    # dst.lo = src.hi; dst.hi unchanged.
    src, dst = ops
    state.write_xmm(dst, state.xmm_hi[src.index], state.xmm_hi[dst.index])


def _em_movhlps(ctx, ops):
    src, dst = ops
    ctx.copy_half(dst.index, "l", src.index, "h")


_register(OpcodeSpec(
    "movhlps", (slot(Kind.XMM), slot(Kind.XMM, write=True)),
    1, _ex_movhlps, _em_movhlps, flavor="move"))


# ---------------------------------------------------------------------------
# nop (the UNUSED token)


def _ex_nop(state, ops):
    pass


def _em_nop(ctx, ops):
    pass


_register(OpcodeSpec("nop", (), 0, _ex_nop, _em_nop, flavor="nop",
                     partial_dst=False))


def instruction_latency(name: str, ops: Tuple[Operand, ...]) -> int:
    """Latency model: table latency plus a memory penalty for accesses.

    ``lea`` is exempt: it computes an address without touching memory.
    """
    spec = spec_of(name)
    if name != "lea" and any(isinstance(op, Mem) for op in ops):
        return spec.latency + MEM_EXTRA_LATENCY
    return spec.latency
