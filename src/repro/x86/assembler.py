"""AT&T-syntax assembler for the x86-64 subset.

Accepts the dialect the paper's listings use::

    mulss 8(rdi), xmm1
    vaddss xmm0, xmm2, xmm5
    movl $0.5, eax          # 32-bit float immediate
    movq $0x3ff0000000000000, xmm2   # pseudo: movabs+movq fused

Conveniences:

* ``%`` register prefixes are optional.
* Floating-point immediates: ``$1.5d`` (double bits), ``$1.5f`` (single
  bits), or a bare ``$1.5`` whose width is inferred from the destination.
* Size-suffixed opcode aliases (``movl``, ``movq`` on GP operands,
  ``addq`` …) resolve to the width-polymorphic opcodes in the registry.
* Comments start with ``#``; blank lines are ignored.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.fp.ieee754 import double_to_bits, single_to_bits
from repro.x86.instruction import Instruction
from repro.x86.opcodes import OPCODES, spec_of
from repro.x86.operands import Imm, Kind, Mem, Operand, Reg32, Reg64, Xmm
from repro.x86.program import Program
from repro.x86.registers import GP32_INDEX, GP64_INDEX, XMM_INDEX


class AsmError(ValueError):
    """Raised on any parse or operand-resolution failure."""


@dataclass
class _RawMem:
    """A memory operand before its access size is known."""

    base: int
    disp: int
    index: Optional[int]
    scale: int


@dataclass
class _FloatImm:
    """A float immediate before its width is known."""

    value: float
    explicit: Optional[str]  # 'd', 'f', or None


_MEM_RE = re.compile(
    r"^(?P<disp>-?(?:0x[0-9a-fA-F]+|\d+))?"
    r"\((?P<base>%?\w+)"
    r"(?:,(?P<index>%?\w+),(?P<scale>[1248]))?\)$"
)

_FLOAT_RE = re.compile(
    r"^[-+]?(\d+\.\d*|\.\d+|\d+)([eE][-+]?\d+)?(?P<suffix>[df])?$"
)

# Opcodes whose suffixed forms appear in compiler output / the paper.
_SUFFIXABLE = {
    "mov", "add", "sub", "and", "or", "xor", "imul", "cmp", "test",
    "not", "neg", "shl", "shr", "sar", "lea",
}


def _parse_int(text: str) -> int:
    return int(text, 0)


def _gp_index(name: str) -> Optional[Tuple[str, int]]:
    name = name.lstrip("%")
    if name in GP64_INDEX:
        return "r64", GP64_INDEX[name]
    if name in GP32_INDEX:
        return "r32", GP32_INDEX[name]
    if name in XMM_INDEX:
        return "xmm", XMM_INDEX[name]
    return None


def _parse_operand(token: str):
    token = token.strip()
    if not token:
        raise AsmError("empty operand")
    if token.startswith("$"):
        body = token[1:]
        m = _FLOAT_RE.match(body)
        if m and ("." in body or "e" in body.lower() or m.group("suffix")):
            suffix = m.group("suffix")
            literal = body[:-1] if suffix else body
            return _FloatImm(float(literal), suffix)
        try:
            return Imm(_parse_int(body))
        except ValueError as exc:
            raise AsmError(f"bad immediate: {token!r}") from exc
    m = _MEM_RE.match(token)
    if m:
        base = _gp_index(m.group("base"))
        if base is None or base[0] != "r64":
            raise AsmError(f"bad base register in {token!r}")
        index = None
        if m.group("index"):
            idx = _gp_index(m.group("index"))
            if idx is None or idx[0] != "r64":
                raise AsmError(f"bad index register in {token!r}")
            index = idx[1]
        disp = _parse_int(m.group("disp")) if m.group("disp") else 0
        scale = int(m.group("scale")) if m.group("scale") else 1
        return _RawMem(base[1], disp, index, scale)
    reg = _gp_index(token)
    if reg is not None:
        kind, idx = reg
        if kind == "r64":
            return Reg64(idx)
        if kind == "r32":
            return Reg32(idx)
        return Xmm(idx)
    # Bare float literal (paper style: "movl 0.5, eax").
    m = _FLOAT_RE.match(token)
    if m and ("." in token or m.group("suffix")):
        suffix = m.group("suffix")
        literal = token[:-1] if suffix else token
        return _FloatImm(float(literal), suffix)
    raise AsmError(f"cannot parse operand: {token!r}")


def _split_operands(text: str) -> List[str]:
    """Split on commas not inside parentheses."""
    parts, depth, current = [], 0, []
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    if current:
        parts.append("".join(current))
    return [p.strip() for p in parts if p.strip()]


def _mem_sizes_for(spec, slot_index: int, suffix_size: Optional[int],
                   companions: List[Operand]) -> List[int]:
    """Candidate sizes for a memory operand, most likely first."""
    allowed = []
    kinds = spec.slots[slot_index].kinds
    for kind, size in ((Kind.M64, 8), (Kind.M32, 4), (Kind.M128, 16)):
        if kind in kinds:
            allowed.append(size)
    if suffix_size in allowed:
        allowed.remove(suffix_size)
        allowed.insert(0, suffix_size)
    for comp in companions:
        hint = 8 if isinstance(comp, Reg64) else 4 if isinstance(comp, Reg32) else None
        if hint in allowed:
            allowed.remove(hint)
            allowed.insert(0, hint)
            break
    return allowed


def _float_imm_width(spec, raw_ops: List[object], suffix_size: Optional[int]) -> int:
    """Infer the width (4 or 8 bytes) of an un-suffixed float immediate."""
    if suffix_size in (4, 8):
        return suffix_size
    for op in raw_ops:
        if isinstance(op, Reg32):
            return 4
        if isinstance(op, Reg64):
            return 8
    # XMM destination: default to double, the common case in our kernels.
    return 8


def parse_instruction(line: str) -> Instruction:
    """Parse one assembly line into an :class:`Instruction`."""
    line = line.split("#", 1)[0].strip()
    if not line:
        raise AsmError("empty line")
    parts = line.split(None, 1)
    mnemonic = parts[0].lower()
    operand_text = parts[1] if len(parts) > 1 else ""
    raw_ops = [_parse_operand(tok) for tok in _split_operands(operand_text)]

    suffix_size: Optional[int] = None
    name = mnemonic
    if name not in OPCODES:
        base, last = name[:-1], name[-1]
        if base in _SUFFIXABLE and last in ("q", "l"):
            name = base
            suffix_size = 8 if last == "q" else 4
        else:
            raise AsmError(f"unknown opcode: {mnemonic!r}")
    elif name == "movq" and not any(isinstance(op, Xmm) for op in raw_ops):
        # "movq" over pure GP/mem operands is the GP move with a q suffix.
        name, suffix_size = "mov", 8

    spec = spec_of(name)
    if len(raw_ops) != len(spec.slots):
        raise AsmError(
            f"{name} expects {len(spec.slots)} operands, got {len(raw_ops)}"
        )

    resolved: List[Operand] = []
    for i, op in enumerate(raw_ops):
        if isinstance(op, _FloatImm):
            if op.explicit == "f":
                width = 4
            elif op.explicit == "d":
                width = 8
            else:
                width = _float_imm_width(spec, raw_ops, suffix_size)
            if width == 4:
                bits = single_to_bits(op.value)
                note = f"{op.value!r}f"
            else:
                bits = double_to_bits(op.value)
                note = f"{op.value!r}d"
            resolved.append(Imm(bits, note=note))
        elif isinstance(op, _RawMem):
            companions = [o for o in raw_ops if isinstance(o, (Reg64, Reg32))]
            placed = None
            for size in _mem_sizes_for(spec, i, suffix_size, companions):
                candidate = Mem(size, op.base, op.disp, op.index, op.scale)
                trial = resolved + [candidate] + raw_ops[i + 1 :]
                if all(not isinstance(t, (_RawMem, _FloatImm)) for t in trial):
                    if spec.accepts(tuple(trial)):
                        placed = candidate
                        break
                else:
                    placed = candidate
                    break
            if placed is None:
                sizes = _mem_sizes_for(spec, i, suffix_size, companions)
                if not sizes:
                    raise AsmError(f"{name} does not take a memory operand here")
                placed = Mem(sizes[0], op.base, op.disp, op.index, op.scale)
            resolved.append(placed)
        else:
            resolved.append(op)

    try:
        return Instruction(name, tuple(resolved))
    except ValueError as exc:
        raise AsmError(f"{line!r}: {exc}") from exc


def assemble(text: str, total_slots: int = 0) -> Program:
    """Assemble multi-line text into a :class:`Program`."""
    instructions = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        stripped = raw.split("#", 1)[0].strip()
        if not stripped:
            continue
        try:
            instructions.append(parse_instruction(stripped))
        except AsmError as exc:
            raise AsmError(f"line {lineno}: {exc}") from exc
    return Program.from_instructions(instructions, total_slots)


def disassemble(program: Program, include_unused: bool = False) -> str:
    """Render a program back to assembly text."""
    return program.to_text(include_unused=include_unused)
