"""Command-line front-end: optimize / validate / run assembly files.

Makes the library usable without writing Python::

    python -m repro optimize kernel.s --live-out xmm0 \\
        --range xmm0=-3.14:3.14 --eta 1e9 --proposals 20000 \\
        --restarts 16 --jobs 4
    python -m repro validate target.s rewrite.s --live-out xmm0 \\
        --range xmm0=-1:1 --eta 1e6
    python -m repro run kernel.s --set xmm0=2.5 --live-out xmm0
    python -m repro trace kernel.s --set xmm0=2.5

Ranges and inputs use ``location=value`` / ``location=lo:hi`` syntax with
the location grammar of :mod:`repro.x86.locations`.
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import Dict, List, Tuple

from repro.core import (
    CostConfig,
    known_backends,
    SearchConfig,
    Stoke,
    StokeSpec,
    run_restarts,
)
from repro.validation import ValidationConfig, Validator
from repro.x86 import assemble
from repro.x86.testcase import TestCase, uniform_testcases


def _parse_ranges(items: List[str]) -> Dict[str, Tuple[float, float]]:
    ranges = {}
    for item in items:
        loc, _, span = item.partition("=")
        lo, _, hi = span.partition(":")
        if not hi:
            raise SystemExit(f"--range needs loc=lo:hi, got {item!r}")
        ranges[loc] = (float(lo), float(hi))
    return ranges


def _parse_values(items: List[str]) -> Dict[str, float]:
    values = {}
    for item in items:
        loc, _, value = item.partition("=")
        if not value:
            raise SystemExit(f"--set needs loc=value, got {item!r}")
        values[loc] = float(value)
    return values


def _positive_int(value: str) -> int:
    number = int(value)
    if number < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return number


def _nonnegative_int(value: str) -> int:
    number = int(value)
    if number < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return number


def _load_program(path: str):
    with open(path) as fh:
        return assemble(fh.read())


def cmd_optimize(args) -> int:
    target = _load_program(args.program)
    ranges = _parse_ranges(args.range)
    tests = uniform_testcases(random.Random(args.seed), args.testcases,
                              ranges)
    stoke = Stoke(target, tests, args.live_out,
                  CostConfig(eta=args.eta, k=args.k),
                  backend=args.backend)
    config = SearchConfig(proposals=args.proposals, seed=args.seed)
    restarts = run_restarts(stoke, config, chains=args.restarts,
                            jobs=args.jobs,
                            spec=StokeSpec.from_stoke(stoke))
    result = restarts.best
    print(f"# target: {target.loc} LOC / {target.latency} cycles")
    print(f"# search: {args.restarts} chain(s) x {args.proposals} "
          f"proposals, {restarts.jobs} worker(s)")
    for chain in restarts.chains:
        print(f"#   chain seed={chain.seed}: best cost {chain.best_cost:g}, "
              f"{chain.stats.proposals_per_second:,.0f} proposals/s, "
              f"accept rate {chain.stats.acceptance_rate:.3f}, "
              f"correct={'yes' if chain.found_correct else 'no'}")
    if result.best_correct is None:
        print("# no correct rewrite found")
        return 1
    if sum(chain.stats.accepted for chain in restarts.chains) == 0:
        # The chains never moved: the "rewrite" is the unmodified target
        # (or the init), so the search found nothing.  Emit it for
        # inspection but fail the invocation.
        print("# search accepted zero proposals (no movement; "
              "result is the initial program)")
        sys.stdout.write(result.best_correct.to_text())
        return 1
    print(f"# rewrite: {result.best_correct.loc} LOC / "
          f"{result.best_correct_latency} cycles "
          f"({result.speedup():.2f}x, eta={args.eta:g})")
    sys.stdout.write(result.best_correct.to_text())
    return 0


def cmd_validate(args) -> int:
    target = _load_program(args.target)
    rewrite = _load_program(args.rewrite)
    ranges = _parse_ranges(args.range)
    midpoints = {loc: (lo + hi) / 2 for loc, (lo, hi) in ranges.items()}
    validator = Validator(target, rewrite, args.live_out, ranges,
                          lambda: TestCase.from_values(midpoints),
                          backend=args.backend)
    result = validator.validate(ValidationConfig(
        eta=args.eta, max_proposals=args.proposals, seed=args.seed))
    print(f"max error: {result.max_err:.6g} ULPs "
          f"({result.samples} samples, converged={result.converged})")
    print(f"verdict: {'PASS' if result.passed else 'FAIL'} "
          f"against eta={args.eta:g}")
    if result.argmax is not None:
        print(f"worst input: {result.argmax!r}")
    return 0 if result.passed else 1


def _verify_setup(args):
    """Resolve programs + environment for ``repro verify``.

    Returns (target, rewrite, live_outs, ranges, validation_ranges,
    memory, concrete_gp, base_testcase_factory).
    """
    from repro.x86.memory import Memory

    if args.kernel:
        if args.programs and len(args.programs) > 1:
            raise SystemExit("--kernel takes at most one program file "
                             "(the rewrite)")
        rewrite_path = args.programs[0] if args.programs else None
        if args.kernel == "delta":
            from repro.kernels.aek import vector as V

            spec = V.delta_kernel()
            rewrite = _load_program(rewrite_path) if rewrite_path \
                else V.delta_rewrite()
            ranges = dict(spec.ranges)
            ranges.update(V.delta_mem_ranges())
            return (spec.program, rewrite, list(spec.live_outs), ranges,
                    dict(spec.ranges), Memory(V.aek_segments()),
                    dict(V.CONCRETE_GP_INDICES), spec.base_testcase)
        from repro.kernels.libimf import LIBIMF_KERNELS

        if args.kernel not in LIBIMF_KERNELS:
            known = ", ".join(sorted(LIBIMF_KERNELS) | {"delta"})
            raise SystemExit(f"unknown --kernel {args.kernel!r} "
                             f"(known: {known})")
        factory = LIBIMF_KERNELS[args.kernel]
        spec = factory()
        if rewrite_path:
            rewrite = _load_program(rewrite_path)
        elif args.degree is not None:
            rewrite = factory(args.degree).program
        else:
            rewrite = spec.program
        ranges = dict(spec.ranges)
        return (spec.program, rewrite, list(spec.live_outs), ranges,
                dict(ranges), None, None, spec.base_testcase)

    if len(args.programs) != 2:
        raise SystemExit("verify needs TARGET and REWRITE files "
                         "(or --kernel NAME)")
    if not args.live_out or not args.range:
        raise SystemExit("verify needs --live-out and --range for "
                         "file-based programs")
    target = _load_program(args.programs[0])
    rewrite = _load_program(args.programs[1])
    ranges = _parse_ranges(args.range)
    midpoints = {loc: (lo + hi) / 2 for loc, (lo, hi) in ranges.items()}
    return (target, rewrite, args.live_out, ranges, dict(ranges), None,
            None, lambda: TestCase.from_values(midpoints))


def cmd_verify(args) -> int:
    from repro.core import serialize as S
    from repro.verify import checker
    from repro.verify.bnb import BnBConfig, BnBVerifier, seeds_from_validation
    from repro.verify.certificate import Certificate

    (target, rewrite, live_outs, ranges, val_ranges, memory,
     concrete_gp, base_testcase) = _verify_setup(args)

    if args.check_cert:
        try:
            cert = Certificate.load(args.check_cert)
        except OSError as exc:
            print(f"cannot read certificate: {exc}")
            return 2
        except (ValueError, KeyError, TypeError) as exc:
            print(f"certificate is malformed: {type(exc).__name__}: {exc}")
            return 2
        report = checker.check(cert, target, rewrite, memory=memory,
                               concrete_gp=concrete_gp)
        status = "VALID" if report.ok else "REJECTED"
        print(f"certificate: {status} ({report.leaves_checked} leaves, "
              f"rechecked bound {report.rechecked_bound:.6g} ULPs, "
              f"{report.stats.concrete_bit_ops} concrete / "
              f"{report.stats.widened_bit_ops} widened bit ops)")
        for failure in report.failures:
            print(f"  - {failure}")
        return 0 if report.ok else 1

    if args.smt and args.domain != "relational":
        print("--smt requires --domain relational (the SMT tier cross-"
              "checks paired expression DAGs)")
        return 2

    verifier = BnBVerifier(target, rewrite, live_outs, ranges,
                           memory=memory, concrete_gp=concrete_gp,
                           profile=args.profile_transfers,
                           domain=args.domain)
    quiet = args.json

    seeds = ()
    if args.seed_proposals:
        validator = Validator(target, rewrite, live_outs, val_ranges,
                              base_testcase)
        validation = validator.validate(ValidationConfig(
            max_proposals=args.seed_proposals, seed=args.seed))
        seeds = seeds_from_validation(validation, verifier.dims)
        if not quiet:
            print(f"# validator: max error {validation.max_err:.6g} ULPs "
                  f"({validation.samples} samples, "
                  f"converged={validation.converged}) -> "
                  f"{len(seeds)} counterexample seed(s)")

    config = BnBConfig(max_boxes=args.budget, deadline=args.deadline,
                       target_gap=args.target_gap, jobs=args.jobs,
                       seeds=seeds, engine=args.engine)
    result = verifier.run(config)
    if not quiet:
        print(f"certified bound: {result.bound_ulps:.6g} ULPs "
              f"(complete={result.complete}, domain={result.domain})")
        if result.per_location_bounds:
            parts = ", ".join(f"{loc} <= {b:.6g}"
                              for loc, b in
                              sorted(result.per_location_bounds.items()))
            print(f"# per-live-out bounds: {parts}")
        print(f"# lower bound {result.lower_bound:.6g} ULPs, "
              f"gap {result.gap:.3g}, termination: {result.termination}")
        print(f"# {result.boxes_explored} boxes explored, "
              f"{result.boxes_pruned} pruned, {len(result.leaves)} leaves, "
              f"frontier peak {result.max_frontier}, "
              f"{result.rounds} rounds x {result.jobs} worker(s), "
              f"{result.wall_time:.2f}s "
              f"({result.boxes_per_second:,.0f} boxes/s, "
              f"engine={config.engine})")
        print(f"# bit ops: {result.stats.concrete_bit_ops} concrete, "
              f"{result.stats.widened_bit_ops} widened")
        if args.profile_transfers and result.stats.op_seconds:
            total = sum(result.stats.op_seconds.values()) or 1.0
            top = sorted(result.stats.op_seconds.items(),
                         key=lambda kv: -kv[1])[:8]
            parts = ", ".join(f"{op} {secs / total:.0%}"
                              for op, secs in top)
            print(f"# transfer time by opcode: {parts}")

    exhaustive = None
    if args.exhaustive_bits:
        from repro.verify import exhaustive_check

        exact = exhaustive_check(target, rewrite, live_outs, val_ranges,
                                 base_testcase,
                                 bits_per_input=args.exhaustive_bits,
                                 backend=args.backend)
        exhaustive = {
            "max_ulps": S.enc_float(exact.max_ulps),
            "cases_checked": exact.cases_checked,
            "bits_per_input": args.exhaustive_bits,
            "backend": args.backend,
            "dominated": bool(exact.max_ulps <= result.bound_ulps),
        }
        if not quiet:
            print(f"# exhaustive ({args.exhaustive_bits} bits/input, "
                  f"{args.backend}): max {exact.max_ulps:.6g} ULPs over "
                  f"{exact.cases_checked:,} cases, "
                  f"dominated={exhaustive['dominated']}")

    smt_outcome = None
    if args.smt:
        from repro.verify.relational import smt_available, smt_cross_check

        if not smt_available():
            smt_outcome = {"status": "unknown", "mode": "none",
                           "detail": "z3 is not installed",
                           "counterexample": {}}
            if not quiet:
                print("# smt: skipped (z3 is not installed)")
        else:
            outcome = smt_cross_check(verifier.transfer, result.bound_ulps)
            smt_outcome = outcome.to_dict()
            if not quiet:
                print(f"# smt: {outcome.status} ({outcome.mode}) "
                      f"{outcome.detail}")

    if args.emit_cert:
        cert = verifier.certificate(result, config=config)
        cert.save(args.emit_cert)
        if not quiet:
            print(f"# certificate: {args.emit_cert} "
                  f"({cert.size_bytes:,} bytes, {len(cert.leaves)} leaves)")
    if args.json:
        payload = {
            "engine": config.engine,
            "domain": result.domain,
            "bound_ulps": S.enc_float(result.bound_ulps),
            "lower_bound": S.enc_float(result.lower_bound),
            "gap": S.enc_float(result.gap),
            "complete": result.complete,
            "termination": result.termination,
            "boxes_explored": result.boxes_explored,
            "boxes_pruned": result.boxes_pruned,
            "leaves": len(result.leaves),
            "rounds": result.rounds,
            "max_frontier": result.max_frontier,
            "jobs": result.jobs,
            "seeds_covered": result.seeds_covered,
            "unsupported": result.unsupported,
            "per_location": {loc: S.enc_float(v)
                             for loc, v in result.per_location.items()},
            "per_location_bounds": {
                loc: S.enc_float(v)
                for loc, v in result.per_location_bounds.items()},
            "wall_time": result.wall_time,
            "boxes_per_second": result.boxes_per_second,
            "stats": {
                "concrete_bit_ops": result.stats.concrete_bit_ops,
                "widened_bit_ops": result.stats.widened_bit_ops,
                "transfer_seconds": result.stats.transfer_seconds,
                "op_counts": dict(result.stats.op_counts),
                "op_seconds": dict(result.stats.op_seconds),
            },
        }
        if exhaustive is not None:
            payload["exhaustive"] = exhaustive
        if smt_outcome is not None:
            payload["smt"] = smt_outcome
        _json_out(payload)
    return 0 if result.complete else 1


# ---------------------------------------------------------------------------
# Campaign service commands


def _parse_etas(text: str) -> List[float]:
    try:
        return [float(tok) for tok in text.split(",") if tok != ""]
    except ValueError:
        raise SystemExit(f"--etas needs a comma-separated float list, "
                         f"got {text!r}")


def _json_out(payload) -> None:
    import json

    print(json.dumps(payload, indent=2, sort_keys=True))


def _resolve_job_prefix(ledger, prefix: str) -> str:
    matches = ledger.resolve_prefix(prefix)
    if not matches:
        raise SystemExit(f"no job matches {prefix!r}")
    if len(matches) > 1:
        # Refuse to guess; show the collisions so the caller can extend
        # the prefix by a character or two.
        listing = "\n".join(f"  {digest}" for digest in matches)
        raise SystemExit(f"{prefix!r} is ambiguous "
                         f"({len(matches)} jobs match):\n{listing}")
    return matches[0]


def _store_or_url(args) -> None:
    if (args.store is None) == (args.url is None):
        raise SystemExit("exactly one of --store and --url is required")


def cmd_submit(args) -> int:
    from repro.service import resolve_kernel
    from repro.service.campaign import CampaignSpec, submit_campaign

    _store_or_url(args)
    for name in args.kernel:
        try:
            resolve_kernel(name)
        except KeyError as exc:
            raise SystemExit(str(exc.args[0]) if exc.args else
                             f"unknown kernel {name!r}")
    etas = _parse_etas(args.etas)
    kernels = tuple((name, eta) for name in args.kernel for eta in etas)
    stages = tuple(args.stages.split(",")) if args.stages else \
        ("search", "select", "validate", "verify")
    if args.catalog and "catalog" not in stages:
        stages = stages + ("catalog",)
    spec = CampaignSpec(
        kernels=kernels, chains=args.chains, proposals=args.proposals,
        testcases=args.testcases, seed=args.seed, stages=stages,
        validate_proposals=args.validate_proposals,
        verify_budget=args.verify_budget, backend=args.backend,
        verify_domain=args.verify_domain)
    if args.url:
        from repro.service.api import ServiceClient

        out = ServiceClient(args.url).submit_campaign(
            spec, name=args.name, max_attempts=args.max_attempts)
        cid, jobs = out["campaign"], out["jobs"]
        counts = {"jobs": len(jobs), "new": out["new"],
                  "reused": out["reused"]}
    else:
        from repro.service import Ledger

        with Ledger(args.store) as ledger:
            cid, counts = submit_campaign(ledger, spec, name=args.name,
                                          max_attempts=args.max_attempts)
            jobs = [{"digest": digest, "role": role}
                    for digest, role in ledger.campaign_roles(cid)]
    if args.json:
        _json_out({"campaign": cid, "name": args.name, **counts,
                   "jobs": jobs})
    else:
        print(f"campaign {cid}: {counts['new']} new job(s), "
              f"{counts['reused']} reused")
        for job in jobs:
            print(f"  {job['digest'][:12]}  {job['role']}")
    return 0


def cmd_serve(args) -> int:
    from repro.service import Ledger, Scheduler

    def narrate(digest, event, info):
        if args.json or args.quiet:
            return
        label = digest[:12] if digest else "-"
        detail = " ".join(f"{k}={v}" for k, v in sorted(info.items()))
        print(f"[{event}] {label} {detail}".rstrip(), flush=True)

    server = None
    on_event = None if args.quiet else narrate
    if args.http is not None:
        from repro.service.api import ApiServer

        server = ApiServer(args.store, host=args.host,
                           port=args.http).start()
        if not args.json:
            print(f"serving HTTP on {server.url}", flush=True)

        def on_event(digest, event, info):  # noqa: F811 - http variant
            server.bus.publish({"digest": digest, "event": event,
                                "info": info})
            narrate(digest, event, info)

    try:
        with Ledger(args.store) as ledger:
            scheduler = Scheduler(
                ledger, jobs=args.jobs,
                checkpoint_every=args.checkpoint_every,
                checkpoint_rounds=args.checkpoint_rounds,
                checkpoint_seconds=args.checkpoint_seconds,
                retry_base=args.retry_base,
                task_timeout=args.task_timeout,
                lease=args.lease,
                dispatch=args.dispatch != "none",
                on_event=on_event)
            # An HTTP server exists to accept future submissions; idle
            # is not exit unless the operator said otherwise.
            until_idle = not args.wait and args.http is None
            counts = scheduler.run(until_idle=until_idle,
                                   poll_interval=args.poll_interval)
    finally:
        if server is not None:
            server.stop()
    if args.json:
        _json_out({"counts": counts})
    else:
        print(f"idle: {counts['done']} done, {counts['failed']} failed, "
              f"{counts['pending']} pending, {counts['running']} running")
    return 0 if counts["failed"] == 0 else 1


def cmd_agent(args) -> int:
    from repro.service.agent import run_agent

    _store_or_url(args)

    def narrate(digest, event, info):
        if args.json:
            return
        label = digest[:12] if digest else "-"
        detail = " ".join(f"{k}={v}" for k, v in sorted(info.items()))
        print(f"[{event}] {label} {detail}".rstrip(), flush=True)

    counts = run_agent(
        url=args.url, store=args.store, workdir=args.workdir,
        jobs=args.jobs, lease=args.lease,
        checkpoint_every=args.checkpoint_every,
        checkpoint_rounds=args.checkpoint_rounds,
        checkpoint_seconds=args.checkpoint_seconds,
        retry_base=args.retry_base, task_timeout=args.task_timeout,
        on_event=None if args.quiet else narrate,
        until_idle=not args.wait, poll_interval=args.poll_interval)
    if args.json:
        _json_out({"counts": counts})
    else:
        print(f"agent done: {counts['done']} done, "
              f"{counts['failed']} failed, {counts['pending']} pending, "
              f"{counts['running']} running")
    return 0 if counts["failed"] == 0 else 1


def _status_remote(args) -> int:
    from repro.service.api import ServiceClient

    client = ServiceClient(args.url)
    doc = client.status()
    campaigns = []
    for row in doc["campaigns"]:
        if args.campaign and row["campaign"] != args.campaign:
            continue
        detail = client.campaign(row["campaign"])
        campaigns.append({"campaign": row["campaign"],
                          "name": row["name"],
                          "counts": detail["counts"],
                          "jobs": detail["jobs"]})
    totals = doc["totals"]
    if args.json:
        _json_out({"totals": totals, "campaigns": campaigns})
        return 0
    print(f"jobs: {totals['done']} done, {totals['failed']} failed, "
          f"{totals['pending']} pending, {totals['running']} running")
    for campaign in campaigns:
        counts = campaign["counts"]
        print(f"campaign {campaign['campaign']} ({campaign['name']}): "
              f"{counts['done']}/{sum(counts.values())} done")
        for job in campaign["jobs"]:
            line = (f"  {job['digest'][:12]}  {job['state']:<8} "
                    f"{job['role']}")
            if job["error"]:
                line += f"  [{job['error']}]"
            print(line)
    return 0


def cmd_status(args) -> int:
    from repro.service import Ledger

    _store_or_url(args)
    if args.url:
        return _status_remote(args)
    with Ledger(args.store) as ledger:
        campaigns = []
        for row in ledger.campaigns():
            if args.campaign and row["id"] != args.campaign:
                continue
            jobs = [{"digest": digest, "role": role,
                     **{k: ledger.job(digest)[k]
                        for k in ("kind", "state", "attempts", "error")}}
                    for digest, role in ledger.campaign_roles(row["id"])]
            campaigns.append({"campaign": row["id"], "name": row["name"],
                              "counts": ledger.counts(campaign=row["id"]),
                              "jobs": jobs})
        totals = ledger.counts()
    if args.json:
        _json_out({"totals": totals, "campaigns": campaigns})
        return 0
    print(f"jobs: {totals['done']} done, {totals['failed']} failed, "
          f"{totals['pending']} pending, {totals['running']} running")
    for campaign in campaigns:
        counts = campaign["counts"]
        print(f"campaign {campaign['campaign']} ({campaign['name']}): "
              f"{counts['done']}/{sum(counts.values())} done")
        for job in campaign["jobs"]:
            line = (f"  {job['digest'][:12]}  {job['state']:<8} "
                    f"{job['role']}")
            if job["error"]:
                line += f"  [{job['error']}]"
            print(line)
    return 0


def _artifacts_remote(args) -> int:
    import os

    from repro.service.api import ServiceClient

    client = ServiceClient(args.url)
    doc = client.job(args.job)
    digest, named = doc["digest"], doc["artifacts"]
    if args.name:
        if args.name not in named:
            raise SystemExit(
                f"job {digest[:12]} has no artifact {args.name!r} "
                f"(has: {', '.join(sorted(named)) or 'none'})")
        sys.stdout.write(
            client.artifact(digest, args.name).decode("utf-8"))
        return 0
    if args.out:
        os.makedirs(args.out, exist_ok=True)
        for name in named:
            with open(os.path.join(args.out, name), "wb") as fh:
                fh.write(client.artifact(digest, name))
    if args.json:
        _json_out({"job": digest, "artifacts": named})
    else:
        print(f"job {digest}")
        for name, content_digest in named.items():
            print(f"  {content_digest[:12]}  {name}")
    return 0


def cmd_artifacts(args) -> int:
    import os

    from repro.service import Ledger

    _store_or_url(args)
    if args.url:
        return _artifacts_remote(args)
    with Ledger(args.store) as ledger:
        digest = _resolve_job_prefix(ledger, args.job)
        named = ledger.artifacts_of(digest)
        if args.name:
            if args.name not in named:
                raise SystemExit(
                    f"job {digest[:12]} has no artifact {args.name!r} "
                    f"(has: {', '.join(sorted(named)) or 'none'})")
            sys.stdout.write(
                ledger.get_artifact(named[args.name]).decode("utf-8"))
            return 0
        if args.out:
            os.makedirs(args.out, exist_ok=True)
            for name, content_digest in named.items():
                with open(os.path.join(args.out, name), "wb") as fh:
                    fh.write(ledger.get_artifact(content_digest))
        if args.json:
            _json_out({"job": digest, "artifacts": named,
                       "telemetry": ledger.telemetry_of(digest)})
        else:
            print(f"job {digest}")
            for name, content_digest in named.items():
                print(f"  {content_digest[:12]}  {name}")
    return 0


# ---------------------------------------------------------------------------
# Catalog commands


def _only_campaign(ledger) -> str:
    campaigns = ledger.campaigns()
    if len(campaigns) == 1:
        return campaigns[0]["id"]
    if not campaigns:
        raise SystemExit("store has no campaigns")
    listing = "\n".join(f"  {row['id']}  {row['name']}"
                        for row in campaigns)
    raise SystemExit(f"store has {len(campaigns)} campaigns; pick one "
                     f"with --campaign:\n{listing}")


def _local_catalog(ledger, campaign):
    from repro.catalog import load_catalog_bytes, resolve_catalog

    digest = resolve_catalog(ledger, campaign)
    if digest is None:
        where = f"campaign {campaign}" if campaign else "this store"
        raise SystemExit(f"no catalog for {where} "
                         f"(run `repro catalog build` first)")
    return digest, load_catalog_bytes(ledger.get_artifact(digest))


def _print_entries(entries) -> None:
    print(f"{'id':<24} {'error_ulps':>12} {'latency':>8} "
          f"{'speedup':>8}  frontier  certificate")
    from repro.core.serialize import dec_float

    for entry in entries:
        cert = entry.get("certificate")
        print(f"{entry['id']:<24} {dec_float(entry['error_ulps']):>12.6g} "
              f"{entry['latency']:>8} {dec_float(entry['speedup']):>8.2f}"
              f"  {'yes' if entry['on_frontier'] else 'no ':<8}"
              f"  {cert[:12] if cert else '-'}")


def cmd_catalog_build(args) -> int:
    from repro.catalog import (CatalogError, build_catalog,
                               catalog_summary, measure_catalog,
                               save_catalog, store_catalog,
                               verify_catalog)

    _store_or_url(args)
    if args.url:
        for flag in ("check", "measure", "out"):
            if getattr(args, flag):
                raise SystemExit(f"--{flag} needs direct store access; "
                                 f"use --store")
        from repro.service.api import ServiceClient

        if not args.campaign:
            raise SystemExit("--url builds need an explicit --campaign")
        out = ServiceClient(args.url).catalog_build(args.campaign)
        if args.json:
            _json_out(out)
        else:
            print(f"catalog {out['digest'][:16]} "
                  f"({len(out['summary']['kernels'])} kernel(s), "
                  f"{out['summary']['skipped']} skipped cell(s))")
        return 0

    from repro.service import Ledger

    with Ledger(args.store) as ledger:
        cid = args.campaign or _only_campaign(ledger)
        try:
            body = build_catalog(ledger, cid)
        except CatalogError as exc:
            raise SystemExit(f"catalog build failed: {exc}")
        digest = store_catalog(ledger, body, campaign=cid)
        failures = []
        if args.check:
            failures = verify_catalog(ledger, body)
        measurements = None
        if args.measure:
            measurements = measure_catalog(
                ledger, body, backend=args.measure_backend,
                tests=args.measure_tests, seed=args.seed)
        if args.out:
            save_catalog(args.out, body, measurements)
        summary = catalog_summary(body)
    if args.json:
        payload = {"campaign": cid, "digest": digest, "summary": summary,
                   "check_failures": failures}
        if measurements is not None:
            payload["measurements"] = measurements
        _json_out(payload)
    else:
        print(f"catalog {digest[:16]} for campaign {cid}")
        for name, info in sorted(summary["kernels"].items()):
            print(f"  {name}: {info['frontier']}/{info['entries']} on "
                  f"frontier, max speedup {info['max_speedup']:.2f}x")
        if summary["skipped"]:
            print(f"  skipped cells: {summary['skipped']}")
        if args.check:
            verdict = "VALID" if not failures else "REJECTED"
            print(f"  certificates: {verdict}")
            for failure in failures:
                print(f"    - {failure}")
        if measurements is not None:
            for entry_id, ns in sorted(measurements["entries"].items()):
                print(f"  measured {entry_id}: {ns:,.0f} ns/test "
                      f"({measurements['backend']})")
    return 1 if failures else 0


def cmd_catalog_query(args) -> int:
    from repro.catalog import CatalogError, query_catalog

    _store_or_url(args)
    if args.url:
        from repro.service.api import ServiceClient

        out = ServiceClient(args.url).catalog(
            campaign=args.campaign, kernel=args.kernel,
            max_error=args.max_error, frontier=args.frontier)
        digest, entries = out["digest"], out.get("entries")
        if entries is None:
            # No filters: the server answered with a summary; re-fetch
            # the full document for a uniform entry listing.
            doc = ServiceClient(args.url).catalog(
                campaign=args.campaign, full=True)
            entries = query_catalog(doc["document"]["catalog"],
                                    frontier_only=args.frontier)
    else:
        from repro.service import Ledger

        with Ledger(args.store) as ledger:
            digest, body = _local_catalog(ledger, args.campaign)
        try:
            entries = query_catalog(body, kernel=args.kernel,
                                    max_error=args.max_error,
                                    frontier_only=args.frontier)
        except CatalogError as exc:
            raise SystemExit(str(exc))
    if args.json:
        _json_out({"digest": digest, "entries": entries})
    else:
        print(f"catalog {digest[:16]}: {len(entries)} entries")
        _print_entries(entries)
    return 0


def cmd_catalog_select(args) -> int:
    from repro.catalog import (CatalogError, parse_workload_spec,
                               select_for_budget)
    from repro.core.serialize import dec_float

    _store_or_url(args)
    if args.url:
        from repro.service.api import ServiceClient

        try:
            result = ServiceClient(args.url).catalog_select(
                budget=args.budget, workload=args.workload,
                campaign=args.campaign)
        except Exception as exc:
            from repro.service.api import ServiceError

            if isinstance(exc, ServiceError):
                raise SystemExit(exc.message)
            raise
    else:
        from repro.service import Ledger

        with Ledger(args.store) as ledger:
            digest, body = _local_catalog(ledger, args.campaign)
        try:
            workload = parse_workload_spec(args.workload)
            # Same shape as the HTTP answer: the catalog digest leads,
            # so local and --url invocations are byte-comparable.
            result = {"digest": digest,
                      **select_for_budget(body, workload, args.budget)}
        except CatalogError as exc:
            raise SystemExit(str(exc))
    if args.json:
        _json_out(result)
        return 0
    print(f"budget {dec_float(result['budget']):g} ULPs -> certified "
          f"composite bound {dec_float(result['bound']):g} ULPs")
    print(f"workload latency {result['latency']} vs target "
          f"{result['target_latency']} cycles "
          f"({dec_float(result['speedup']):.2f}x)")
    for name in sorted(result["assignment"]):
        pick = result["assignment"][name]
        print(f"  {name}: {pick['id']} "
              f"(error {dec_float(pick['error_ulps']):g}, "
              f"latency {pick['latency']}, calls {pick['calls']})")
    return 0


def cmd_run(args) -> int:
    program = _load_program(args.program)
    from repro.core.runner import Runner
    from repro.x86.testcase import decode_from

    tc = TestCase.from_values(_parse_values(args.set))
    runner = Runner(args.live_out)
    outputs, signal = runner.run_program(program, tc)
    if signal is not None:
        print(f"signal: {signal.value}")
        return 1
    for loc, bits in outputs.items():
        print(f"{loc} = {decode_from(loc, bits)!r}  (0x{bits:x})")
    return 0


def cmd_trace(args) -> int:
    program = _load_program(args.program)
    from repro.x86.trace import trace_program

    tc = TestCase.from_values(_parse_values(args.set))
    trace = trace_program(program, tc.build_state())
    print(trace.render())
    return 1 if trace.signal is not None else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    opt = sub.add_parser("optimize", help="superoptimize an assembly file")
    opt.add_argument("program")
    opt.add_argument("--live-out", nargs="+", required=True)
    opt.add_argument("--range", nargs="+", required=True,
                     metavar="LOC=LO:HI")
    opt.add_argument("--eta", type=float, default=0.0)
    opt.add_argument("--k", type=float, default=1.0)
    opt.add_argument("--proposals", type=int, default=10_000)
    opt.add_argument("--testcases", type=int, default=32)
    opt.add_argument("--seed", type=int, default=0)
    opt.add_argument("--backend", default="jit", choices=known_backends(),
                     help="execution backend for the cost function")
    opt.add_argument("--restarts", type=_positive_int, default=1,
                     metavar="N",
                     help="independent chains with seeds seed, seed+1, ... "
                          "(the paper runs 16)")
    opt.add_argument("--jobs", type=_nonnegative_int, default=0, metavar="N",
                     help="worker processes for the chains; 0 (default) "
                          "auto-sizes to min(cpu_count, restarts)")
    opt.set_defaults(fn=cmd_optimize)

    val = sub.add_parser("validate",
                         help="bound the ULP error between two programs")
    val.add_argument("target")
    val.add_argument("rewrite")
    val.add_argument("--live-out", nargs="+", required=True)
    val.add_argument("--range", nargs="+", required=True,
                     metavar="LOC=LO:HI")
    val.add_argument("--eta", type=float, default=0.0)
    val.add_argument("--proposals", type=int, default=20_000)
    val.add_argument("--seed", type=int, default=0)
    val.add_argument("--backend", default="jit", choices=known_backends(),
                     help="execution backend for error evaluation")
    val.set_defaults(fn=cmd_validate)

    ver = sub.add_parser(
        "verify",
        help="sound branch-and-bound ULP bound with checkable certificates")
    ver.add_argument("programs", nargs="*", metavar="PROGRAM",
                     help="TARGET and REWRITE files; with --kernel, at "
                          "most one file (the rewrite)")
    ver.add_argument("--kernel",
                     help="built-in kernel: sin, cos, tan, log, exp, "
                          "exp_s3d, or delta (brings its own ranges, "
                          "live-outs, and memory image)")
    ver.add_argument("--degree", type=int, default=None,
                     help="with --kernel: verify against the same kernel "
                          "rebuilt at this polynomial degree")
    ver.add_argument("--live-out", nargs="+")
    ver.add_argument("--range", nargs="+", metavar="LOC=LO:HI")
    ver.add_argument("--sound", action="store_true",
                     help="run the sound branch-and-bound verifier "
                          "(the default and only engine; flag kept for "
                          "recipe clarity)")
    ver.add_argument("--budget", type=_positive_int, default=256,
                     metavar="N", help="box-refinement budget")
    ver.add_argument("--deadline", type=float, default=None, metavar="SEC",
                     help="wall-clock refinement deadline")
    ver.add_argument("--target-gap", type=float, default=None, metavar="G",
                     help="stop once bound <= lower + G*max(lower, 1)")
    ver.add_argument("--jobs", type=_nonnegative_int, default=1,
                     metavar="N",
                     help="refinement worker processes (0 = cpu count)")
    ver.add_argument("--engine", choices=("batched", "reference"),
                     default="batched",
                     help="'batched' = pipelined compiled transfers "
                          "(jobs-invariant partition); 'reference' = the "
                          "historical barriered interpretive engine")
    ver.add_argument("--domain", choices=("separate", "relational"),
                     default="separate",
                     help="'separate' = independent output hulls; "
                          "'relational' = product-program domain bounding "
                          "the target-vs-rewrite difference directly "
                          "(never looser on the same partition)")
    ver.add_argument("--smt", action="store_true",
                     help="cross-check the certified bound with the "
                          "optional z3 SMT tier (bit-precise FP with a "
                          "real-relaxation fallback; requires --domain "
                          "relational)")
    ver.add_argument("--profile-transfers", action="store_true",
                     help="record per-opcode transfer timing (adds "
                          "overhead; surfaces in --json op_seconds)")
    ver.add_argument("--json", action="store_true",
                     help="emit the full result as JSON instead of text")
    ver.add_argument("--exhaustive-bits", type=_nonnegative_int, default=0,
                     metavar="N",
                     help="also sweep an N-bit-per-input exhaustive grid "
                          "as ground truth (0 = skip)")
    ver.add_argument("--backend", default="vector",
                     choices=known_backends(),
                     help="execution backend for --exhaustive-bits")
    ver.add_argument("--seed-proposals", type=_nonnegative_int, default=0,
                     metavar="N",
                     help="MCMC validator proposals mining counterexample "
                          "seeds before the search (0 = no seeding)")
    ver.add_argument("--seed", type=int, default=0)
    ver.add_argument("--emit-cert", metavar="PATH",
                     help="write the leaf-partition certificate as JSON")
    ver.add_argument("--check-cert", metavar="PATH",
                     help="independently re-verify a certificate instead "
                          "of searching")
    ver.set_defaults(fn=cmd_verify)

    sp = sub.add_parser(
        "submit",
        help="record an optimization campaign in a service store")
    sp.add_argument("--store", default=None, metavar="DIR",
                    help="service store directory (created if missing)")
    sp.add_argument("--url", default=None, metavar="URL",
                    help="submit over HTTP to a `repro serve --http` "
                         "service instead of a local store")
    sp.add_argument("--kernel", action="append", required=True,
                    metavar="NAME",
                    help="built-in kernel (repeatable); each kernel is "
                         "swept over --etas")
    sp.add_argument("--etas", default="0", metavar="E1,E2,...",
                    help="comma-separated eta sweep (default: 0)")
    sp.add_argument("--chains", type=_positive_int, default=1)
    sp.add_argument("--proposals", type=_positive_int, default=2_000)
    sp.add_argument("--testcases", type=_positive_int, default=16)
    sp.add_argument("--seed", type=int, default=0)
    sp.add_argument("--stages", default=None,
                    metavar="search,select,...",
                    help="stage prefix to run (default: all four)")
    sp.add_argument("--validate-proposals", type=_positive_int,
                    default=2_000)
    sp.add_argument("--verify-budget", type=_positive_int, default=128)
    sp.add_argument("--verify-domain", choices=("separate", "relational"),
                    default="separate",
                    help="abstract domain for bnb verify cells")
    sp.add_argument("--backend", default="jit", choices=known_backends(),
                     help="execution backend for the campaign's "
                          "search jobs")
    sp.add_argument("--max-attempts", type=_positive_int, default=3)
    sp.add_argument("--name", default="campaign")
    sp.add_argument("--catalog", action="store_true",
                    help="append the catalog stage: one terminal job "
                         "that assembles the certified Pareto catalog "
                         "once every cell finishes")
    sp.add_argument("--json", action="store_true")
    sp.set_defaults(fn=cmd_submit)

    sv = sub.add_parser(
        "serve",
        help="run the campaign scheduler until the store is idle")
    sv.add_argument("--store", required=True, metavar="DIR")
    sv.add_argument("--jobs", type=_nonnegative_int, default=1,
                    metavar="N",
                    help="worker processes (0 = cpu count, 1 = inline)")
    sv.add_argument("--checkpoint-every", type=_nonnegative_int,
                    default=500, metavar="N",
                    help="proposals between search/validate checkpoints "
                         "(0 disables)")
    sv.add_argument("--checkpoint-rounds", type=_nonnegative_int,
                    default=4, metavar="N",
                    help="refinement rounds between verifier checkpoints")
    sv.add_argument("--checkpoint-seconds", type=float, default=1.0,
                    metavar="SEC",
                    help="minimum wall-clock spacing between verifier "
                         "checkpoints (0 = every eligible round)")
    sv.add_argument("--retry-base", type=float, default=0.25,
                    metavar="SEC",
                    help="backoff base: retry n waits base * 2^(n-1)")
    sv.add_argument("--task-timeout", type=float, default=None,
                    metavar="SEC", help="per-job deadline")
    sv.add_argument("--poll-interval", type=float, default=0.25,
                    metavar="SEC")
    sv.add_argument("--lease", type=float, default=15.0, metavar="SEC",
                    help="lease granted per claim; a dead scheduler's "
                         "jobs requeue after this long (default: 15)")
    sv.add_argument("--http", type=int, default=None, metavar="PORT",
                    help="also serve the HTTP API on this port (0 picks "
                         "a free one; implies --wait)")
    sv.add_argument("--host", default="127.0.0.1", metavar="ADDR",
                    help="bind address for --http (default: 127.0.0.1)")
    sv.add_argument("--dispatch", choices=("local", "none"),
                    default="local",
                    help="'none' turns this process into a pure "
                         "coordinator (reap + HTTP), leaving execution "
                         "to fleet agents")
    sv.add_argument("--wait", action="store_true",
                    help="keep serving after the store is idle (until "
                         "SIGINT/SIGTERM)")
    sv.add_argument("--quiet", action="store_true")
    sv.add_argument("--json", action="store_true")
    sv.set_defaults(fn=cmd_serve)

    ag = sub.add_parser(
        "agent",
        help="run a fleet agent that pulls and executes leased jobs")
    ag.add_argument("--store", default=None, metavar="DIR",
                    help="shared-store mode: open this ledger directly")
    ag.add_argument("--url", default=None, metavar="URL",
                    help="HTTP mode: pull leases from a `repro serve "
                         "--http` service")
    ag.add_argument("--workdir", default=None, metavar="DIR",
                    help="scratch directory for HTTP-mode checkpoints "
                         "(default: a fresh temp dir)")
    ag.add_argument("--jobs", type=_nonnegative_int, default=1,
                    metavar="N",
                    help="worker processes (0 = cpu count, 1 = inline)")
    ag.add_argument("--lease", type=float, default=15.0, metavar="SEC")
    ag.add_argument("--checkpoint-every", type=_nonnegative_int,
                    default=500, metavar="N")
    ag.add_argument("--checkpoint-rounds", type=_nonnegative_int,
                    default=4, metavar="N")
    ag.add_argument("--checkpoint-seconds", type=float, default=1.0,
                    metavar="SEC")
    ag.add_argument("--retry-base", type=float, default=0.25,
                    metavar="SEC")
    ag.add_argument("--task-timeout", type=float, default=None,
                    metavar="SEC")
    ag.add_argument("--poll-interval", type=float, default=0.25,
                    metavar="SEC")
    ag.add_argument("--wait", action="store_true",
                    help="keep pulling after the service goes idle")
    ag.add_argument("--quiet", action="store_true")
    ag.add_argument("--json", action="store_true")
    ag.set_defaults(fn=cmd_agent)

    st = sub.add_parser("status", help="show job/campaign states")
    st.add_argument("--store", default=None, metavar="DIR")
    st.add_argument("--url", default=None, metavar="URL",
                    help="query a `repro serve --http` service")
    st.add_argument("--campaign", default=None, metavar="ID")
    st.add_argument("--json", action="store_true")
    st.set_defaults(fn=cmd_status)

    ar = sub.add_parser("artifacts",
                        help="list or export a job's artifacts")
    ar.add_argument("--store", default=None, metavar="DIR")
    ar.add_argument("--url", default=None, metavar="URL",
                    help="fetch from a `repro serve --http` service")
    ar.add_argument("--job", required=True, metavar="DIGEST",
                    help="job digest (unique prefix accepted)")
    ar.add_argument("--name", default=None, metavar="FILE",
                    help="print one artifact to stdout")
    ar.add_argument("--out", default=None, metavar="DIR",
                    help="export all artifacts into a directory")
    ar.add_argument("--json", action="store_true")
    ar.set_defaults(fn=cmd_artifacts)

    ct = sub.add_parser(
        "catalog",
        help="build/query the certified (error, latency) Pareto "
             "catalog and select implementations under a budget")
    ctsub = ct.add_subparsers(dest="catalog_command", required=True)

    def _catalog_common(p):
        p.add_argument("--store", default=None, metavar="DIR")
        p.add_argument("--url", default=None, metavar="URL",
                       help="talk to a `repro serve --http` service")
        p.add_argument("--campaign", default=None, metavar="ID",
                       help="campaign whose catalog to use (default: "
                            "the store's only campaign / latest built)")
        p.add_argument("--json", action="store_true")

    cb = ctsub.add_parser(
        "build", help="assemble a finished campaign's catalog")
    _catalog_common(cb)
    cb.add_argument("--check", action="store_true",
                    help="re-validate every cited certificate with the "
                         "independent checker after assembly")
    cb.add_argument("--measure", action="store_true",
                    help="probe measured wall-clock latency per entry "
                         "(side-band data; never part of the catalog "
                         "digest)")
    cb.add_argument("--measure-backend", default="vector",
                    choices=known_backends())
    cb.add_argument("--measure-tests", type=_positive_int, default=256)
    cb.add_argument("--seed", type=int, default=0,
                    help="test-case seed for --measure")
    cb.add_argument("--out", default=None, metavar="PATH",
                    help="also write the catalog document (wrapper + "
                         "digest) to a JSON file")
    cb.set_defaults(fn=cmd_catalog_build)

    cq = ctsub.add_parser(
        "query", help="list catalog entries by kernel / error bound")
    _catalog_common(cq)
    cq.add_argument("--kernel", default=None, metavar="NAME")
    cq.add_argument("--max-error", type=float, default=None,
                    metavar="ULPS",
                    help="only entries whose certified bound fits")
    cq.add_argument("--frontier", action="store_true",
                    help="only non-dominated entries")
    cq.set_defaults(fn=cmd_catalog_query)

    cs = ctsub.add_parser(
        "select",
        help="pick one implementation per workload kernel under an "
             "end-to-end error budget")
    _catalog_common(cs)
    cs.add_argument("--budget", type=float, required=True, metavar="ULPS",
                    help="composite certified error budget")
    cs.add_argument("--workload", default="aek",
                    metavar="NAME|k1:c1,k2:c2",
                    help="workload preset (aek, s3d) or explicit "
                         "kernel:calls list")
    cs.set_defaults(fn=cmd_catalog_select)

    runp = sub.add_parser("run", help="execute a program on given inputs")
    runp.add_argument("program")
    runp.add_argument("--set", nargs="+", default=[], metavar="LOC=VALUE")
    runp.add_argument("--live-out", nargs="+", required=True)
    runp.set_defaults(fn=cmd_run)

    tr = sub.add_parser("trace",
                        help="execute with a per-instruction trace")
    tr.add_argument("program")
    tr.add_argument("--set", nargs="+", default=[], metavar="LOC=VALUE")
    tr.set_defaults(fn=cmd_trace)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:  # output piped into head etc.
        return 0
    except Exception as exc:
        from repro.service.api import ServiceError

        if isinstance(exc, ServiceError):
            raise SystemExit(str(exc))
        raise


if __name__ == "__main__":
    raise SystemExit(main())
