"""Symbolic execution over the x86 subset with uninterpreted FP operators.

Floating-point instructions become uninterpreted operator nodes; moves,
shuffles and unpacks become structural ``Extract``/``Concat`` operations
that canonicalize away.  Two programs whose live-out expressions
canonicalize identically are bit-wise equivalent for all inputs — the
uninterpreted-function verification the paper applies to the aek vector
kernels (Figure 6).

The executor deliberately supports only the instruction subset this style
of proof can handle; anything else raises :class:`SymbolicUnsupported`,
which the UF checker reports as "unknown" (verification is sound but
incomplete, Equation 12).

``symbolic_execute(..., extended=True)`` additionally models the GP
integer fragment (ALU ops, shifts, compares, conditional moves, FP<->int
conversions) as uninterpreted nodes.  The relational domain
(:mod:`repro.verify.relational`) uses the extended DAGs to pair up
corresponding sub-expressions of target and rewrite; the UF equivalence
checker keeps the historical default so its supported-program set (and
every recorded outcome) is unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.x86.instruction import Instruction
from repro.x86.memory import Memory
from repro.x86.operands import Imm, Mem, Reg32, Reg64, Xmm
from repro.x86.program import Program

M32 = 0xFFFFFFFF
M64 = 0xFFFFFFFFFFFFFFFF


class SymbolicUnsupported(Exception):
    """The program uses a construct the symbolic executor cannot model."""


# ---------------------------------------------------------------------------
# expression nodes


class Node:
    """Base class for expression DAG nodes; all nodes are immutable."""

    __slots__ = ("width", "_key")

    def __init__(self, width: int, key: tuple):
        self.width = width
        self._key = (type(self).__name__, width) + key

    def __eq__(self, other) -> bool:
        return isinstance(other, Node) and self._key == other._key

    def __hash__(self) -> int:
        return hash(self._key)


class Const(Node):
    """A literal bit pattern."""

    __slots__ = ("value",)

    def __init__(self, value: int, width: int):
        value &= (1 << width) - 1
        self.value = value
        super().__init__(width, (value,))

    def __repr__(self) -> str:
        return f"0x{self.value:x}:{self.width}"


class InputNode(Node):
    """A live-in value (register slice or initial memory content)."""

    __slots__ = ("name",)

    def __init__(self, name: str, width: int):
        self.name = name
        super().__init__(width, (name,))

    def __repr__(self) -> str:
        return f"{self.name}:{self.width}"


# FP / integer operators whose argument order does not matter bit-wise.
_COMMUTATIVE = {
    "addss", "mulss", "addsd", "mulsd", "fma_mul",
    "and", "or", "xor",
}


class OpNode(Node):
    """An uninterpreted operator application."""

    __slots__ = ("op", "args")

    def __init__(self, op: str, args: Tuple[Node, ...], width: int):
        if op in _COMMUTATIVE:
            args = tuple(sorted(args, key=lambda n: n._key))
        self.op = op
        self.args = args
        super().__init__(width, (op,) + tuple(a._key for a in args))

    def __repr__(self) -> str:
        inner = ", ".join(repr(a) for a in self.args)
        return f"{self.op}({inner})"


class ExtractNode(Node):
    """Bits ``[offset, offset + width)`` of a wider node."""

    __slots__ = ("child", "offset")

    def __init__(self, child: Node, offset: int, width: int):
        self.child = child
        self.offset = offset
        super().__init__(width, (offset, child._key))

    def __repr__(self) -> str:
        return f"{self.child!r}[{self.offset}:{self.offset + self.width}]"


class ConcatNode(Node):
    """``hi << lo.width | lo`` of two nodes."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo: Node, hi: Node):
        self.lo = lo
        self.hi = hi
        super().__init__(lo.width + hi.width, (lo._key, hi._key))

    def __repr__(self) -> str:
        return f"({self.hi!r} . {self.lo!r})"


def extract(node: Node, offset: int, width: int) -> Node:
    """Canonicalizing Extract constructor."""
    if offset == 0 and width == node.width:
        return node
    if offset + width > node.width:
        raise SymbolicUnsupported("extract out of range")
    if isinstance(node, Const):
        return Const(node.value >> offset, width)
    if isinstance(node, ExtractNode):
        return extract(node.child, node.offset + offset, width)
    if isinstance(node, ConcatNode):
        if offset + width <= node.lo.width:
            return extract(node.lo, offset, width)
        if offset >= node.lo.width:
            return extract(node.hi, offset - node.lo.width, width)
    return ExtractNode(node, offset, width)


def concat(lo: Node, hi: Node) -> Node:
    """Canonicalizing Concat constructor (merges adjacent extracts)."""
    if isinstance(lo, Const) and isinstance(hi, Const):
        return Const(lo.value | (hi.value << lo.width), lo.width + hi.width)
    if (isinstance(lo, ExtractNode) and isinstance(hi, ExtractNode)
            and lo.child is not None and lo.child == hi.child
            and hi.offset == lo.offset + lo.width):
        return extract(lo.child, lo.offset, lo.width + hi.width)
    return ConcatNode(lo, hi)


def op(name: str, *args: Node, width: int) -> Node:
    """Uninterpreted operator with a couple of algebraic identities."""
    if name == "xor" and len(args) == 2 and args[0] == args[1]:
        return Const(0, width)
    if name in ("and", "or") and len(args) == 2 and args[0] == args[1]:
        return args[0]
    return OpNode(name, args, width)


# ---------------------------------------------------------------------------
# symbolic machine state


class _XmmValue:
    """One XMM register: two 64-bit halves, each a node."""

    __slots__ = ("halves",)

    def __init__(self, halves: List[Node]):
        self.halves = halves  # [lo64, hi64]

    def copy(self) -> "_XmmValue":
        return _XmmValue(list(self.halves))

    def read64(self, half: int) -> Node:
        return self.halves[half]

    def write64(self, half: int, node: Node) -> None:
        self.halves[half] = node

    def read32(self, lane: int) -> Node:
        return extract(self.halves[lane // 2], 32 * (lane % 2), 32)

    def write32(self, lane: int, node: Node) -> None:
        half = lane // 2
        old = self.halves[half]
        if lane % 2 == 0:
            self.halves[half] = concat(node, extract(old, 32, 32))
        else:
            self.halves[half] = concat(extract(old, 0, 32), node)


class SymbolicMemory:
    """Byte-addressed symbolic memory over the concrete sandbox layout.

    Reads from read-only segments yield constants; reads from writable
    segments yield per-slot input nodes (or previously stored nodes).
    Only aligned, non-overlapping accesses at concrete addresses are
    supported.
    """

    def __init__(self, mem: Memory):
        self.mem = mem
        self.stores: Dict[Tuple[int, int], Node] = {}

    def load(self, addr: int, size: int) -> Node:
        if (addr, size) in self.stores:
            return self.stores[(addr, size)]
        for (base, ssize), node in self.stores.items():
            if base <= addr and addr + size <= base + ssize:
                # Partial load from within a store (e.g. movss after a
                # movq stack spill).
                return extract(node, 8 * (addr - base), 8 * size)
        overlapping = [
            (base, ssize) for (base, ssize) in self.stores
            if addr < base + ssize and base < addr + size
        ]
        if overlapping:
            # A load spanning several adjacent stores (movq over two
            # movss spills) composes left to right.
            cursor = addr
            parts: List[Node] = []
            while cursor < addr + size:
                piece = self.stores.get((cursor, 4)) or self.stores.get(
                    (cursor, 8))
                if piece is None:
                    raise SymbolicUnsupported("overlapping symbolic store/load")
                parts.append(piece)
                cursor += piece.width // 8
            if cursor != addr + size:
                raise SymbolicUnsupported("misaligned composite load")
            node = parts[0]
            for part in parts[1:]:
                node = concat(node, part)
            return node
        seg = self.mem._find(addr, size)
        if seg.writable:
            return InputNode(f"{seg.name}+{addr - seg.base}", 8 * size)
        off = addr - seg.base
        bits = int.from_bytes(seg.data[off:off + size], "little")
        return Const(bits, 8 * size)

    def store(self, addr: int, size: int, node: Node) -> None:
        for (base, ssize) in list(self.stores):
            if (base, ssize) != (addr, size) and addr < base + ssize \
                    and base < addr + size:
                raise SymbolicUnsupported("overlapping symbolic stores")
        self.stores[(addr, size)] = node


class SymbolicState:
    """Register file + memory holding expression nodes."""

    def __init__(self, mem: Memory,
                 concrete_gp: Optional[Dict[int, int]] = None):
        self.gp: List[Node] = [InputNode(f"r{i}", 64) for i in range(16)]
        if concrete_gp:
            for idx, value in concrete_gp.items():
                self.gp[idx] = Const(value, 64)
        self.xmm: List[_XmmValue] = [
            _XmmValue([InputNode(f"x{i}l", 64), InputNode(f"x{i}h", 64)])
            for i in range(16)
        ]
        self.mem = SymbolicMemory(mem)
        # RFLAGS as a node over the last flag-writing instruction's
        # operands (extended mode only); None means unmodelled, which a
        # consuming cmov reports as unsupported.
        self.flags: Optional[Node] = None

    # -- operand access ---------------------------------------------------

    def addr(self, m: Mem) -> int:
        base = self.gp[m.base]
        if not isinstance(base, Const):
            raise SymbolicUnsupported(f"symbolic base address {base!r}")
        total = base.value + m.disp
        if m.index is not None:
            idx = self.gp[m.index]
            if not isinstance(idx, Const):
                raise SymbolicUnsupported(f"symbolic index {idx!r}")
            total += idx.value * m.scale
        return total & M64

    def read64(self, operand) -> Node:
        if isinstance(operand, Xmm):
            return self.xmm[operand.index].read64(0)
        if isinstance(operand, Reg64):
            return self.gp[operand.index]
        if isinstance(operand, Imm):
            return Const(operand.value, 64)
        if isinstance(operand, Mem):
            return self.mem.load(self.addr(operand), 8)
        raise SymbolicUnsupported(f"read64 of {operand!r}")

    def read32(self, operand) -> Node:
        if isinstance(operand, Xmm):
            return self.xmm[operand.index].read32(0)
        if isinstance(operand, (Reg64, Reg32)):
            return extract(self.gp[operand.index], 0, 32)
        if isinstance(operand, Imm):
            return Const(operand.value, 32)
        if isinstance(operand, Mem):
            return self.mem.load(self.addr(operand), 4)
        raise SymbolicUnsupported(f"read32 of {operand!r}")

    def read_lane(self, operand: Xmm, lane: int) -> Node:
        return self.xmm[operand.index].read32(lane)


# ---------------------------------------------------------------------------
# instruction semantics (UF-checkable subset)


def _exec_instr(state: SymbolicState, instr: Instruction,
                extended: bool = False) -> None:
    name = instr.opcode
    ops = instr.operands

    if name == "nop":
        return

    # scalar double binops -> uninterpreted op on low halves
    sd_binops = {"addsd": "addsd", "subsd": "subsd", "mulsd": "mulsd",
                 "divsd": "divsd", "minsd": "minsd", "maxsd": "maxsd"}
    if name in sd_binops:
        src = state.read64(ops[0])
        dst = state.xmm[ops[1].index]
        dst.write64(0, op(sd_binops[name], dst.read64(0), src, width=64))
        return
    if name == "sqrtsd":
        state.xmm[ops[1].index].write64(
            0, op("sqrtsd", state.read64(ops[0]), width=64))
        return

    ss_binops = {"addss": "addss", "subss": "subss", "mulss": "mulss",
                 "divss": "divss", "minss": "minss", "maxss": "maxss"}
    if name in ss_binops:
        src = state.read32(ops[0])
        dst = state.xmm[ops[1].index]
        dst.write32(0, op(ss_binops[name], dst.read32(0), src, width=32))
        return
    if name == "sqrtss":
        state.xmm[ops[1].index].write32(
            0, op("sqrtss", state.read32(ops[0]), width=32))
        return

    avx_sd = {"vaddsd": "addsd", "vsubsd": "subsd", "vmulsd": "mulsd",
              "vdivsd": "divsd", "vminsd": "minsd", "vmaxsd": "maxsd"}
    if name in avx_sd:
        s1 = state.read64(ops[0])
        s2 = state.xmm[ops[1].index]
        dst = state.xmm[ops[2].index]
        result = op(avx_sd[name], s2.read64(0), s1, width=64)
        dst.write64(1, s2.read64(1))
        dst.write64(0, result)
        return

    avx_ss = {"vaddss": "addss", "vsubss": "subss", "vmulss": "mulss",
              "vdivss": "divss"}
    if name in avx_ss:
        s1 = state.read32(ops[0])
        s2 = state.xmm[ops[1].index]
        dst = state.xmm[ops[2].index]
        result = op(avx_ss[name], s2.read32(0), s1, width=32)
        new_lo = concat(result, s2.read32(1))
        dst.write64(1, s2.read64(1))
        dst.write64(0, new_lo)
        return

    # packed ops decompose lane-wise into the scalar operators, so packed
    # and scalar computations of the same value canonicalize identically.
    pd_binops = {"addpd": "addsd", "subpd": "subsd",
                 "mulpd": "mulsd", "divpd": "divsd"}
    if name in pd_binops:
        if isinstance(ops[0], Mem):
            addr = state.addr(ops[0])
            src = [state.mem.load(addr, 8), state.mem.load(addr + 8, 8)]
        else:
            src = [state.xmm[ops[0].index].read64(h) for h in (0, 1)]
        dst = state.xmm[ops[1].index]
        for half in (0, 1):
            dst.write64(half, op(pd_binops[name], dst.read64(half),
                                 src[half], width=64))
        return

    ps_binops = {"addps": "addss", "subps": "subss",
                 "mulps": "mulss", "divps": "divss"}
    if name in ps_binops:
        if isinstance(ops[0], Mem):
            addr = state.addr(ops[0])
            src = [state.mem.load(addr + 4 * lane, 4) for lane in range(4)]
        else:
            src = [state.xmm[ops[0].index].read32(lane) for lane in range(4)]
        dst = state.xmm[ops[1].index]
        for lane in range(4):
            dst.write32(lane, op(ps_binops[name], dst.read32(lane),
                                 src[lane], width=32))
        return

    bitwise = {"andpd": "and", "orpd": "or", "xorpd": "xor",
               "andps": "and", "orps": "or", "xorps": "xor",
               "pand": "and", "por": "or", "pxor": "xor"}
    if name in bitwise:
        if isinstance(ops[0], Mem):
            addr = state.addr(ops[0])
            src = [state.mem.load(addr, 8), state.mem.load(addr + 8, 8)]
        else:
            src = [state.xmm[ops[0].index].read64(h) for h in (0, 1)]
        dst = state.xmm[ops[1].index]
        for half in (0, 1):
            dst.write64(half, op(bitwise[name], dst.read64(half),
                                 src[half], width=64))
        return

    fma_sd = {"vfmadd132sd": "132", "vfmadd213sd": "213",
              "vfmadd231sd": "231"}
    if name in fma_sd:
        o1 = state.read64(ops[0])
        o2 = state.xmm[ops[1].index].read64(0)
        dst = state.xmm[ops[2].index]
        d = dst.read64(0)
        order = fma_sd[name]
        if order == "132":
            args = (op("fma_mul", d, o1, width=64), o2)
        elif order == "213":
            args = (op("fma_mul", o2, d, width=64), o1)
        else:
            args = (op("fma_mul", o2, o1, width=64), d)
        dst.write64(0, op("fma_add", *args, width=64))
        return

    # moves ---------------------------------------------------------------
    if name == "movsd":
        src, dst = ops
        if isinstance(dst, Mem):
            state.mem.store(state.addr(dst), 8,
                            state.xmm[src.index].read64(0))
        elif isinstance(src, Mem):
            state.xmm[dst.index].write64(0, state.mem.load(state.addr(src), 8))
            state.xmm[dst.index].write64(1, Const(0, 64))
        else:
            state.xmm[dst.index].write64(0, state.xmm[src.index].read64(0))
        return

    if name == "movss":
        src, dst = ops
        if isinstance(dst, Mem):
            state.mem.store(state.addr(dst), 4,
                            state.xmm[src.index].read32(0))
        elif isinstance(src, Mem):
            state.xmm[dst.index].write64(
                0, concat(state.mem.load(state.addr(src), 4), Const(0, 32)))
            state.xmm[dst.index].write64(1, Const(0, 64))
        else:
            state.xmm[dst.index].write32(0, state.xmm[src.index].read32(0))
        return

    if name in ("movapd", "movaps", "movdqa", "movups", "movdqu", "lddqu"):
        src, dst = ops
        if isinstance(dst, Mem):
            addr = state.addr(dst)
            state.mem.store(addr, 8, state.xmm[src.index].read64(0))
            state.mem.store(addr + 8, 8, state.xmm[src.index].read64(1))
        elif isinstance(src, Mem):
            addr = state.addr(src)
            state.xmm[dst.index].write64(0, state.mem.load(addr, 8))
            state.xmm[dst.index].write64(1, state.mem.load(addr + 8, 8))
        else:
            for half in (0, 1):
                state.xmm[dst.index].write64(
                    half, state.xmm[src.index].read64(half))
        return

    if name == "movddup":
        src = state.read64(ops[0])
        state.xmm[ops[1].index].write64(0, src)
        state.xmm[ops[1].index].write64(1, src)
        return

    if name == "movq":
        src, dst = ops
        if isinstance(dst, Xmm):
            state.xmm[dst.index].write64(0, state.read64(src))
            state.xmm[dst.index].write64(1, Const(0, 64))
        elif isinstance(dst, Reg64):
            state.gp[dst.index] = state.read64(src)
        else:
            state.mem.store(state.addr(dst), 8, state.read64(src))
        return

    if name == "movd":
        src, dst = ops
        if isinstance(dst, Xmm):
            state.xmm[dst.index].write64(
                0, concat(state.read32(src), Const(0, 32)))
            state.xmm[dst.index].write64(1, Const(0, 64))
        else:
            state.gp[dst.index] = concat(state.read32(src), Const(0, 32))
        return

    if name in ("mov", "movabs"):
        src, dst = ops
        if isinstance(dst, Reg64):
            state.gp[dst.index] = state.read64(src)
        elif isinstance(dst, Reg32):
            state.gp[dst.index] = concat(state.read32(src), Const(0, 32))
        elif dst.size == 8:
            state.mem.store(state.addr(dst), 8, state.read64(src))
        else:
            state.mem.store(state.addr(dst), 4, state.read32(src))
        return

    # shuffles / unpacks ----------------------------------------------------
    if name == "unpcklpd":
        src, dst = ops
        lo = (state.mem.load(state.addr(src), 8) if isinstance(src, Mem)
              else state.xmm[src.index].read64(0))
        state.xmm[dst.index].write64(1, lo)
        return

    if name == "unpckhpd":
        src, dst = ops
        hi = (state.mem.load(state.addr(src) + 8, 8) if isinstance(src, Mem)
              else state.xmm[src.index].read64(1))
        d = state.xmm[dst.index]
        d.write64(0, d.read64(1))
        d.write64(1, hi)
        return

    if name == "punpckldq":
        src, dst = ops
        if isinstance(src, Mem):
            addr = state.addr(src)
            s = [state.mem.load(addr + 4 * lane, 4) for lane in range(4)]
        else:
            s = [state.xmm[src.index].read32(lane) for lane in range(4)]
        d = state.xmm[dst.index]
        d0, d1 = d.read32(0), d.read32(1)
        d.write64(0, concat(d0, s[0]))
        d.write64(1, concat(d1, s[1]))
        return

    if name in ("pshufd",):
        imm = ops[0].value & 0xFF
        src = ops[1]
        if isinstance(src, Mem):
            addr = state.addr(src)
            lanes = [state.mem.load(addr + 4 * lane, 4) for lane in range(4)]
        else:
            lanes = [state.xmm[src.index].read32(lane) for lane in range(4)]
        d = state.xmm[ops[2].index]
        sel = [(imm >> (2 * j)) & 3 for j in range(4)]
        d.write64(0, concat(lanes[sel[0]], lanes[sel[1]]))
        d.write64(1, concat(lanes[sel[2]], lanes[sel[3]]))
        return

    if name in ("pshuflw", "vpshuflw"):
        imm = ops[0].value & 0xFF
        src = ops[1]
        if isinstance(src, Mem):
            addr = state.addr(src)
            lo64 = state.mem.load(addr, 8)
            hi64 = state.mem.load(addr + 8, 8)
        else:
            lo64 = state.xmm[src.index].read64(0)
            hi64 = state.xmm[src.index].read64(1)
        words = [extract(lo64, 16 * j, 16) for j in range(4)]
        sel = [(imm >> (2 * j)) & 3 for j in range(4)]
        new_lo = concat(concat(words[sel[0]], words[sel[1]]),
                        concat(words[sel[2]], words[sel[3]]))
        d = state.xmm[ops[2].index]
        d.write64(0, new_lo)
        d.write64(1, hi64)
        return

    # conversions as uninterpreted unary operators
    conversions = {"cvtsd2ss": (64, 32), "cvtss2sd": (32, 64)}
    if name in conversions:
        in_w, out_w = conversions[name]
        src = state.read64(ops[0]) if in_w == 64 else state.read32(ops[0])
        dst = state.xmm[ops[1].index]
        result = op(name, src, width=out_w)
        if out_w == 64:
            dst.write64(0, result)
        else:
            dst.write32(0, result)
        return

    if name == "lea":
        state.gp[ops[1].index] = Const(state.addr(ops[0]), 64)
        return

    if name == "movlhps":
        src, dst = ops
        state.xmm[dst.index].write64(1, state.xmm[src.index].read64(0))
        return

    if name == "movhlps":
        src, dst = ops
        state.xmm[dst.index].write64(0, state.xmm[src.index].read64(1))
        return

    if name == "shufpd":
        imm = ops[0].value
        if isinstance(ops[1], Mem):
            addr = state.addr(ops[1])
            src_halves = [state.mem.load(addr, 8),
                          state.mem.load(addr + 8, 8)]
        else:
            src_halves = [state.xmm[ops[1].index].read64(h) for h in (0, 1)]
        d = state.xmm[ops[2].index]
        new_lo = d.read64(1) if imm & 1 else d.read64(0)
        new_hi = src_halves[1] if imm & 2 else src_halves[0]
        d.write64(0, new_lo)
        d.write64(1, new_hi)
        return

    if name == "roundsd":
        imm = ops[0].value & 3
        src = state.read64(ops[1])
        state.xmm[ops[2].index].write64(
            0, op(f"roundsd{imm}", src, width=64))
        return

    if extended and _exec_extended(state, instr):
        return

    raise SymbolicUnsupported(f"opcode {name} not in the UF-checkable subset")


# ---------------------------------------------------------------------------
# extended fragment: GP integer ops, flags, cmov, FP<->int conversions
#
# Every node remains a pure function of its argument nodes, so the
# relational domain's identity rule (equal nodes => bitwise-equal values)
# stays valid: flag-dependent results carry the flags node as an explicit
# argument instead of reading hidden state.

_INT_BINOPS = frozenset({"add", "sub", "imul", "and", "or", "xor"})
_SHIFTS = frozenset({"shl", "shr", "sar"})


def _exec_extended(state: SymbolicState, instr: Instruction) -> bool:
    name = instr.opcode
    ops = instr.operands

    if name in _INT_BINOPS:
        src_op, dst_op = ops
        if isinstance(src_op, Mem) or isinstance(dst_op, Mem):
            raise SymbolicUnsupported("integer ALU with memory operand")
        if isinstance(dst_op, Reg32):
            a = state.read32(dst_op)
            b = state.read32(src_op)
            result = op(name, a, b, width=32)
            # 32-bit writes zero-extend.
            state.gp[dst_op.index] = concat(result, Const(0, 32))
        else:
            a = state.read64(dst_op)
            b = state.read64(src_op)
            result = op(name, a, b, width=64)
            state.gp[dst_op.index] = result
        state.flags = op("flags_" + name, a, b, width=8)
        return True

    if name in _SHIFTS:
        imm, dst_op = ops
        if not isinstance(imm, Imm):
            raise SymbolicUnsupported("register-count shift")
        width = 32 if isinstance(dst_op, Reg32) else 64
        n = imm.value & (width - 1)
        a = state.read32(dst_op) if width == 32 else state.read64(dst_op)
        result = op(name, a, Const(n, width), width=width)
        if width == 32:
            state.gp[dst_op.index] = concat(result, Const(0, 32))
        else:
            state.gp[dst_op.index] = result
        # A zero-count shift leaves the flags untouched; anything else
        # makes them a function of (value, count).
        if n != 0:
            state.flags = op("flags_" + name, a, Const(n, width), width=8)
        return True

    if name in ("cmp", "test"):
        src_op, dst_op = ops
        if isinstance(dst_op, Reg32) or isinstance(src_op, Reg32):
            a = state.read32(dst_op)
            b = state.read32(src_op)
        else:
            a = state.read64(dst_op)
            b = state.read64(src_op)
        state.flags = op("flags_" + name, a, b, width=8)
        return True

    if name in ("ucomisd", "ucomiss"):
        src_op, dst_op = ops
        if name == "ucomisd":
            a = state.xmm[dst_op.index].read64(0)
            b = state.read64(src_op)
        else:
            a = state.xmm[dst_op.index].read32(0)
            b = state.read32(src_op)
        state.flags = op("flags_" + name, a, b, width=8)
        return True

    if name.startswith("cmov"):
        src_op, dst_op = ops
        if state.flags is None:
            raise SymbolicUnsupported("cmov with unmodelled flags")
        if not isinstance(dst_op, Reg64):
            raise SymbolicUnsupported("cmov to a 32-bit destination")
        state.gp[dst_op.index] = op(
            "cmov_" + name[4:], state.flags, state.read64(dst_op),
            state.read64(src_op), width=64)
        return True

    if name in ("cvtsd2si", "cvttsd2si"):
        src_op, dst_op = ops
        if not isinstance(dst_op, Reg64):
            raise SymbolicUnsupported(f"{name} to a 32-bit destination")
        src = (state.xmm[src_op.index].read64(0) if isinstance(src_op, Xmm)
               else state.read64(src_op))
        state.gp[dst_op.index] = op(name, src, width=64)
        return True

    if name == "cvtsi2sd":
        src_op, dst_op = ops
        if isinstance(src_op, Reg32):
            node = op("cvtsi2sd32", state.read32(src_op), width=64)
        else:
            node = op("cvtsi2sd64", state.read64(src_op), width=64)
        state.xmm[dst_op.index].write64(0, node)
        return True

    return False


def symbolic_execute(program: Program, mem: Memory,
                     concrete_gp: Optional[Dict[int, int]] = None,
                     extended: bool = False) -> SymbolicState:
    """Run a program symbolically; raises on unsupported constructs.

    ``extended`` admits the GP integer fragment (for the relational
    domain); the default keeps the historical UF-checkable subset.
    """
    state = SymbolicState(mem, concrete_gp)
    for instr in program.slots:
        _exec_instr(state, instr, extended)
    return state
