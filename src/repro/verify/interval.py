"""Interval abstract interpretation with outward rounding.

A sound but coarse static analysis in the spirit of the range-based
abstract interpreters the paper compares against (Section 6.3): each
floating-point value is tracked as a closed interval with endpoints
rounded outward one ULP after every operation, and a ULP error bound
between target and rewrite is derived from the output intervals (refined
by bit-space subdivision of the input box — see
:mod:`repro.verify.bnb`).

Two lessons from the E11 unsoundness post-mortem are baked in here:

* A box's bound **sums** the per-live-out ULP distances, matching the
  validator's Equation 13 error.  The original implementation took the
  per-location *max*, which under-reported multi-output kernels by up
  to the live-out count — the actual root cause of the 3.5e9-ULP
  counterexample escaping the "sound" 1.89e9 bound.
* General-purpose registers carry a signed *integer interval* domain,
  so the libimf kernels' exponent-field bit extraction analyzes
  concretely on degenerate (point) data and as sound monotone interval
  transfers when widened; only genuinely unrepresentable GP lanes raise
  :class:`IntervalUnsupported`.  Both outcomes are counted in
  :class:`TransferStats` / :class:`IntervalBound`.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.fp.ulp import ulp_distance, ulp_distance_single
from repro.x86.locations import Loc, MemLoc
from repro.x86.memory import Memory
from repro.x86.operands import Imm, Mem, Reg32, Reg64, Xmm
from repro.x86.program import Program
from repro.x86.registers import XMM_INDEX
from repro.x86.scalar import (
    cvtsi2sd32,
    cvtsi2sd64,
    d2u,
    sint64,
    u2d,
    u2f,
)

from repro.core.runner import Location, resolve_locations
from repro.verify.partition import BitBox, Dim, dims_of, full_box


class IntervalUnsupported(Exception):
    """The program is outside the interval analysis' reach."""


TOP = "top"

# Largest bit pattern of a finite positive double; patterns in
# [0, _MAX_FINITE_BITS] map monotonically to values via u2d.
_MAX_FINITE_BITS = 0x7FEFFFFFFFFFFFFF
_SIGNED64 = 1 << 63
M32 = 0xFFFFFFFF
M64 = 0xFFFFFFFFFFFFFFFF


@dataclass
class TransferStats:
    """Bit-op and timing accounting for one or more interval transfers.

    ``concrete_bit_ops`` counts integer/bit instructions evaluated
    exactly on degenerate (point) data; ``widened_bit_ops`` counts those
    handled by the sound integer-interval transfer functions instead of
    raising :class:`IntervalUnsupported`.

    Observability fields (PR 8): ``transfer_seconds`` accumulates wall
    time spent inside transfer evaluation, ``op_counts`` the number of
    transfer-closure executions per opcode, and ``op_seconds`` per-opcode
    wall time when profiling is enabled
    (``IntervalTransfer(profile=True)``).  None of these participate in
    certificate bytes.
    """

    boxes: int = 0
    concrete_bit_ops: int = 0
    widened_bit_ops: int = 0
    transfer_seconds: float = 0.0
    op_counts: Dict[str, int] = field(default_factory=dict)
    op_seconds: Dict[str, float] = field(default_factory=dict)

    def merge(self, other: "TransferStats") -> None:
        self.boxes += other.boxes
        self.concrete_bit_ops += other.concrete_bit_ops
        self.widened_bit_ops += other.widened_bit_ops
        self.transfer_seconds += other.transfer_seconds
        for op, n in other.op_counts.items():
            self.op_counts[op] = self.op_counts.get(op, 0) + n
        for op, secs in other.op_seconds.items():
            self.op_seconds[op] = self.op_seconds.get(op, 0.0) + secs


@dataclass(frozen=True)
class IntInterval:
    """A closed interval of signed mathematical integers (GP domain)."""

    lo: int
    hi: int

    def __post_init__(self):
        if self.lo > self.hi:
            raise IntervalUnsupported(
                f"bad integer interval [{self.lo}, {self.hi}]")

    @property
    def point(self) -> bool:
        return self.lo == self.hi


class IntervalD:
    """A closed interval of doubles.

    A plain ``__slots__`` class rather than a frozen dataclass: interval
    creation is the single hottest allocation in the transfer (four to
    six per abstract instruction), and the dataclass machinery (frozen
    ``__setattr__``, ``__post_init__`` dispatch) tripled its cost.
    Value equality and the validation semantics are unchanged
    (``x != x`` is the cheap NaN test).
    """

    __slots__ = ("lo", "hi")

    def __init__(self, lo: float, hi: float):
        if lo != lo or hi != hi or lo > hi:
            raise IntervalUnsupported(f"bad interval [{lo}, {hi}]")
        self.lo = lo
        self.hi = hi

    def __eq__(self, other):
        return isinstance(other, IntervalD) and \
            self.lo == other.lo and self.hi == other.hi

    def __hash__(self):
        return hash((self.lo, self.hi))

    def __repr__(self):
        return f"IntervalD(lo={self.lo}, hi={self.hi})"

    @classmethod
    def point(cls, x: float) -> "IntervalD":
        return cls(x, x)


def _down(x: float, _isinf=math.isinf, _next=math.nextafter,
          _ninf=-math.inf) -> float:
    return x if _isinf(x) else _next(x, _ninf)


def _up(x: float, _isinf=math.isinf, _next=math.nextafter,
        _inf=math.inf) -> float:
    return x if _isinf(x) else _next(x, _inf)


def _down32(x: float) -> float:
    f = np.float32(x)
    return float(np.nextafter(f, np.float32(-np.inf))) if np.isfinite(f) \
        else float(f)


def _up32(x: float) -> float:
    f = np.float32(x)
    return float(np.nextafter(f, np.float32(np.inf))) if np.isfinite(f) \
        else float(f)


class _Arith:
    """Directed-rounding interval arithmetic, parameterized by precision."""

    def __init__(self, single: bool):
        self.round_down = _down32 if single else _down
        self.round_up = _up32 if single else _up

    def add(self, a: IntervalD, b: IntervalD) -> IntervalD:
        return IntervalD(self.round_down(a.lo + b.lo),
                         self.round_up(a.hi + b.hi))

    def sub(self, a: IntervalD, b: IntervalD) -> IntervalD:
        return IntervalD(self.round_down(a.lo - b.hi),
                         self.round_up(a.hi - b.lo))

    def mul(self, a: IntervalD, b: IntervalD) -> IntervalD:
        # Endpoint products with IEEE NaNs (0 * inf) treated as 0,
        # unrolled — this is the hottest arithmetic in the transfer and
        # the list comprehensions it replaces dominated its profile.
        p0 = a.lo * b.lo
        p1 = a.lo * b.hi
        p2 = a.hi * b.lo
        p3 = a.hi * b.hi
        if p0 != p0:
            p0 = 0.0
        if p1 != p1:
            p1 = 0.0
        if p2 != p2:
            p2 = 0.0
        if p3 != p3:
            p3 = 0.0
        return IntervalD(self.round_down(min(p0, p1, p2, p3)),
                         self.round_up(max(p0, p1, p2, p3)))

    def div(self, a: IntervalD, b: IntervalD) -> IntervalD:
        if b.lo <= 0.0 <= b.hi:
            return IntervalD(-math.inf, math.inf)
        q0 = a.lo / b.lo
        q1 = a.lo / b.hi
        q2 = a.hi / b.lo
        q3 = a.hi / b.hi
        return IntervalD(self.round_down(min(q0, q1, q2, q3)),
                         self.round_up(max(q0, q1, q2, q3)))

    def sqrt(self, a: IntervalD) -> IntervalD:
        if a.lo < 0.0:
            raise IntervalUnsupported("sqrt of possibly-negative interval")
        return IntervalD(self.round_down(math.sqrt(a.lo)),
                         self.round_up(math.sqrt(a.hi)))

    def min(self, a: IntervalD, b: IntervalD) -> IntervalD:
        return IntervalD(min(a.lo, b.lo), min(a.hi, b.hi))

    def max(self, a: IntervalD, b: IntervalD) -> IntervalD:
        return IntervalD(max(a.lo, b.lo), max(a.hi, b.hi))


_ARITH_D = _Arith(single=False)
_ARITH_F = _Arith(single=True)

_OPS = {"add": "add", "sub": "sub", "mul": "mul", "div": "div",
        "min": "min", "max": "max"}


class _Half:
    """One 64-bit XMM half: a double interval, two single-lane values,
    concrete bits, or TOP.

    Instances are immutable once built (``with_lane`` returns a new
    half), so compiled transfer plans share them freely across boxes;
    ``_f64`` memoizes the bits -> point-interval decode that dominated
    the interpretive profile.
    """

    __slots__ = ("kind", "value", "_f64")

    def __init__(self, kind: str, value):
        self.kind = kind  # 'f64' | 'f32pair' | 'bits' | 'top'
        self.value = value
        self._f64 = None

    @classmethod
    def top(cls) -> "_Half":
        # Halves are immutable, so every TOP is the same object (16
        # registers x 2 halves per fresh state adds up).
        return _TOP_HALF

    @classmethod
    def bits(cls, value: int) -> "_Half":
        return cls("bits", value & 0xFFFFFFFFFFFFFFFF)

    def as_f64(self) -> Union[IntervalD, str]:
        if self.kind == "f64":
            return self.value
        if self.kind == "bits":
            cached = self._f64
            if cached is None:
                x = u2d(self.value)
                if math.isnan(x):
                    raise IntervalUnsupported("NaN constant")
                cached = self._f64 = IntervalD.point(x)
            return cached
        return TOP

    def lane(self, index: int) -> Union[IntervalD, str]:
        """Lane as a float32 interval (index 0 or 1)."""
        if self.kind == "f32pair":
            return self.value[index]
        if self.kind == "bits":
            x = u2f(self.value >> (32 * index))
            if math.isnan(x):
                raise IntervalUnsupported("NaN constant lane")
            return IntervalD.point(x)
        return TOP

    def with_lane(self, index: int, lane_value) -> "_Half":
        lanes = [self.lane(0), self.lane(1)]
        lanes[index] = lane_value
        return _Half("f32pair", tuple(lanes))


_TOP_HALF = _Half("top", None)


class _IntervalState:
    """Abstract machine state.

    GP registers hold a concrete unsigned bit pattern (``int``), a
    signed :class:`IntInterval`, or TOP; XMM registers hold
    :class:`_Half` pairs.  ``cmp`` records the operand intervals of the
    last ``ucomisd``/``ucomiss`` so conditional moves can be decided (or
    soundly joined) later.
    """

    def __init__(self, mem: Memory, concrete_gp: Dict[int, int],
                 mem_inputs: Dict[Tuple[str, int], Tuple[str, IntervalD]],
                 stats: Optional[TransferStats] = None):
        self.gp: List[Union[int, IntInterval, str]] = [TOP] * 16
        for idx, value in concrete_gp.items():
            self.gp[idx] = value
        self.xmm: List[List[_Half]] = [
            [_TOP_HALF, _TOP_HALF] for _ in range(16)
        ]
        self.mem = mem
        # (segment, offset) -> ('f32'|'f64', interval)
        self.mem_inputs = mem_inputs
        self.mem_stores: Dict[int, Tuple[str, object]] = {}
        self.stats = stats if stats is not None else TransferStats()
        # (dst_interval, src_interval) of the last ucomisd/ucomiss, or
        # None when the flags are unknown (cmp/test or program entry).
        self.cmp: Optional[Tuple[object, object]] = None

    def addr(self, m: Mem) -> int:
        base = self.gp[m.base]
        if not isinstance(base, int):
            raise IntervalUnsupported("symbolic base address")
        total = base + m.disp
        if m.index is not None:
            idx = self.gp[m.index]
            if not isinstance(idx, int):
                raise IntervalUnsupported("symbolic index register")
            total += idx * m.scale
        return total & 0xFFFFFFFFFFFFFFFF

    # GP integer-domain readers ------------------------------------------

    def gp_operand(self, operand) -> Union[int, IntInterval, str]:
        """A GP-typed source operand's abstract value (pattern domain
        for concrete values, signed intervals for widened ones)."""
        if isinstance(operand, Imm):
            return operand.value & M64
        if isinstance(operand, Reg64):
            return self.gp[operand.index]
        if isinstance(operand, Reg32):
            value = self.gp[operand.index]
            if isinstance(value, int):
                return value & M32
            raise IntervalUnsupported("widened 32-bit GP operand")
        raise IntervalUnsupported(f"GP source {operand!r}")

    def gp_signed(self, operand) -> Union[IntInterval, str]:
        """A GP source as a signed integer interval (TOP if unknown)."""
        value = self.gp_operand(operand)
        if value is TOP:
            return TOP
        if isinstance(value, IntInterval):
            return value
        width = 32 if isinstance(operand, Reg32) else 64
        if width == 32:
            signed = value - (1 << 32) if value & 0x80000000 else value
        else:
            signed = sint64(value)
        return IntInterval(signed, signed)

    def set_gp(self, operand, value: Union[int, IntInterval, str]) -> None:
        if isinstance(operand, Reg64):
            if isinstance(value, int):
                value &= M64
            self.gp[operand.index] = value
            return
        if isinstance(operand, Reg32):
            if isinstance(value, int):
                # 32-bit writes zero-extend.
                self.gp[operand.index] = value & M32
                return
            raise IntervalUnsupported("widened 32-bit GP destination")
        raise IntervalUnsupported(f"GP destination {operand!r}")

    def _mem_value(self, addr: int, size: int):
        """('f64'|'f32', interval_or_TOP) or ('bits', int) at an address."""
        if addr in self.mem_stores:
            kind, value = self.mem_stores[addr]
            return kind, value
        seg = self.mem._find(addr, size)
        off = addr - seg.base
        if not seg.writable:
            bits = int.from_bytes(seg.data[off:off + size], "little")
            return "bits", bits
        key = (seg.name, off)
        if key in self.mem_inputs:
            return self.mem_inputs[key]
        return "top", None

    def load_f64(self, addr: int) -> Union[IntervalD, str]:
        kind, value = self._mem_value(addr, 8)
        if kind == "f64":
            return value
        if kind == "bits":
            x = u2d(value)
            if math.isnan(x):
                raise IntervalUnsupported("NaN in memory")
            return IntervalD.point(x)
        return TOP

    def load_half64(self, addr: int) -> "_Half":
        """An 8-byte load as an XMM half: a double, or two stored singles."""
        if addr in self.mem_stores:
            kind, value = self.mem_stores[addr]
            if kind == "f64":
                return _Half("f64", value)
            if kind == "f32" and (addr + 4) in self.mem_stores:
                kind2, value2 = self.mem_stores[addr + 4]
                if kind2 == "f32":
                    return _Half("f32pair", (value, value2))
            raise IntervalUnsupported("mixed-width stack reload")
        kind, value = self._mem_value(addr, 8)
        if kind == "f64":
            return _Half("f64", value)
        if kind == "bits":
            return _Half.bits(value)
        # Fall back to two singles (e.g. a vector in an input segment).
        return _Half("f32pair", (self.load_f32(addr), self.load_f32(addr + 4)))

    def load_f32(self, addr: int) -> Union[IntervalD, str]:
        kind, value = self._mem_value(addr, 4)
        if kind == "f32":
            return value
        if kind == "bits":
            x = u2f(value)
            if math.isnan(x):
                raise IntervalUnsupported("NaN in memory")
            return IntervalD.point(x)
        return TOP

    # source-value readers used by the transfer functions ------------------

    def src_f64(self, operand) -> Union[IntervalD, str]:
        if isinstance(operand, Xmm):
            return self.xmm[operand.index][0].as_f64()
        if isinstance(operand, Mem):
            return self.load_f64(self.addr(operand))
        if isinstance(operand, Imm):
            x = u2d(operand.value)
            if math.isnan(x):
                raise IntervalUnsupported("NaN immediate")
            return IntervalD.point(x)
        raise IntervalUnsupported(f"f64 source {operand!r}")

    def src_f32(self, operand) -> Union[IntervalD, str]:
        if isinstance(operand, Xmm):
            return self.xmm[operand.index][0].lane(0)
        if isinstance(operand, Mem):
            return self.load_f32(self.addr(operand))
        if isinstance(operand, Imm):
            x = u2f(operand.value)
            if math.isnan(x):
                raise IntervalUnsupported("NaN immediate")
            return IntervalD.point(x)
        raise IntervalUnsupported(f"f32 source {operand!r}")

    def src_lanes(self, operand) -> List[Union[IntervalD, str]]:
        """Four float32 lanes of a 128-bit source."""
        if isinstance(operand, Xmm):
            halves = self.xmm[operand.index]
            return [halves[0].lane(0), halves[0].lane(1),
                    halves[1].lane(0), halves[1].lane(1)]
        if isinstance(operand, Mem):
            addr = self.addr(operand)
            return [self.load_f32(addr + 4 * lane) for lane in range(4)]
        raise IntervalUnsupported(f"128-bit source {operand!r}")

    def src_halves_f64(self, operand) -> List[Union[IntervalD, str]]:
        if isinstance(operand, Xmm):
            return [h.as_f64() for h in self.xmm[operand.index]]
        if isinstance(operand, Mem):
            addr = self.addr(operand)
            return [self.load_f64(addr), self.load_f64(addr + 8)]
        raise IntervalUnsupported(f"128-bit source {operand!r}")


def _apply(arith: _Arith, name: str, a, b):
    if a is TOP or b is TOP:
        return TOP
    return getattr(arith, name)(a, b)


# --------------------------------------------------------------------------
# GP integer / bit-level transfer helpers


def _pattern_of_half(state: "_IntervalState", half: "_Half"
                     ) -> Union[int, IntInterval]:
    """Bit pattern of an XMM half, for ``movq xmm -> gp`` extraction.

    Degenerate data evaluates concretely; widened finite positive
    doubles map monotonically to a pattern interval.  Only genuinely
    unrepresentable lanes (TOP, mixed-sign or non-finite intervals,
    packed singles) raise.
    """
    if half.kind == "bits":
        state.stats.concrete_bit_ops += 1
        return half.value
    if half.kind == "f64":
        interval = half.value
        if interval is TOP:
            raise IntervalUnsupported("bit extraction from unbounded lane")
        if interval.lo == interval.hi:
            state.stats.concrete_bit_ops += 1
            return d2u(interval.lo)
        if interval.lo >= 0.0 and math.isfinite(interval.hi):
            # u2d is monotone on finite non-negative patterns.
            state.stats.widened_bit_ops += 1
            return IntInterval(d2u(interval.lo), d2u(interval.hi))
        raise IntervalUnsupported(
            "bit extraction from a mixed-sign or non-finite interval")
    raise IntervalUnsupported("bit extraction from a widened GP lane")


def _half_of_pattern(state: "_IntervalState",
                     value: Union[int, IntInterval, str]) -> "_Half":
    """``movq gp -> xmm`` reinjection of a (possibly widened) pattern."""
    if value is TOP:
        raise IntervalUnsupported("bit injection from an unknown register")
    if isinstance(value, int):
        state.stats.concrete_bit_ops += 1
        return _Half.bits(value)
    if value.lo >= 0 and value.hi <= _MAX_FINITE_BITS:
        state.stats.widened_bit_ops += 1
        return _Half("f64", IntervalD(u2d(value.lo), u2d(value.hi)))
    raise IntervalUnsupported(
        "bit injection of a signed or non-finite pattern interval")


def _require_signed64(lo: int, hi: int) -> IntInterval:
    if lo < -_SIGNED64 or hi >= _SIGNED64:
        raise IntervalUnsupported(
            f"integer interval [{lo}, {hi}] overflows 64-bit range")
    return IntInterval(lo, hi)


def _int_and(a: IntInterval, b: IntInterval) -> IntInterval:
    """Sound AND of non-negative integer intervals.

    Exact when one side is a degenerate low-bit mask and the other stays
    within one run of the upper bits (the exponent/fraction-field
    extraction shape); the hull ``[0, min(hi, hi)]`` otherwise.
    """
    if a.lo < 0 or b.lo < 0:
        raise IntervalUnsupported("AND of signed integer intervals")
    for value, mask in ((a, b), (b, a)):
        if mask.point:
            m = mask.lo
            k = m.bit_length()
            if m == (1 << k) - 1 and (value.lo >> k) == (value.hi >> k):
                # Low-bit mask, constant upper bits: AND subtracts the
                # common prefix, so it is monotone and exact.
                return IntInterval(value.lo & m, value.hi & m)
            return IntInterval(0, m)
    return IntInterval(0, min(a.hi, b.hi))


def _int_or(a: IntInterval, b: IntInterval) -> IntInterval:
    """Sound OR of non-negative integer intervals."""
    if a.lo < 0 or b.lo < 0:
        raise IntervalUnsupported("OR of signed integer intervals")
    for value, mask in ((a, b), (b, a)):
        if mask.point:
            c = mask.lo
            low = c & -c if c else 0
            if c == 0:
                return value
            if value.hi < low:
                # Disjoint bit ranges: OR is addition, monotone, exact.
                return IntInterval(value.lo | c, value.hi | c)
    # max(a, b) <= a|b <= a + b for non-negative integers.
    return _require_signed64(max(a.lo, b.lo), a.hi + b.hi)


def _decide_cmov(cc: str, cmp: Optional[Tuple[object, object]]
                 ) -> Optional[bool]:
    """Decide a ucomisd-flag condition from the recorded operand
    intervals; None means undecided (the cmov must join)."""
    if cmp is None:
        return None
    dst, src = cmp
    if dst is TOP or src is TOP:
        return None
    lt = dst.hi < src.lo
    gt = dst.lo > src.hi
    le = dst.hi <= src.lo
    ge = dst.lo >= src.hi
    eq = dst.lo == dst.hi == src.lo == src.hi
    if cc == "b":
        return True if lt else (False if ge else None)
    if cc == "ae":
        return True if ge else (False if lt else None)
    if cc == "a":
        return True if gt else (False if le else None)
    if cc == "be":
        return True if le else (False if gt else None)
    if cc in ("e", "le"):
        # After ucomi, sf == of == 0, so 'le' degenerates to zf.
        return True if eq else (False if (lt or gt) else None)
    if cc in ("ne", "g"):
        return False if eq else (True if (lt or gt) else None)
    if cc in ("ge", "ns"):
        return True
    if cc in ("l", "s"):
        return False
    return None


def _gp_join(state: "_IntervalState", a, b) -> Union[IntInterval, str]:
    """Hull of two GP abstract values (for undecided conditional moves)."""
    if a is TOP or b is TOP:
        return TOP
    ia = a if isinstance(a, IntInterval) else IntInterval(sint64(a), sint64(a))
    ib = b if isinstance(b, IntInterval) else IntInterval(sint64(b), sint64(b))
    return IntInterval(min(ia.lo, ib.lo), max(ia.hi, ib.hi))


def _rounded_int(x: float, rounder) -> int:
    if not math.isfinite(x):
        raise IntervalUnsupported("f64 -> int conversion of non-finite value")
    value = rounder(x)
    if not -_SIGNED64 <= value < _SIGNED64:
        raise IntervalUnsupported("f64 -> int conversion overflows")
    return value


def _round_half_even(x: float) -> int:
    floor = math.floor(x)
    diff = x - floor
    if diff > 0.5 or (diff == 0.5 and floor % 2):
        return floor + 1
    return floor


def _exec_int_binop(state: "_IntervalState", name: str, ops) -> None:
    src_op, dst_op = ops
    if name == "xor" and isinstance(src_op, (Reg64, Reg32)) \
            and isinstance(dst_op, (Reg64, Reg32)) \
            and src_op.index == dst_op.index:
        # Idiomatic zeroing works even on unknown data.
        state.set_gp(dst_op, 0)
        return
    a = state.gp_operand(dst_op)
    b = state.gp_operand(src_op) if not isinstance(src_op, Mem) else TOP
    if isinstance(src_op, Mem):
        raise IntervalUnsupported("integer ALU with memory operand")
    if isinstance(a, int) and isinstance(b, int):
        # Concrete data: exact pattern semantics (mirrors opcodes.py).
        mask = M32 if isinstance(dst_op, Reg32) else M64
        a &= mask
        b &= mask
        if name == "add":
            result = (a + b) & mask
        elif name == "sub":
            result = (a - b) & mask
        elif name == "imul":
            result = (a * b) & mask
        elif name == "and":
            result = a & b
        elif name == "or":
            result = a | b
        else:  # xor
            result = a ^ b
        state.stats.concrete_bit_ops += 1
        state.set_gp(dst_op, result)
        return
    if a is TOP or b is TOP:
        state.set_gp(dst_op, TOP)
        return
    if isinstance(dst_op, Reg32):
        raise IntervalUnsupported("widened 32-bit integer ALU op")
    ia = state.gp_signed(dst_op)
    ib = state.gp_signed(src_op)
    state.stats.widened_bit_ops += 1
    if name == "add":
        state.set_gp(dst_op, _require_signed64(ia.lo + ib.lo, ia.hi + ib.hi))
    elif name == "sub":
        state.set_gp(dst_op, _require_signed64(ia.lo - ib.hi, ia.hi - ib.lo))
    elif name == "imul":
        corners = [ia.lo * ib.lo, ia.lo * ib.hi, ia.hi * ib.lo, ia.hi * ib.hi]
        state.set_gp(dst_op, _require_signed64(min(corners), max(corners)))
    elif name == "and":
        state.set_gp(dst_op, _int_and(ia, ib))
    elif name == "or":
        state.set_gp(dst_op, _int_or(ia, ib))
    else:
        raise IntervalUnsupported(f"widened {name} outside the bit fragment")


def _exec_shift(state: "_IntervalState", name: str, ops) -> None:
    imm, dst_op = ops
    if not isinstance(imm, Imm):
        raise IntervalUnsupported("register-count shift")
    width = 32 if isinstance(dst_op, Reg32) else 64
    n = imm.value & (width - 1)
    value = state.gp_operand(dst_op)
    if value is TOP:
        state.set_gp(dst_op, TOP)
        return
    if isinstance(value, int):
        # Concrete pattern semantics, mirroring opcodes.py.
        mask = M32 if width == 32 else M64
        a = value & mask
        if name == "shl":
            result = (a << n) & mask
        elif name == "shr":
            result = a >> n
        else:  # sar
            sign = a >> (width - 1)
            signed = a - (1 << width) if sign else a
            result = (signed >> n) & mask
        state.stats.concrete_bit_ops += 1
        state.set_gp(dst_op, result)
        return
    if width == 32:
        raise IntervalUnsupported("widened 32-bit shift")
    state.stats.widened_bit_ops += 1
    if name == "sar":
        # Python's >> is arithmetic and monotone for any sign.
        state.set_gp(dst_op, IntInterval(value.lo >> n, value.hi >> n))
        return
    if value.lo < 0:
        raise IntervalUnsupported(f"{name} of a signed pattern interval")
    if name == "shl":
        state.set_gp(dst_op,
                     _require_signed64(value.lo << n, value.hi << n))
    else:  # shr of non-negative values == sar
        state.set_gp(dst_op, IntInterval(value.lo >> n, value.hi >> n))


def _exec_cmov(state: "_IntervalState", cc: str, ops) -> None:
    src_op, dst_op = ops
    decision = _decide_cmov(cc, state.cmp)
    if decision is True:
        state.stats.concrete_bit_ops += 1
        state.set_gp(dst_op, state.gp_operand(src_op))
        return
    if decision is False:
        state.stats.concrete_bit_ops += 1
        if isinstance(dst_op, Reg32):
            current = state.gp[dst_op.index]
            if not isinstance(current, int):
                raise IntervalUnsupported("widened 32-bit cmov destination")
            state.gp[dst_op.index] = current & M32
        return
    if isinstance(dst_op, Reg32):
        raise IntervalUnsupported("undecided 32-bit cmov")
    state.stats.widened_bit_ops += 1
    state.set_gp(dst_op, _gp_join(state, state.gp[dst_op.index],
                                  state.gp_operand(src_op)))


def _exec_interval(state: _IntervalState, instr) -> None:
    name = instr.opcode
    ops = instr.operands
    if name == "nop":
        return

    sd = {"addsd": "add", "subsd": "sub", "mulsd": "mul", "divsd": "div",
          "minsd": "min", "maxsd": "max"}
    if name in sd:
        src = state.src_f64(ops[0])
        dst = state.xmm[ops[1].index]
        dst[0] = _Half("f64", _apply(_ARITH_D, sd[name], dst[0].as_f64(), src))
        return
    if name == "sqrtsd":
        src = state.src_f64(ops[0])
        value = TOP if src is TOP else _ARITH_D.sqrt(src)
        state.xmm[ops[1].index][0] = _Half("f64", value)
        return

    ss = {"addss": "add", "subss": "sub", "mulss": "mul", "divss": "div",
          "minss": "min", "maxss": "max"}
    if name in ss:
        src = state.src_f32(ops[0])
        dst = state.xmm[ops[1].index]
        result = _apply(_ARITH_F, ss[name], dst[0].lane(0), src)
        dst[0] = dst[0].with_lane(0, result)
        return
    if name == "sqrtss":
        src = state.src_f32(ops[0])
        value = TOP if src is TOP else _ARITH_F.sqrt(src)
        dst = state.xmm[ops[1].index]
        dst[0] = dst[0].with_lane(0, value)
        return

    avx_sd = {"vaddsd": "add", "vsubsd": "sub", "vmulsd": "mul",
              "vdivsd": "div", "vminsd": "min", "vmaxsd": "max"}
    if name in avx_sd:
        s1 = state.src_f64(ops[0])
        s2 = state.xmm[ops[1].index]
        result = _apply(_ARITH_D, avx_sd[name], s2[0].as_f64(), s1)
        state.xmm[ops[2].index] = [_Half("f64", result), s2[1]]
        return

    avx_ss = {"vaddss": "add", "vsubss": "sub", "vmulss": "mul",
              "vdivss": "div"}
    if name in avx_ss:
        s1 = state.src_f32(ops[0])
        s2 = state.xmm[ops[1].index]
        result = _apply(_ARITH_F, avx_ss[name], s2[0].lane(0), s1)
        state.xmm[ops[2].index] = [s2[0].with_lane(0, result), s2[1]]
        return

    pd = {"addpd": "add", "subpd": "sub", "mulpd": "mul", "divpd": "div"}
    if name in pd:
        src = state.src_halves_f64(ops[0])
        dst = state.xmm[ops[1].index]
        for half in (0, 1):
            dst[half] = _Half(
                "f64", _apply(_ARITH_D, pd[name], dst[half].as_f64(),
                              src[half]))
        return

    ps = {"addps": "add", "subps": "sub", "mulps": "mul", "divps": "div"}
    if name in ps:
        src = state.src_lanes(ops[0])
        dst = state.xmm[ops[1].index]
        lanes = [dst[0].lane(0), dst[0].lane(1), dst[1].lane(0),
                 dst[1].lane(1)]
        out = [_apply(_ARITH_F, ps[name], lanes[j], src[j]) for j in range(4)]
        dst[0] = _Half("f32pair", (out[0], out[1]))
        dst[1] = _Half("f32pair", (out[2], out[3]))
        return

    fma = {"vfmadd132sd": "132", "vfmadd213sd": "213", "vfmadd231sd": "231"}
    if name in fma:
        o1 = state.src_f64(ops[0])
        o2 = state.xmm[ops[1].index][0].as_f64()
        dst = state.xmm[ops[2].index]
        d = dst[0].as_f64()
        order = fma[name]
        if order == "132":
            prod, addend = _apply(_ARITH_D, "mul", d, o1), o2
        elif order == "213":
            prod, addend = _apply(_ARITH_D, "mul", o2, d), o1
        else:
            prod, addend = _apply(_ARITH_D, "mul", o2, o1), d
        # A fused result is at least as accurate as the two-op interval.
        dst[0] = _Half("f64", _apply(_ARITH_D, "add", prod, addend))
        return

    if name == "movsd":
        src, dst = ops
        if isinstance(dst, Mem):
            value = state.xmm[src.index][0].as_f64()
            state.mem_stores[state.addr(dst)] = ("f64", value)
        elif isinstance(src, Mem):
            state.xmm[dst.index] = [state.load_half64(state.addr(src)),
                                    _Half.bits(0)]
        else:
            state.xmm[dst.index][0] = state.xmm[src.index][0]
        return

    if name == "movss":
        src, dst = ops
        if isinstance(dst, Mem):
            value = state.xmm[src.index][0].lane(0)
            state.mem_stores[state.addr(dst)] = ("f32", value)
        elif isinstance(src, Mem):
            value = state.load_f32(state.addr(src))
            state.xmm[dst.index] = [
                _Half("f32pair", (value, IntervalD.point(0.0))),
                _Half.bits(0),
            ]
        else:
            value = state.xmm[src.index][0].lane(0)
            state.xmm[dst.index][0] = state.xmm[dst.index][0].with_lane(0, value)
        return

    if name in ("movapd", "movaps", "movdqa", "movups", "movdqu", "lddqu"):
        src, dst = ops
        if isinstance(dst, Mem):
            raise IntervalUnsupported("128-bit store")
        if isinstance(src, Mem):
            lanes = state.src_lanes(src)
            state.xmm[dst.index] = [_Half("f32pair", (lanes[0], lanes[1])),
                                    _Half("f32pair", (lanes[2], lanes[3]))]
        else:
            state.xmm[dst.index] = [
                state.xmm[src.index][0], state.xmm[src.index][1]
            ]
        return

    if name == "movddup":
        src = state.src_f64(ops[0])
        state.xmm[ops[1].index] = [_Half("f64", src), _Half("f64", src)]
        return

    if name == "movq":
        src, dst = ops
        if isinstance(dst, Xmm) and isinstance(src, Imm):
            state.xmm[dst.index] = [_Half.bits(src.value), _Half.bits(0)]
            return
        if isinstance(dst, Xmm) and isinstance(src, Mem):
            state.xmm[dst.index] = [state.load_half64(state.addr(src)),
                                    _Half.bits(0)]
            return
        if isinstance(dst, Mem) and isinstance(src, Xmm):
            state.mem_stores[state.addr(dst)] = (
                "f64", state.xmm[src.index][0].as_f64())
            return
        if isinstance(dst, Reg64) and isinstance(src, Xmm):
            # Bit extraction: reinterpret the low double's bit pattern.
            state.set_gp(dst, _pattern_of_half(state, state.xmm[src.index][0]))
            return
        if isinstance(dst, Xmm) and isinstance(src, (Reg64, Reg32)):
            # Bit injection: reinterpret a GP pattern as the low double.
            state.xmm[dst.index] = [
                _half_of_pattern(state, state.gp_operand(src)),
                _Half.bits(0),
            ]
            return
        raise IntervalUnsupported("movq form outside the FP fragment")

    if name == "movd":
        src, dst = ops
        if isinstance(dst, Xmm):
            if isinstance(src, Imm):
                bits = src.value & 0xFFFFFFFF
            elif isinstance(src, (Reg32, Reg64)):
                value = state.gp[src.index]
                if value is TOP:
                    raise IntervalUnsupported("movd from symbolic register")
                bits = value & 0xFFFFFFFF
            else:
                raise IntervalUnsupported("movd from memory")
            state.xmm[dst.index] = [_Half.bits(bits), _Half.bits(0)]
            return
        raise IntervalUnsupported("movd to GP register")

    if name in ("mov", "movabs"):
        src, dst = ops
        if isinstance(dst, (Reg64, Reg32)) and isinstance(src, Imm):
            mask = M64 if isinstance(dst, Reg64) else M32
            state.gp[dst.index] = src.value & mask
            return
        if isinstance(dst, (Reg64, Reg32)) and isinstance(src, (Reg64, Reg32)):
            state.set_gp(dst, state.gp_operand(src))
            return
        raise IntervalUnsupported("mov form outside the FP fragment")

    if name == "lea":
        state.gp[ops[1].index] = state.addr(ops[0])
        return

    if name == "punpckldq":
        src, dst = ops
        s = state.src_lanes(src) if not isinstance(src, Mem) else \
            state.src_lanes(src)
        d = state.xmm[dst.index]
        d0, d1 = d[0].lane(0), d[0].lane(1)
        state.xmm[dst.index] = [_Half("f32pair", (d0, s[0])),
                                _Half("f32pair", (d1, s[1]))]
        return

    if name == "unpcklpd":
        src, dst = ops
        lo = state.src_f64(src)
        state.xmm[dst.index][1] = _Half("f64", lo)
        return

    if name == "unpckhpd":
        src, dst = ops
        halves = state.src_halves_f64(src)
        d = state.xmm[dst.index]
        state.xmm[dst.index] = [_Half("f64", d[1].as_f64()),
                                _Half("f64", halves[1])]
        return

    if name == "cvtss2sd":
        src = state.src_f32(ops[0])
        state.xmm[ops[1].index][0] = _Half("f64", src)
        return

    if name == "cvtsd2ss":
        src = state.src_f64(ops[0])
        if src is TOP:
            value = TOP
        else:
            value = IntervalD(_down32(src.lo), _up32(src.hi))
        dst = state.xmm[ops[1].index]
        dst[0] = dst[0].with_lane(0, value)
        return

    # ---- integer / bit-level fragment (libimf exp & log) ----------------

    if name in ("add", "sub", "imul", "and", "or", "xor"):
        _exec_int_binop(state, name, ops)
        return

    if name in ("shl", "shr", "sar"):
        _exec_shift(state, name, ops)
        return

    if name in ("xorpd", "xorps", "pxor"):
        src, dst = ops
        if isinstance(src, Xmm) and src.index == dst.index:
            state.xmm[dst.index] = [_Half.bits(0), _Half.bits(0)]
            return
        raise IntervalUnsupported(f"{name} outside the zeroing idiom")

    if name in ("ucomisd", "ucomiss"):
        src_op, dst_op = ops
        if name == "ucomisd":
            src = state.src_f64(src_op)
            dst = state.xmm[dst_op.index][0].as_f64()
        else:
            src = state.src_f32(src_op)
            dst = state.xmm[dst_op.index][0].lane(0)
        state.cmp = (dst, src)
        return

    if name in ("cmp", "test"):
        # GP flags: unknown to this domain; cmovs after this must join.
        state.cmp = None
        return

    if name.startswith("cmov"):
        _exec_cmov(state, name[4:], ops)
        return

    if name in ("cvtsd2si", "cvttsd2si"):
        src_op, dst_op = ops
        if not isinstance(dst_op, Reg64):
            raise IntervalUnsupported(f"32-bit {name} destination")
        src = state.src_f64(src_op)
        if src is TOP:
            state.set_gp(dst_op, TOP)
            return
        rounder = _round_half_even if name == "cvtsd2si" else math.trunc
        lo = _rounded_int(src.lo, rounder)
        hi = _rounded_int(src.hi, rounder)
        if lo == hi:
            state.stats.concrete_bit_ops += 1
            state.set_gp(dst_op, lo & M64)
        else:
            # Both rounding modes are monotone, so endpoint images bound
            # every image in between.
            state.stats.widened_bit_ops += 1
            state.set_gp(dst_op, IntInterval(lo, hi))
        return

    if name == "cvtsi2sd":
        src_op, dst_op = ops
        if isinstance(src_op, Mem):
            raise IntervalUnsupported("cvtsi2sd from memory")
        value = state.gp_operand(src_op)
        if value is TOP:
            state.xmm[dst_op.index][0] = _Half("f64", TOP)
            return
        if isinstance(value, int):
            state.stats.concrete_bit_ops += 1
            bits = cvtsi2sd64(value) if isinstance(src_op, Reg64) \
                else cvtsi2sd32(value)
            state.xmm[dst_op.index][0] = _Half.bits(bits)
            return
        state.stats.widened_bit_ops += 1
        lo, hi = float(value.lo), float(value.hi)
        # float(int) rounds to nearest; push outward unless exact.
        if int(lo) != value.lo:
            lo = _down(lo)
        if int(hi) != value.hi:
            hi = _up(hi)
        state.xmm[dst_op.index][0] = _Half("f64", IntervalD(lo, hi))
        return

    raise IntervalUnsupported(
        f"opcode {name} outside the interval-analyzable fragment"
    )


def _apply_reg_input(state: _IntervalState, loc: Loc, kind: str,
                     interval: IntervalD) -> None:
    idx = XMM_INDEX[loc.reg]
    if kind == "f64":
        state.xmm[idx][loc.lane] = _Half("f64", interval)
    else:
        half = state.xmm[idx][loc.lane // 2]
        state.xmm[idx][loc.lane // 2] = half.with_lane(loc.lane % 2,
                                                       interval)


def _run_interval(program: Program, mem: Memory,
                  concrete_gp: Dict[int, int],
                  mem_inputs, reg_inputs,
                  stats: Optional[TransferStats] = None) -> _IntervalState:
    state = _IntervalState(mem, concrete_gp, mem_inputs, stats)
    for loc, (kind, interval) in reg_inputs.items():
        _apply_reg_input(state, loc, kind, interval)
    for instr in program.slots:
        _exec_interval(state, instr)
    return state


class _StateSnapshot:
    """Copy-on-capture image of an abstract state at a step boundary.

    Used by prefix sharing: the right child of a split restores this
    snapshot (taken on the left child just before the first step that
    can depend on the split dimension), re-applies its own input
    interval for the split dimension, and runs only the suffix.
    """

    __slots__ = ("gp", "xmm", "mem_stores", "cmp")

    @classmethod
    def capture(cls, state: _IntervalState) -> "_StateSnapshot":
        snap = cls()
        snap.gp = list(state.gp)
        snap.xmm = [list(pair) for pair in state.xmm]
        snap.mem_stores = dict(state.mem_stores)
        snap.cmp = state.cmp
        return snap

    def restore(self, mem: Memory, mem_inputs,
                stats: TransferStats) -> _IntervalState:
        state = _IntervalState.__new__(_IntervalState)
        state.gp = list(self.gp)
        state.xmm = [list(pair) for pair in self.xmm]
        state.mem = mem
        state.mem_inputs = mem_inputs
        state.mem_stores = dict(self.mem_stores)
        state.stats = stats
        state.cmp = self.cmp
        return state


def _read_output(state: _IntervalState, loc: Location):
    if isinstance(loc, MemLoc):
        seg = state.mem.segment(loc.segment)
        addr = seg.base + loc.offset
        kind, value = state.mem_stores.get(addr, (None, None))
        if kind is None:
            kind2, raw = state._mem_value(addr, loc.width // 8)
            if kind2 == "bits":
                x = u2d(raw) if loc.ftype == "f64" else u2f(raw)
                return IntervalD.point(x)
            return raw if raw is not None else TOP
        return value
    xmm = state.xmm[XMM_INDEX[loc.reg]]
    if loc.ftype == "f64":
        return xmm[loc.lane].as_f64()
    return xmm[loc.lane // 2].lane(loc.lane % 2)


def _interval_ulp_pair(loc: Location, a, b) -> float:
    """Sound max ULP distance between any u in a and v in b."""
    if a is TOP or b is TOP:
        raise IntervalUnsupported(f"live-out {loc} is unbounded (TOP)")
    dist = ulp_distance_single if loc.ftype == "f32" else ulp_distance
    return float(max(dist(a.lo, b.hi), dist(a.hi, b.lo)))


# Dimension storage keys (must match repro.verify.compile): the coarse
# memory key plus ('x', xmm_index) per register.
_MEM_KEY = "mem"

# A unit result as shipped between engine and workers:
# (bound, per_loc_or_None, (boxes, concrete, widened), error_or_None).
UnitResult = Tuple[float, Optional[Dict[str, float]],
                   Tuple[int, int, int], Optional[str]]


def _merge_op_seconds(a: Optional[Dict[str, float]],
                      b: Optional[Dict[str, float]]
                      ) -> Optional[Dict[str, float]]:
    if not a:
        return b or None
    if not b:
        return a
    merged = dict(a)
    for op, secs in b.items():
        merged[op] = merged.get(op, 0.0) + secs
    return merged


class IntervalTransfer:
    """Box -> sound ULP-bound transfer shared by the search and checker.

    Instances hold the two programs, the live-out locations, and the
    bit-space dimensions; :meth:`analyze` maps a :class:`BitBox` to a
    bound that **sums** per-live-out ULP distances, matching the
    validator's Equation 13 error.  The branch-and-bound driver
    (:mod:`repro.verify.bnb`) and the certificate checker
    (:mod:`repro.verify.checker`) both call this class, so a bug in the
    search loop cannot silently weaken a certificate.

    Construction compiles both programs once into per-instruction
    transfer closures (:mod:`repro.verify.compile`); analyzing a box is
    then a plain loop over prebound closures.  The original dispatching
    interpreter survives as :meth:`analyze_interpretive` — the reference
    engine and the differential tests run both paths and demand
    identical bounds, stats, and error strings.
    """

    def __init__(self, target: Program, rewrite: Program,
                 live_outs: Sequence[Union[str, Location]],
                 ranges: Dict[Union[str, Location], Tuple[float, float]],
                 memory: Optional[Memory] = None,
                 concrete_gp: Optional[Dict[int, int]] = None,
                 profile: bool = False):
        from repro.verify.compile import compile_transfer

        self.target = target
        self.rewrite = rewrite
        self.live_outs = tuple(str(loc) for loc in live_outs)
        self.locations = resolve_locations(live_outs)
        self.dims: Tuple[Dim, ...] = dims_of(ranges)
        self.memory = memory if memory is not None else Memory()
        self.concrete_gp = dict(concrete_gp or {})
        self.stats = TransferStats()
        self.profile = bool(profile)
        self._plans = (compile_transfer(target, profile=self.profile),
                       compile_transfer(rewrite, profile=self.profile))
        # first step of each program that can depend on each dimension
        self._first_touch = [
            [plan.first_touch(self._dim_key(d)) for d in self.dims]
            for plan in self._plans
        ]
        self.op_histogram: Dict[str, int] = {}
        for plan in self._plans:
            for op, n in plan.histogram.items():
                self.op_histogram[op] = self.op_histogram.get(op, 0) + n

    @staticmethod
    def _dim_key(d: Dim):
        if isinstance(d.loc, MemLoc):
            return _MEM_KEY
        return ("x", XMM_INDEX[d.loc.reg])

    @property
    def root(self) -> BitBox:
        return full_box(self.dims)

    # -- input/output plumbing --------------------------------------------

    def _inputs_of(self, value_box: Sequence[Tuple[float, float]]):
        mem_inputs: Dict[Tuple[str, int], Tuple[str, IntervalD]] = {}
        reg_inputs: Dict[Loc, Tuple[str, IntervalD]] = {}
        for d, (lo, hi) in zip(self.dims, value_box):
            interval = IntervalD(min(lo, hi), max(lo, hi))
            if isinstance(d.loc, MemLoc):
                mem_inputs[(d.loc.segment, d.loc.offset)] = (d.ftype, interval)
            else:
                reg_inputs[d.loc] = (d.ftype, interval)
        return mem_inputs, reg_inputs

    def _fresh_state(self, mem_inputs, reg_inputs,
                     stats: TransferStats) -> _IntervalState:
        state = _IntervalState(self.memory, self.concrete_gp, mem_inputs,
                               stats)
        for loc, (kind, interval) in reg_inputs.items():
            _apply_reg_input(state, loc, kind, interval)
        return state

    def _outputs(self, t_state: _IntervalState, r_state: _IntervalState,
                 inputs=None):
        """Sound (total, per-live-out) ULP bounds from two final states.

        ``inputs`` is the ``(mem_inputs, reg_inputs)`` pair the states
        were built from; the separate domain ignores it, the relational
        domain (:mod:`repro.verify.relational`) re-evaluates its paired
        expression DAGs over it.
        """
        per_loc: Dict[str, float] = {}
        total = 0.0
        for loc in self.locations:
            t_out = _read_output(t_state, loc)
            r_out = _read_output(r_state, loc)
            bound = _interval_ulp_pair(loc, t_out, r_out)
            per_loc[str(loc)] = bound
            total += bound
        return total, per_loc

    # -- compiled path -----------------------------------------------------

    def analyze(self, box: BitBox) -> Tuple[float, Dict[str, float]]:
        return self.analyze_values(box.value_box(self.dims))

    def analyze_values(
        self, value_box: Sequence[Tuple[float, float]]
    ) -> Tuple[float, Dict[str, float]]:
        """Sound (bound, per-live-out bounds) over a closed value box.

        Accumulates into :attr:`stats` on success (the checker's
        accounting contract).
        """
        t0 = time.perf_counter()
        stats = TransferStats(boxes=1)
        mem_inputs, reg_inputs = self._inputs_of(value_box)
        states = []
        for plan in self._plans:
            state = self._fresh_state(mem_inputs, reg_inputs, stats)
            for fn in plan.steps:
                fn(state)
            states.append(state)
        total, per_loc = self._outputs(states[0], states[1],
                                       (mem_inputs, reg_inputs))
        stats.op_counts = dict(self.op_histogram)
        stats.transfer_seconds = time.perf_counter() - t0
        self.stats.merge(stats)
        return total, per_loc

    def analyze_with_stats(
        self, box: BitBox
    ) -> Tuple[float, Dict[str, float], TransferStats]:
        """Compiled analysis with a private stats object (no merge)."""
        stats = TransferStats(boxes=1)
        mem_inputs, reg_inputs = self._inputs_of(box.value_box(self.dims))
        states = []
        for plan in self._plans:
            state = self._fresh_state(mem_inputs, reg_inputs, stats)
            for fn in plan.steps:
                fn(state)
            states.append(state)
        total, per_loc = self._outputs(states[0], states[1],
                                       (mem_inputs, reg_inputs))
        return total, per_loc, stats

    def analyze_interpretive(
        self, box: BitBox
    ) -> Tuple[float, Dict[str, float], TransferStats]:
        """Reference path: the original per-instruction dispatcher.

        Faithful to the historical engine including its cost model: the
        memory image is copied per program per box, as the original
        ``analyze`` did (states never mutate Memory — stores land in the
        ``mem_stores`` overlay — so the copies are semantically inert,
        and the compiled path drops them).
        """
        stats = TransferStats(boxes=1)
        mem_inputs, reg_inputs = self._inputs_of(box.value_box(self.dims))
        t_state = _run_interval(self.target, self.memory.copy(),
                                self.concrete_gp, mem_inputs, reg_inputs,
                                stats)
        r_state = _run_interval(self.rewrite, self.memory.copy(),
                                self.concrete_gp, mem_inputs, reg_inputs,
                                stats)
        total, per_loc = self._outputs(t_state, r_state,
                                       (mem_inputs, reg_inputs))
        return total, per_loc, stats

    # -- engine work units -------------------------------------------------

    def analyze_unit(
        self, box: BitBox
    ) -> Tuple[UnitResult, Optional[Dict[str, float]]]:
        """One box as a BnB work unit.

        Failure is data, not control flow: an unsupported program costs
        exactly a ``(1, 0, 0)`` stats delta, matching the historical
        engine (partial bit-op counts of a failed run are dropped).
        """
        try:
            total, per_loc, stats = self.analyze_with_stats(box)
        except IntervalUnsupported as exc:
            return (math.inf, None, (1, 0, 0), str(exc)), None
        return (
            (total, per_loc,
             (stats.boxes, stats.concrete_bit_ops, stats.widened_bit_ops),
             None),
            stats.op_seconds or None,
        )

    def analyze_split(
        self, box: BitBox, dim: int, sharing: bool = True
    ) -> Tuple[UnitResult, UnitResult, Optional[Dict[str, float]]]:
        """Split ``box`` on ``dim`` and analyze both children.

        With ``sharing`` the right child restores the left child's
        abstract state captured just before the first step that can
        depend on the split dimension, swaps in its own input interval,
        and runs only the suffix; every step before that point is
        dimension-independent by construction of the touch sets, so the
        result — bound, per-location map, and stats delta — is
        bit-identical to two from-scratch analyses.
        """
        left, right = box.split(dim)
        if sharing:
            # Sharing only pays once the skipped prefix outweighs the
            # snapshot copy; below that, run both children from scratch
            # (the results are identical either way — pinned by tests —
            # so this gate is purely a performance heuristic).
            saved = sum(touch[dim] for touch in self._first_touch)
            if saved < 6:
                sharing = False
        if not sharing:
            l_res, l_secs = self.analyze_unit(left)
            r_res, r_secs = self.analyze_unit(right)
            return l_res, r_res, _merge_op_seconds(l_secs, r_secs)

        d = self.dims[dim]
        l_mem, l_reg = self._inputs_of(left.value_box(self.dims))
        r_mem, r_reg = self._inputs_of(right.value_box(self.dims))

        l_stats = TransferStats(boxes=1)
        snaps: List[Optional[Tuple[_StateSnapshot, int, int]]] = [None, None]
        states: List[Optional[_IntervalState]] = [None, None]
        l_res: Optional[UnitResult] = None
        for p, plan in enumerate(self._plans):
            k = self._first_touch[p][dim]
            state = self._fresh_state(l_mem, l_reg, l_stats)
            c0 = l_stats.concrete_bit_ops
            w0 = l_stats.widened_bit_ops
            steps = plan.steps
            try:
                for fn in steps[:k]:
                    fn(state)
                snaps[p] = (_StateSnapshot.capture(state),
                            l_stats.concrete_bit_ops - c0,
                            l_stats.widened_bit_ops - w0)
                for fn in steps[k:]:
                    fn(state)
            except IntervalUnsupported as exc:
                l_res = (math.inf, None, (1, 0, 0), str(exc))
                break
            states[p] = state
        if l_res is None:
            try:
                total, per_loc = self._outputs(states[0], states[1],
                                               (l_mem, l_reg))
                l_res = (total, per_loc,
                         (1, l_stats.concrete_bit_ops,
                          l_stats.widened_bit_ops), None)
            except IntervalUnsupported as exc:
                l_res = (math.inf, None, (1, 0, 0), str(exc))

        r_stats = TransferStats(boxes=1)
        r_value = None if isinstance(d.loc, MemLoc) else r_reg[d.loc]
        states = [None, None]
        r_res: Optional[UnitResult] = None
        for p, plan in enumerate(self._plans):
            steps = plan.steps
            try:
                snap = snaps[p]
                if snap is None:
                    # The left child failed before this program's
                    # snapshot point; run the right child from scratch.
                    state = self._fresh_state(r_mem, r_reg, r_stats)
                    for fn in steps:
                        fn(state)
                else:
                    snapshot, prefix_concrete, prefix_widened = snap
                    state = snapshot.restore(self.memory, r_mem, r_stats)
                    r_stats.concrete_bit_ops += prefix_concrete
                    r_stats.widened_bit_ops += prefix_widened
                    if r_value is not None:
                        _apply_reg_input(state, d.loc, r_value[0], r_value[1])
                    for fn in steps[self._first_touch[p][dim]:]:
                        fn(state)
            except IntervalUnsupported as exc:
                r_res = (math.inf, None, (1, 0, 0), str(exc))
                break
            states[p] = state
        if r_res is None:
            try:
                total, per_loc = self._outputs(states[0], states[1],
                                               (r_mem, r_reg))
                r_res = (total, per_loc,
                         (1, r_stats.concrete_bit_ops,
                          r_stats.widened_bit_ops), None)
            except IntervalUnsupported as exc:
                r_res = (math.inf, None, (1, 0, 0), str(exc))

        op_seconds = _merge_op_seconds(l_stats.op_seconds or None,
                                       r_stats.op_seconds or None)
        return l_res, r_res, op_seconds


@dataclass
class IntervalBound:
    """Result of the static error-bound analysis."""

    bound_ulps: float
    boxes_explored: int
    per_location: Dict[str, float]
    boxes_pruned: int = 0
    concrete_bit_ops: int = 0
    widened_bit_ops: int = 0
    complete: bool = True


def interval_ulp_bound(
    target: Program,
    rewrite: Program,
    live_outs: Sequence[Union[str, Location]],
    ranges: Dict[Union[str, Location], Tuple[float, float]],
    memory: Optional[Memory] = None,
    concrete_gp: Optional[Dict[int, int]] = None,
    max_boxes: int = 256,
) -> IntervalBound:
    """Sound ULP bound between two programs over an input box.

    Thin synchronous wrapper over the branch-and-bound verifier
    (:class:`repro.verify.bnb.BnBVerifier`): bit-space
    widest-ULP-dimension splitting, worst-box-first refinement, bound =
    max over leaf boxes of the summed per-live-out distances.
    """
    from repro.verify.bnb import BnBConfig, BnBVerifier

    verifier = BnBVerifier(target, rewrite, live_outs, ranges,
                           memory=memory, concrete_gp=concrete_gp)
    result = verifier.run(BnBConfig(max_boxes=max_boxes, jobs=1))
    if not result.complete and not math.isfinite(result.bound_ulps):
        # Legacy contract: an unanalyzable program raises rather than
        # returning a vacuous infinite bound.  (The BnB API itself
        # reports incompleteness through the result/certificate.)
        raise IntervalUnsupported(
            "program leaves the interval-analyzable fragment on "
            "unsplittable boxes")
    return IntervalBound(
        bound_ulps=result.bound_ulps,
        boxes_explored=result.boxes_explored,
        per_location=result.per_location,
        boxes_pruned=result.boxes_pruned,
        concrete_bit_ops=result.stats.concrete_bit_ops,
        widened_bit_ops=result.stats.widened_bit_ops,
        complete=result.complete,
    )
