"""Interval abstract interpretation with outward rounding.

A sound but coarse static analysis in the spirit of the range-based
abstract interpreters the paper compares against (Section 6.3): each
floating-point value is tracked as a closed interval with endpoints
rounded outward one ULP after every operation, and a ULP error bound
between target and rewrite is derived from the output intervals (refined
by adaptive subdivision of the input box).

As in the paper, the analysis *cannot* handle bit-level operations on
non-constant data — running it on the libimf kernels raises
:class:`IntervalUnsupported`, while the pure-FP aek camera-perturbation
kernel analyzes fine but yields a bound orders of magnitude above the one
MCMC validation finds (1363.5 vs 5 ULPs in the paper).
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.fp.ulp import ulp_distance, ulp_distance_single
from repro.x86.locations import Loc, MemLoc
from repro.x86.memory import Memory
from repro.x86.operands import Imm, Mem, Reg32, Reg64, Xmm
from repro.x86.program import Program
from repro.x86.registers import XMM_INDEX
from repro.x86.scalar import u2d, u2f

from repro.core.runner import Location, resolve_locations


class IntervalUnsupported(Exception):
    """The program is outside the interval analysis' reach."""


TOP = "top"


@dataclass(frozen=True)
class IntervalD:
    """A closed interval of doubles."""

    lo: float
    hi: float

    def __post_init__(self):
        if math.isnan(self.lo) or math.isnan(self.hi) or self.lo > self.hi:
            raise IntervalUnsupported(f"bad interval [{self.lo}, {self.hi}]")

    @classmethod
    def point(cls, x: float) -> "IntervalD":
        return cls(x, x)


def _down(x: float) -> float:
    return x if math.isinf(x) else math.nextafter(x, -math.inf)


def _up(x: float) -> float:
    return x if math.isinf(x) else math.nextafter(x, math.inf)


def _down32(x: float) -> float:
    f = np.float32(x)
    return float(np.nextafter(f, np.float32(-np.inf))) if np.isfinite(f) \
        else float(f)


def _up32(x: float) -> float:
    f = np.float32(x)
    return float(np.nextafter(f, np.float32(np.inf))) if np.isfinite(f) \
        else float(f)


class _Arith:
    """Directed-rounding interval arithmetic, parameterized by precision."""

    def __init__(self, single: bool):
        self.round_down = _down32 if single else _down
        self.round_up = _up32 if single else _up

    def add(self, a: IntervalD, b: IntervalD) -> IntervalD:
        return IntervalD(self.round_down(a.lo + b.lo),
                         self.round_up(a.hi + b.hi))

    def sub(self, a: IntervalD, b: IntervalD) -> IntervalD:
        return IntervalD(self.round_down(a.lo - b.hi),
                         self.round_up(a.hi - b.lo))

    def mul(self, a: IntervalD, b: IntervalD) -> IntervalD:
        products = [a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi]
        products = [0.0 if math.isnan(p) else p for p in products]
        return IntervalD(self.round_down(min(products)),
                         self.round_up(max(products)))

    def div(self, a: IntervalD, b: IntervalD) -> IntervalD:
        if b.lo <= 0.0 <= b.hi:
            return IntervalD(-math.inf, math.inf)
        quotients = [a.lo / b.lo, a.lo / b.hi, a.hi / b.lo, a.hi / b.hi]
        return IntervalD(self.round_down(min(quotients)),
                         self.round_up(max(quotients)))

    def sqrt(self, a: IntervalD) -> IntervalD:
        if a.lo < 0.0:
            raise IntervalUnsupported("sqrt of possibly-negative interval")
        return IntervalD(self.round_down(math.sqrt(a.lo)),
                         self.round_up(math.sqrt(a.hi)))

    def min(self, a: IntervalD, b: IntervalD) -> IntervalD:
        return IntervalD(min(a.lo, b.lo), min(a.hi, b.hi))

    def max(self, a: IntervalD, b: IntervalD) -> IntervalD:
        return IntervalD(max(a.lo, b.lo), max(a.hi, b.hi))


_ARITH_D = _Arith(single=False)
_ARITH_F = _Arith(single=True)

_OPS = {"add": "add", "sub": "sub", "mul": "mul", "div": "div",
        "min": "min", "max": "max"}


class _Half:
    """One 64-bit XMM half: a double interval, two single-lane values,
    concrete bits, or TOP."""

    __slots__ = ("kind", "value")

    def __init__(self, kind: str, value):
        self.kind = kind  # 'f64' | 'f32pair' | 'bits' | 'top'
        self.value = value

    @classmethod
    def top(cls) -> "_Half":
        return cls("top", None)

    @classmethod
    def bits(cls, value: int) -> "_Half":
        return cls("bits", value & 0xFFFFFFFFFFFFFFFF)

    def as_f64(self) -> Union[IntervalD, str]:
        if self.kind == "f64":
            return self.value
        if self.kind == "bits":
            x = u2d(self.value)
            if math.isnan(x):
                raise IntervalUnsupported("NaN constant")
            return IntervalD.point(x)
        return TOP

    def lane(self, index: int) -> Union[IntervalD, str]:
        """Lane as a float32 interval (index 0 or 1)."""
        if self.kind == "f32pair":
            return self.value[index]
        if self.kind == "bits":
            x = u2f(self.value >> (32 * index))
            if math.isnan(x):
                raise IntervalUnsupported("NaN constant lane")
            return IntervalD.point(x)
        return TOP

    def with_lane(self, index: int, lane_value) -> "_Half":
        lanes = [self.lane(0), self.lane(1)]
        lanes[index] = lane_value
        return _Half("f32pair", tuple(lanes))


class _IntervalState:
    """Abstract machine state."""

    def __init__(self, mem: Memory, concrete_gp: Dict[int, int],
                 mem_inputs: Dict[Tuple[str, int], Tuple[str, IntervalD]]):
        self.gp: List[Union[int, str]] = [TOP] * 16
        for idx, value in concrete_gp.items():
            self.gp[idx] = value
        self.xmm: List[List[_Half]] = [
            [_Half.top(), _Half.top()] for _ in range(16)
        ]
        self.mem = mem
        # (segment, offset) -> ('f32'|'f64', interval)
        self.mem_inputs = mem_inputs
        self.mem_stores: Dict[int, Tuple[str, object]] = {}

    def addr(self, m: Mem) -> int:
        base = self.gp[m.base]
        if base is TOP:
            raise IntervalUnsupported("symbolic base address")
        total = base + m.disp
        if m.index is not None:
            idx = self.gp[m.index]
            if idx is TOP:
                raise IntervalUnsupported("symbolic index register")
            total += idx * m.scale
        return total & 0xFFFFFFFFFFFFFFFF

    def _mem_value(self, addr: int, size: int):
        """('f64'|'f32', interval_or_TOP) or ('bits', int) at an address."""
        if addr in self.mem_stores:
            kind, value = self.mem_stores[addr]
            return kind, value
        seg = self.mem._find(addr, size)
        off = addr - seg.base
        if not seg.writable:
            bits = int.from_bytes(seg.data[off:off + size], "little")
            return "bits", bits
        key = (seg.name, off)
        if key in self.mem_inputs:
            return self.mem_inputs[key]
        return "top", None

    def load_f64(self, addr: int) -> Union[IntervalD, str]:
        kind, value = self._mem_value(addr, 8)
        if kind == "f64":
            return value
        if kind == "bits":
            x = u2d(value)
            if math.isnan(x):
                raise IntervalUnsupported("NaN in memory")
            return IntervalD.point(x)
        return TOP

    def load_half64(self, addr: int) -> "_Half":
        """An 8-byte load as an XMM half: a double, or two stored singles."""
        if addr in self.mem_stores:
            kind, value = self.mem_stores[addr]
            if kind == "f64":
                return _Half("f64", value)
            if kind == "f32" and (addr + 4) in self.mem_stores:
                kind2, value2 = self.mem_stores[addr + 4]
                if kind2 == "f32":
                    return _Half("f32pair", (value, value2))
            raise IntervalUnsupported("mixed-width stack reload")
        kind, value = self._mem_value(addr, 8)
        if kind == "f64":
            return _Half("f64", value)
        if kind == "bits":
            return _Half.bits(value)
        # Fall back to two singles (e.g. a vector in an input segment).
        return _Half("f32pair", (self.load_f32(addr), self.load_f32(addr + 4)))

    def load_f32(self, addr: int) -> Union[IntervalD, str]:
        kind, value = self._mem_value(addr, 4)
        if kind == "f32":
            return value
        if kind == "bits":
            x = u2f(value)
            if math.isnan(x):
                raise IntervalUnsupported("NaN in memory")
            return IntervalD.point(x)
        return TOP

    # source-value readers used by the transfer functions ------------------

    def src_f64(self, operand) -> Union[IntervalD, str]:
        if isinstance(operand, Xmm):
            return self.xmm[operand.index][0].as_f64()
        if isinstance(operand, Mem):
            return self.load_f64(self.addr(operand))
        if isinstance(operand, Imm):
            x = u2d(operand.value)
            if math.isnan(x):
                raise IntervalUnsupported("NaN immediate")
            return IntervalD.point(x)
        raise IntervalUnsupported(f"f64 source {operand!r}")

    def src_f32(self, operand) -> Union[IntervalD, str]:
        if isinstance(operand, Xmm):
            return self.xmm[operand.index][0].lane(0)
        if isinstance(operand, Mem):
            return self.load_f32(self.addr(operand))
        if isinstance(operand, Imm):
            x = u2f(operand.value)
            if math.isnan(x):
                raise IntervalUnsupported("NaN immediate")
            return IntervalD.point(x)
        raise IntervalUnsupported(f"f32 source {operand!r}")

    def src_lanes(self, operand) -> List[Union[IntervalD, str]]:
        """Four float32 lanes of a 128-bit source."""
        if isinstance(operand, Xmm):
            halves = self.xmm[operand.index]
            return [halves[0].lane(0), halves[0].lane(1),
                    halves[1].lane(0), halves[1].lane(1)]
        if isinstance(operand, Mem):
            addr = self.addr(operand)
            return [self.load_f32(addr + 4 * lane) for lane in range(4)]
        raise IntervalUnsupported(f"128-bit source {operand!r}")

    def src_halves_f64(self, operand) -> List[Union[IntervalD, str]]:
        if isinstance(operand, Xmm):
            return [h.as_f64() for h in self.xmm[operand.index]]
        if isinstance(operand, Mem):
            addr = self.addr(operand)
            return [self.load_f64(addr), self.load_f64(addr + 8)]
        raise IntervalUnsupported(f"128-bit source {operand!r}")


def _apply(arith: _Arith, name: str, a, b):
    if a is TOP or b is TOP:
        return TOP
    return getattr(arith, name)(a, b)


def _exec_interval(state: _IntervalState, instr) -> None:
    name = instr.opcode
    ops = instr.operands
    if name == "nop":
        return

    sd = {"addsd": "add", "subsd": "sub", "mulsd": "mul", "divsd": "div",
          "minsd": "min", "maxsd": "max"}
    if name in sd:
        src = state.src_f64(ops[0])
        dst = state.xmm[ops[1].index]
        dst[0] = _Half("f64", _apply(_ARITH_D, sd[name], dst[0].as_f64(), src))
        return
    if name == "sqrtsd":
        src = state.src_f64(ops[0])
        value = TOP if src is TOP else _ARITH_D.sqrt(src)
        state.xmm[ops[1].index][0] = _Half("f64", value)
        return

    ss = {"addss": "add", "subss": "sub", "mulss": "mul", "divss": "div",
          "minss": "min", "maxss": "max"}
    if name in ss:
        src = state.src_f32(ops[0])
        dst = state.xmm[ops[1].index]
        result = _apply(_ARITH_F, ss[name], dst[0].lane(0), src)
        dst[0] = dst[0].with_lane(0, result)
        return
    if name == "sqrtss":
        src = state.src_f32(ops[0])
        value = TOP if src is TOP else _ARITH_F.sqrt(src)
        dst = state.xmm[ops[1].index]
        dst[0] = dst[0].with_lane(0, value)
        return

    avx_sd = {"vaddsd": "add", "vsubsd": "sub", "vmulsd": "mul",
              "vdivsd": "div", "vminsd": "min", "vmaxsd": "max"}
    if name in avx_sd:
        s1 = state.src_f64(ops[0])
        s2 = state.xmm[ops[1].index]
        result = _apply(_ARITH_D, avx_sd[name], s2[0].as_f64(), s1)
        state.xmm[ops[2].index] = [_Half("f64", result), s2[1]]
        return

    avx_ss = {"vaddss": "add", "vsubss": "sub", "vmulss": "mul",
              "vdivss": "div"}
    if name in avx_ss:
        s1 = state.src_f32(ops[0])
        s2 = state.xmm[ops[1].index]
        result = _apply(_ARITH_F, avx_ss[name], s2[0].lane(0), s1)
        state.xmm[ops[2].index] = [s2[0].with_lane(0, result), s2[1]]
        return

    pd = {"addpd": "add", "subpd": "sub", "mulpd": "mul", "divpd": "div"}
    if name in pd:
        src = state.src_halves_f64(ops[0])
        dst = state.xmm[ops[1].index]
        for half in (0, 1):
            dst[half] = _Half(
                "f64", _apply(_ARITH_D, pd[name], dst[half].as_f64(),
                              src[half]))
        return

    ps = {"addps": "add", "subps": "sub", "mulps": "mul", "divps": "div"}
    if name in ps:
        src = state.src_lanes(ops[0])
        dst = state.xmm[ops[1].index]
        lanes = [dst[0].lane(0), dst[0].lane(1), dst[1].lane(0),
                 dst[1].lane(1)]
        out = [_apply(_ARITH_F, ps[name], lanes[j], src[j]) for j in range(4)]
        dst[0] = _Half("f32pair", (out[0], out[1]))
        dst[1] = _Half("f32pair", (out[2], out[3]))
        return

    fma = {"vfmadd132sd": "132", "vfmadd213sd": "213", "vfmadd231sd": "231"}
    if name in fma:
        o1 = state.src_f64(ops[0])
        o2 = state.xmm[ops[1].index][0].as_f64()
        dst = state.xmm[ops[2].index]
        d = dst[0].as_f64()
        order = fma[name]
        if order == "132":
            prod, addend = _apply(_ARITH_D, "mul", d, o1), o2
        elif order == "213":
            prod, addend = _apply(_ARITH_D, "mul", o2, d), o1
        else:
            prod, addend = _apply(_ARITH_D, "mul", o2, o1), d
        # A fused result is at least as accurate as the two-op interval.
        dst[0] = _Half("f64", _apply(_ARITH_D, "add", prod, addend))
        return

    if name == "movsd":
        src, dst = ops
        if isinstance(dst, Mem):
            value = state.xmm[src.index][0].as_f64()
            state.mem_stores[state.addr(dst)] = ("f64", value)
        elif isinstance(src, Mem):
            state.xmm[dst.index] = [state.load_half64(state.addr(src)),
                                    _Half.bits(0)]
        else:
            state.xmm[dst.index][0] = state.xmm[src.index][0]
        return

    if name == "movss":
        src, dst = ops
        if isinstance(dst, Mem):
            value = state.xmm[src.index][0].lane(0)
            state.mem_stores[state.addr(dst)] = ("f32", value)
        elif isinstance(src, Mem):
            value = state.load_f32(state.addr(src))
            state.xmm[dst.index] = [
                _Half("f32pair", (value, IntervalD.point(0.0))),
                _Half.bits(0),
            ]
        else:
            value = state.xmm[src.index][0].lane(0)
            state.xmm[dst.index][0] = state.xmm[dst.index][0].with_lane(0, value)
        return

    if name in ("movapd", "movaps", "movdqa", "movups", "movdqu", "lddqu"):
        src, dst = ops
        if isinstance(dst, Mem):
            raise IntervalUnsupported("128-bit store")
        if isinstance(src, Mem):
            lanes = state.src_lanes(src)
            state.xmm[dst.index] = [_Half("f32pair", (lanes[0], lanes[1])),
                                    _Half("f32pair", (lanes[2], lanes[3]))]
        else:
            state.xmm[dst.index] = [
                state.xmm[src.index][0], state.xmm[src.index][1]
            ]
        return

    if name == "movddup":
        src = state.src_f64(ops[0])
        state.xmm[ops[1].index] = [_Half("f64", src), _Half("f64", src)]
        return

    if name == "movq":
        src, dst = ops
        if isinstance(dst, Xmm) and isinstance(src, Imm):
            state.xmm[dst.index] = [_Half.bits(src.value), _Half.bits(0)]
            return
        if isinstance(dst, Xmm) and isinstance(src, Mem):
            state.xmm[dst.index] = [state.load_half64(state.addr(src)),
                                    _Half.bits(0)]
            return
        if isinstance(dst, Mem) and isinstance(src, Xmm):
            state.mem_stores[state.addr(dst)] = (
                "f64", state.xmm[src.index][0].as_f64())
            return
        raise IntervalUnsupported("movq form outside the FP fragment")

    if name == "movd":
        src, dst = ops
        if isinstance(dst, Xmm):
            if isinstance(src, Imm):
                bits = src.value & 0xFFFFFFFF
            elif isinstance(src, (Reg32, Reg64)):
                value = state.gp[src.index]
                if value is TOP:
                    raise IntervalUnsupported("movd from symbolic register")
                bits = value & 0xFFFFFFFF
            else:
                raise IntervalUnsupported("movd from memory")
            state.xmm[dst.index] = [_Half.bits(bits), _Half.bits(0)]
            return
        raise IntervalUnsupported("movd to GP register")

    if name in ("mov", "movabs"):
        src, dst = ops
        if isinstance(dst, (Reg64, Reg32)) and isinstance(src, Imm):
            mask = 0xFFFFFFFFFFFFFFFF if isinstance(dst, Reg64) else 0xFFFFFFFF
            state.gp[dst.index] = src.value & mask
            return
        if isinstance(dst, (Reg64, Reg32)) and isinstance(src, (Reg64, Reg32)):
            state.gp[dst.index] = state.gp[src.index]
            return
        raise IntervalUnsupported("mov form outside the FP fragment")

    if name == "lea":
        state.gp[ops[1].index] = state.addr(ops[0])
        return

    if name == "punpckldq":
        src, dst = ops
        s = state.src_lanes(src) if not isinstance(src, Mem) else \
            state.src_lanes(src)
        d = state.xmm[dst.index]
        d0, d1 = d[0].lane(0), d[0].lane(1)
        state.xmm[dst.index] = [_Half("f32pair", (d0, s[0])),
                                _Half("f32pair", (d1, s[1]))]
        return

    if name == "unpcklpd":
        src, dst = ops
        lo = state.src_f64(src)
        state.xmm[dst.index][1] = _Half("f64", lo)
        return

    if name == "unpckhpd":
        src, dst = ops
        halves = state.src_halves_f64(src)
        d = state.xmm[dst.index]
        state.xmm[dst.index] = [_Half("f64", d[1].as_f64()),
                                _Half("f64", halves[1])]
        return

    if name == "cvtss2sd":
        src = state.src_f32(ops[0])
        state.xmm[ops[1].index][0] = _Half("f64", src)
        return

    if name == "cvtsd2ss":
        src = state.src_f64(ops[0])
        if src is TOP:
            value = TOP
        else:
            value = IntervalD(_down32(src.lo), _up32(src.hi))
        dst = state.xmm[ops[1].index]
        dst[0] = dst[0].with_lane(0, value)
        return

    raise IntervalUnsupported(
        f"opcode {name} outside the interval-analyzable fragment"
    )


def _run_interval(program: Program, mem: Memory,
                  concrete_gp: Dict[int, int],
                  mem_inputs, reg_inputs) -> _IntervalState:
    state = _IntervalState(mem, concrete_gp, mem_inputs)
    for loc, (kind, interval) in reg_inputs.items():
        idx = XMM_INDEX[loc.reg]
        if kind == "f64":
            state.xmm[idx][loc.lane] = _Half("f64", interval)
        else:
            half = state.xmm[idx][loc.lane // 2]
            state.xmm[idx][loc.lane // 2] = half.with_lane(loc.lane % 2,
                                                           interval)
    for instr in program.slots:
        _exec_interval(state, instr)
    return state


def _read_output(state: _IntervalState, loc: Location):
    if isinstance(loc, MemLoc):
        seg = state.mem.segment(loc.segment)
        addr = seg.base + loc.offset
        kind, value = state.mem_stores.get(addr, (None, None))
        if kind is None:
            kind2, raw = state._mem_value(addr, loc.width // 8)
            if kind2 == "bits":
                x = u2d(raw) if loc.ftype == "f64" else u2f(raw)
                return IntervalD.point(x)
            return raw if raw is not None else TOP
        return value
    xmm = state.xmm[XMM_INDEX[loc.reg]]
    if loc.ftype == "f64":
        return xmm[loc.lane].as_f64()
    return xmm[loc.lane // 2].lane(loc.lane % 2)


def _interval_ulp_pair(loc: Location, a, b) -> float:
    """Sound max ULP distance between any u in a and v in b."""
    if a is TOP or b is TOP:
        raise IntervalUnsupported(f"live-out {loc} is unbounded (TOP)")
    dist = ulp_distance_single if loc.ftype == "f32" else ulp_distance
    return float(max(dist(a.lo, b.hi), dist(a.hi, b.lo)))


@dataclass
class IntervalBound:
    """Result of the static error-bound analysis."""

    bound_ulps: float
    boxes_explored: int
    per_location: Dict[str, float]


def interval_ulp_bound(
    target: Program,
    rewrite: Program,
    live_outs: Sequence[Union[str, Location]],
    ranges: Dict[Union[str, Location], Tuple[float, float]],
    memory: Optional[Memory] = None,
    concrete_gp: Optional[Dict[int, int]] = None,
    max_boxes: int = 256,
) -> IntervalBound:
    """Sound ULP bound between two programs over an input box.

    Adaptively subdivides the input ranges (splitting the box with the
    worst bound along its widest dimension) until ``max_boxes`` boxes have
    been analyzed; the returned bound is the max over leaf boxes.
    """
    locations = resolve_locations(live_outs)
    mem = memory if memory is not None else Memory()
    concrete_gp = dict(concrete_gp or {})

    dims: List[Tuple[Union[Loc, MemLoc], str, float, float]] = []
    for key, (lo, hi) in ranges.items():
        loc = key if isinstance(key, (Loc, MemLoc)) else None
        if loc is None:
            from repro.x86.locations import parse_loc

            loc = parse_loc(key)
        dims.append((loc, loc.ftype, float(lo), float(hi)))

    def analyze(box: Tuple[Tuple[float, float], ...]) -> Tuple[float, Dict[str, float]]:
        mem_inputs = {}
        reg_inputs = {}
        for (loc, ftype, _, _), (lo, hi) in zip(dims, box):
            interval = IntervalD(lo, hi)
            if isinstance(loc, MemLoc):
                mem_inputs[(loc.segment, loc.offset)] = (ftype, interval)
            else:
                reg_inputs[loc] = (ftype, interval)
        t_state = _run_interval(target, mem.copy(), concrete_gp,
                                mem_inputs, reg_inputs)
        r_state = _run_interval(rewrite, mem.copy(), concrete_gp,
                                mem_inputs, reg_inputs)
        per_loc: Dict[str, float] = {}
        worst = 0.0
        for loc in locations:
            t_out = _read_output(t_state, loc)
            r_out = _read_output(r_state, loc)
            bound = _interval_ulp_pair(loc, t_out, r_out)
            per_loc[str(loc)] = bound
            worst = max(worst, bound)
        return worst, per_loc

    initial_box = tuple((lo, hi) for (_, _, lo, hi) in dims)
    bound, per_loc = analyze(initial_box)
    # Max-heap keyed on negative bound.
    counter = itertools.count()
    heap = [(-bound, next(counter), initial_box)]
    explored = 1
    while heap and explored < max_boxes and dims:
        neg_bound, _, box = heapq.heappop(heap)
        widths = [hi - lo for lo, hi in box]
        dim = widths.index(max(widths))
        lo, hi = box[dim]
        if hi - lo <= 0.0:
            heapq.heappush(heap, (neg_bound, next(counter), box))
            break
        mid = (lo + hi) / 2.0
        for half in ((lo, mid), (mid, hi)):
            sub = tuple(half if i == dim else b for i, b in enumerate(box))
            sub_bound, _ = analyze(sub)
            heapq.heappush(heap, (-sub_bound, next(counter), sub))
            explored += 1

    final = -heap[0][0] if heap else bound
    return IntervalBound(bound_ulps=final, boxes_explored=explored,
                         per_location=per_loc)
