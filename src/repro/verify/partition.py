"""Bit-space (ULP-space) boxes for the branch-and-bound verifier.

The E11 unsoundness investigation showed why value-space subdivision
cannot refine the regions that matter: near the aek delta kernel's
``r ≈ 0.5`` input the interesting neighborhood is a handful of ULPs
wide, so its value-space width rounds to ~0 against any normal-range
dimension and widest-dimension splitting never selects it.  This module
instead coordinates boxes by *ordered bit index* (Figure 3's monotone
reinterpretation, :func:`repro.fp.ulp.ordered_from_bits`): every
representable value is one unit wide, denormals occupy as much splitting
real estate as their count deserves, and a box is a product of inclusive
index ranges.

Boxes over bit indices also make partitions *checkable*: a set of leaves
tiles the root box exactly iff the leaf volumes (products of index
counts) sum to the root volume and no two leaves overlap — both checks
are exact integer arithmetic, with no floating-point edge cases
(:func:`check_tiling`, used by :mod:`repro.verify.checker`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Union

from repro.fp.ieee754 import (
    DOUBLE,
    SINGLE,
    bits_to_double,
    bits_to_single,
    double_to_bits,
    single_to_bits,
)
from repro.fp.ulp import bits_from_ordered, ordered_from_bits
from repro.x86.locations import Loc, MemLoc, parse_loc

Location = Union[Loc, MemLoc]

_FMT = {"f32": SINGLE, "f64": DOUBLE}


def index_of(value: float, ftype: str) -> int:
    """Ordered bit index of a representable value."""
    if ftype == "f32":
        return ordered_from_bits(single_to_bits(value), SINGLE)
    return ordered_from_bits(double_to_bits(value), DOUBLE)


def value_of(index: int, ftype: str) -> float:
    """The representable value at an ordered bit index."""
    if ftype == "f32":
        return bits_to_single(bits_from_ordered(index, SINGLE))
    return bits_to_double(bits_from_ordered(index, DOUBLE))


@dataclass(frozen=True)
class Dim:
    """One input dimension of the verification domain."""

    loc: Location
    ftype: str  # 'f32' | 'f64'
    lo_index: int
    hi_index: int

    def __post_init__(self):
        if self.lo_index > self.hi_index:
            raise ValueError(
                f"empty dimension {self.loc}: "
                f"[{self.lo_index}, {self.hi_index}]")


def dims_of(ranges: Dict[Union[str, Location], Tuple[float, float]]
            ) -> Tuple[Dim, ...]:
    """Convert user-facing value ranges into bit-space dimensions.

    Range order is preserved; degenerate (point) ranges become
    zero-width dimensions that are never split.
    """
    dims: List[Dim] = []
    for key, (lo, hi) in ranges.items():
        loc = parse_loc(key) if isinstance(key, str) else key
        ftype = loc.ftype
        if ftype not in _FMT:
            raise ValueError(f"dimension {loc} is not a float location")
        lo_i, hi_i = index_of(float(lo), ftype), index_of(float(hi), ftype)
        if lo_i > hi_i:
            lo_i, hi_i = hi_i, lo_i
        dims.append(Dim(loc=loc, ftype=ftype, lo_index=lo_i, hi_index=hi_i))
    return tuple(dims)


@dataclass(frozen=True)
class BitBox:
    """A product of inclusive ordered-index ranges, one per dimension."""

    bounds: Tuple[Tuple[int, int], ...]

    def width(self, dim: int) -> int:
        """Number of splitting steps left in a dimension (count - 1)."""
        lo, hi = self.bounds[dim]
        return hi - lo

    @property
    def volume(self) -> int:
        """Number of representable input assignments in the box."""
        total = 1
        for lo, hi in self.bounds:
            total *= hi - lo + 1
        return total

    def widest_dim(self) -> int:
        """Index of the widest dimension *in ULP space*."""
        widths = [hi - lo for lo, hi in self.bounds]
        return widths.index(max(widths))

    @property
    def splittable(self) -> bool:
        return any(hi > lo for lo, hi in self.bounds)

    def split(self, dim: int) -> Tuple["BitBox", "BitBox"]:
        """Halve a dimension into two disjoint index ranges."""
        lo, hi = self.bounds[dim]
        if hi <= lo:
            raise ValueError(f"dimension {dim} of {self} is a point")
        mid = (lo + hi) // 2
        left = tuple((lo, mid) if i == dim else b
                     for i, b in enumerate(self.bounds))
        right = tuple((mid + 1, hi) if i == dim else b
                      for i, b in enumerate(self.bounds))
        return BitBox(left), BitBox(right)

    def value_box(self, dims: Sequence[Dim]) -> Tuple[Tuple[float, float], ...]:
        """The box's per-dimension value intervals (closed)."""
        return tuple(
            (value_of(lo, d.ftype), value_of(hi, d.ftype))
            for d, (lo, hi) in zip(dims, self.bounds)
        )

    def contains(self, indices: Sequence[int]) -> bool:
        return all(lo <= i <= hi
                   for (lo, hi), i in zip(self.bounds, indices))


def full_box(dims: Sequence[Dim]) -> BitBox:
    """The root box covering the whole verification domain."""
    return BitBox(tuple((d.lo_index, d.hi_index) for d in dims))


def indices_of_values(values: Sequence[float], dims: Sequence[Dim]
                      ) -> Tuple[int, ...]:
    """Bit-space coordinates of a concrete input assignment."""
    return tuple(index_of(v, d.ftype) for v, d in zip(values, dims))


def _overlap(a: BitBox, b: BitBox) -> bool:
    return all(alo <= bhi and blo <= ahi
               for (alo, ahi), (blo, bhi) in zip(a.bounds, b.bounds))


def check_tiling(root: BitBox, leaves: Sequence[BitBox]) -> List[str]:
    """Verify that ``leaves`` tile ``root`` exactly in bit space.

    Returns a list of human-readable failures (empty means the partition
    is exact): every leaf inside the root, pairwise disjoint, and leaf
    volumes summing to the root volume.  Disjointness plus an exact
    volume sum implies no gaps, so the three checks together establish
    that every representable input lies in exactly one leaf.
    """
    failures: List[str] = []
    if not leaves:
        return ["empty partition"]
    ndims = len(root.bounds)
    total = 0
    for i, leaf in enumerate(leaves):
        if len(leaf.bounds) != ndims:
            failures.append(f"leaf {i} has {len(leaf.bounds)} dims, "
                            f"root has {ndims}")
            return failures
        for d, ((llo, lhi), (rlo, rhi)) in enumerate(
                zip(leaf.bounds, root.bounds)):
            if llo > lhi:
                failures.append(f"leaf {i} dim {d} is empty")
            if llo < rlo or lhi > rhi:
                failures.append(f"leaf {i} dim {d} [{llo}, {lhi}] outside "
                                f"root [{rlo}, {rhi}]")
        total += leaf.volume
    if failures:
        return failures

    # Disjointness: sweep along dimension 0 so only leaves whose first
    # ranges overlap are compared pairwise.
    order = sorted(range(len(leaves)), key=lambda i: leaves[i].bounds[0])
    active: List[int] = []
    for i in order:
        lo0 = leaves[i].bounds[0][0]
        active = [j for j in active if leaves[j].bounds[0][1] >= lo0]
        for j in active:
            if _overlap(leaves[i], leaves[j]):
                failures.append(f"leaves {j} and {i} overlap")
                if len(failures) >= 8:  # enough evidence to reject
                    return failures
        active.append(i)
    if failures:
        return failures

    if total != root.volume:
        failures.append(
            f"leaf volumes sum to {total}, root volume is {root.volume} "
            f"({'gap' if total < root.volume else 'double cover'})")
    return failures


def covered_seed_count(boxes: Sequence[BitBox],
                       seeds: Sequence[Tuple[Sequence[int], float]],
                       bound: float) -> int:
    """Seeds whose observed error the certified bound explains.

    Equivalent to the quadratic ``any(leaf.contains(idx) for leaf in
    leaves)`` scan per seed, but the leaves are grouped by their
    first-dimension interval and looked up by bisection: a seed only
    needs to test groups whose interval can reach its first index
    (``max-hi`` prefix array bounds the leftward walk).  For
    one-dimensional kernels — the common case — group intervals are
    disjoint, so each seed costs one bisect plus one exact test.
    """
    import bisect

    if not seeds or not boxes:
        return 0
    groups: Dict[Tuple[int, int], List[BitBox]] = {}
    for box in boxes:
        groups.setdefault(box.bounds[0], []).append(box)
    intervals = sorted(groups)
    los = [iv[0] for iv in intervals]
    max_hi: List[int] = []
    running = intervals[0][1]
    for iv in intervals:
        running = max(running, iv[1])
        max_hi.append(running)
    covered = 0
    for idx, err in seeds:
        if not err <= bound:  # NaN-safe: matches the historical scan
            continue
        first = idx[0]
        j = bisect.bisect_right(los, first) - 1
        while j >= 0 and max_hi[j] >= first:
            if intervals[j][1] >= first and any(
                    box.contains(idx) for box in groups[intervals[j]]):
                covered += 1
                break
            j -= 1
    return covered
