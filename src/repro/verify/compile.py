"""Translate-once compilation of the interval abstract interpreter.

:func:`compile_transfer` lowers a :class:`~repro.x86.program.Program`
into a list of per-instruction *transfer closures* — the abstract-domain
analogue of :mod:`repro.x86.vector`'s vectorize-once design.  Operand
shapes are resolved and immediates decoded exactly once per program, so
analyzing a box is a plain loop over prebound closures instead of an
opcode/isinstance dispatch per instruction per box.

Each compiled step also records which *dimension storage keys* it can
read or write: ``('x', i)`` for XMM register ``i`` and the coarse key
``'mem'`` for any data-memory access.  :meth:`TransferPlan.first_touch`
turns those sets into the index of the first step whose behaviour can
depend on a given input dimension, which is what lets the two children
of a branch-and-bound split share the parent's abstract state up to
that step (see :meth:`repro.verify.interval.IntervalTransfer.
analyze_split`).  Dependence can only *originate* at a step that
directly accesses the dimension's register or memory: GP registers
start concrete-or-TOP, so a GP-only instruction before the first direct
access is necessarily dimension-independent.  Writes count as touches
too — a clobber of the dimension's register must invalidate the shared
prefix, otherwise re-applying the right child's input after the
snapshot would resurrect a dead input.

The closures replicate :func:`repro.verify.interval._exec_interval`
bit-for-bit, including operand evaluation order, error messages, and
``TransferStats`` accounting; compile-time-detectable unsupported forms
become closures that raise at *run* time so failure timing matches the
interpretive path.  ``tests/verify/test_transfer_compile.py`` pins the
equivalence differentially.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.x86.operands import Imm, Mem, Reg32, Reg64, Xmm
from repro.x86.program import Program
from repro.x86.scalar import cvtsi2sd32, cvtsi2sd64, u2d, u2f

from repro.verify.interval import (
    _ARITH_D,
    _ARITH_F,
    _Half,
    _IntervalState,
    IntInterval,
    IntervalD,
    IntervalUnsupported,
    M32,
    M64,
    TOP,
    _down,
    _down32,
    _exec_cmov,
    _exec_int_binop,
    _exec_interval,
    _exec_shift,
    _half_of_pattern,
    _pattern_of_half,
    _rounded_int,
    _round_half_even,
    _up,
    _up32,
)

# A transfer step mutates the abstract state in place.
Step = Callable[[_IntervalState], None]

# Dimension storage keys: ('x', xmm_index) or the coarse 'mem' key.
MEM_KEY = "mem"

_NO_TOUCH: FrozenSet = frozenset()

# Shared immutable constants (states never mutate _Half objects).
_ZERO_BITS = _Half.bits(0)
_POINT_ZERO_F32 = IntervalD.point(0.0)


def _x(index: int) -> Tuple[str, int]:
    return ("x", index)


@dataclass
class TransferPlan:
    """A program compiled to transfer closures plus dependence metadata.

    ``touches[i]`` is the set of dimension storage keys step ``i`` may
    read or write, or ``None`` for a conservative "touches everything"
    step (the interpretive fallback).  ``histogram`` counts compiled
    steps per opcode (``nop`` slots are dropped at compile time).
    """

    steps: List[Step] = field(default_factory=list)
    opcodes: List[str] = field(default_factory=list)
    touches: List[Optional[FrozenSet]] = field(default_factory=list)
    histogram: Dict[str, int] = field(default_factory=dict)

    def first_touch(self, key) -> int:
        """Index of the first step that may depend on ``key``.

        ``len(steps)`` means no step touches it (the shared prefix is
        the whole program; live-out reads happen after every step and
        are handled by the caller re-applying the dimension's input to
        the restored state).
        """
        for i, touch in enumerate(self.touches):
            if touch is None or key in touch:
                return i
        return len(self.steps)


def compile_transfer(program: Program, profile: bool = False) -> TransferPlan:
    plan = TransferPlan()
    for instr in program.slots:
        if instr.opcode == "nop":
            continue
        fn, touch = _compile_instr(instr)
        if profile:
            fn = _profiled(instr.opcode, fn)
        plan.steps.append(fn)
        plan.opcodes.append(instr.opcode)
        plan.touches.append(touch)
        plan.histogram[instr.opcode] = plan.histogram.get(instr.opcode, 0) + 1
    return plan


def _profiled(opcode: str, fn: Step) -> Step:
    timer = time.perf_counter

    def step(state: _IntervalState) -> None:
        t0 = timer()
        try:
            fn(state)
        finally:
            seconds = state.stats.op_seconds
            seconds[opcode] = seconds.get(opcode, 0.0) + (timer() - t0)

    return step


def _raising(message: str) -> Step:
    def step(state: _IntervalState) -> None:
        raise IntervalUnsupported(message)

    return step


# --------------------------------------------------------------------------
# Source-operand readers: resolve the operand shape once, return a
# closure plus the dimension keys it touches.


def _f64_reader(operand):
    if isinstance(operand, Xmm):
        index = operand.index

        def read(state):
            return state.xmm[index][0].as_f64()

        return read, frozenset({_x(index)})
    if isinstance(operand, Mem):

        def read(state, m=operand):
            return state.load_f64(state.addr(m))

        return read, frozenset({MEM_KEY})
    if isinstance(operand, Imm):
        x = u2d(operand.value)
        if math.isnan(x):
            def read(state):
                raise IntervalUnsupported("NaN immediate")

            return read, _NO_TOUCH
        interval = IntervalD.point(x)
        return (lambda state: interval), _NO_TOUCH

    def read(state, op=operand):
        raise IntervalUnsupported(f"f64 source {op!r}")

    return read, _NO_TOUCH


def _f32_reader(operand):
    if isinstance(operand, Xmm):
        index = operand.index

        def read(state):
            return state.xmm[index][0].lane(0)

        return read, frozenset({_x(index)})
    if isinstance(operand, Mem):

        def read(state, m=operand):
            return state.load_f32(state.addr(m))

        return read, frozenset({MEM_KEY})
    if isinstance(operand, Imm):
        x = u2f(operand.value)
        if math.isnan(x):
            def read(state):
                raise IntervalUnsupported("NaN immediate")

            return read, _NO_TOUCH
        interval = IntervalD.point(x)
        return (lambda state: interval), _NO_TOUCH

    def read(state, op=operand):
        raise IntervalUnsupported(f"f32 source {op!r}")

    return read, _NO_TOUCH


def _lanes_reader(operand):
    """Four float32 lanes of a 128-bit source."""
    if isinstance(operand, Xmm):
        index = operand.index

        def read(state):
            halves = state.xmm[index]
            return [halves[0].lane(0), halves[0].lane(1),
                    halves[1].lane(0), halves[1].lane(1)]

        return read, frozenset({_x(index)})
    if isinstance(operand, Mem):

        def read(state, m=operand):
            addr = state.addr(m)
            return [state.load_f32(addr + 4 * lane) for lane in range(4)]

        return read, frozenset({MEM_KEY})

    def read(state, op=operand):
        raise IntervalUnsupported(f"128-bit source {op!r}")

    return read, _NO_TOUCH


def _halves_reader(operand):
    if isinstance(operand, Xmm):
        index = operand.index

        def read(state):
            return [h.as_f64() for h in state.xmm[index]]

        return read, frozenset({_x(index)})
    if isinstance(operand, Mem):

        def read(state, m=operand):
            addr = state.addr(m)
            return [state.load_f64(addr), state.load_f64(addr + 8)]

        return read, frozenset({MEM_KEY})

    def read(state, op=operand):
        raise IntervalUnsupported(f"128-bit source {op!r}")

    return read, _NO_TOUCH


# --------------------------------------------------------------------------
# Per-opcode compilers

_SD = {"addsd": "add", "subsd": "sub", "mulsd": "mul", "divsd": "div",
       "minsd": "min", "maxsd": "max"}
_SS = {"addss": "add", "subss": "sub", "mulss": "mul", "divss": "div",
       "minss": "min", "maxss": "max"}
_AVX_SD = {"vaddsd": "add", "vsubsd": "sub", "vmulsd": "mul",
           "vdivsd": "div", "vminsd": "min", "vmaxsd": "max"}
_AVX_SS = {"vaddss": "add", "vsubss": "sub", "vmulss": "mul",
           "vdivss": "div"}
_PD = {"addpd": "add", "subpd": "sub", "mulpd": "mul", "divpd": "div"}
_PS = {"addps": "add", "subps": "sub", "mulps": "mul", "divps": "div"}
_FMA = {"vfmadd132sd": "132", "vfmadd213sd": "213", "vfmadd231sd": "231"}


def _compile_sd(instr):
    arith = getattr(_ARITH_D, _SD[instr.opcode])
    read, touch = _f64_reader(instr.operands[0])
    di = instr.operands[1].index

    def step(state):
        src = read(state)
        dst = state.xmm[di]
        a = dst[0].as_f64()
        dst[0] = _Half(
            "f64", TOP if (a is TOP or src is TOP) else arith(a, src))

    return step, touch | {_x(di)}


def _compile_sqrtsd(instr):
    read, touch = _f64_reader(instr.operands[0])
    di = instr.operands[1].index
    sqrt = _ARITH_D.sqrt

    def step(state):
        src = read(state)
        state.xmm[di][0] = _Half("f64", TOP if src is TOP else sqrt(src))

    return step, touch | {_x(di)}


def _compile_ss(instr):
    arith = getattr(_ARITH_F, _SS[instr.opcode])
    read, touch = _f32_reader(instr.operands[0])
    di = instr.operands[1].index

    def step(state):
        src = read(state)
        dst = state.xmm[di]
        a = dst[0].lane(0)
        result = TOP if (a is TOP or src is TOP) else arith(a, src)
        dst[0] = dst[0].with_lane(0, result)

    return step, touch | {_x(di)}


def _compile_sqrtss(instr):
    read, touch = _f32_reader(instr.operands[0])
    di = instr.operands[1].index
    sqrt = _ARITH_F.sqrt

    def step(state):
        src = read(state)
        value = TOP if src is TOP else sqrt(src)
        dst = state.xmm[di]
        dst[0] = dst[0].with_lane(0, value)

    return step, touch | {_x(di)}


def _compile_avx_sd(instr):
    arith = getattr(_ARITH_D, _AVX_SD[instr.opcode])
    read, touch = _f64_reader(instr.operands[0])
    si = instr.operands[1].index
    di = instr.operands[2].index

    def step(state):
        s1 = read(state)
        s2 = state.xmm[si]
        a = s2[0].as_f64()
        result = TOP if (a is TOP or s1 is TOP) else arith(a, s1)
        state.xmm[di] = [_Half("f64", result), s2[1]]

    return step, touch | {_x(si), _x(di)}


def _compile_avx_ss(instr):
    arith = getattr(_ARITH_F, _AVX_SS[instr.opcode])
    read, touch = _f32_reader(instr.operands[0])
    si = instr.operands[1].index
    di = instr.operands[2].index

    def step(state):
        s1 = read(state)
        s2 = state.xmm[si]
        a = s2[0].lane(0)
        result = TOP if (a is TOP or s1 is TOP) else arith(a, s1)
        state.xmm[di] = [s2[0].with_lane(0, result), s2[1]]

    return step, touch | {_x(si), _x(di)}


def _compile_pd(instr):
    arith = getattr(_ARITH_D, _PD[instr.opcode])
    read, touch = _halves_reader(instr.operands[0])
    di = instr.operands[1].index

    def step(state):
        src = read(state)
        dst = state.xmm[di]
        for half in (0, 1):
            a = dst[half].as_f64()
            b = src[half]
            dst[half] = _Half(
                "f64", TOP if (a is TOP or b is TOP) else arith(a, b))

    return step, touch | {_x(di)}


def _compile_ps(instr):
    arith = getattr(_ARITH_F, _PS[instr.opcode])
    read, touch = _lanes_reader(instr.operands[0])
    di = instr.operands[1].index

    def step(state):
        src = read(state)
        dst = state.xmm[di]
        lanes = [dst[0].lane(0), dst[0].lane(1), dst[1].lane(0),
                 dst[1].lane(1)]
        out = [TOP if (lanes[j] is TOP or src[j] is TOP)
               else arith(lanes[j], src[j]) for j in range(4)]
        dst[0] = _Half("f32pair", (out[0], out[1]))
        dst[1] = _Half("f32pair", (out[2], out[3]))

    return step, touch | {_x(di)}


def _compile_fma(instr):
    order = _FMA[instr.opcode]
    read, touch = _f64_reader(instr.operands[0])
    si = instr.operands[1].index
    di = instr.operands[2].index
    mul = _ARITH_D.mul
    add = _ARITH_D.add

    def step(state):
        o1 = read(state)
        o2 = state.xmm[si][0].as_f64()
        dst = state.xmm[di]
        d = dst[0].as_f64()
        if order == "132":
            prod = TOP if (d is TOP or o1 is TOP) else mul(d, o1)
            addend = o2
        elif order == "213":
            prod = TOP if (o2 is TOP or d is TOP) else mul(o2, d)
            addend = o1
        else:
            prod = TOP if (o2 is TOP or o1 is TOP) else mul(o2, o1)
            addend = d
        # A fused result is at least as accurate as the two-op interval.
        dst[0] = _Half(
            "f64",
            TOP if (prod is TOP or addend is TOP) else add(prod, addend))

    return step, touch | {_x(si), _x(di)}


def _compile_movsd(instr):
    src, dst = instr.operands
    if isinstance(dst, Mem):
        si = src.index

        def step(state, m=dst):
            value = state.xmm[si][0].as_f64()
            state.mem_stores[state.addr(m)] = ("f64", value)

        return step, frozenset({_x(si), MEM_KEY})
    if isinstance(src, Mem):
        di = dst.index

        def step(state, m=src):
            state.xmm[di] = [state.load_half64(state.addr(m)), _ZERO_BITS]

        return step, frozenset({MEM_KEY, _x(di)})
    si = src.index
    di = dst.index

    def step(state):
        state.xmm[di][0] = state.xmm[si][0]

    return step, frozenset({_x(si), _x(di)})


def _compile_movss(instr):
    src, dst = instr.operands
    if isinstance(dst, Mem):
        si = src.index

        def step(state, m=dst):
            value = state.xmm[si][0].lane(0)
            state.mem_stores[state.addr(m)] = ("f32", value)

        return step, frozenset({_x(si), MEM_KEY})
    if isinstance(src, Mem):
        di = dst.index

        def step(state, m=src):
            value = state.load_f32(state.addr(m))
            state.xmm[di] = [_Half("f32pair", (value, _POINT_ZERO_F32)),
                             _ZERO_BITS]

        return step, frozenset({MEM_KEY, _x(di)})
    si = src.index
    di = dst.index

    def step(state):
        value = state.xmm[si][0].lane(0)
        state.xmm[di][0] = state.xmm[di][0].with_lane(0, value)

    return step, frozenset({_x(si), _x(di)})


def _compile_mov128(instr):
    src, dst = instr.operands
    if isinstance(dst, Mem):
        return _raising("128-bit store"), _NO_TOUCH
    if isinstance(src, Mem):
        read, touch = _lanes_reader(src)
        di = dst.index

        def step(state):
            lanes = read(state)
            state.xmm[di] = [_Half("f32pair", (lanes[0], lanes[1])),
                             _Half("f32pair", (lanes[2], lanes[3]))]

        return step, touch | {_x(di)}
    si = src.index
    di = dst.index

    def step(state):
        s = state.xmm[si]
        state.xmm[di] = [s[0], s[1]]

    return step, frozenset({_x(si), _x(di)})


def _compile_movddup(instr):
    read, touch = _f64_reader(instr.operands[0])
    di = instr.operands[1].index

    def step(state):
        src = read(state)
        state.xmm[di] = [_Half("f64", src), _Half("f64", src)]

    return step, touch | {_x(di)}


def _compile_movq(instr):
    src, dst = instr.operands
    if isinstance(dst, Xmm) and isinstance(src, Imm):
        half = _Half.bits(src.value)
        di = dst.index

        def step(state):
            state.xmm[di] = [half, _ZERO_BITS]

        return step, frozenset({_x(di)})
    if isinstance(dst, Xmm) and isinstance(src, Mem):
        di = dst.index

        def step(state, m=src):
            state.xmm[di] = [state.load_half64(state.addr(m)), _ZERO_BITS]

        return step, frozenset({MEM_KEY, _x(di)})
    if isinstance(dst, Mem) and isinstance(src, Xmm):
        si = src.index

        def step(state, m=dst):
            value = state.xmm[si][0].as_f64()
            state.mem_stores[state.addr(m)] = ("f64", value)

        return step, frozenset({_x(si), MEM_KEY})
    if isinstance(dst, Reg64) and isinstance(src, Xmm):
        si = src.index

        def step(state, d=dst):
            # Bit extraction: reinterpret the low double's bit pattern.
            state.set_gp(d, _pattern_of_half(state, state.xmm[si][0]))

        return step, frozenset({_x(si)})
    if isinstance(dst, Xmm) and isinstance(src, (Reg64, Reg32)):
        di = dst.index

        def step(state, s=src):
            # Bit injection: reinterpret a GP pattern as the low double.
            state.xmm[di] = [
                _half_of_pattern(state, state.gp_operand(s)),
                _ZERO_BITS,
            ]

        return step, frozenset({_x(di)})
    return _raising("movq form outside the FP fragment"), _NO_TOUCH


def _compile_movd(instr):
    src, dst = instr.operands
    if isinstance(dst, Xmm):
        di = dst.index
        if isinstance(src, Imm):
            half = _Half.bits(src.value & 0xFFFFFFFF)

            def step(state):
                state.xmm[di] = [half, _ZERO_BITS]

            return step, frozenset({_x(di)})
        if isinstance(src, (Reg32, Reg64)):
            si = src.index

            def step(state):
                value = state.gp[si]
                if value is TOP:
                    raise IntervalUnsupported("movd from symbolic register")
                bits = value & 0xFFFFFFFF
                state.xmm[di] = [_Half.bits(bits), _ZERO_BITS]

            return step, frozenset({_x(di)})
        return _raising("movd from memory"), _NO_TOUCH
    return _raising("movd to GP register"), _NO_TOUCH


def _compile_mov_gp(instr):
    src, dst = instr.operands
    if isinstance(dst, (Reg64, Reg32)) and isinstance(src, Imm):
        mask = M64 if isinstance(dst, Reg64) else M32
        value = src.value & mask
        di = dst.index

        def step(state):
            state.gp[di] = value

        return step, _NO_TOUCH
    if isinstance(dst, (Reg64, Reg32)) and isinstance(src, (Reg64, Reg32)):

        def step(state, s=src, d=dst):
            state.set_gp(d, state.gp_operand(s))

        return step, _NO_TOUCH
    return _raising("mov form outside the FP fragment"), _NO_TOUCH


def _compile_lea(instr):
    m = instr.operands[0]
    di = instr.operands[1].index

    def step(state):
        # Address arithmetic over GP registers only; no memory access.
        state.gp[di] = state.addr(m)

    return step, _NO_TOUCH


def _compile_punpckldq(instr):
    src, dst = instr.operands
    read, touch = _lanes_reader(src)
    di = dst.index

    def step(state):
        s = read(state)
        d = state.xmm[di]
        d0, d1 = d[0].lane(0), d[0].lane(1)
        state.xmm[di] = [_Half("f32pair", (d0, s[0])),
                         _Half("f32pair", (d1, s[1]))]

    return step, touch | {_x(di)}


def _compile_unpcklpd(instr):
    src, dst = instr.operands
    read, touch = _f64_reader(src)
    di = dst.index

    def step(state):
        lo = read(state)
        state.xmm[di][1] = _Half("f64", lo)

    return step, touch | {_x(di)}


def _compile_unpckhpd(instr):
    src, dst = instr.operands
    read, touch = _halves_reader(src)
    di = dst.index

    def step(state):
        halves = read(state)
        d = state.xmm[di]
        state.xmm[di] = [_Half("f64", d[1].as_f64()),
                         _Half("f64", halves[1])]

    return step, touch | {_x(di)}


def _compile_cvtss2sd(instr):
    read, touch = _f32_reader(instr.operands[0])
    di = instr.operands[1].index

    def step(state):
        src = read(state)
        state.xmm[di][0] = _Half("f64", src)

    return step, touch | {_x(di)}


def _compile_cvtsd2ss(instr):
    read, touch = _f64_reader(instr.operands[0])
    di = instr.operands[1].index

    def step(state):
        src = read(state)
        if src is TOP:
            value = TOP
        else:
            value = IntervalD(_down32(src.lo), _up32(src.hi))
        dst = state.xmm[di]
        dst[0] = dst[0].with_lane(0, value)

    return step, touch | {_x(di)}


def _compile_int_binop(instr):
    name = instr.opcode
    ops = instr.operands

    def step(state):
        _exec_int_binop(state, name, ops)

    return step, _NO_TOUCH


def _compile_shift(instr):
    name = instr.opcode
    ops = instr.operands

    def step(state):
        _exec_shift(state, name, ops)

    return step, _NO_TOUCH


def _compile_xor128(instr):
    src, dst = instr.operands
    if isinstance(src, Xmm) and src.index == dst.index:
        di = dst.index

        def step(state):
            state.xmm[di] = [_ZERO_BITS, _ZERO_BITS]

        return step, frozenset({_x(di)})
    return _raising(f"{instr.opcode} outside the zeroing idiom"), _NO_TOUCH


def _compile_ucomi(instr):
    src_op, dst_op = instr.operands
    di = dst_op.index
    if instr.opcode == "ucomisd":
        read, touch = _f64_reader(src_op)

        def step(state):
            src = read(state)
            dst = state.xmm[di][0].as_f64()
            state.cmp = (dst, src)

    else:
        read, touch = _f32_reader(src_op)

        def step(state):
            src = read(state)
            dst = state.xmm[di][0].lane(0)
            state.cmp = (dst, src)

    return step, touch | {_x(di)}


def _compile_cmp(instr):
    def step(state):
        # GP flags: unknown to this domain; cmovs after this must join.
        state.cmp = None

    return step, _NO_TOUCH


def _compile_cmov(instr):
    cc = instr.opcode[4:]
    ops = instr.operands

    def step(state):
        _exec_cmov(state, cc, ops)

    return step, _NO_TOUCH


def _compile_cvtsd2si(instr):
    name = instr.opcode
    src_op, dst_op = instr.operands
    if not isinstance(dst_op, Reg64):
        return _raising(f"32-bit {name} destination"), _NO_TOUCH
    read, touch = _f64_reader(src_op)
    rounder = _round_half_even if name == "cvtsd2si" else math.trunc
    di = dst_op.index

    def step(state):
        src = read(state)
        if src is TOP:
            state.gp[di] = TOP
            return
        lo = _rounded_int(src.lo, rounder)
        hi = _rounded_int(src.hi, rounder)
        if lo == hi:
            state.stats.concrete_bit_ops += 1
            state.gp[di] = lo & M64
        else:
            # Both rounding modes are monotone, so endpoint images bound
            # every image in between.
            state.stats.widened_bit_ops += 1
            state.gp[di] = IntInterval(lo, hi)

    return step, touch


def _compile_cvtsi2sd(instr):
    src_op, dst_op = instr.operands
    if isinstance(src_op, Mem):
        return _raising("cvtsi2sd from memory"), _NO_TOUCH
    di = dst_op.index
    wide = isinstance(src_op, Reg64)

    def step(state, s=src_op):
        value = state.gp_operand(s)
        if value is TOP:
            state.xmm[di][0] = _Half("f64", TOP)
            return
        if isinstance(value, int):
            state.stats.concrete_bit_ops += 1
            bits = cvtsi2sd64(value) if wide else cvtsi2sd32(value)
            state.xmm[di][0] = _Half.bits(bits)
            return
        state.stats.widened_bit_ops += 1
        lo, hi = float(value.lo), float(value.hi)
        # float(int) rounds to nearest; push outward unless exact.
        if int(lo) != value.lo:
            lo = _down(lo)
        if int(hi) != value.hi:
            hi = _up(hi)
        state.xmm[di][0] = _Half("f64", IntervalD(lo, hi))

    return step, frozenset({_x(di)})


def _compile_fallback(instr):
    def step(state):
        _exec_interval(state, instr)

    # Unknown shape: assume it can touch every dimension.
    return step, None


_COMPILERS: Dict[str, Callable] = {}
for _name in _SD:
    _COMPILERS[_name] = _compile_sd
for _name in _SS:
    _COMPILERS[_name] = _compile_ss
for _name in _AVX_SD:
    _COMPILERS[_name] = _compile_avx_sd
for _name in _AVX_SS:
    _COMPILERS[_name] = _compile_avx_ss
for _name in _PD:
    _COMPILERS[_name] = _compile_pd
for _name in _PS:
    _COMPILERS[_name] = _compile_ps
for _name in _FMA:
    _COMPILERS[_name] = _compile_fma
_COMPILERS["sqrtsd"] = _compile_sqrtsd
_COMPILERS["sqrtss"] = _compile_sqrtss
_COMPILERS["movsd"] = _compile_movsd
_COMPILERS["movss"] = _compile_movss
for _name in ("movapd", "movaps", "movdqa", "movups", "movdqu", "lddqu"):
    _COMPILERS[_name] = _compile_mov128
_COMPILERS["movddup"] = _compile_movddup
_COMPILERS["movq"] = _compile_movq
_COMPILERS["movd"] = _compile_movd
_COMPILERS["mov"] = _compile_mov_gp
_COMPILERS["movabs"] = _compile_mov_gp
_COMPILERS["lea"] = _compile_lea
_COMPILERS["punpckldq"] = _compile_punpckldq
_COMPILERS["unpcklpd"] = _compile_unpcklpd
_COMPILERS["unpckhpd"] = _compile_unpckhpd
_COMPILERS["cvtss2sd"] = _compile_cvtss2sd
_COMPILERS["cvtsd2ss"] = _compile_cvtsd2ss
for _name in ("add", "sub", "imul", "and", "or", "xor"):
    _COMPILERS[_name] = _compile_int_binop
for _name in ("shl", "shr", "sar"):
    _COMPILERS[_name] = _compile_shift
for _name in ("xorpd", "xorps", "pxor"):
    _COMPILERS[_name] = _compile_xor128
_COMPILERS["ucomisd"] = _compile_ucomi
_COMPILERS["ucomiss"] = _compile_ucomi
_COMPILERS["cmp"] = _compile_cmp
_COMPILERS["test"] = _compile_cmp
_COMPILERS["cvtsd2si"] = _compile_cvtsd2si
_COMPILERS["cvttsd2si"] = _compile_cvtsd2si
_COMPILERS["cvtsi2sd"] = _compile_cvtsi2sd


def _compile_instr(instr):
    name = instr.opcode
    compiler = _COMPILERS.get(name)
    if compiler is None:
        if name.startswith("cmov"):
            compiler = _compile_cmov
        else:
            # Unknown opcode: defer to the interpretive dispatcher, which
            # raises the canonical "outside the fragment" message at run
            # time (and keeps any future interpreter additions working
            # before they grow a dedicated compiler).
            return _compile_fallback(instr)
    return compiler(instr)
