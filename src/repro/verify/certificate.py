"""Serializable verification certificates.

A :class:`Certificate` is the branch-and-bound verifier's *checkable*
output: the leaf-box partition of the input domain (inclusive ordered
bit-index ranges per dimension), one sound ULP bound per leaf, digests
pinning the two programs and the memory image the bounds were derived
against, and the search configuration for provenance.  Soundness of a
claimed bound then reduces to three obligations an independent checker
can discharge without trusting the search loop
(:mod:`repro.verify.checker`):

1. the digests match the programs/memory being certified,
2. the leaves tile the root box exactly (no gaps, no overlaps — exact
   integer arithmetic in bit space), and
3. every leaf's recorded bound is reproduced by a fresh run of the
   interval transfer functions.

Infinite per-leaf bounds (``complete = False`` certificates, from
unsplittable boxes the analysis cannot reach) are serialized as JSON
``null`` so certificates stay strict-JSON round-trippable.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.x86.memory import Memory
from repro.x86.program import Program

from repro.verify.partition import BitBox, Dim

CERT_VERSION = 1

# Abstract domains a certificate's leaf bounds may be derived in; the
# checker rebuilds the same domain's transfer to re-derive them.
KNOWN_DOMAINS = ("separate", "relational")


def program_digest(program: Program) -> str:
    """SHA-256 over the program's full textual rendering."""
    text = program.to_text(include_unused=True)
    return hashlib.sha256(text.encode()).hexdigest()


def memory_digest(memory: Optional[Memory]) -> str:
    """SHA-256 over every segment's (name, base, writability, bytes)."""
    h = hashlib.sha256()
    if memory is not None:
        for seg in sorted(memory.segments, key=lambda s: s.name):
            h.update(f"{seg.name}:{seg.base}:{int(seg.writable)}:".encode())
            h.update(bytes(seg.data))
            h.update(b";")
    return h.hexdigest()


def _encode_bound(bound: float) -> Optional[float]:
    return None if math.isinf(bound) else bound


def _decode_bound(raw: Optional[float]) -> float:
    return math.inf if raw is None else float(raw)


@dataclass(frozen=True)
class Certificate:
    """A checkable record of one verification run."""

    version: int
    target_digest: str
    rewrite_digest: str
    memory_digest: str
    concrete_gp: Tuple[Tuple[int, int], ...]
    live_outs: Tuple[str, ...]
    # (location string, ftype, lo_index, hi_index) per dimension.
    dims: Tuple[Tuple[str, str, int, int], ...]
    # Leaf boxes as per-dimension inclusive index ranges, parallel to
    # leaf_bounds (math.inf for analysis-unreachable leaves).
    leaves: Tuple[Tuple[Tuple[int, int], ...], ...]
    leaf_bounds: Tuple[float, ...]
    bound_ulps: float
    lower_bound: float
    complete: bool
    termination: str
    config: Dict[str, object]
    stats: Dict[str, float]
    # Abstract domain the leaf bounds were derived in ('separate' =
    # independent output hulls, 'relational' = product program).
    domain: str = "separate"

    # -- construction ---------------------------------------------------

    @classmethod
    def from_run(cls, spec, dims: Sequence[Dim], result,
                 config=None) -> "Certificate":
        """Package a :class:`~repro.verify.bnb.BnBResult`.

        ``spec`` is the verifier's :class:`~repro.verify.bnb.TransferSpec`
        (programs + environment); ``result`` the finished run.
        """
        config_dict: Dict[str, object] = {}
        if config is not None:
            config_dict = {
                "max_boxes": config.max_boxes,
                "deadline": config.deadline,
                "target_gap": config.target_gap,
                "jobs": config.jobs,
                "seeds": len(config.seeds),
            }
        return cls(
            version=CERT_VERSION,
            target_digest=program_digest(spec.target),
            rewrite_digest=program_digest(spec.rewrite),
            memory_digest=memory_digest(spec.memory),
            concrete_gp=tuple(sorted(spec.concrete_gp)),
            live_outs=tuple(spec.live_outs),
            dims=tuple((str(d.loc), d.ftype, d.lo_index, d.hi_index)
                       for d in dims),
            leaves=tuple(leaf.bounds for leaf in result.leaves),
            leaf_bounds=tuple(result.leaf_bounds),
            bound_ulps=result.bound_ulps,
            lower_bound=result.lower_bound,
            complete=result.complete,
            termination=result.termination,
            config=config_dict,
            stats={
                "boxes_explored": result.boxes_explored,
                "boxes_pruned": result.boxes_pruned,
                "rounds": result.rounds,
                "max_frontier": result.max_frontier,
                "jobs": result.jobs,
                "wall_time": result.wall_time,
                "concrete_bit_ops": result.stats.concrete_bit_ops,
                "widened_bit_ops": result.stats.widened_bit_ops,
            },
            domain=getattr(spec, "domain", "separate"),
        )

    # -- derived views --------------------------------------------------

    def root_box(self) -> BitBox:
        return BitBox(tuple((lo, hi) for _, _, lo, hi in self.dims))

    def leaf_boxes(self) -> List[BitBox]:
        return [BitBox(tuple(tuple(b) for b in leaf))
                for leaf in self.leaves]

    def dim_objects(self) -> Tuple[Dim, ...]:
        from repro.x86.locations import parse_loc

        return tuple(Dim(parse_loc(loc), ftype, lo, hi)
                     for loc, ftype, lo, hi in self.dims)

    def value_ranges(self) -> Dict[str, Tuple[float, float]]:
        """The certified domain as user-facing value ranges."""
        from repro.verify.partition import value_of

        return {loc: (value_of(lo, ftype), value_of(hi, ftype))
                for loc, ftype, lo, hi in self.dims}

    # -- serialization --------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        data = asdict(self)
        data["leaf_bounds"] = [_encode_bound(b) for b in self.leaf_bounds]
        data["bound_ulps"] = _encode_bound(self.bound_ulps)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Certificate":
        if data.get("version") != CERT_VERSION:
            raise ValueError(
                f"unsupported certificate version {data.get('version')!r}")
        domain = data.get("domain", "separate")
        if domain not in KNOWN_DOMAINS:
            raise ValueError(
                f"unknown certificate domain {domain!r} (expected one of "
                f"{', '.join(KNOWN_DOMAINS)})")
        return cls(
            version=CERT_VERSION,
            target_digest=data["target_digest"],
            rewrite_digest=data["rewrite_digest"],
            memory_digest=data["memory_digest"],
            concrete_gp=tuple((int(i), int(v))
                              for i, v in data["concrete_gp"]),
            live_outs=tuple(data["live_outs"]),
            dims=tuple((loc, ftype, int(lo), int(hi))
                       for loc, ftype, lo, hi in data["dims"]),
            leaves=tuple(tuple((int(lo), int(hi)) for lo, hi in leaf)
                         for leaf in data["leaves"]),
            leaf_bounds=tuple(_decode_bound(b)
                              for b in data["leaf_bounds"]),
            bound_ulps=_decode_bound(data["bound_ulps"]),
            lower_bound=float(data["lower_bound"]),
            complete=bool(data["complete"]),
            termination=data["termination"],
            config=dict(data.get("config", {})),
            stats=dict(data.get("stats", {})),
            domain=str(domain),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, allow_nan=False)

    @classmethod
    def from_json(cls, text: str) -> "Certificate":
        return cls.from_dict(json.loads(text))

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json(indent=None))
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "Certificate":
        with open(path) as fh:
            return cls.from_json(fh.read())

    @property
    def size_bytes(self) -> int:
        return len(self.to_json().encode())
