"""Independent certificate checker.

Re-establishes a certificate's claim from scratch, sharing *nothing*
with the branch-and-bound search loop except the interval transfer
functions themselves (:class:`repro.verify.interval.IntervalTransfer`,
which the search also cannot weaken — it only chooses *where* to apply
them).  The checker discharges three obligations:

1. **Identity** — the SHA-256 digests of the supplied target/rewrite
   programs, memory image, and concrete-GP environment match what the
   certificate was derived against.
2. **Coverage** — the leaf boxes tile the root box exactly in bit space
   (:func:`repro.verify.partition.check_tiling`): integer volume
   accounting plus pairwise disjointness, so every representable input
   lies in exactly one leaf.
3. **Bounds** — every leaf's recorded bound is reproduced by a fresh
   interval transfer over that leaf; a recorded bound below what the
   transfer derives is unjustified and rejected.  Infinite recorded
   bounds (analysis-unreachable leaves) are admitted only in
   certificates honestly marked ``complete = False``.

Obligations 2 and 3 together give the certificate's global claim: the
true error at *any* representable in-range input is at most
``max(leaf bounds) = bound_ulps``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.x86.memory import Memory
from repro.x86.program import Program

from repro.verify.certificate import (
    Certificate,
    memory_digest,
    program_digest,
)
from repro.verify.interval import (
    IntervalUnsupported,
    TransferStats,
)
from repro.verify.partition import check_tiling
from repro.verify.relational.domain import transfer_class


@dataclass
class CheckReport:
    """Outcome of an independent certificate check."""

    ok: bool
    failures: List[str]
    leaves_checked: int
    rechecked_bound: float
    stats: TransferStats = field(default_factory=TransferStats)

    def __bool__(self) -> bool:
        return self.ok


def check(cert: Certificate, target: Program, rewrite: Program,
          memory: Optional[Memory] = None,
          concrete_gp: Optional[Dict[int, int]] = None,
          max_failures: int = 16) -> CheckReport:
    """Re-verify a certificate against the programs it claims to bound.

    Returns a :class:`CheckReport`; ``report.ok`` is True iff every
    obligation holds.  Checking stops early once ``max_failures``
    failures have been collected (enough evidence to reject).
    """
    failures: List[str] = []

    # Obligation 1: identity.
    if program_digest(target) != cert.target_digest:
        failures.append("target program digest mismatch")
    if program_digest(rewrite) != cert.rewrite_digest:
        failures.append("rewrite program digest mismatch")
    if memory_digest(memory) != cert.memory_digest:
        failures.append("memory image digest mismatch")
    if tuple(sorted((concrete_gp or {}).items())) != cert.concrete_gp:
        failures.append("concrete GP environment mismatch")
    if failures:
        return CheckReport(ok=False, failures=failures, leaves_checked=0,
                           rechecked_bound=math.inf)

    # Obligation 2: the leaves tile the root box exactly.
    leaves = cert.leaf_boxes()
    failures.extend(check_tiling(cert.root_box(), leaves))
    if len(cert.leaf_bounds) != len(leaves):
        failures.append(
            f"{len(leaves)} leaves but {len(cert.leaf_bounds)} bounds")
    if failures:
        return CheckReport(ok=False, failures=failures[:max_failures],
                           leaves_checked=0, rechecked_bound=math.inf)

    # Obligation 3: every recorded leaf bound is justified by a fresh
    # transfer, built here in the certificate's own abstract domain —
    # a relational certificate is rechecked relationally, a separate
    # one with independent hulls.
    try:
        cls = transfer_class(getattr(cert, "domain", "separate"))
    except ValueError as exc:
        return CheckReport(ok=False, failures=[str(exc)],
                           leaves_checked=0, rechecked_bound=math.inf)
    transfer = cls(
        target, rewrite, list(cert.live_outs), cert.value_ranges(),
        memory=memory, concrete_gp=dict(concrete_gp or {}))
    rechecked = 0.0
    checked = 0
    for i, (leaf, recorded) in enumerate(zip(leaves, cert.leaf_bounds)):
        try:
            derived, _ = transfer.analyze(leaf)
        except IntervalUnsupported as exc:
            derived = math.inf
            if math.isfinite(recorded):
                failures.append(
                    f"leaf {i}: recorded bound {recorded} but the "
                    f"analysis cannot reach the box ({exc})")
        if derived > recorded:
            failures.append(
                f"leaf {i}: recorded bound {recorded} below the "
                f"derived bound {derived}")
        if math.isinf(recorded) and cert.complete:
            failures.append(
                f"leaf {i}: infinite bound in a certificate marked "
                f"complete")
        rechecked = max(rechecked, min(derived, recorded))
        checked += 1
        if len(failures) >= max_failures:
            break

    # The headline bound must cover every leaf.
    worst = max(cert.leaf_bounds, default=0.0)
    if cert.bound_ulps < worst:
        failures.append(
            f"certificate bound {cert.bound_ulps} below worst leaf "
            f"bound {worst}")
    if cert.lower_bound > cert.bound_ulps:
        failures.append(
            f"lower bound {cert.lower_bound} exceeds certified bound "
            f"{cert.bound_ulps}")

    return CheckReport(
        ok=not failures,
        failures=failures[:max_failures],
        leaves_checked=checked,
        rechecked_bound=rechecked if checked else math.inf,
        stats=transfer.stats,
    )
