"""Uninterpreted-function equivalence checking (the Figure 6 proof).

Both programs are executed symbolically from the same initial state; if
every live-out location's expression canonicalizes to the same DAG, the
programs are bit-wise equivalent for all inputs (sound).  A mismatch or an
unsupported construct yields ``UNKNOWN`` — the procedure is incomplete,
as Equation 12 permits.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, Union

from repro.x86.locations import Loc, MemLoc
from repro.x86.memory import Memory
from repro.x86.program import Program
from repro.x86.registers import GP64_INDEX, XMM_INDEX

from repro.core.runner import Location, resolve_locations
from repro.verify.symbolic import (
    Node,
    SymbolicState,
    SymbolicUnsupported,
    extract,
    symbolic_execute,
)


class VerifyOutcome(enum.Enum):
    """Result of a verification attempt."""

    EQUIVALENT = "equivalent"
    UNKNOWN = "unknown"


@dataclass
class UfResult:
    """Outcome plus per-location detail for diagnostics."""

    outcome: VerifyOutcome
    detail: str = ""
    expressions: Optional[Dict[str, Tuple[Node, Node]]] = None

    @property
    def proved(self) -> bool:
        return self.outcome is VerifyOutcome.EQUIVALENT


def _read_location(state: SymbolicState, loc: Location) -> Node:
    if isinstance(loc, MemLoc):
        seg = state.mem.mem.segment(loc.segment)
        addr = seg.base + loc.offset
        return state.mem.load(addr, loc.width // 8)
    if loc.reg in XMM_INDEX:
        xmm = state.xmm[XMM_INDEX[loc.reg]]
        if loc.width == 64:
            return xmm.read64(loc.lane)
        return xmm.read32(loc.lane)
    node = state.gp[GP64_INDEX[loc.reg]]
    return node if loc.width == 64 else extract(node, 0, 32)


def check_equivalent_uf(
    target: Program,
    rewrite: Program,
    live_outs: Sequence[Union[str, Location]],
    memory: Optional[Memory] = None,
    concrete_gp: Optional[Dict[int, int]] = None,
) -> UfResult:
    """Attempt a bit-wise equivalence proof with FP ops uninterpreted.

    ``memory`` provides the sandbox layout (constant tables become
    constants; writable segments become symbolic inputs) and
    ``concrete_gp`` pins pointer-valued registers to concrete sandbox
    addresses, exactly as the test harness lays them out.
    """
    locations = resolve_locations(live_outs)
    mem = memory if memory is not None else Memory()
    try:
        t_state = symbolic_execute(target, mem, concrete_gp)
        r_state = symbolic_execute(rewrite, mem.copy(), concrete_gp)
    except SymbolicUnsupported as exc:
        return UfResult(VerifyOutcome.UNKNOWN, detail=str(exc))

    expressions: Dict[str, Tuple[Node, Node]] = {}
    for loc in locations:
        try:
            t_node = _read_location(t_state, loc)
            r_node = _read_location(r_state, loc)
        except SymbolicUnsupported as exc:
            return UfResult(VerifyOutcome.UNKNOWN, detail=str(exc))
        expressions[str(loc)] = (t_node, r_node)
        if t_node != r_node:
            return UfResult(
                VerifyOutcome.UNKNOWN,
                detail=f"{loc}: {t_node!r} vs {r_node!r}",
                expressions=expressions,
            )
    return UfResult(VerifyOutcome.EQUIVALENT, expressions=expressions)
