"""Bounded-exhaustive bit-level equivalence checking.

The stand-in for the bit-blasting decision procedures of Section 4: an
exact equivalence check obtained by enumerating every input assignment of
a quantized subdomain and executing both programs bit-for-bit.  Like the
decision procedures it replaces, it is sound and complete *on its domain*
but scales exponentially — with input bit-width here, where an SMT
bit-blaster scales with formula size — and is therefore usable only for
tiny kernels (the paper puts the practical limit at roughly five
instructions).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.x86.locations import Loc, parse_loc
from repro.x86.program import Program
from repro.x86.testcase import TestCase

from repro.core.cost import location_ulp_distance
from repro.core.runner import Location, Runner


@dataclass
class ExhaustiveResult:
    """Result of a bounded-exhaustive check."""

    max_ulps: float
    cases_checked: int
    counterexample: Optional[TestCase]

    @property
    def bitwise_equal(self) -> bool:
        return self.max_ulps == 0.0


def _lane_values(loc: Loc, lo: float, hi: float, bits: int) -> List[int]:
    """All bit patterns of a ``bits``-wide grid over ``[lo, hi]``."""
    from repro.x86.testcase import encode_for

    count = 1 << bits
    if count == 1:
        return [encode_for(loc, lo)]
    step = (hi - lo) / (count - 1)
    return [encode_for(loc, lo + i * step) for i in range(count)]


# Tests per run_batch call: large enough to amortize batch dispatch
# (one generated function call for the JIT, one vectorized pass for the
# SoA backend), small enough to keep pooled-state memory bounded.
_BATCH = 4096


def exhaustive_check(
    target: Program,
    rewrite: Program,
    live_outs: Sequence[Union[str, Location]],
    ranges: Dict[str, Tuple[float, float]],
    base_testcase_factory: Callable[[], TestCase],
    bits_per_input: int = 8,
    max_ulps: float = 0.0,
    backend: str = "vector",
) -> ExhaustiveResult:
    """Check equivalence over the full cross product of quantized inputs.

    ``bits_per_input`` controls the grid resolution per live-in; the total
    number of executions is ``2**(bits_per_input * len(ranges))`` — the
    exponential blow-up that makes this a small-kernel-only technique.
    Returns the max ULP error over the grid and the first counterexample
    exceeding ``max_ulps`` (the check still completes the sweep so the
    reported max is over the whole grid).

    ``backend`` names any registered execution backend
    (:func:`repro.core.backends.known_backends`); the grid streams
    through :meth:`~repro.core.runner.Runner.run_batch` in chunks, so
    the sweep gets whatever batching the backend offers.  The grid
    order — and therefore the first-counterexample identity — does not
    depend on the backend or the chunk size.
    """
    runner = Runner(live_outs, backend=backend)
    prepared_t = runner.prepare(target)
    prepared_r = runner.prepare(rewrite)

    locs = [parse_loc(k) if isinstance(k, str) else k for k in ranges]
    grids = [_lane_values(loc, lo, hi, bits_per_input)
             for loc, (lo, hi) in zip(locs, ranges.values())]

    worst = 0.0
    counterexample: Optional[TestCase] = None
    checked = 0
    base = base_testcase_factory()
    assignments = itertools.product(*grids)
    while True:
        tests: List[TestCase] = []
        for assignment in itertools.islice(assignments, _BATCH):
            test = base
            for loc, bits in zip(locs, assignment):
                test = test.replace(loc, bits)
            tests.append(test)
        if not tests:
            break
        checked += len(tests)
        t_outs = runner.run_batch(prepared_t, tests)
        r_outs = runner.run_batch(prepared_r, tests)
        for test, (t_val, t_sig), (r_val, r_sig) in zip(tests, t_outs,
                                                        r_outs):
            if t_sig is not None or r_sig is not None:
                if t_sig != r_sig:
                    worst = float("inf")
                    if counterexample is None:
                        counterexample = test
                continue
            err = 0.0
            for loc, t_bits, r_bits in zip(runner.live_outs, t_val, r_val):
                err += location_ulp_distance(loc, r_bits, t_bits)
            if err > worst:
                worst = err
            if err > max_ulps and counterexample is None:
                counterexample = test
    return ExhaustiveResult(max_ulps=worst, cases_checked=checked,
                            counterexample=counterexample)
