"""The relational (product-program) abstract domain.

:class:`RelationalTransfer` runs target and rewrite in lockstep over one
paired abstract state per box:

* **Shared-prefix collapse** — the longest run of textually identical
  leading instructions is executed *once* on the single paired state
  (a :class:`~repro.verify.interval._StateSnapshot` forks the two
  suffixes), with the prefix's bit-op accounting replayed so stats stay
  bit-identical to the two-run semantics the batched and reference
  engines pin against each other.
* **Correlated live-outs** — both programs are also executed
  symbolically once at construction (extended fragment of
  :mod:`repro.verify.symbolic`); per box the paired expression DAGs are
  re-evaluated by :class:`~repro.verify.relational.diffbound.PairEvaluator`
  and the live-out ULP distance is bounded through the *difference*
  window rather than by subtracting independent hulls.

Per live-out and per box the reported bound is the **minimum** of the
separate-domain bound and the relational window bound, so the relational
domain is never looser than the separate one on the same partition — the
degradation path for programs outside the paired fragment is exactly the
separate bound.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Tuple

from repro.verify.interval import (
    IntervalD,
    IntervalTransfer,
    TransferStats,
    _interval_ulp_pair,
    _read_output,
    _StateSnapshot,
)
from repro.verify.relational.diffbound import PairEvaluator, window_ulp_bound
from repro.verify.symbolic import Node, SymbolicUnsupported, symbolic_execute
from repro.verify.uf import _read_location
from repro.x86.program import Program
from repro.x86.registers import XMM_INDEX


def shared_prefix_len(target: Program, rewrite: Program) -> int:
    """Length (in compiled steps) of the common leading instruction run.

    Compared textually over non-``nop`` slots, matching the one-step-
    per-instruction layout of :func:`repro.verify.compile.compile_transfer`.
    """
    t = [str(i) for i in target.slots if i.opcode != "nop"]
    r = [str(i) for i in rewrite.slots if i.opcode != "nop"]
    n = 0
    for a, b in zip(t, r):
        if a != b:
            break
        n += 1
    return n


def _extract_pairs(target, rewrite, locations, memory, concrete_gp
                   ) -> Tuple[Dict[str, Tuple[Node, Node]], Optional[str]]:
    """Paired live-out expression DAGs, or why they are unavailable."""
    try:
        t_state = symbolic_execute(target, memory.copy(), concrete_gp,
                                   extended=True)
        r_state = symbolic_execute(rewrite, memory.copy(), concrete_gp,
                                   extended=True)
    except SymbolicUnsupported as exc:
        return {}, str(exc)
    pairs: Dict[str, Tuple[Node, Node]] = {}
    error = None
    for loc in locations:
        try:
            pairs[str(loc)] = (_read_location(t_state, loc),
                               _read_location(r_state, loc))
        except SymbolicUnsupported as exc:
            error = str(exc)
    return pairs, error


def _input_hulls(inputs):
    """Map box inputs onto the symbolic executor's input-node names."""
    mem_inputs, reg_inputs = inputs
    f64: Dict[str, IntervalD] = {}
    f32: Dict[Tuple[str, int], IntervalD] = {}
    for loc, (kind, interval) in reg_inputs.items():
        idx = XMM_INDEX[loc.reg]
        if kind == "f64":
            f64[f"x{idx}" + ("l" if loc.lane == 0 else "h")] = interval
        else:
            half = "l" if loc.lane < 2 else "h"
            f32[(f"x{idx}{half}", 32 * (loc.lane % 2))] = interval
    for (segment, offset), (kind, interval) in mem_inputs.items():
        if kind == "f64":
            f64[f"{segment}+{offset}"] = interval
        else:
            f32[(f"{segment}+{offset}", 0)] = interval
    return f64, f32


class RelationalTransfer(IntervalTransfer):
    """Product-program transfer: separate bounds met with paired-DAG
    difference windows, plus shared-prefix collapse on the hot path."""

    domain = "relational"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.shared_prefix = shared_prefix_len(self.target, self.rewrite)
        self.pairs, self.relational_error = _extract_pairs(
            self.target, self.rewrite, self.locations, self.memory,
            self.concrete_gp)

    # -- paired execution --------------------------------------------------

    def _run_pair(self, mem_inputs, reg_inputs, stats: TransferStats):
        """Run both programs over one box, executing the shared
        instruction prefix once on the paired state."""
        t_plan, r_plan = self._plans
        n = self.shared_prefix
        t_state = self._fresh_state(mem_inputs, reg_inputs, stats)
        if n == 0:
            for fn in t_plan.steps:
                fn(t_state)
            r_state = self._fresh_state(mem_inputs, reg_inputs, stats)
            for fn in r_plan.steps:
                fn(r_state)
            return t_state, r_state
        c0 = stats.concrete_bit_ops
        w0 = stats.widened_bit_ops
        for fn in t_plan.steps[:n]:
            fn(t_state)
        # The collapsed prefix ran once on behalf of both programs;
        # replay its accounting so the stats deltas stay bit-identical
        # to the two-run semantics (identical instructions on identical
        # inputs produce identical deltas).
        stats.concrete_bit_ops += stats.concrete_bit_ops - c0
        stats.widened_bit_ops += stats.widened_bit_ops - w0
        snapshot = _StateSnapshot.capture(t_state)
        for fn in t_plan.steps[n:]:
            fn(t_state)
        r_state = snapshot.restore(self.memory, mem_inputs, stats)
        for fn in r_plan.steps[n:]:
            fn(r_state)
        return t_state, r_state

    def analyze_values(self, value_box):
        t0 = time.perf_counter()
        stats = TransferStats(boxes=1)
        mem_inputs, reg_inputs = self._inputs_of(value_box)
        t_state, r_state = self._run_pair(mem_inputs, reg_inputs, stats)
        total, per_loc = self._outputs(t_state, r_state,
                                       (mem_inputs, reg_inputs))
        stats.op_counts = dict(self.op_histogram)
        stats.transfer_seconds = time.perf_counter() - t0
        self.stats.merge(stats)
        return total, per_loc

    def analyze_with_stats(self, box):
        stats = TransferStats(boxes=1)
        mem_inputs, reg_inputs = self._inputs_of(box.value_box(self.dims))
        t_state, r_state = self._run_pair(mem_inputs, reg_inputs, stats)
        total, per_loc = self._outputs(t_state, r_state,
                                       (mem_inputs, reg_inputs))
        return total, per_loc, stats

    # -- relational output bounding ---------------------------------------

    def _outputs(self, t_state, r_state, inputs=None):
        per_loc: Dict[str, float] = {}
        total = 0.0
        evaluator = None
        for loc in self.locations:
            t_out = _read_output(t_state, loc)
            r_out = _read_output(r_state, loc)
            bound = _interval_ulp_pair(loc, t_out, r_out)
            pair = self.pairs.get(str(loc))
            if (pair is not None and inputs is not None and bound > 0.0
                    and loc.ftype == "f64"
                    and isinstance(t_out, IntervalD)
                    and isinstance(r_out, IntervalD)):
                if evaluator is None:
                    evaluator = PairEvaluator(*_input_hulls(inputs))
                diff = evaluator.diff(pair[0], pair[1])
                window = window_ulp_bound(loc.ftype, t_out, r_out, diff)
                if window < bound:
                    bound = window
            per_loc[str(loc)] = bound
            total += bound
        return total, per_loc


def transfer_class(domain: str):
    """The transfer class for a certificate/CLI ``domain`` kind."""
    if domain == "separate":
        return IntervalTransfer
    if domain == "relational":
        return RelationalTransfer
    raise ValueError(
        f"unknown verify domain {domain!r} (expected 'separate' or "
        f"'relational')")
