"""Optional SMT cross-check tier for relational certificates (z3).

Given a certified ULP bound, this tier asks an independent decision
procedure the *opposite* question: is there any input in the verified
ranges on which the summed live-out ULP distance exceeds the bound?

* **Bit-precise mode** — both programs' pure-FP expression DAGs are
  encoded over ``Float64`` with round-to-nearest-even, live-outs are
  mapped to ordered bit indices (the Figure 3 monotone reinterpretation,
  identical to :func:`repro.fp.ulp.ordered_from_bits`) and the distance
  claim is checked exactly.  ``unsat`` means the certificate's bound is
  confirmed for *all* inputs — not just over the BnB partition.
* **Real-relaxation mode** — fallback when bit-precise solving times
  out (or the DAG uses operators the FP encoding refuses): each rounded
  operation becomes ``exact * (1 + e)`` with ``|e| <= 2^-53`` plus an
  absolute underflow slack, and the check proves the *sufficient*
  value-space condition ``|t - r| <= bound * min_spacing(hull)``.  The
  relaxation can only confirm or say unknown — a ``sat`` there is not a
  counterexample, because real arithmetic over-approximates rounding.

z3 is an optional dependency: :func:`smt_available` gates every entry
point and nothing in this module imports z3 at module load.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.verify.relational.diffbound import PairEvaluator
from repro.verify.relational.domain import (
    RelationalTransfer,
    _input_hulls,
)
from repro.verify.symbolic import Const, InputNode, Node, OpNode

_SIGNED64 = 1 << 63
_EPS64 = 2.0 ** -53          # round-to-nearest relative error, doubles
_ETA64 = 2.0 ** -1075        # absolute underflow slack (half a denormal)


def smt_available() -> bool:
    """True when the optional z3 solver is importable."""
    try:
        import z3  # noqa: F401
    except ImportError:
        return False
    return True


class SmtUnsupported(Exception):
    """The DAG uses operators outside the requested encoding."""


@dataclass
class SmtOutcome:
    """Result of one SMT cross-check.

    ``status`` is ``verified`` (the claimed bound holds for all inputs),
    ``refuted`` (the solver produced a candidate violation — the
    certificate and the solver disagree and one of them is wrong), or
    ``unknown`` (timeout / unsupported fragment; the certificate stands
    on the BnB proof alone).
    """

    status: str                      # 'verified' | 'refuted' | 'unknown'
    mode: str                        # 'fp' | 'real' | 'none'
    detail: str = ""
    counterexample: Dict[str, float] = field(default_factory=dict)

    @property
    def verified(self) -> bool:
        return self.status == "verified"

    def to_dict(self) -> Dict:
        return {"status": self.status, "mode": self.mode,
                "detail": self.detail,
                "counterexample": dict(self.counterexample)}


# ---------------------------------------------------------------------------
# bit-precise FP encoding


def _encode_fp(node: Node, z3, cache: Dict, variables: Dict):
    key = node._key
    if key in cache:
        return cache[key]
    double = z3.Float64()
    rne = z3.RNE()
    if isinstance(node, Const):
        if node.width != 64:
            raise SmtUnsupported(f"constant width {node.width}")
        expr = z3.fpBVToFP(z3.BitVecVal(node.value, 64), double)
    elif isinstance(node, InputNode):
        if node.name not in variables:
            raise SmtUnsupported(f"unconstrained input {node.name}")
        expr = variables[node.name]
    elif isinstance(node, OpNode):
        name = node.op
        if name == "fma_add" and isinstance(node.args[0], OpNode) \
                and node.args[0].op == "fma_mul":
            mul = node.args[0]
            expr = z3.fpFMA(rne,
                            _encode_fp(mul.args[0], z3, cache, variables),
                            _encode_fp(mul.args[1], z3, cache, variables),
                            _encode_fp(node.args[1], z3, cache, variables))
        elif name in ("addsd", "subsd", "mulsd", "divsd"):
            fn = {"addsd": z3.fpAdd, "subsd": z3.fpSub,
                  "mulsd": z3.fpMul, "divsd": z3.fpDiv}[name]
            expr = fn(rne,
                      _encode_fp(node.args[0], z3, cache, variables),
                      _encode_fp(node.args[1], z3, cache, variables))
        elif name == "sqrtsd":
            expr = z3.fpSqrt(rne,
                             _encode_fp(node.args[0], z3, cache, variables))
        elif name in ("minsd", "maxsd"):
            # x86 scalar min/max return the second source on ties and
            # NaNs; spell that out instead of using IEEE minNum.
            a = _encode_fp(node.args[0], z3, cache, variables)
            b = _encode_fp(node.args[1], z3, cache, variables)
            comparison = z3.fpLT(a, b) if name == "minsd" else z3.fpGT(a, b)
            expr = z3.If(comparison, a, b)
        else:
            raise SmtUnsupported(f"operator {name} outside the FP encoding")
    else:
        raise SmtUnsupported(f"node kind {type(node).__name__}")
    cache[key] = expr
    return expr


def _ordered_index(expr, z3):
    """Ordered bit index of a Float64 term, as a signed 66-bit vector
    (mirrors :func:`repro.fp.ulp.ordered_from_bits`)."""
    bv = z3.fpToIEEEBV(expr)
    signed = z3.SignExt(2, bv)
    int_min = z3.BitVecVal(-_SIGNED64, 66)
    return z3.If(signed < 0, int_min - signed, signed)


# ---------------------------------------------------------------------------
# real-valued relaxation


class _RealEncoder:
    """DAG -> real arithmetic with explicit rounding slack terms."""

    def __init__(self, z3, solver, variables: Dict):
        self.z3 = z3
        self.solver = solver
        self.variables = variables
        self.cache: Dict = {}
        self._fresh = 0

    def _slack(self, exact):
        z3 = self.z3
        self._fresh += 1
        e = z3.Real(f"__err{self._fresh}")
        d = z3.Real(f"__eta{self._fresh}")
        self.solver.add(e >= -_EPS64, e <= _EPS64,
                        d >= -_ETA64, d <= _ETA64)
        return exact * (1 + e) + d

    def encode(self, node: Node):
        key = node._key
        if key in self.cache:
            return self.cache[key]
        z3 = self.z3
        if isinstance(node, Const):
            if node.width != 64:
                raise SmtUnsupported(f"constant width {node.width}")
            from repro.x86.scalar import u2d

            value = u2d(node.value)
            if math.isnan(value) or math.isinf(value):
                raise SmtUnsupported("non-finite constant")
            expr = z3.RealVal(value)
        elif isinstance(node, InputNode):
            if node.name not in self.variables:
                raise SmtUnsupported(f"unconstrained input {node.name}")
            expr = self.variables[node.name]
        elif isinstance(node, OpNode):
            name = node.op
            if name == "fma_add" and isinstance(node.args[0], OpNode) \
                    and node.args[0].op == "fma_mul":
                mul = node.args[0]
                expr = self._slack(
                    self.encode(mul.args[0]) * self.encode(mul.args[1])
                    + self.encode(node.args[1]))
            elif name in ("addsd", "subsd", "mulsd"):
                a = self.encode(node.args[0])
                b = self.encode(node.args[1])
                exact = {"addsd": a + b, "subsd": a - b,
                         "mulsd": a * b}[name]
                expr = self._slack(exact)
            elif name in ("minsd", "maxsd"):
                a = self.encode(node.args[0])
                b = self.encode(node.args[1])
                comparison = (a < b) if name == "minsd" else (a > b)
                expr = z3.If(comparison, a, b)
            elif name == "sqrtsd":
                a = self.encode(node.args[0])
                self._fresh += 1
                root = z3.Real(f"__sqrt{self._fresh}")
                self.solver.add(root >= 0, root * root == a)
                expr = self._slack(root)
            else:
                # divsd is deliberately excluded: a zero divisor would
                # need an unsound side condition.
                raise SmtUnsupported(
                    f"operator {name} outside the real relaxation")
        else:
            raise SmtUnsupported(f"node kind {type(node).__name__}")
        self.cache[key] = expr
        return expr


# ---------------------------------------------------------------------------
# entry points


def _pairs_and_inputs(transfer: RelationalTransfer):
    if not transfer.pairs:
        raise SmtUnsupported(
            transfer.relational_error or "no paired expressions")
    root_inputs = transfer._inputs_of(
        transfer.root.value_box(transfer.dims))
    f64_inputs, f32_inputs = _input_hulls(root_inputs)
    if f32_inputs:
        raise SmtUnsupported("f32 inputs outside the SMT tier")
    pairs = []
    for loc in transfer.locations:
        pair = transfer.pairs.get(str(loc))
        if pair is None or loc.ftype != "f64":
            raise SmtUnsupported(f"live-out {loc} has no f64 pairing")
        pairs.append(pair)
    return pairs, f64_inputs


def _check_fp(pairs, f64_inputs, bound: int, timeout_ms: int) -> SmtOutcome:
    import z3

    solver = z3.Solver()
    solver.set("timeout", int(timeout_ms))
    double = z3.Float64()
    variables = {}
    for name, hull in f64_inputs.items():
        var = z3.FP(name.replace("+", "_"), double)
        variables[name] = var
        # fpGEQ/fpLEQ are false on NaN, so the range also excludes it.
        solver.add(z3.fpGEQ(var, z3.FPVal(hull.lo, double)),
                   z3.fpLEQ(var, z3.FPVal(hull.hi, double)))
    cache: Dict = {}
    total = z3.BitVecVal(0, 70)
    for t_node, r_node in pairs:
        t_idx = _ordered_index(_encode_fp(t_node, z3, cache, variables), z3)
        r_idx = _ordered_index(_encode_fp(r_node, z3, cache, variables), z3)
        delta = z3.SignExt(4, t_idx) - z3.SignExt(4, r_idx)
        total = total + z3.If(delta < 0, -delta, delta)
    solver.add(z3.UGT(total, z3.BitVecVal(bound, 70)))
    outcome = solver.check()
    if outcome == z3.unsat:
        return SmtOutcome("verified", "fp",
                          detail=f"no input exceeds {bound} ULPs")
    if outcome == z3.sat:
        model = solver.model()
        cex = {}
        for name, var in variables.items():
            value = model.eval(var, model_completion=True)
            try:
                cex[name] = float(eval(str(value), {"__builtins__": {}}))
            except Exception:
                cex[name] = float("nan")
        return SmtOutcome("refuted", "fp",
                          detail="solver found a candidate violation",
                          counterexample=cex)
    return SmtOutcome("unknown", "fp", detail=str(solver.reason_unknown()))


def _value_tolerance(pairs, f64_inputs, bound: float) -> float:
    """``bound`` ULPs translated to a sufficient value-space tolerance:
    bound times the minimum float spacing over the joint output hull."""
    evaluator = PairEvaluator(dict(f64_inputs), {})
    spacing = math.inf
    for t_node, r_node in pairs:
        th = evaluator.f64(t_node)
        rh = evaluator.f64(r_node)
        if th is None or rh is None:
            raise SmtUnsupported("output hull unavailable for relaxation")
        lo = min(th.lo, rh.lo)
        hi = max(th.hi, rh.hi)
        if lo <= 0.0 <= hi:
            here = math.ulp(0.0)
        else:
            here = math.ulp(min(abs(lo), abs(hi)))
        spacing = min(spacing, here)
    return bound * spacing


def _check_real(pairs, f64_inputs, bound: float,
                timeout_ms: int) -> SmtOutcome:
    import z3

    tolerance = _value_tolerance(pairs, f64_inputs, bound)
    if tolerance == 0.0 or not math.isfinite(tolerance):
        return SmtOutcome("unknown", "real",
                          detail=f"vacuous value tolerance {tolerance}")
    solver = z3.Solver()
    solver.set("timeout", int(timeout_ms))
    variables = {}
    for name, hull in f64_inputs.items():
        var = z3.Real(name.replace("+", "_"))
        variables[name] = var
        solver.add(var >= z3.RealVal(hull.lo), var <= z3.RealVal(hull.hi))
    encoder = _RealEncoder(z3, solver, variables)
    claims = []
    for t_node, r_node in pairs:
        delta = encoder.encode(t_node) - encoder.encode(r_node)
        claims.append(z3.Or(delta > z3.RealVal(tolerance),
                            delta < -z3.RealVal(tolerance)))
    solver.add(z3.Or(*claims))
    outcome = solver.check()
    if outcome == z3.unsat:
        return SmtOutcome(
            "verified", "real",
            detail=f"|t - r| <= {tolerance:g} for all inputs, which "
                   f"implies <= {bound:g} ULPs")
    # sat in the relaxation is NOT a counterexample: the slack terms
    # over-approximate real rounding, so only unknown is honest.
    return SmtOutcome("unknown", "real",
                      detail="relaxation could not confirm the bound")


def smt_cross_check(transfer: RelationalTransfer, bound_ulps: float,
                    timeout_ms: int = 60000) -> SmtOutcome:
    """Cross-check a claimed total ULP bound against the SMT tier.

    Tries the bit-precise FP encoding first; falls back to the real
    relaxation when the solver gives up or the fragment is unsupported.
    """
    if not math.isfinite(bound_ulps):
        return SmtOutcome("verified", "none",
                          detail="an infinite bound is vacuously true")
    if not smt_available():
        return SmtOutcome("unknown", "none", detail="z3 is not installed")
    try:
        pairs, f64_inputs = _pairs_and_inputs(transfer)
    except SmtUnsupported as exc:
        return SmtOutcome("unknown", "none", detail=str(exc))
    try:
        outcome = _check_fp(pairs, f64_inputs, int(math.floor(bound_ulps)),
                            timeout_ms)
        if outcome.status != "unknown":
            return outcome
    except SmtUnsupported as exc:
        outcome = SmtOutcome("unknown", "fp", detail=str(exc))
    try:
        fallback = _check_real(pairs, f64_inputs, bound_ulps, timeout_ms)
    except SmtUnsupported as exc:
        fallback = SmtOutcome("unknown", "real", detail=str(exc))
    if fallback.status == "unknown" and outcome.detail:
        fallback.detail = f"fp: {outcome.detail}; real: {fallback.detail}"
    return fallback


def cross_check_certificate(cert, target, rewrite, memory=None,
                            concrete_gp=None,
                            timeout_ms: int = 60000) -> SmtOutcome:
    """Cross-check a relational certificate document's headline bound."""
    transfer = RelationalTransfer(target, rewrite, list(cert.live_outs),
                                  cert.value_ranges(), memory, concrete_gp)
    return smt_cross_check(transfer, cert.bound_ulps, timeout_ms=timeout_ms)
