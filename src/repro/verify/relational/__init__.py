"""Relational (product-program) verification domain.

Bounds the rewrite-vs-target ULP difference directly by running both
programs in lockstep over one paired abstract state, instead of
subtracting independently computed output hulls.
"""

from repro.verify.relational.diffbound import PairEvaluator, window_ulp_bound
from repro.verify.relational.domain import (
    RelationalTransfer,
    shared_prefix_len,
    transfer_class,
)
from repro.verify.relational.smt import (
    SmtOutcome,
    cross_check_certificate,
    smt_available,
    smt_cross_check,
)

__all__ = [
    "PairEvaluator",
    "RelationalTransfer",
    "SmtOutcome",
    "cross_check_certificate",
    "shared_prefix_len",
    "smt_available",
    "smt_cross_check",
    "transfer_class",
    "window_ulp_bound",
]
