"""Paired-expression difference bounding for the relational domain.

The separate interval domain bounds target and rewrite independently and
subtracts hulls, which throws away every correlation between the two
programs.  This module evaluates both programs' expression DAGs
(:mod:`repro.verify.symbolic`, extended fragment) over one input box and
bounds the *difference* ``val(t) - val(r)`` of paired sub-expressions
directly:

* **Identity** — structurally equal nodes are bitwise-equal values for
  every input (each node is a pure function of its argument nodes, with
  flag dependencies reified as explicit arguments), so their difference
  is exactly ``[0, 0]``.  Hash-consed structural equality makes shared
  range reduction, shared prefixes and shared coefficients collapse for
  free, even across operators the hull evaluator cannot interpret.
* **Structural rules** — for paired ops of the same kind the real
  difference factors through the argument differences
  (``t1*t2 - r1*r2 = d1*t2 + r1*d2`` and so on); each rule adds one
  outward-rounded slack per rounded operation, bounded by the result
  hull's ULP spacing.
* **Hull fallback** — every pair is additionally met with the plain
  hull subtraction, so the relational difference is never *wider* than
  what the separate domain knows.

The final :func:`window_ulp_bound` converts a value-difference interval
into a ULP distance: any two floats within ``m`` of each other inside a
hull ``H`` are separated by at most the number of representables in the
densest width-``m`` window of ``H`` (float spacing is non-decreasing in
magnitude, so the window sits at the hull's minimum magnitude).
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

from repro.verify.interval import (
    IntervalD,
    IntervalUnsupported,
    IntInterval,
    _ARITH_D,
    _ARITH_F,
    _MAX_FINITE_BITS,
    _decide_cmov,
    _down,
    _down32,
    _int_and,
    _int_or,
    _require_signed64,
    _round_half_even,
    _rounded_int,
    _up,
    _up32,
)
from repro.verify.partition import index_of
from repro.verify.symbolic import Const, ExtractNode, InputNode, Node, OpNode
from repro.x86.scalar import d2u, sint64, u2d, u2f

_ZERO = IntervalD(0.0, 0.0)

# Scalar-double arithmetic whose difference factors through the argument
# differences; value is the _Arith method name.
_SD_ARITH = {"addsd": "add", "subsd": "sub", "mulsd": "mul",
             "divsd": "div", "minsd": "min", "maxsd": "max"}
_SS_ARITH = {"addss": "add", "subss": "sub", "mulss": "mul",
             "divss": "div", "minss": "min", "maxss": "max"}


def _safe(fn, *args):
    """Interval arithmetic with failure-as-None (NaN corners, empty
    meets and domain errors all mean "no information", not "error")."""
    try:
        return fn(*args)
    except IntervalUnsupported:
        return None


def _meet(a: Optional[IntervalD], b: Optional[IntervalD]
          ) -> Optional[IntervalD]:
    if a is None:
        return b
    if b is None:
        return a
    return _safe(IntervalD, max(a.lo, b.lo), min(a.hi, b.hi)) or a


class PairEvaluator:
    """Per-box evaluator over two programs' expression DAGs.

    ``f64_inputs`` maps input-node names (``x0l``, ``arg+0``, ...) to
    the box's double intervals; ``f32_inputs`` maps ``(name, bit
    offset)`` to single intervals.  All evaluation is memoized on the
    hash-consed node keys, so cost is linear in DAG size per box.

    Every method returns ``None`` for "no information" — unsupported
    node kinds degrade the relational bound gracefully toward the
    separate-domain bound, they never raise.
    """

    def __init__(self, f64_inputs: Dict[str, IntervalD],
                 f32_inputs: Dict[Tuple[str, int], IntervalD]):
        self._f64_inputs = f64_inputs
        self._f32_inputs = f32_inputs
        self._f64: Dict[tuple, Optional[IntervalD]] = {}
        self._f32: Dict[tuple, Optional[IntervalD]] = {}
        self._int: Dict[tuple, Optional[IntInterval]] = {}
        self._diff: Dict[tuple, Optional[IntervalD]] = {}

    # -- hull evaluation ---------------------------------------------------

    def f64(self, node: Node) -> Optional[IntervalD]:
        """Sound double-value hull of a 64-bit node, or None."""
        key = node._key
        if key in self._f64:
            return self._f64[key]
        self._f64[key] = None  # cycle-proof default; DAGs are acyclic
        result = self._f64_of(node)
        self._f64[key] = result
        return result

    def _f64_of(self, node: Node) -> Optional[IntervalD]:
        if node.width != 64:
            return None
        if isinstance(node, Const):
            x = u2d(node.value)
            if math.isnan(x):
                return None
            return IntervalD.point(x)
        if isinstance(node, InputNode):
            interval = self._f64_inputs.get(node.name)
            if interval is not None:
                return interval
        elif isinstance(node, OpNode):
            name = node.op
            method = _SD_ARITH.get(name)
            if method is not None:
                a = self.f64(node.args[0])
                b = self.f64(node.args[1])
                if a is None or b is None:
                    return None
                return _safe(getattr(_ARITH_D, method), a, b)
            if name == "sqrtsd":
                a = self.f64(node.args[0])
                return None if a is None else _safe(_ARITH_D.sqrt, a)
            if name == "fma_mul":
                a = self.f64(node.args[0])
                b = self.f64(node.args[1])
                if a is None or b is None:
                    return None
                return _safe(_ARITH_D.mul, a, b)
            if name == "fma_add":
                # Fused results are at least as accurate as the
                # two-op outward-rounded interval.
                a = self.f64(node.args[0])
                b = self.f64(node.args[1])
                if a is None or b is None:
                    return None
                return _safe(_ARITH_D.add, a, b)
            if name == "cvtss2sd":
                return self.f32(node.args[0])  # exact widening
            if name in ("cvtsi2sd64", "cvtsi2sd32"):
                value = self.sint(node.args[0])
                if value is None:
                    return None
                lo, hi = float(value.lo), float(value.hi)
                if int(lo) != value.lo:
                    lo = _down(lo)
                if int(hi) != value.hi:
                    hi = _up(hi)
                return _safe(IntervalD, lo, hi)
        # Bit-pattern view: non-negative finite patterns map
        # monotonically to doubles (covers shifted exponent fields and
        # conditional-move results re-injected via movq).
        pattern = self.sint(node)
        if pattern is not None and pattern.lo >= 0 \
                and pattern.hi <= _MAX_FINITE_BITS:
            return _safe(IntervalD, u2d(pattern.lo), u2d(pattern.hi))
        return None

    def f32(self, node: Node) -> Optional[IntervalD]:
        """Sound single-value hull of a 32-bit node, or None."""
        key = node._key
        if key in self._f32:
            return self._f32[key]
        self._f32[key] = None
        result = self._f32_of(node)
        self._f32[key] = result
        return result

    def _f32_of(self, node: Node) -> Optional[IntervalD]:
        if node.width != 32:
            return None
        if isinstance(node, Const):
            x = u2f(node.value)
            if math.isnan(x):
                return None
            return IntervalD.point(x)
        if isinstance(node, InputNode):
            return self._f32_inputs.get((node.name, 0))
        if isinstance(node, ExtractNode) and isinstance(node.child,
                                                        InputNode):
            return self._f32_inputs.get((node.child.name, node.offset))
        if isinstance(node, OpNode):
            name = node.op
            method = _SS_ARITH.get(name)
            if method is not None:
                a = self.f32(node.args[0])
                b = self.f32(node.args[1])
                if a is None or b is None:
                    return None
                return _safe(getattr(_ARITH_F, method), a, b)
            if name == "sqrtss":
                a = self.f32(node.args[0])
                return None if a is None else _safe(_ARITH_F.sqrt, a)
            if name == "cvtsd2ss":
                a = self.f64(node.args[0])
                if a is None:
                    return None
                return _safe(IntervalD, _down32(a.lo), _up32(a.hi))
        return None

    def sint(self, node: Node) -> Optional[IntInterval]:
        """Sound signed integer-value hull of a 64-bit node, or None.

        Mirrors the interval domain's GP fragment: results that could
        leave the signed 64-bit range (where pattern arithmetic wraps)
        are reported as unknown.
        """
        key = node._key
        if key in self._int:
            return self._int[key]
        self._int[key] = None
        result = self._sint_of(node)
        self._int[key] = result
        return result

    def _sint_of(self, node: Node) -> Optional[IntInterval]:
        if isinstance(node, Const):
            value = sint64(node.value) if node.width == 64 else node.value
            return IntInterval(value, value)
        if node.width != 64:
            return None
        if isinstance(node, InputNode):
            # An input double read as bits (movq xmm -> gp): u2d is
            # monotone on non-negative finite patterns.
            interval = self._f64_inputs.get(node.name)
            if interval is not None and interval.lo >= 0.0 \
                    and math.isfinite(interval.hi):
                return IntInterval(d2u(interval.lo), d2u(interval.hi))
            return None
        if not isinstance(node, OpNode):
            return None
        name = node.op
        args = node.args
        if name in ("add", "sub", "imul", "and", "or"):
            a = self.sint(args[0])
            b = self.sint(args[1])
            if a is None or b is None:
                return None
            if name == "add":
                return _safe(_require_signed64, a.lo + b.lo, a.hi + b.hi)
            if name == "sub":
                return _safe(_require_signed64, a.lo - b.hi, a.hi - b.lo)
            if name == "imul":
                corners = (a.lo * b.lo, a.lo * b.hi,
                           a.hi * b.lo, a.hi * b.hi)
                return _safe(_require_signed64, min(corners), max(corners))
            if name == "and":
                return _safe(_int_and, a, b)
            return _safe(_int_or, a, b)
        if name in ("shl", "shr", "sar"):
            a = self.sint(args[0])
            amount = args[1]
            if a is None or not isinstance(amount, Const):
                return None
            n = amount.value
            if name == "sar":
                # Python's >> is arithmetic and monotone for any sign.
                return IntInterval(a.lo >> n, a.hi >> n)
            if a.lo < 0:
                return None
            if name == "shl":
                return _safe(_require_signed64, a.lo << n, a.hi << n)
            return IntInterval(a.lo >> n, a.hi >> n)
        if name in ("cvtsd2si", "cvttsd2si"):
            src = self.f64(args[0])
            if src is None:
                return None
            rounder = _round_half_even if name == "cvtsd2si" else math.trunc
            try:
                return IntInterval(_rounded_int(src.lo, rounder),
                                   _rounded_int(src.hi, rounder))
            except IntervalUnsupported:
                return None
        if name.startswith("cmov_"):
            flags, current, src = args
            decision = self._decide(name[5:], flags)
            if decision is True:
                return self.sint(src)
            if decision is False:
                return self.sint(current)
            a = self.sint(current)
            b = self.sint(src)
            if a is None or b is None:
                return None
            return IntInterval(min(a.lo, b.lo), max(a.hi, b.hi))
        return None

    def _decide(self, cc: str, flags: Node) -> Optional[bool]:
        """Decide a cmov condition from a reified flags node, if the
        flag-setting instruction was a ucomisd/ucomiss whose operand
        hulls we can evaluate."""
        if not isinstance(flags, OpNode):
            return None
        if flags.op == "flags_ucomisd":
            a = self.f64(flags.args[0])
            b = self.f64(flags.args[1])
        elif flags.op == "flags_ucomiss":
            a = self.f32(flags.args[0])
            b = self.f32(flags.args[1])
        else:
            return None
        if a is None or b is None:
            return None
        return _decide_cmov(cc, (a, b))

    # -- difference bounding ----------------------------------------------

    def diff(self, t: Node, r: Node) -> Optional[IntervalD]:
        """Sound enclosure of ``val(t) - val(r)`` (doubles), or None."""
        key = (t._key, r._key)
        if key in self._diff:
            return self._diff[key]
        self._diff[key] = None
        if t._key == r._key:
            result: Optional[IntervalD] = _ZERO
        else:
            result = self._structural_diff(t, r)
            th = self.f64(t)
            rh = self.f64(r)
            if th is not None and rh is not None:
                # The separate-domain view; a meet keeps the structural
                # rules from ever being worse than hull subtraction.
                result = _meet(result, _safe(_ARITH_D.sub, th, rh))
        self._diff[key] = result
        return result

    def _slack(self, node: Node) -> Optional[float]:
        """Bound on one rounding error of ``node``'s operation: the ULP
        spacing at the result hull's largest magnitude (>= half an ULP
        everywhere in the hull, the round-to-nearest error bound)."""
        hull = self.f64(node)
        if hull is None:
            return None
        m = max(abs(hull.lo), abs(hull.hi))
        if not math.isfinite(m):
            return None
        return math.ulp(m)

    def _widen(self, d: Optional[IntervalD], slack: Optional[float]
               ) -> Optional[IntervalD]:
        if d is None or slack is None:
            return None
        return _safe(IntervalD, _down(d.lo - slack), _up(d.hi + slack))

    def _structural_diff(self, t: Node, r: Node) -> Optional[IntervalD]:
        if isinstance(t, Const) and isinstance(r, Const) \
                and t.width == r.width == 64:
            a = self.f64(t)
            b = self.f64(r)
            if a is None or b is None:
                return None
            return _safe(_ARITH_D.sub, a, b)
        if not (isinstance(t, OpNode) and isinstance(r, OpNode)
                and t.op == r.op and t.width == r.width == 64):
            return None
        name = t.op
        fused = name in ("fma_mul", "fma_add")
        if name in ("addsd", "subsd", "mulsd", "minsd", "maxsd",
                    "fma_mul", "fma_add"):
            # Commutative ops arrive with sorted arguments, so the
            # semantically matching pairing may be either one; every
            # pairing's rule is independently sound, so meet them all.
            pairings = [((t.args[0], r.args[0]), (t.args[1], r.args[1]))]
            if name in ("addsd", "mulsd", "minsd", "maxsd", "fma_mul",
                        "fma_add"):
                pairings.append(
                    ((t.args[0], r.args[1]), (t.args[1], r.args[0])))
            result: Optional[IntervalD] = None
            for (t1, r1), (t2, r2) in pairings:
                result = _meet(result, self._rule(name, t, r,
                                                  t1, r1, t2, r2, fused))
            return result
        if name == "divsd":
            return self._div_rule(t, r)
        if name == "sqrtsd":
            return self._sqrt_rule(t, r)
        return None

    def _rule(self, name: str, t: Node, r: Node, t1: Node, r1: Node,
              t2: Node, r2: Node, fused: bool) -> Optional[IntervalD]:
        d1 = self.diff(t1, r1)
        d2 = self.diff(t2, r2)
        if d1 is None or d2 is None:
            return None
        if name in ("minsd", "maxsd"):
            # 1-Lipschitz selections: the difference lies in the hull of
            # the argument differences, with no rounding of their own.
            return _safe(IntervalD, min(d1.lo, d2.lo), max(d1.hi, d2.hi))
        if name in ("addsd", "fma_add"):
            d = _safe(_ARITH_D.add, d1, d2)
        elif name == "subsd":
            d = _safe(_ARITH_D.sub, d1, d2)
        else:
            # mulsd / fma_mul: both exact decompositions of
            # t1*t2 - r1*r2 enclose the true difference; meet them.
            d = None
            for u, v in (((self.f64(t2)), (self.f64(r1))),
                         ((self.f64(r2)), (self.f64(t1)))):
                if u is None or v is None:
                    continue
                p1 = _safe(_ARITH_D.mul, d1, u)   # d1 * t2  (or d1 * r2)
                p2 = _safe(_ARITH_D.mul, v, d2)   # r1 * d2  (or t1 * d2)
                if p1 is None or p2 is None:
                    continue
                d = _meet(d, _safe(_ARITH_D.add, p1, p2))
            if d is None:
                return None
        if name == "fma_mul":
            # The multiply inside an FMA is exact; its single rounding
            # is charged to the enclosing fma_add.
            return d
        if fused:
            name_slack = self._fma_slack(t, r)
        else:
            name_slack = self._pair_slack(t, r)
        return self._widen(d, name_slack)

    def _pair_slack(self, t: Node, r: Node) -> Optional[float]:
        st = self._slack(t)
        sr = self._slack(r)
        if st is None or sr is None:
            return None
        return st + sr

    def _fma_slack(self, t: Node, r: Node) -> Optional[float]:
        # One fused rounding per program for the whole a*b + c.
        return self._pair_slack(t, r)

    def _div_rule(self, t: Node, r: Node) -> Optional[IntervalD]:
        t1, t2 = t.args
        r1, r2 = r.args
        d1 = self.diff(t1, r1)
        d2 = self.diff(t2, r2)
        t2h = self.f64(t2)
        r1h = self.f64(r1)
        r2h = self.f64(r2)
        if None in (d1, d2, t2h, r1h, r2h):
            return None
        denom = _safe(_ARITH_D.mul, t2h, r2h)
        if denom is None or denom.lo <= 0.0 <= denom.hi:
            return None
        # t1/t2 - r1/r2 = (d1*r2 - d2*r1) / (t2*r2)
        p1 = _safe(_ARITH_D.mul, d1, r2h)
        p2 = _safe(_ARITH_D.mul, d2, r1h)
        if p1 is None or p2 is None:
            return None
        num = _safe(_ARITH_D.sub, p1, p2)
        if num is None:
            return None
        return self._widen(_safe(_ARITH_D.div, num, denom),
                           self._pair_slack(t, r))

    def _sqrt_rule(self, t: Node, r: Node) -> Optional[IntervalD]:
        d1 = self.diff(t.args[0], r.args[0])
        th = self.f64(t.args[0])
        rh = self.f64(r.args[0])
        if None in (d1, th, rh) or th.lo < 0.0 or rh.lo < 0.0:
            return None
        st = _safe(_ARITH_D.sqrt, th)
        sr = _safe(_ARITH_D.sqrt, rh)
        if st is None or sr is None:
            return None
        denom = _safe(_ARITH_D.add, st, sr)
        if denom is None or denom.lo <= 0.0:
            return None
        # sqrt(t1) - sqrt(r1) = d1 / (sqrt(t1) + sqrt(r1))
        return self._widen(_safe(_ARITH_D.div, d1, denom),
                           self._pair_slack(t, r))


def _float_up(count: int) -> float:
    """Exact integer ULP count -> float, rounding *up* (counts past
    2^53 must not shrink when they leave integer arithmetic)."""
    f = float(count)
    if f < count:
        f = math.nextafter(f, math.inf)
    return f


def window_ulp_bound(ftype: str, t_hull: IntervalD, r_hull: IntervalD,
                     diff: Optional[IntervalD]) -> float:
    """Max ULP distance between floats ``t in t_hull``, ``r in r_hull``
    with ``|t - r|`` bounded by ``diff``.

    The pair spans a value window of width ``m = max |diff|`` inside the
    joint hull; float spacing is non-decreasing in magnitude, so sliding
    the window to the hull's minimum magnitude maximizes the number of
    representables it contains (a window containing zero fits inside
    ``[-m, m]``).  All window endpoints are pushed outward one ULP to
    absorb the endpoint arithmetic's own rounding.
    """
    if diff is None:
        return math.inf
    m = max(abs(diff.lo), abs(diff.hi))
    if m == 0.0:
        return 0.0
    if not math.isfinite(m):
        return math.inf
    lo = min(t_hull.lo, r_hull.lo)
    hi = max(t_hull.hi, r_hull.hi)
    up = _up32 if ftype == "f32" else _up
    down = _down32 if ftype == "f32" else _down
    if lo >= 0.0:
        top = min(up(lo + m), hi)
        return _float_up(index_of(top, ftype) - index_of(lo, ftype))
    if hi <= 0.0:
        bot = max(down(hi - m), lo)
        return _float_up(index_of(hi, ftype) - index_of(bot, ftype))
    top = min(up(m), hi)
    bot = max(down(-m), lo)
    return _float_up(index_of(top, ftype) - index_of(bot, ftype))
