"""Static verification stand-ins (Section 4 comparisons).

Three techniques with exactly the paper's trade-offs:

* :func:`check_equivalent_uf` — sound bit-wise equivalence with FP ops
  uninterpreted; succeeds on data-movement rewrites (Figure 6), reports
  "unknown" otherwise.
* :func:`interval_ulp_bound` — sound but coarse interval analysis; fails
  on bit-level code (libimf) and over-approximates heavily elsewhere.
* :func:`exhaustive_check` — exact on a quantized subdomain, exponential
  in input width (the decision-procedure analogue).
"""

from repro.verify.exhaustive import ExhaustiveResult, exhaustive_check
from repro.verify.interval import (
    IntervalBound,
    IntervalD,
    IntervalUnsupported,
    interval_ulp_bound,
)
from repro.verify.symbolic import (
    Const,
    InputNode,
    Node,
    OpNode,
    SymbolicUnsupported,
    concat,
    extract,
    op,
    symbolic_execute,
)
from repro.verify.uf import UfResult, VerifyOutcome, check_equivalent_uf

__all__ = [
    "ExhaustiveResult",
    "exhaustive_check",
    "IntervalBound",
    "IntervalD",
    "IntervalUnsupported",
    "interval_ulp_bound",
    "Const",
    "InputNode",
    "Node",
    "OpNode",
    "SymbolicUnsupported",
    "concat",
    "extract",
    "op",
    "symbolic_execute",
    "UfResult",
    "VerifyOutcome",
    "check_equivalent_uf",
]
