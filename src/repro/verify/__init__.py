"""Static verification stand-ins (Section 4 comparisons).

Three techniques with exactly the paper's trade-offs:

* :func:`check_equivalent_uf` — sound bit-wise equivalence with FP ops
  uninterpreted; succeeds on data-movement rewrites (Figure 6), reports
  "unknown" otherwise.
* :func:`interval_ulp_bound` — sound but coarse interval analysis over
  bit-space boxes (a thin wrapper over the branch-and-bound verifier);
  over-approximates heavily but now covers libimf's bit-level code via
  an integer-interval GP domain.
* :func:`exhaustive_check` — exact on a quantized subdomain, exponential
  in input width (the decision-procedure analogue).

The full sound pipeline — budgeted refinement, counterexample seeding,
process-parallel workers, and checkable certificates — lives in
:mod:`repro.verify.bnb`, :mod:`repro.verify.partition`,
:mod:`repro.verify.certificate`, and :mod:`repro.verify.checker`
(DESIGN.md §10).  The relational product-program domain, which bounds
the rewrite-vs-target difference directly instead of subtracting
independent hulls, lives in :mod:`repro.verify.relational`
(DESIGN.md §16).
"""

from repro.verify.bnb import (
    BnBConfig,
    BnBResult,
    BnBVerifier,
    seeds_from_validation,
)
from repro.verify.certificate import Certificate
from repro.verify.checker import CheckReport, check
from repro.verify.relational import (
    RelationalTransfer,
    smt_available,
    smt_cross_check,
    transfer_class,
)
from repro.verify.exhaustive import ExhaustiveResult, exhaustive_check
from repro.verify.interval import (
    IntervalBound,
    IntervalD,
    IntervalUnsupported,
    interval_ulp_bound,
)
from repro.verify.symbolic import (
    Const,
    InputNode,
    Node,
    OpNode,
    SymbolicUnsupported,
    concat,
    extract,
    op,
    symbolic_execute,
)
from repro.verify.uf import UfResult, VerifyOutcome, check_equivalent_uf

__all__ = [
    "BnBConfig",
    "BnBResult",
    "BnBVerifier",
    "Certificate",
    "CheckReport",
    "check",
    "seeds_from_validation",
    "ExhaustiveResult",
    "exhaustive_check",
    "IntervalBound",
    "IntervalD",
    "IntervalUnsupported",
    "interval_ulp_bound",
    "Const",
    "InputNode",
    "Node",
    "OpNode",
    "SymbolicUnsupported",
    "concat",
    "extract",
    "op",
    "symbolic_execute",
    "RelationalTransfer",
    "smt_available",
    "smt_cross_check",
    "transfer_class",
    "UfResult",
    "VerifyOutcome",
    "check_equivalent_uf",
]
