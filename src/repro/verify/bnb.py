"""Budgeted branch-and-bound ULP-bound verification.

The sound counterpart to MCMC validation (Section 4 of the paper
concedes this is out of reach for general rewrites and falls back to
testing; we recover it for the interval-analyzable fragment).  The
verifier maintains a worst-box-first frontier of bit-space boxes
(:class:`repro.verify.partition.BitBox`), repeatedly splitting the box
with the largest interval bound along its widest ULP-space dimension:

* **Bit-space splitting.**  Value-space widest-dimension splitting can
  never refine a denormal neighborhood (its value width rounds to ~0
  against any normal-range dimension — the E11 starvation).  In ordered
  bit-index space every representable value is one unit wide, so splits
  allocate effort by representable-value count.
* **Counterexample seeding.**  Inputs found by the MCMC validator
  (:func:`seeds_from_validation`) carry their observed true errors: the
  largest is a *lower* bound on the sup error, boxes whose bound is
  already below it are never worth refining (pruned), and boxes that
  contain a counterexample are refined first while the bound has slack.
* **Parallel refinement.**  Each round pops a batch of boxes and
  evaluates their children through a :class:`repro.core.parallel.TaskPool`
  whose workers build one :class:`~repro.verify.interval.IntervalTransfer`
  each; ``jobs=1`` is a deterministic inline path.
* **Termination triad.**  A box budget, a wall-clock deadline, and a
  target gap (``bound <= lower + gap * max(lower, 1)``) — whichever
  fires first; an exhausted frontier (everything pruned or at point
  boxes) ends the search early.

The search's output is *not* trusted: :meth:`BnBVerifier.certificate`
packages the leaf partition for :mod:`repro.verify.checker`, which
re-verifies the tiling and re-derives every leaf bound independently.
"""

from __future__ import annotations

import heapq
import math
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.parallel import TaskPool
from repro.core.runner import Location
from repro.x86.memory import Memory
from repro.x86.program import Program
from repro.x86.testcase import decode_from

from repro.verify.interval import IntervalTransfer, TransferStats
from repro.verify.partition import BitBox, Dim, indices_of_values

_INF = math.inf


@dataclass(frozen=True)
class TransferSpec:
    """Picklable recipe for building an IntervalTransfer in a worker."""

    target: Program
    rewrite: Program
    live_outs: Tuple[str, ...]
    ranges: Tuple[Tuple[str, float, float], ...]
    memory: Optional[Memory]
    concrete_gp: Tuple[Tuple[int, int], ...]

    def build(self) -> IntervalTransfer:
        return IntervalTransfer(
            self.target, self.rewrite, list(self.live_outs),
            {loc: (lo, hi) for loc, lo, hi in self.ranges},
            memory=self.memory, concrete_gp=dict(self.concrete_gp))


def _build_transfer(spec: TransferSpec) -> IntervalTransfer:
    return spec.build()


def _analyze_box(transfer: IntervalTransfer, bounds: Tuple[Tuple[int, int], ...]
                 ) -> Tuple[float, Optional[Dict[str, float]],
                            Tuple[int, int, int], Optional[str]]:
    """TaskPool job: bound one box; IntervalUnsupported -> +inf bound."""
    from repro.verify.interval import IntervalUnsupported

    before = (transfer.stats.boxes, transfer.stats.concrete_bit_ops,
              transfer.stats.widened_bit_ops)
    try:
        bound, per_loc = transfer.analyze(BitBox(bounds))
        error = None
    except IntervalUnsupported as exc:
        bound, per_loc, error = _INF, None, str(exc)
    after = (transfer.stats.boxes, transfer.stats.concrete_bit_ops,
              transfer.stats.widened_bit_ops)
    delta = tuple(b - a for a, b in zip(before, after))
    if delta == (0, 0, 0):
        delta = (1, 0, 0)  # the failed analysis still visited a box
    return bound, per_loc, delta, error


@dataclass(frozen=True)
class BnBConfig:
    """Search policy: termination triad, parallelism, seeding."""

    max_boxes: int = 256          # analyze-call budget
    deadline: Optional[float] = None   # wall-clock seconds
    target_gap: Optional[float] = None  # relative gap vs the lower bound
    jobs: int = 1
    # ((input values in range order), observed true error) pairs,
    # typically from seeds_from_validation().
    seeds: Tuple[Tuple[Tuple[float, ...], float], ...] = ()


@dataclass
class BnBResult:
    """Outcome of one branch-and-bound run."""

    bound_ulps: float
    lower_bound: float
    boxes_explored: int
    boxes_pruned: int
    leaves: List[BitBox]
    leaf_bounds: List[float]
    per_location: Dict[str, float]
    stats: TransferStats
    complete: bool
    termination: str  # 'exhausted' | 'budget' | 'deadline' | 'gap'
    wall_time: float
    rounds: int = 0
    max_frontier: int = 0
    jobs: int = 1
    seeds_covered: int = 0

    @property
    def gap(self) -> float:
        """Relative slack between the certified bound and the empirical
        lower bound (0 means the bound is tight against evidence)."""
        return (self.bound_ulps - self.lower_bound) / \
            max(self.lower_bound, 1.0)


@dataclass
class _Entry:
    priority: int  # 2 = unsupported (forced split), 1 = holds a cex, 0 = rest
    bound: float
    seq: int
    box: BitBox
    per_loc: Optional[Dict[str, float]]

    def key(self):
        # Max-heap: forced splits first, then worst bound, then FIFO.
        return (-self.priority, -self.bound if self.bound == self.bound
                else -_INF, self.seq)


def _entry_to_dict(entry: _Entry) -> dict:
    from repro.core import serialize as S

    return {
        "priority": entry.priority,
        "bound": S.enc_float(entry.bound),
        "seq": entry.seq,
        "box": [list(b) for b in entry.box.bounds],
        "per_loc": None if entry.per_loc is None
        else {loc: S.enc_float(v) for loc, v in entry.per_loc.items()},
    }


def _entry_from_dict(data: dict) -> _Entry:
    from repro.core import serialize as S

    per_loc = data["per_loc"]
    return _Entry(
        priority=int(data["priority"]),
        bound=S.dec_float(data["bound"]),
        seq=int(data["seq"]),
        box=BitBox(tuple((int(lo), int(hi)) for lo, hi in data["box"])),
        per_loc=None if per_loc is None
        else {loc: S.dec_float(v) for loc, v in per_loc.items()},
    )


@dataclass
class BnBCheckpoint:
    """Exact mid-refinement state of one branch-and-bound run.

    Captured at round boundaries (the frontier/leaf sets are consistent
    there) and sufficient for :meth:`BnBVerifier.run` to continue the
    bit-identical search: entry ``seq`` numbers are preserved, so the
    strict ``(priority, bound, seq)`` heap order — and therefore the
    refinement order and final leaf partition — matches the
    uninterrupted run (wall-clock fields excepted).  Leaf boxes reuse
    the certificate's inclusive bit-index range encoding.
    """

    seq: int
    explored: int
    pruned: int
    rounds: int
    max_frontier: int
    complete: bool
    stats_boxes: int
    stats_concrete: int
    stats_widened: int
    frontier: List[_Entry]
    leaves: List[_Entry]

    def to_dict(self) -> dict:
        from repro.core import serialize as S

        return {
            "version": S.SCHEMA_VERSION,
            "kind": "bnb_checkpoint",
            "seq": self.seq,
            "explored": self.explored,
            "pruned": self.pruned,
            "rounds": self.rounds,
            "max_frontier": self.max_frontier,
            "complete": self.complete,
            "stats": [self.stats_boxes, self.stats_concrete,
                      self.stats_widened],
            "frontier": [_entry_to_dict(e) for e in self.frontier],
            "leaves": [_entry_to_dict(e) for e in self.leaves],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BnBCheckpoint":
        from repro.core import serialize as S

        S.check_version(data, "BnBCheckpoint")
        boxes, concrete, widened = data["stats"]
        return cls(
            seq=int(data["seq"]),
            explored=int(data["explored"]),
            pruned=int(data["pruned"]),
            rounds=int(data["rounds"]),
            max_frontier=int(data["max_frontier"]),
            complete=bool(data["complete"]),
            stats_boxes=int(boxes),
            stats_concrete=int(concrete),
            stats_widened=int(widened),
            frontier=[_entry_from_dict(e) for e in data["frontier"]],
            leaves=[_entry_from_dict(e) for e in data["leaves"]],
        )


class BnBVerifier:
    """Branch-and-bound driver over a shared :class:`IntervalTransfer`."""

    def __init__(self, target: Program, rewrite: Program,
                 live_outs: Sequence[Union[str, Location]],
                 ranges: Dict[Union[str, Location], Tuple[float, float]],
                 memory: Optional[Memory] = None,
                 concrete_gp: Optional[Dict[int, int]] = None):
        self.spec = TransferSpec(
            target=target,
            rewrite=rewrite,
            live_outs=tuple(str(loc) for loc in live_outs),
            ranges=tuple((str(loc), float(lo), float(hi))
                         for loc, (lo, hi) in ranges.items()),
            memory=memory,
            concrete_gp=tuple((concrete_gp or {}).items()),
        )
        # A local transfer for dims/root bookkeeping (and the jobs=1 path).
        self.transfer = self.spec.build()
        self.last_result: Optional[BnBResult] = None

    @property
    def dims(self) -> Tuple[Dim, ...]:
        return self.transfer.dims

    def seed_indices(self, seeds) -> List[Tuple[Tuple[int, ...], float]]:
        out = []
        for values, err in seeds:
            out.append((indices_of_values(values, self.dims), float(err)))
        return out

    def run(self, config: BnBConfig = BnBConfig(),
            resume: Optional[BnBCheckpoint] = None,
            checkpoint_rounds: int = 0,
            on_checkpoint=None) -> BnBResult:
        """Refine until a termination condition fires.

        ``checkpoint_rounds`` > 0 calls ``on_checkpoint`` with an exact
        :class:`BnBCheckpoint` every that-many refinement rounds;
        ``resume`` continues from one and — for budget/gap-terminated
        configs — reproduces the uninterrupted run's partition and
        bounds exactly (deadline termination is wall-clock and outside
        the identity).
        """
        start = time.monotonic()
        seeds = self.seed_indices(config.seeds)
        lower = max([err for _, err in seeds], default=0.0)

        pool = TaskPool(_build_transfer, self.spec, _analyze_box,
                        jobs=config.jobs)
        # Inline path: reuse the already-built transfer so its stats
        # accumulate across runs of the same verifier.
        if pool.inline:
            pool.set_context(self.transfer)
        stats = TransferStats()
        try:
            result = self._search(pool, config, seeds, lower, stats, start,
                                  resume=resume,
                                  checkpoint_rounds=checkpoint_rounds,
                                  on_checkpoint=on_checkpoint)
        finally:
            pool.close()
        self.last_result = result
        return result

    # ------------------------------------------------------------------

    def _priority(self, box: BitBox, bound: float, error: Optional[str],
                  seeds, lower: float) -> int:
        if error is not None:
            return 2
        if bound > lower and any(box.contains(idx) for idx, _ in seeds):
            return 1
        return 0

    def _search(self, pool: TaskPool, config: BnBConfig, seeds,
                lower: float, stats: TransferStats,
                start: float, resume: Optional[BnBCheckpoint] = None,
                checkpoint_rounds: int = 0,
                on_checkpoint=None) -> BnBResult:
        root = self.transfer.root
        seq = 0
        explored = 0
        pruned = 0
        rounds = 0
        max_frontier = 1
        complete = True
        frontier: List[Tuple] = []
        leaves: List[_Entry] = []

        def absorb(result, box: BitBox) -> _Entry:
            nonlocal seq, explored, complete
            bound, per_loc, delta, error = result
            stats.boxes += delta[0]
            stats.concrete_bit_ops += delta[1]
            stats.widened_bit_ops += delta[2]
            explored += 1
            entry = _Entry(self._priority(box, bound, error, seeds, lower),
                           bound, seq, box, per_loc)
            seq += 1
            return entry

        def push(entry: _Entry) -> None:
            heapq.heappush(frontier, (entry.key(), entry))

        if resume is not None:
            seq = resume.seq
            explored = resume.explored
            pruned = resume.pruned
            rounds = resume.rounds
            max_frontier = resume.max_frontier
            complete = resume.complete
            stats.boxes += resume.stats_boxes
            stats.concrete_bit_ops += resume.stats_concrete
            stats.widened_bit_ops += resume.stats_widened
            leaves = list(resume.leaves)
            for entry in resume.frontier:
                push(entry)
        else:
            for entry in map(absorb, pool.map([root.bounds]), [root]):
                push(entry)

        def snapshot() -> BnBCheckpoint:
            return BnBCheckpoint(
                seq=seq, explored=explored, pruned=pruned, rounds=rounds,
                max_frontier=max_frontier, complete=complete,
                stats_boxes=stats.boxes,
                stats_concrete=stats.concrete_bit_ops,
                stats_widened=stats.widened_bit_ops,
                frontier=[entry for _, entry in frontier],
                leaves=list(leaves))

        termination = "exhausted"
        while frontier:
            if (checkpoint_rounds and on_checkpoint is not None
                    and rounds > 0 and rounds % checkpoint_rounds == 0):
                on_checkpoint(snapshot())
            if explored >= config.max_boxes:
                termination = "budget"
                break
            if config.deadline is not None and \
                    time.monotonic() - start > config.deadline:
                termination = "deadline"
                break
            if config.target_gap is not None:
                current = max(
                    [e.bound for _, e in frontier] +
                    [e.bound for e in leaves] + [0.0])
                if current <= lower + config.target_gap * max(lower, 1.0):
                    termination = "gap"
                    break

            batch: List[_Entry] = []
            while frontier and len(batch) < max(config.jobs, 1):
                _, entry = heapq.heappop(frontier)
                if entry.bound <= lower and entry.priority < 2:
                    # Refining cannot lower the global max below the
                    # empirical lower bound: keep as a leaf.
                    leaves.append(entry)
                    pruned += 1
                    continue
                if not entry.box.splittable:
                    if not math.isfinite(entry.bound):
                        complete = False
                    leaves.append(entry)
                    continue
                batch.append(entry)
            if not batch:
                break  # frontier drained into leaves
            rounds += 1

            children: List[BitBox] = []
            for entry in batch:
                left, right = entry.box.split(entry.box.widest_dim())
                children.extend((left, right))
            for entry in map(absorb, pool.map([c.bounds for c in children]),
                             children):
                push(entry)
            max_frontier = max(max_frontier, len(frontier))

        leaves.extend(entry for _, entry in frontier)
        if any(not math.isfinite(e.bound) for e in leaves):
            complete = False

        bound = max((e.bound for e in leaves), default=0.0)
        worst = max(leaves, key=lambda e: e.bound, default=None)
        per_location = dict(worst.per_loc) if worst is not None and \
            worst.per_loc is not None else {}
        covered = sum(1 for idx, err in seeds
                      if err <= bound and any(
                          leaf.box.contains(idx) for leaf in leaves))
        return BnBResult(
            bound_ulps=bound,
            lower_bound=lower,
            boxes_explored=explored,
            boxes_pruned=pruned,
            leaves=[e.box for e in leaves],
            leaf_bounds=[e.bound for e in leaves],
            per_location=per_location,
            stats=stats,
            complete=complete,
            termination=termination,
            wall_time=time.monotonic() - start,
            rounds=rounds,
            max_frontier=max_frontier,
            jobs=config.jobs,
            seeds_covered=covered,
        )

    def certificate(self, result: Optional[BnBResult] = None,
                    config: Optional[BnBConfig] = None):
        """Package a run's leaf partition as a checkable certificate."""
        from repro.verify.certificate import Certificate

        result = result if result is not None else self.last_result
        if result is None:
            raise ValueError("run() the verifier before asking for a "
                             "certificate")
        return Certificate.from_run(self.spec, self.dims, result,
                                    config=config)


def seeds_from_validation(validation_result, dims: Sequence[Dim]
                          ) -> Tuple[Tuple[Tuple[float, ...], float], ...]:
    """Counterexample seeds from a :class:`ValidationResult`.

    Maps the validator's argmax test case onto the verification
    dimensions; dimensions the test case does not constrain (e.g. point
    memory constants) fall back to their range's lower endpoint.  The
    observed error rides along as a certified-bound floor.
    """
    argmax = getattr(validation_result, "argmax", None)
    if argmax is None:
        return ()
    values = []
    for d in dims:
        try:
            values.append(decode_from(d.loc, argmax.value_of(d.loc)))
        except (KeyError, TypeError):
            from repro.verify.partition import value_of

            values.append(value_of(d.lo_index, d.ftype))
    return ((tuple(values), float(validation_result.max_err)),)
