"""Budgeted branch-and-bound ULP-bound verification.

The sound counterpart to MCMC validation (Section 4 of the paper
concedes this is out of reach for general rewrites and falls back to
testing; we recover it for the interval-analyzable fragment).  The
verifier maintains a worst-box-first frontier of bit-space boxes
(:class:`repro.verify.partition.BitBox`), repeatedly splitting the box
with the largest interval bound along its widest ULP-space dimension:

* **Bit-space splitting.**  Value-space widest-dimension splitting can
  never refine a denormal neighborhood (its value width rounds to ~0
  against any normal-range dimension — the E11 starvation).  In ordered
  bit-index space every representable value is one unit wide, so splits
  allocate effort by representable-value count.
* **Counterexample seeding.**  Inputs found by the MCMC validator
  (:func:`seeds_from_validation`) carry their observed true errors: the
  largest is a *lower* bound on the sup error, boxes whose bound is
  already below it are never worth refining (pruned), and boxes that
  contain a counterexample are refined first while the bound has slack.
* **Two engines.**  ``engine='batched'`` (the default) commits one
  split at a time in strict heap order — so the refinement sequence,
  leaf tiling, and certified bound are those of the serial search at
  *any* ``jobs`` — while a speculation cache keeps the worker pool
  saturated: the splits most likely to be committed next (the head of
  the frontier, plus children of in-flight splits) are dispatched ahead
  of time in adaptively-sized chunks, and results that the serial
  commit order never asks for are simply dropped.  Workers analyze both
  children of a split in one unit, sharing the parent's abstract prefix
  (:meth:`~repro.verify.interval.IntervalTransfer.analyze_split`).
  ``engine='reference'`` is the historical barriered engine — one box
  per task through the interpretive transfer, ``jobs``-wide rounds —
  kept as the oracle for identity tests and throughput baselines.
* **Termination triad.**  A box budget, a wall-clock deadline, and a
  target gap (``bound <= lower + gap * max(lower, 1)``) — whichever
  fires first; an exhausted frontier (everything pruned or at point
  boxes) ends the search early.

The search's output is *not* trusted: :meth:`BnBVerifier.certificate`
packages the leaf partition for :mod:`repro.verify.checker`, which
re-verifies the tiling and re-derives every leaf bound independently.
"""

from __future__ import annotations

import heapq
import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.core.parallel import TaskCrash, TaskError, TaskPool, TaskTimeout
from repro.core.runner import Location
from repro.x86.memory import Memory
from repro.x86.program import Program
from repro.x86.testcase import decode_from

from repro.verify.interval import IntervalTransfer, TransferStats
from repro.verify.partition import (BitBox, Dim, covered_seed_count,
                                    indices_of_values)

_INF = math.inf

# Dispatch shaping for the batched engine: cap the per-task chunk
# ladder, bound the speculation cache, size the adaptive-chunk
# observation window, and — when a window shows speculation isn't
# being consumed (oversubscribed CPUs, inaccurate predictions) — pause
# dispatch for this many commits before probing again.
_MAX_CHUNK = 8
_MAX_CACHE = 1024
_MAX_SPEC_CHILDREN = 512
_CHUNK_WINDOW = 32
_SPEC_PAUSE = 1024


@dataclass(frozen=True)
class TransferSpec:
    """Picklable recipe for building an IntervalTransfer in a worker."""

    target: Program
    rewrite: Program
    live_outs: Tuple[str, ...]
    ranges: Tuple[Tuple[str, float, float], ...]
    memory: Optional[Memory]
    concrete_gp: Tuple[Tuple[int, int], ...]
    profile: bool = False
    domain: str = "separate"

    def build(self) -> IntervalTransfer:
        from repro.verify.relational.domain import transfer_class

        cls = transfer_class(self.domain)
        return cls(
            self.target, self.rewrite, list(self.live_outs),
            {loc: (lo, hi) for loc, lo, hi in self.ranges},
            memory=self.memory, concrete_gp=dict(self.concrete_gp),
            profile=self.profile)


def _build_transfer(spec: TransferSpec) -> IntervalTransfer:
    return spec.build()


def _analyze_box(transfer: IntervalTransfer, bounds: Tuple[Tuple[int, int], ...]
                 ) -> Tuple[float, Optional[Dict[str, float]],
                            Tuple[int, int, int], Optional[str]]:
    """Reference-engine job: bound one box through the interpretive
    transfer; IntervalUnsupported -> +inf bound."""
    from repro.verify.interval import IntervalUnsupported

    try:
        bound, per_loc, stats = transfer.analyze_interpretive(BitBox(bounds))
    except IntervalUnsupported as exc:
        return _INF, None, (1, 0, 0), str(exc)
    return bound, per_loc, (stats.boxes, stats.concrete_bit_ops,
                            stats.widened_bit_ops), None


def _analyze_units(transfer: IntervalTransfer, units: Sequence[Tuple]
                   ) -> List[Tuple]:
    """Batched-engine job: a chunk of work units through the compiled
    transfer.

    Units are ``('box', bounds)`` or ``('split', bounds, dim, sharing)``;
    each yields ``(value, elapsed_seconds, op_seconds)`` where ``value``
    is one :data:`~repro.verify.interval.UnitResult` for a box and a
    ``(left, right)`` pair of them for a split.
    """
    out: List[Tuple] = []
    for unit in units:
        t0 = time.perf_counter()
        if unit[0] == "box":
            res, op_secs = transfer.analyze_unit(BitBox(unit[1]))
            out.append((res, time.perf_counter() - t0, op_secs))
        else:
            _, bounds, dim, sharing = unit
            l_res, r_res, op_secs = transfer.analyze_split(
                BitBox(bounds), dim, sharing=sharing)
            out.append(((l_res, r_res), time.perf_counter() - t0, op_secs))
    return out


@dataclass(frozen=True)
class BnBConfig:
    """Search policy: termination triad, parallelism, seeding, engine."""

    max_boxes: int = 256          # analyze-call budget
    deadline: Optional[float] = None   # wall-clock seconds
    target_gap: Optional[float] = None  # relative gap vs the lower bound
    jobs: int = 1
    # ((input values in range order), observed true error) pairs,
    # typically from seeds_from_validation().
    seeds: Tuple[Tuple[Tuple[float, ...], float], ...] = ()
    # 'batched' = pipelined compiled engine (jobs-invariant partition);
    # 'reference' = the historical barriered interpretive engine.
    engine: str = "batched"
    # Work units per task for the batched engine; 0 = adaptive ladder.
    chunk: int = 0
    # Share the parent's abstract prefix between split children.
    prefix_sharing: bool = True


@dataclass
class BnBResult:
    """Outcome of one branch-and-bound run."""

    bound_ulps: float
    lower_bound: float
    boxes_explored: int
    boxes_pruned: int
    leaves: List[BitBox]
    leaf_bounds: List[float]
    per_location: Dict[str, float]
    stats: TransferStats
    complete: bool
    termination: str  # 'exhausted' | 'budget' | 'deadline' | 'gap'
    wall_time: float
    rounds: int = 0
    max_frontier: int = 0
    jobs: int = 1
    seeds_covered: int = 0
    unsupported: int = 0
    # Certified per-live-out bound: for each location, the max over all
    # leaves of that location's contribution (a sound per-output bound
    # on its own, unlike per_location which is the worst *leaf's*
    # breakdown and only explains the headline sum).
    per_location_bounds: Dict[str, float] = field(default_factory=dict)
    domain: str = "separate"

    @property
    def gap(self) -> float:
        """Relative slack between the certified bound and the empirical
        lower bound (0 means the bound is tight against evidence)."""
        return (self.bound_ulps - self.lower_bound) / \
            max(self.lower_bound, 1.0)

    @property
    def boxes_per_second(self) -> float:
        """End-to-end verification throughput (explored / wall time)."""
        if self.wall_time <= 0:
            return 0.0
        return self.boxes_explored / self.wall_time


@dataclass
class _Entry:
    priority: int  # 2 = unsupported (forced split), 1 = holds a cex, 0 = rest
    bound: float
    seq: int
    box: BitBox
    per_loc: Optional[Dict[str, float]]

    def key(self):
        # Max-heap: forced splits first, then worst bound, then FIFO.
        return (-self.priority, -self.bound if self.bound == self.bound
                else -_INF, self.seq)


def _entry_to_dict(entry: _Entry) -> dict:
    from repro.core import serialize as S

    return {
        "priority": entry.priority,
        "bound": S.enc_float(entry.bound),
        "seq": entry.seq,
        "box": [list(b) for b in entry.box.bounds],
        "per_loc": None if entry.per_loc is None
        else {loc: S.enc_float(v) for loc, v in entry.per_loc.items()},
    }


def _entry_from_dict(data: dict) -> _Entry:
    from repro.core import serialize as S

    per_loc = data["per_loc"]
    return _Entry(
        priority=int(data["priority"]),
        bound=S.dec_float(data["bound"]),
        seq=int(data["seq"]),
        box=BitBox(tuple((int(lo), int(hi)) for lo, hi in data["box"])),
        per_loc=None if per_loc is None
        else {loc: S.dec_float(v) for loc, v in per_loc.items()},
    )


@dataclass
class BnBCheckpoint:
    """Exact mid-refinement state of one branch-and-bound run.

    Captured at round boundaries (the frontier/leaf sets are consistent
    there) and sufficient for :meth:`BnBVerifier.run` to continue the
    bit-identical search: entry ``seq`` numbers are preserved, so the
    strict ``(priority, bound, seq)`` heap order — and therefore the
    refinement order and final leaf partition — matches the
    uninterrupted run (wall-clock fields excepted).  Leaf boxes reuse
    the certificate's inclusive bit-index range encoding.  The batched
    engine's speculation cache is deliberately absent: cached results
    are pure functions of their boxes, so a resumed run recomputes
    them and still lands on the identical partition.
    """

    seq: int
    explored: int
    pruned: int
    rounds: int
    max_frontier: int
    complete: bool
    stats_boxes: int
    stats_concrete: int
    stats_widened: int
    frontier: List[_Entry]
    leaves: List[_Entry]
    unsupported: int = 0
    domain: str = "separate"

    def to_dict(self) -> dict:
        from repro.core import serialize as S

        return {
            "version": S.SCHEMA_VERSION,
            "kind": "bnb_checkpoint",
            "domain": self.domain,
            "seq": self.seq,
            "explored": self.explored,
            "pruned": self.pruned,
            "rounds": self.rounds,
            "max_frontier": self.max_frontier,
            "complete": self.complete,
            "stats": [self.stats_boxes, self.stats_concrete,
                      self.stats_widened],
            "unsupported": self.unsupported,
            "frontier": [_entry_to_dict(e) for e in self.frontier],
            "leaves": [_entry_to_dict(e) for e in self.leaves],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BnBCheckpoint":
        from repro.core import serialize as S

        S.check_version(data, "BnBCheckpoint")
        boxes, concrete, widened = data["stats"]
        return cls(
            seq=int(data["seq"]),
            explored=int(data["explored"]),
            pruned=int(data["pruned"]),
            rounds=int(data["rounds"]),
            max_frontier=int(data["max_frontier"]),
            complete=bool(data["complete"]),
            stats_boxes=int(boxes),
            stats_concrete=int(concrete),
            stats_widened=int(widened),
            frontier=[_entry_from_dict(e) for e in data["frontier"]],
            leaves=[_entry_from_dict(e) for e in data["leaves"]],
            unsupported=int(data.get("unsupported", 0)),
            domain=str(data.get("domain", "separate")),
        )


class _SearchState:
    """Counters and collections one search accumulates (both engines)."""

    __slots__ = ("seq", "explored", "pruned", "rounds", "max_frontier",
                 "complete", "unsupported", "frontier", "leaves")

    def __init__(self):
        self.seq = 0
        self.explored = 0
        self.pruned = 0
        self.rounds = 0
        self.max_frontier = 1
        self.complete = True
        self.unsupported = 0
        self.frontier: List[Tuple] = []
        self.leaves: List[_Entry] = []


class BnBVerifier:
    """Branch-and-bound driver over a shared :class:`IntervalTransfer`."""

    def __init__(self, target: Program, rewrite: Program,
                 live_outs: Sequence[Union[str, Location]],
                 ranges: Dict[Union[str, Location], Tuple[float, float]],
                 memory: Optional[Memory] = None,
                 concrete_gp: Optional[Dict[int, int]] = None,
                 profile: bool = False,
                 domain: str = "separate"):
        from repro.verify.relational.domain import transfer_class

        transfer_class(domain)  # reject unknown domains up front
        self.spec = TransferSpec(
            target=target,
            rewrite=rewrite,
            live_outs=tuple(str(loc) for loc in live_outs),
            ranges=tuple((str(loc), float(lo), float(hi))
                         for loc, (lo, hi) in ranges.items()),
            memory=memory,
            concrete_gp=tuple((concrete_gp or {}).items()),
            profile=profile,
            domain=domain,
        )
        # A local transfer for dims/root bookkeeping (and the jobs=1 path).
        self.transfer = self.spec.build()
        self.last_result: Optional[BnBResult] = None

    @property
    def dims(self) -> Tuple[Dim, ...]:
        return self.transfer.dims

    def seed_indices(self, seeds) -> List[Tuple[Tuple[int, ...], float]]:
        out = []
        for values, err in seeds:
            out.append((indices_of_values(values, self.dims), float(err)))
        return out

    def run(self, config: BnBConfig = BnBConfig(),
            resume: Optional[BnBCheckpoint] = None,
            checkpoint_rounds: int = 0,
            on_checkpoint=None,
            checkpoint_seconds: float = 0.0) -> BnBResult:
        """Refine until a termination condition fires.

        ``checkpoint_rounds`` > 0 calls ``on_checkpoint`` with an exact
        :class:`BnBCheckpoint` every that-many refinement rounds;
        ``checkpoint_seconds`` > 0 additionally rate-limits checkpoint
        construction to one per that many wall-clock seconds (snapshots
        serialize the whole frontier — on fast searches the round gate
        alone would rebuild them far more often than any sink needs).
        ``resume`` continues from one and — for budget/gap-terminated
        configs — reproduces the uninterrupted run's partition and
        bounds exactly (deadline termination is wall-clock and outside
        the identity).
        """
        if config.engine not in ("batched", "reference"):
            raise ValueError(f"unknown BnB engine {config.engine!r} "
                             "(expected 'batched' or 'reference')")
        if resume is not None and resume.domain != self.spec.domain:
            raise ValueError(
                f"checkpoint domain {resume.domain!r} does not match "
                f"verifier domain {self.spec.domain!r}")
        start = time.monotonic()
        seeds = self.seed_indices(config.seeds)
        lower = max([err for _, err in seeds], default=0.0)

        task_fn = (_analyze_units if config.engine == "batched"
                   else _analyze_box)
        pool = TaskPool(_build_transfer, self.spec, task_fn,
                        jobs=config.jobs)
        # Inline path: reuse the already-built transfer (no recompile).
        if pool.inline:
            pool.set_context(self.transfer)
        stats = TransferStats()
        search = (self._search_batched if config.engine == "batched"
                  else self._search_reference)
        try:
            result = search(pool, config, seeds, lower, stats, start,
                            resume=resume,
                            checkpoint_rounds=checkpoint_rounds,
                            on_checkpoint=on_checkpoint,
                            checkpoint_seconds=checkpoint_seconds)
        finally:
            pool.close()
        self.last_result = result
        return result

    # ------------------------------------------------------------------

    def _priority(self, box: BitBox, bound: float, error: Optional[str],
                  seeds, lower: float) -> int:
        if error is not None:
            return 2
        if bound > lower and any(box.contains(idx) for idx, _ in seeds):
            return 1
        return 0

    def _absorb(self, st: _SearchState, stats: TransferStats, result,
                box: BitBox, seeds, lower: float) -> _Entry:
        """Fold one UnitResult into the search; returns its entry."""
        bound, per_loc, delta, error = result
        stats.boxes += delta[0]
        stats.concrete_bit_ops += delta[1]
        stats.widened_bit_ops += delta[2]
        st.explored += 1
        if error is not None:
            st.unsupported += 1
        entry = _Entry(self._priority(box, bound, error, seeds, lower),
                       bound, st.seq, box, per_loc)
        st.seq += 1
        return entry

    def _restore(self, st: _SearchState, stats: TransferStats,
                 resume: BnBCheckpoint, push) -> None:
        st.seq = resume.seq
        st.explored = resume.explored
        st.pruned = resume.pruned
        st.rounds = resume.rounds
        st.max_frontier = resume.max_frontier
        st.complete = resume.complete
        st.unsupported = resume.unsupported
        stats.boxes += resume.stats_boxes
        stats.concrete_bit_ops += resume.stats_concrete
        stats.widened_bit_ops += resume.stats_widened
        st.leaves = list(resume.leaves)
        for entry in resume.frontier:
            push(entry)

    def _snapshot(self, st: _SearchState, stats: TransferStats
                  ) -> BnBCheckpoint:
        return BnBCheckpoint(
            seq=st.seq, explored=st.explored, pruned=st.pruned,
            rounds=st.rounds, max_frontier=st.max_frontier,
            complete=st.complete,
            stats_boxes=stats.boxes,
            stats_concrete=stats.concrete_bit_ops,
            stats_widened=stats.widened_bit_ops,
            frontier=[entry for _, entry in st.frontier],
            leaves=list(st.leaves),
            unsupported=st.unsupported,
            domain=self.spec.domain)

    def _assemble(self, st: _SearchState, config: BnBConfig, seeds,
                  lower: float, stats: TransferStats, start: float,
                  termination: str) -> BnBResult:
        leaves = st.leaves
        leaves.extend(entry for _, entry in st.frontier)
        complete = st.complete
        if any(not math.isfinite(e.bound) for e in leaves):
            complete = False

        bound = max((e.bound for e in leaves), default=0.0)
        worst = max(leaves, key=lambda e: e.bound, default=None)
        per_location = dict(worst.per_loc) if worst is not None and \
            worst.per_loc is not None else {}
        # Per-live-out certified bounds: each location's worst
        # contribution over *all* leaves.  A leaf with no breakdown
        # (unsupported transfer) certifies nothing per-output.
        locations = [str(loc) for loc in self.transfer.locations]
        if leaves and all(e.per_loc is not None for e in leaves):
            per_location_bounds = {
                loc: max(e.per_loc.get(loc, _INF) for e in leaves)
                for loc in locations}
        else:
            per_location_bounds = {loc: _INF for loc in locations} \
                if leaves else {}
        covered = covered_seed_count([e.box for e in leaves], seeds, bound)
        # Nominal opcode traffic: every successfully analyzed box runs
        # the full instruction mix (prefix sharing skips re-execution,
        # not accounting — the shared prefix still "covers" both kids).
        supported = st.explored - st.unsupported
        if self.transfer.op_histogram and supported > 0:
            stats.op_counts = {op: n * supported
                               for op, n in self.transfer.op_histogram.items()}
        return BnBResult(
            bound_ulps=bound,
            lower_bound=lower,
            boxes_explored=st.explored,
            boxes_pruned=st.pruned,
            leaves=[e.box for e in leaves],
            leaf_bounds=[e.bound for e in leaves],
            per_location=per_location,
            stats=stats,
            complete=complete,
            termination=termination,
            wall_time=time.monotonic() - start,
            rounds=st.rounds,
            max_frontier=st.max_frontier,
            jobs=config.jobs,
            seeds_covered=covered,
            unsupported=st.unsupported,
            per_location_bounds=per_location_bounds,
            domain=self.spec.domain,
        )

    # -- reference engine (historical barriered search) -----------------

    def _search_reference(self, pool: TaskPool, config: BnBConfig, seeds,
                          lower: float, stats: TransferStats,
                          start: float,
                          resume: Optional[BnBCheckpoint] = None,
                          checkpoint_rounds: int = 0,
                          on_checkpoint=None,
                          checkpoint_seconds: float = 0.0) -> BnBResult:
        root = self.transfer.root
        st = _SearchState()
        frontier = st.frontier

        def push(entry: _Entry) -> None:
            heapq.heappush(frontier, (entry.key(), entry))

        if resume is not None:
            self._restore(st, stats, resume, push)
        else:
            for result in pool.map([root.bounds]):
                push(self._absorb(st, stats, result, root, seeds, lower))

        last_checkpoint = start
        termination = "exhausted"
        while frontier:
            if (checkpoint_rounds and on_checkpoint is not None
                    and st.rounds > 0
                    and st.rounds % checkpoint_rounds == 0):
                now = time.monotonic()
                if checkpoint_seconds <= 0 or \
                        now - last_checkpoint >= checkpoint_seconds:
                    on_checkpoint(self._snapshot(st, stats))
                    last_checkpoint = now
            if st.explored >= config.max_boxes:
                termination = "budget"
                break
            if config.deadline is not None and \
                    time.monotonic() - start > config.deadline:
                termination = "deadline"
                break
            if config.target_gap is not None:
                current = max(
                    [e.bound for _, e in frontier] +
                    [e.bound for e in st.leaves] + [0.0])
                if current <= lower + config.target_gap * max(lower, 1.0):
                    termination = "gap"
                    break

            batch: List[_Entry] = []
            while frontier and len(batch) < max(config.jobs, 1):
                _, entry = heapq.heappop(frontier)
                if entry.bound <= lower and entry.priority < 2:
                    # Refining cannot lower the global max below the
                    # empirical lower bound: keep as a leaf.
                    st.leaves.append(entry)
                    st.pruned += 1
                    continue
                if not entry.box.splittable:
                    if not math.isfinite(entry.bound):
                        st.complete = False
                    st.leaves.append(entry)
                    continue
                batch.append(entry)
            if not batch:
                break  # frontier drained into leaves
            st.rounds += 1

            children: List[BitBox] = []
            for entry in batch:
                left, right = entry.box.split(entry.box.widest_dim())
                children.extend((left, right))
            for result, child in zip(pool.map([c.bounds for c in children]),
                                     children):
                push(self._absorb(st, stats, result, child, seeds, lower))
            st.max_frontier = max(st.max_frontier, len(frontier))

        return self._assemble(st, config, seeds, lower, stats, start,
                              termination)

    # -- batched engine (pipelined, jobs-invariant) ----------------------

    def _search_batched(self, pool: TaskPool, config: BnBConfig, seeds,
                        lower: float, stats: TransferStats,
                        start: float,
                        resume: Optional[BnBCheckpoint] = None,
                        checkpoint_rounds: int = 0,
                        on_checkpoint=None,
                        checkpoint_seconds: float = 0.0) -> BnBResult:
        """Serial-commit search over speculatively dispatched chunks.

        The commit loop is byte-for-byte the ``jobs=1`` refinement
        order: pop the heap, split the worst box, absorb left then
        right.  Parallelism comes entirely from *speculation*: the heap
        head tells us which splits the commit loop will ask for next,
        so those are shipped to the pool early, in chunks sized by a
        hit-rate ladder.  A result is only ever *used* when the serial
        order commits it, so the partition is independent of jobs,
        chunking, timing, and speculation accuracy.
        """
        root = self.transfer.root
        st = _SearchState()
        frontier = st.frontier
        sharing = bool(config.prefix_sharing)

        cache: Dict[Tuple, Tuple] = {}      # unit key -> payload
        inflight: Set[Tuple] = set()        # dispatched, not yet drained
        spec_children: List[Tuple] = []     # future split keys (FIFO)
        chunk = config.chunk if config.chunk > 0 else 1
        adaptive = config.chunk <= 0
        window_hits = 0
        window_total = 0
        spec_pause = 0

        def push(entry: _Entry) -> None:
            heapq.heappush(frontier, (entry.key(), entry))

        def split_key(box: BitBox) -> Tuple:
            return ("s", box.bounds, box.widest_dim())

        def drain(block: bool) -> bool:
            outcomes = pool.poll(timeout=60.0 if block else 0.0)
            for outcome in outcomes:
                if not outcome.ok:
                    exc_type = {"timeout": TaskTimeout,
                                "crash": TaskCrash}.get(outcome.kind,
                                                        TaskError)
                    raise exc_type(f"task {outcome.key}: {outcome.error}")
                for key, payload in zip(outcome.key, outcome.value):
                    inflight.discard(key)
                    if key not in cache:
                        cache[key] = payload
            return bool(outcomes)

        def dispatch(keys: List[Tuple]) -> None:
            units = []
            for key in keys:
                if key[0] == "s":
                    units.append(("split", key[1], key[2], sharing))
                else:
                    units.append(("box", key[1]))
                inflight.add(key)
            pool.submit(tuple(keys), units)
            # A dispatched split's children are the next generation of
            # likely commits — remember them as speculation candidates.
            for key in keys:
                if key[0] != "s" or len(spec_children) >= _MAX_SPEC_CHILDREN:
                    continue
                for child in BitBox(key[1]).split(key[2]):
                    if child.splittable:
                        spec_children.append(split_key(child))

        def candidates(limit: int) -> List[Tuple]:
            wanted: List[Tuple] = []
            taken: Set[Tuple] = set()
            for _, entry in heapq.nsmallest(limit * 2, frontier):
                if entry.bound <= lower and entry.priority < 2:
                    continue  # the commit loop will prune it
                if not entry.box.splittable:
                    continue
                key = split_key(entry.box)
                if key in cache or key in inflight or key in taken:
                    continue
                wanted.append(key)
                taken.add(key)
                if len(wanted) >= limit:
                    return wanted
            while len(wanted) < limit and spec_children:
                key = spec_children.pop(0)
                if key in cache or key in inflight or key in taken:
                    continue
                wanted.append(key)
                taken.add(key)
            return wanted

        def top_up() -> None:
            nonlocal spec_pause
            if pool.inline:
                return
            drain(block=False)
            if spec_pause > 0:
                spec_pause -= 1
                return
            # One task per idle worker: dispatch lands immediately, so a
            # demand miss never queues behind a wall of speculation.
            budget = pool.idle_workers
            if budget <= 0:
                return
            wanted = candidates(budget * max(chunk, 1))
            while budget > 0 and wanted:
                dispatch(wanted[:chunk])
                wanted = wanted[chunk:]
                budget -= 1

        def merge_op_seconds(op_secs: Optional[Dict[str, float]]) -> None:
            if not op_secs:
                return
            for op, secs in op_secs.items():
                stats.op_seconds[op] = stats.op_seconds.get(op, 0.0) + secs

        def obtain_split(box: BitBox):
            nonlocal chunk, window_hits, window_total, spec_pause
            dim = box.widest_dim()
            if pool.inline:
                t0 = time.perf_counter()
                l_res, r_res, op_secs = self.transfer.analyze_split(
                    box, dim, sharing=sharing)
                return l_res, r_res, time.perf_counter() - t0, op_secs
            key = ("s", box.bounds, dim)
            if key not in cache:
                drain(block=False)
            if key in cache:
                hit = True
                value, elapsed, op_secs = cache.pop(key)
            else:
                # Speculation missed (or is still mid-flight): the
                # leader computes the split on its own transfer instead
                # of stalling behind the worker queue — worst case is
                # the serial engine's throughput, not a round trip.
                hit = False
                t0 = time.perf_counter()
                l_res, r_res, unit_secs = self.transfer.analyze_split(
                    box, dim, sharing=sharing)
                value = (l_res, r_res)
                elapsed = time.perf_counter() - t0
                op_secs = unit_secs
            window_total += 1
            window_hits += 1 if hit else 0
            if adaptive and window_total >= _CHUNK_WINDOW:
                ratio = window_hits / window_total
                if ratio > 0.7:
                    chunk = min(chunk * 2, _MAX_CHUNK)
                elif ratio < 0.3:
                    chunk = max(chunk // 2, 1)
                if ratio < 0.1:
                    # The leader is outrunning the pool (or predictions
                    # are cold): stop feeding it for a while — the
                    # inline-miss path alone is the serial engine.
                    spec_pause = _SPEC_PAUSE
                window_hits = window_total = 0
            l_res, r_res = value
            return l_res, r_res, elapsed, op_secs

        if resume is not None:
            self._restore(st, stats, resume, push)
        else:
            if pool.inline:
                t0 = time.perf_counter()
                res, op_secs = self.transfer.analyze_unit(root)
                elapsed = time.perf_counter() - t0
            else:
                key = ("b", root.bounds)
                dispatch([key])
                while key not in cache:
                    drain(block=True)
                res, elapsed, op_secs = cache.pop(key)
            push(self._absorb(st, stats, res, root, seeds, lower))
            stats.transfer_seconds += elapsed
            merge_op_seconds(op_secs)

        last_checkpoint = start
        termination = "exhausted"
        while frontier:
            if (checkpoint_rounds and on_checkpoint is not None
                    and st.rounds > 0
                    and st.rounds % checkpoint_rounds == 0):
                now = time.monotonic()
                if checkpoint_seconds <= 0 or \
                        now - last_checkpoint >= checkpoint_seconds:
                    on_checkpoint(self._snapshot(st, stats))
                    last_checkpoint = now
            if st.explored >= config.max_boxes:
                termination = "budget"
                break
            if config.deadline is not None and \
                    time.monotonic() - start > config.deadline:
                termination = "deadline"
                break
            if config.target_gap is not None:
                current = max(
                    [e.bound for _, e in frontier] +
                    [e.bound for e in st.leaves] + [0.0])
                if current <= lower + config.target_gap * max(lower, 1.0):
                    termination = "gap"
                    break

            entry: Optional[_Entry] = None
            while frontier:
                _, popped = heapq.heappop(frontier)
                if popped.bound <= lower and popped.priority < 2:
                    st.leaves.append(popped)
                    st.pruned += 1
                    continue
                if not popped.box.splittable:
                    if not math.isfinite(popped.bound):
                        st.complete = False
                    st.leaves.append(popped)
                    continue
                entry = popped
                break
            if entry is None:
                break  # frontier drained into leaves
            st.rounds += 1

            l_res, r_res, elapsed, op_secs = obtain_split(entry.box)
            left, right = entry.box.split(entry.box.widest_dim())
            push(self._absorb(st, stats, l_res, left, seeds, lower))
            push(self._absorb(st, stats, r_res, right, seeds, lower))
            stats.transfer_seconds += elapsed
            merge_op_seconds(op_secs)
            st.max_frontier = max(st.max_frontier, len(frontier))
            while len(cache) > _MAX_CACHE:
                cache.pop(next(iter(cache)))
            top_up()

        return self._assemble(st, config, seeds, lower, stats, start,
                              termination)

    def certificate(self, result: Optional[BnBResult] = None,
                    config: Optional[BnBConfig] = None):
        """Package a run's leaf partition as a checkable certificate."""
        from repro.verify.certificate import Certificate

        result = result if result is not None else self.last_result
        if result is None:
            raise ValueError("run() the verifier before asking for a "
                             "certificate")
        return Certificate.from_run(self.spec, self.dims, result,
                                    config=config)


def seeds_from_validation(validation_result, dims: Sequence[Dim]
                          ) -> Tuple[Tuple[Tuple[float, ...], float], ...]:
    """Counterexample seeds from a :class:`ValidationResult`.

    Maps the validator's argmax test case onto the verification
    dimensions; dimensions the test case does not constrain (e.g. point
    memory constants) fall back to their range's lower endpoint.  The
    observed error rides along as a certified-bound floor.
    """
    argmax = getattr(validation_result, "argmax", None)
    if argmax is None:
        return ()
    values = []
    for d in dims:
        try:
            values.append(decode_from(d.loc, argmax.value_of(d.loc)))
        except (KeyError, TypeError):
            from repro.verify.partition import value_of

            values.append(value_of(d.lo_index, d.ftype))
    return ((tuple(values), float(validation_result.max_err)),)
