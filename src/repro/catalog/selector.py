"""Workload-level implementation selection under an error budget.

OpTuner's composition (*Faster Math Functions, Soundly*): a workload is
a set of kernels with call counts and error weights, the application's
tolerance is an end-to-end budget, and the selector picks one certified
catalog entry per kernel so the *composed* bound

    sum_k  weight_k * error_k      <=  budget

holds while total latency ``sum_k calls_k * latency_k`` is as small as
greed can make it.  Every kernel starts at the low-error end of its
frontier (the zero-error baseline is always present, so budget 0 is
always feasible for cataloged kernels); each greedy step advances the
kernel whose next frontier point buys the most weighted latency per
unit of weighted error, until no step fits the remaining budget.

Frontier entries are strictly increasing in error and strictly
decreasing in latency (:func:`repro.catalog.frontier.mark_frontier`),
so step costs and gains are strictly positive and the greedy loop
terminates.  Ties break on kernel name, then entry id, making the
assignment deterministic for a given catalog.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.serialize import dec_float, enc_float

from repro.catalog.frontier import CatalogError


@dataclass(frozen=True)
class WorkloadKernel:
    """One kernel's role in a workload."""

    name: str
    calls: int = 1       # latency weight: invocations per workload unit
    weight: float = 1.0  # error weight in the composed bound

    def to_dict(self) -> Dict:
        return {"name": self.name, "calls": self.calls,
                "weight": enc_float(self.weight)}


def resolve_workload(workload) -> List[WorkloadKernel]:
    """Normalize a workload description.

    Accepts a preset name from :data:`repro.kernels.WORKLOADS`, a
    ``{kernel: calls}`` mapping, or an explicit kernel list
    (``["dot", "add"]`` / ``[{"name": ..., "calls": ..., "weight":
    ...}]``).
    """
    if isinstance(workload, str):
        from repro.kernels import WORKLOADS

        if workload not in WORKLOADS:
            raise CatalogError(
                f"unknown workload {workload!r} "
                f"(known: {', '.join(sorted(WORKLOADS))})")
        workload = WORKLOADS[workload]
    if isinstance(workload, dict):
        return [WorkloadKernel(name, calls=int(calls))
                for name, calls in sorted(workload.items())]
    out: List[WorkloadKernel] = []
    for item in workload:
        if isinstance(item, WorkloadKernel):
            out.append(item)
        elif isinstance(item, str):
            out.append(WorkloadKernel(item))
        else:
            out.append(WorkloadKernel(
                item["name"], calls=int(item.get("calls", 1)),
                weight=float(dec_float(item.get("weight", 1.0)))))
    if not out:
        raise CatalogError("empty workload")
    names = [k.name for k in out]
    if len(set(names)) != len(names):
        raise CatalogError(f"duplicate kernels in workload: {names}")
    return out


def parse_workload_spec(text: str):
    """Parse a CLI/URL workload argument.

    Either a preset name (``aek``, ``s3d``) or a comma list of
    ``kernel[:calls]`` items (``dot:3,add:1,scale``).
    """
    from repro.kernels import WORKLOADS

    text = text.strip()
    if text in WORKLOADS:
        return text
    workload: Dict[str, int] = {}
    for item in text.split(","):
        item = item.strip()
        if not item:
            continue
        name, _, calls = item.partition(":")
        try:
            workload[name] = int(calls) if calls else 1
        except ValueError:
            raise CatalogError(
                f"bad workload item {item!r} (want kernel[:calls])")
    if not workload:
        raise CatalogError(
            f"empty workload spec {text!r} "
            f"(presets: {', '.join(sorted(WORKLOADS))})")
    return workload


def _frontier_of(body: Dict, name: str) -> List[Dict]:
    kernels = body.get("kernels", {})
    if name not in kernels:
        raise CatalogError(
            f"workload kernel {name!r} not in catalog "
            f"(has: {', '.join(sorted(kernels)) or 'none'})")
    frontier = [e for e in kernels[name]["entries"] if e["on_frontier"]]
    if not frontier:
        raise CatalogError(f"{name}: catalog has no frontier entries")
    return frontier


def select_for_budget(body: Dict, workload, budget: float,
                      max_error: Optional[Dict[str, float]] = None
                      ) -> Dict:
    """Choose one catalog entry per workload kernel under ``budget``.

    Returns the assignment with its certified composite bound,
    aggregate latency, and the greedy trace (which steps were taken and
    what each bought).  ``max_error`` optionally caps individual
    kernels (e.g. a kernel whose output feeds a branch), on top of the
    composite budget.
    """
    if budget < 0:
        raise CatalogError(f"error budget must be >= 0, got {budget:g}")
    kernels = resolve_workload(workload)
    caps = max_error or {}

    frontiers: Dict[str, List[Dict]] = {}
    position: Dict[str, int] = {}
    for wk in kernels:
        frontier = _frontier_of(body, wk.name)
        cap = caps.get(wk.name)
        if cap is not None:
            frontier = [e for e in frontier
                        if dec_float(e["error_ulps"]) <= cap]
            if not frontier:
                raise CatalogError(
                    f"{wk.name}: no frontier entry with error <= "
                    f"{cap:g}")
        frontiers[wk.name] = frontier
        position[wk.name] = 0

    def err(wk: WorkloadKernel, idx: int) -> float:
        return wk.weight * dec_float(
            frontiers[wk.name][idx]["error_ulps"])

    composite = sum(err(wk, 0) for wk in kernels)
    if composite > budget:
        floor = {wk.name: dec_float(
            frontiers[wk.name][0]["error_ulps"]) for wk in kernels}
        detail = ", ".join(f"{name}={bound:g}"
                           for name, bound in sorted(floor.items())
                           if bound > 0)
        raise CatalogError(
            f"budget {budget:g} infeasible: the lowest certified "
            f"composite bound is {composite:g}"
            + (f" (error floors: {detail})" if detail else ""))

    steps: List[Dict] = []
    while True:
        best: Optional[Tuple[float, str]] = None
        for wk in kernels:
            idx = position[wk.name]
            if idx + 1 >= len(frontiers[wk.name]):
                continue
            cost = err(wk, idx + 1) - err(wk, idx)
            if composite + cost > budget:
                continue
            cur = frontiers[wk.name][idx]
            nxt = frontiers[wk.name][idx + 1]
            gain = wk.calls * (cur["latency"] - nxt["latency"])
            # cost > 0 on a frontier; rank by latency bought per unit
            # of budget spent (higher is better, ties on name).
            ratio = gain / cost if cost > 0 else math.inf
            if best is None or ratio > best[0]:
                best = (ratio, wk.name)
        if best is None:
            break
        name = best[1]
        wk = next(k for k in kernels if k.name == name)
        idx = position[name]
        cur, nxt = frontiers[name][idx], frontiers[name][idx + 1]
        cost = err(wk, idx + 1) - err(wk, idx)
        composite += cost
        position[name] = idx + 1
        steps.append({
            "kernel": name,
            "to": nxt["id"],
            "error_cost": enc_float(cost),
            "latency_gain": wk.calls * (cur["latency"] - nxt["latency"]),
            "composite": enc_float(composite),
        })

    assignment: Dict[str, Dict] = {}
    selected_latency = target_latency = 0
    for wk in kernels:
        entry = frontiers[wk.name][position[wk.name]]
        assignment[wk.name] = {
            "id": entry["id"],
            "eta": entry["eta"],
            "error_ulps": entry["error_ulps"],
            "latency": entry["latency"],
            "select_job": entry["select_job"],
            "certificate": entry["certificate"],
            "program_digest": entry["program_digest"],
            "calls": wk.calls,
            "weight": enc_float(wk.weight),
        }
        selected_latency += wk.calls * entry["latency"]
        target_latency += wk.calls * body["kernels"][wk.name][
            "target_latency"]
    return {
        "budget": enc_float(budget),
        "bound": enc_float(composite),
        "assignment": assignment,
        "latency": selected_latency,
        "target_latency": target_latency,
        "speedup": enc_float(target_latency / selected_latency
                             if selected_latency else math.inf),
        "steps": steps,
    }
