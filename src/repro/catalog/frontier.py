"""Frontier assembly: campaign ledger -> certified (error, latency) catalog.

A finished eta-sweep campaign leaves one ``select`` result (the chosen
rewrite and its static latency) and one ``verify`` result (a sound error
bound — a UF equivalence proof at eta=0, a BnB certificate otherwise)
per ``(kernel, eta)`` cell.  :func:`assemble_catalog` joins them into
per-kernel implementation lists, adds the target program itself as the
zero-error baseline, and marks the non-dominated (error, latency)
frontier — dominated entries are retained with provenance
(``dominated_by``) so the catalog records *why* an implementation is
not served, not just that it isn't.

The function is pure: it consumes only result documents, never the
ledger, so the ``catalog`` job kind (a worker fed dependency documents
over a pipe) and :func:`build_catalog` (a ledger walk) produce the same
bytes for the same inputs.  Everything in the body is canonical-JSON
encodable (:func:`repro.core.serialize.enc_float` for floats), and the
catalog's identity is :func:`catalog_digest` — the same content
addressing jobs and artifacts use.

Entries whose verification did not produce a finite sound bound (an
unproved UF run, a BnB run with analysis-unreachable leaves) are
excluded from the served entries but recorded under ``skipped`` with the
reason: a catalog must never offer an implementation it cannot bound.
"""

from __future__ import annotations

import hashlib
import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.serialize import (
    canonical_json,
    content_digest,
    dec_float,
    enc_float,
)

CATALOG_VERSION = 1

# Stages a cell must have finished for the catalog to include it.
CELL_STAGES = ("select", "verify")


class CatalogError(ValueError):
    """The ledger/documents cannot be assembled into a sound catalog."""


def program_text_digest(text: str) -> str:
    """SHA-256 of a program's full textual rendering.

    Matches :func:`repro.verify.certificate.program_digest` for the
    assembled program, because serialized programs store exactly
    ``to_text(include_unused=True)``.
    """
    return hashlib.sha256(text.encode()).hexdigest()


def catalog_digest(body: Dict) -> str:
    """Content digest of a catalog body (canonical JSON, SHA-256)."""
    return content_digest(body)


def _entry_id(kernel: str, eta: float) -> str:
    return f"{kernel}/eta={eta:g}"


def _cell_error(ver: Dict) -> Tuple[Optional[float], str]:
    """(sound error bound, reason-if-none) from a verify result doc."""
    engine = ver.get("engine")
    if engine == "uf":
        if ver.get("proved"):
            return 0.0, ""
        return None, "uf equivalence not proved"
    if engine == "bnb":
        bound = dec_float(ver.get("bound_ulps"))
        if bound is None or not math.isfinite(bound):
            return None, "no finite certified bound"
        return bound, ""
    return None, f"unknown verify engine {engine!r}"


def mark_frontier(entries: List[Dict]) -> None:
    """Mark ``on_frontier`` / ``dominated_by`` in place.

    Entry B dominates A when B is no worse on both axes and strictly
    better on one; ties on both axes keep the first entry (sorted by
    error, latency, id) as the representative.  Entries are left sorted
    in that order, so the frontier subsequence has strictly increasing
    error and strictly decreasing latency.
    """
    entries.sort(key=lambda e: (dec_float(e["error_ulps"]),
                                e["latency"], e["id"]))
    best_latency = math.inf
    last_frontier: Optional[str] = None
    for entry in entries:
        if entry["latency"] < best_latency:
            entry["on_frontier"] = True
            entry["dominated_by"] = None
            best_latency = entry["latency"]
            last_frontier = entry["id"]
        else:
            entry["on_frontier"] = False
            entry["dominated_by"] = last_frontier


def assemble_catalog(cells: Sequence[Tuple[str, float, str, str]],
                     docs: Dict[str, Dict]) -> Dict:
    """Build a catalog body from finished cells.

    ``cells`` is ``[(kernel, eta, select_digest, verify_digest), ...]``
    in campaign declaration order; ``docs`` maps those job digests to
    their result documents.  Returns the canonical catalog body (a plain
    dict of JSON scalars) — hash it with :func:`catalog_digest`.
    """
    kernels: Dict[str, Dict] = {}
    skipped: List[Dict] = []
    for name, eta, select_digest, verify_digest in cells:
        entry_id = _entry_id(name, eta)
        select = docs.get(select_digest)
        verify = docs.get(verify_digest)
        if select is None:
            raise CatalogError(f"{entry_id}: missing select result "
                               f"{select_digest[:12]}")
        if verify is None:
            raise CatalogError(f"{entry_id}: missing verify result "
                               f"{verify_digest[:12]}")
        rewrite = select.get("best_correct") or {}
        text = rewrite.get("text")
        if not text:
            raise CatalogError(f"{entry_id}: select result has no rewrite")
        program_digest = program_text_digest(text)
        claimed = verify.get("rewrite_digest")
        if claimed is not None and claimed != program_digest:
            raise CatalogError(
                f"{entry_id}: verification was derived against a "
                f"different rewrite ({claimed[:12]} != "
                f"{program_digest[:12]})")
        kernel = kernels.setdefault(name, {
            "target_latency": int(select["target_latency"]),
            "target_digest": verify.get("target_digest"),
            "entries": [],
        })
        if kernel["target_latency"] != int(select["target_latency"]):
            raise CatalogError(f"{name}: cells disagree on target latency")
        if kernel["target_digest"] is None:
            kernel["target_digest"] = verify.get("target_digest")
        error, reason = _cell_error(verify)
        if error is None:
            skipped.append({"id": entry_id, "kernel": name,
                            "eta": enc_float(eta),
                            "select_job": select_digest,
                            "verify_job": verify_digest,
                            "reason": reason})
            continue
        latency = int(select["latency"])
        kernel["entries"].append({
            "id": entry_id,
            "eta": enc_float(eta),
            "error_ulps": enc_float(error),
            "latency": latency,
            "speedup": enc_float(kernel["target_latency"] / latency
                                 if latency else math.inf),
            "engine": verify.get("engine"),
            "domain": verify.get("domain", "separate"),
            "select_job": select_digest,
            "verify_job": verify_digest,
            "certificate": verify.get("certificate_digest"),
            "program_digest": program_digest,
        })
    for name, kernel in kernels.items():
        kernel["entries"].append({
            "id": f"{name}/target",
            "eta": None,
            "error_ulps": 0.0,
            "latency": kernel["target_latency"],
            "speedup": 1.0,
            "engine": None,
            "domain": None,
            "select_job": None,
            "verify_job": None,
            "certificate": None,
            "program_digest": kernel["target_digest"],
        })
        mark_frontier(kernel["entries"])
    return {
        "version": CATALOG_VERSION,
        "kind": "catalog",
        "kernels": kernels,
        "skipped": skipped,
        "cells": len(cells),
    }


# ---------------------------------------------------------------------------
# Ledger-side assembly


def campaign_catalog_cells(ledger, cid: str
                           ) -> List[Tuple[str, float, str, str]]:
    """The finished ``(kernel, eta, select, verify)`` cells of a
    campaign, in submission order.  Raises :class:`CatalogError` when a
    cell's terminal jobs are missing or not ``done``."""
    grouped: Dict[str, Dict[str, Dict]] = {}
    order: List[str] = []
    for row in ledger.campaign_jobs(cid):
        cell, _, stage = row["role"].rpartition("/")
        if stage not in CELL_STAGES:
            continue
        if cell not in grouped:
            grouped[cell] = {}
            order.append(cell)
        grouped[cell][stage] = row
    if not grouped:
        raise CatalogError(f"campaign {cid} has no select/verify cells "
                           "(was it submitted with the full stage set?)")
    cells: List[Tuple[str, float, str, str]] = []
    for cell in order:
        stages = grouped[cell]
        missing = [s for s in CELL_STAGES if s not in stages]
        if missing:
            raise CatalogError(f"{cell}: missing stage(s) "
                               f"{', '.join(missing)}")
        unfinished = {s: stages[s]["state"] for s in CELL_STAGES
                      if stages[s]["state"] != "done"}
        if unfinished:
            detail = ", ".join(f"{s}={state}"
                               for s, state in sorted(unfinished.items()))
            raise CatalogError(f"{cell}: not finished ({detail})")
        payload = stages["select"]["payload"]
        if isinstance(payload, str):
            import json

            payload = json.loads(payload)
        cells.append((payload["kernel"], float(payload["eta"]),
                      stages["select"]["digest"],
                      stages["verify"]["digest"]))
    return cells


def build_catalog(ledger, cid: str) -> Dict:
    """Assemble a campaign's catalog body from the ledger.

    Deterministic: the same ledger state always yields byte-identical
    ``canonical_json(body)``.  The certificate digest for pre-existing
    ledgers whose verify documents predate the ``certificate_digest``
    field falls back to the job's ``certificate.json`` artifact link.
    """
    if ledger.campaign(cid) is None:
        raise CatalogError(f"no such campaign: {cid}")
    cells = campaign_catalog_cells(ledger, cid)
    docs: Dict[str, Dict] = {}
    for _name, _eta, select_digest, verify_digest in cells:
        for digest in (select_digest, verify_digest):
            if digest in docs:
                continue
            doc = ledger.result_doc(digest)
            if doc is None:
                raise CatalogError(
                    f"job {digest[:12]} has no result document")
            docs[digest] = doc
        verify_doc = docs[verify_digest]
        if verify_doc.get("engine") == "bnb" and \
                verify_doc.get("certificate_digest") is None:
            linked = ledger.artifacts_of(verify_digest)
            verify_doc["certificate_digest"] = \
                linked.get("certificate.json")
    return assemble_catalog(cells, docs)


def store_catalog(ledger, body: Dict, campaign: Optional[str] = None
                  ) -> str:
    """Persist a catalog body as a content-addressed artifact and point
    the serving head (``catalog:latest``, plus ``catalog:<cid>`` when a
    campaign id is given) at it.  Returns the catalog digest."""
    digest = ledger.put_artifact(canonical_json(body).encode("utf-8"),
                                 kind="catalog")
    ledger.set_meta("catalog:latest", digest)
    if campaign:
        ledger.set_meta(f"catalog:{campaign}", digest)
    return digest


def resolve_catalog(ledger, campaign: Optional[str] = None
                    ) -> Optional[str]:
    """The artifact digest of the catalog to serve.

    With ``campaign``: the campaign-specific head if one was recorded,
    else the campaign's finished ``catalog``-stage job's result
    artifact.  Without: the ``catalog:latest`` head.
    """
    if campaign:
        digest = ledger.get_meta(f"catalog:{campaign}")
        if digest:
            return digest
        for row in ledger.campaign_jobs(campaign):
            if row["kind"] == "catalog" and row["state"] == "done":
                return ledger.artifacts_of(row["digest"]).get(
                    "result.json")
        return None
    return ledger.get_meta("catalog:latest")


# ---------------------------------------------------------------------------
# Re-validation and measurement (ledger-side, never in the canonical body)


def verify_catalog(ledger, body: Dict) -> List[str]:
    """Re-validate a catalog against its ledger; returns failures.

    Every served entry's certificate is fetched (content-verified by the
    artifact store), its program digests are matched against the entry,
    and the certificate itself is re-checked by the independent
    :mod:`repro.verify.checker` against freshly resolved programs — the
    same trust chain as ``repro verify --check-cert``.
    """
    import json as _json

    from repro.core.serialize import program_from_dict
    from repro.service.jobs import resolve_kernel, verify_environment
    from repro.verify import checker
    from repro.verify.certificate import Certificate, program_digest

    failures: List[str] = []
    for name in sorted(body.get("kernels", {})):
        kernel = body["kernels"][name]
        spec = resolve_kernel(name)
        target_digest = program_digest(spec.program)
        if kernel.get("target_digest") not in (None, target_digest):
            failures.append(f"{name}: catalog target digest does not "
                            f"match the kernel's target program")
        for entry in kernel["entries"]:
            if entry["select_job"] is None:
                continue  # the baseline is the target itself
            select = ledger.result_doc(entry["select_job"])
            if select is None:
                failures.append(f"{entry['id']}: select result missing")
                continue
            rewrite = program_from_dict(select["best_correct"])
            if program_digest(rewrite) != entry["program_digest"]:
                failures.append(f"{entry['id']}: rewrite program digest "
                                f"mismatch")
                continue
            if entry["certificate"] is None:
                if entry["engine"] == "bnb":
                    failures.append(f"{entry['id']}: bnb entry without "
                                    f"a certificate")
                continue
            try:
                raw = ledger.get_artifact(entry["certificate"])
            except (OSError, IOError) as exc:
                failures.append(f"{entry['id']}: certificate unreadable "
                                f"({exc})")
                continue
            try:
                cert = Certificate.from_dict(_json.loads(raw))
            except (ValueError, KeyError, TypeError) as exc:
                failures.append(f"{entry['id']}: certificate malformed "
                                f"({type(exc).__name__}: {exc})")
                continue
            if cert.rewrite_digest != entry["program_digest"]:
                failures.append(f"{entry['id']}: certificate rewrite "
                                f"digest mismatch")
                continue
            bound = dec_float(entry["error_ulps"])
            if cert.bound_ulps > bound:
                failures.append(
                    f"{entry['id']}: catalog bound {bound:g} below the "
                    f"certificate's {cert.bound_ulps:g}")
            memory, concrete_gp, _ranges = verify_environment(name)
            report = checker.check(cert, spec.program, rewrite,
                                   memory=memory, concrete_gp=concrete_gp)
            if not report.ok:
                failures.extend(f"{entry['id']}: {failure}"
                                for failure in report.failures)
    return failures


def measure_catalog(ledger, body: Dict, backend: str = "vector",
                    tests: int = 256, seed: int = 0,
                    repeats: int = 3) -> Dict:
    """Wall-clock latency probe over the catalog's programs.

    Returns ``{"backend", "tests", "entries": {id: ns_per_test}}`` —
    side-band data (machine-dependent), never part of the canonical
    body or its digest.
    """
    import random

    from repro.core.perf import measure_ns_per_test
    from repro.core.serialize import program_from_dict
    from repro.service.jobs import resolve_kernel

    measured: Dict[str, float] = {}
    for name in sorted(body.get("kernels", {})):
        spec = resolve_kernel(name)
        cases = spec.testcases(random.Random(seed), tests)
        for entry in body["kernels"][name]["entries"]:
            if entry["select_job"] is None:
                program = spec.program
            else:
                select = ledger.result_doc(entry["select_job"])
                if select is None:
                    continue
                program = program_from_dict(select["best_correct"])
            measured[entry["id"]] = measure_ns_per_test(
                program, cases, list(spec.live_outs), backend=backend,
                repeats=repeats)
    return {"backend": backend, "tests": tests, "seed": seed,
            "entries": measured}
