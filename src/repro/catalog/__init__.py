"""Certified (error, latency) Pareto catalogs over campaign ledgers.

The campaign pipeline ends with one verified rewrite per (kernel, eta)
cell; this package turns those cells into the production artifact: a
content-addressed catalog of non-dominated implementations per kernel
(:mod:`~repro.catalog.frontier`), a persisted/queryable document form
(:mod:`~repro.catalog.document`), and a workload-level selector that
composes per-kernel choices against an end-to-end error budget
(:mod:`~repro.catalog.selector`).
"""

from repro.catalog.document import (
    catalog_summary,
    fastest_under,
    load_catalog,
    load_catalog_bytes,
    query_catalog,
    save_catalog,
    unwrap_catalog,
    wrap_catalog,
)
from repro.catalog.frontier import (
    CATALOG_VERSION,
    CatalogError,
    assemble_catalog,
    build_catalog,
    catalog_digest,
    mark_frontier,
    measure_catalog,
    resolve_catalog,
    store_catalog,
    verify_catalog,
)
from repro.catalog.selector import (
    WorkloadKernel,
    parse_workload_spec,
    resolve_workload,
    select_for_budget,
)

__all__ = [
    "CATALOG_VERSION",
    "CatalogError",
    "WorkloadKernel",
    "assemble_catalog",
    "build_catalog",
    "catalog_digest",
    "catalog_summary",
    "fastest_under",
    "load_catalog",
    "load_catalog_bytes",
    "mark_frontier",
    "measure_catalog",
    "parse_workload_spec",
    "query_catalog",
    "resolve_catalog",
    "resolve_workload",
    "save_catalog",
    "select_for_budget",
    "store_catalog",
    "unwrap_catalog",
    "verify_catalog",
    "wrap_catalog",
]
