"""Catalog persistence and querying.

A catalog on disk (or on the wire) is a wrapper document::

    {"version": 1, "kind": "catalog_document",
     "digest": <sha256 of canonical_json(catalog)>,
     "catalog": <canonical body from frontier.assemble_catalog>,
     "measurements": <side-band wall-clock data or null>}

The ``digest`` pins the canonical body exactly the way the artifact
store pins its files: :func:`load_catalog` recomputes it and rejects a
document whose body was edited after assembly.  Measurements live
*outside* the digested body — they are machine-dependent telemetry, and
two catalogs built from the same ledger must stay byte-identical
whether or not a latency probe ran.
"""

from __future__ import annotations

import json
import math
from typing import Dict, List, Optional, Tuple

from repro.core.serialize import canonical_json, dec_float

from repro.catalog.frontier import (
    CATALOG_VERSION,
    CatalogError,
    catalog_digest,
)


def wrap_catalog(body: Dict, measurements: Optional[Dict] = None) -> Dict:
    """The transport/storage wrapper around a canonical catalog body."""
    return {
        "version": CATALOG_VERSION,
        "kind": "catalog_document",
        "digest": catalog_digest(body),
        "catalog": body,
        "measurements": measurements,
    }


def unwrap_catalog(doc: Dict) -> Tuple[Dict, Optional[Dict]]:
    """Validate a wrapper document; returns ``(body, measurements)``.

    Rejects version skew, a missing/mismatched digest (tampered or
    truncated body), and bodies that are not catalogs.
    """
    if not isinstance(doc, dict) or doc.get("kind") != "catalog_document":
        raise CatalogError("not a catalog document")
    if doc.get("version") != CATALOG_VERSION:
        raise CatalogError(
            f"unsupported catalog version {doc.get('version')!r} "
            f"(this build reads version {CATALOG_VERSION})")
    body = doc.get("catalog")
    if not isinstance(body, dict) or body.get("kind") != "catalog":
        raise CatalogError("catalog document has no catalog body")
    digest = catalog_digest(body)
    if doc.get("digest") != digest:
        claimed = doc.get("digest")
        claimed = claimed[:12] if isinstance(claimed, str) else claimed
        raise CatalogError(
            f"catalog digest mismatch: document claims {claimed}, "
            f"body hashes to {digest[:12]} (tampered or corrupt)")
    return body, doc.get("measurements")


def save_catalog(path: str, body: Dict,
                 measurements: Optional[Dict] = None) -> str:
    """Write a wrapper document; returns the catalog digest."""
    doc = wrap_catalog(body, measurements)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return doc["digest"]


def load_catalog(path: str) -> Tuple[Dict, Optional[Dict]]:
    """Read + integrity-check a catalog file: ``(body, measurements)``."""
    with open(path) as fh:
        try:
            doc = json.load(fh)
        except ValueError as exc:
            raise CatalogError(f"unparseable catalog file: {exc}")
    return unwrap_catalog(doc)


def load_catalog_bytes(data: bytes) -> Dict:
    """Parse catalog *body* bytes (a ledger artifact) and verify the
    body is well-formed canonical JSON of a catalog.  The artifact
    store already checked content digest == artifact digest."""
    try:
        body = json.loads(data)
    except ValueError as exc:
        raise CatalogError(f"unparseable catalog artifact: {exc}")
    if not isinstance(body, dict) or body.get("kind") != "catalog":
        raise CatalogError("artifact is not a catalog body")
    if body.get("version") != CATALOG_VERSION:
        raise CatalogError(
            f"unsupported catalog version {body.get('version')!r}")
    if canonical_json(body).encode("utf-8") != data:
        raise CatalogError("catalog artifact is not canonical JSON")
    return body


def query_catalog(body: Dict, kernel: Optional[str] = None,
                  max_error: Optional[float] = None,
                  frontier_only: bool = False) -> List[Dict]:
    """Entries matching the filters, cheapest-adequate first.

    Within a kernel, entries come back sorted by (error, latency) —
    the frontier order — so with ``max_error`` the *last* surviving
    frontier entry is the fastest implementation whose certified bound
    fits.  Unknown kernels raise (catalogs are closed-world: absence
    means "never certified", which must not read as an empty success).
    """
    kernels = body.get("kernels", {})
    if kernel is not None:
        if kernel not in kernels:
            raise CatalogError(
                f"kernel {kernel!r} not in catalog "
                f"(has: {', '.join(sorted(kernels)) or 'none'})")
        names = [kernel]
    else:
        names = sorted(kernels)
    out: List[Dict] = []
    for name in names:
        for entry in kernels[name]["entries"]:
            if frontier_only and not entry["on_frontier"]:
                continue
            if max_error is not None and \
                    dec_float(entry["error_ulps"]) > max_error:
                continue
            out.append(dict(entry, kernel=name))
    return out


def fastest_under(body: Dict, kernel: str, max_error: float) -> Dict:
    """The lowest-latency implementation whose certified error bound is
    at most ``max_error`` — the catalog's single-kernel lookup."""
    matches = query_catalog(body, kernel=kernel, max_error=max_error,
                            frontier_only=True)
    if not matches:
        raise CatalogError(
            f"{kernel}: no certified implementation with error bound "
            f"<= {max_error:g}")
    best = min(matches, key=lambda e: (e["latency"],
                                       dec_float(e["error_ulps"])))
    return best


def catalog_summary(body: Dict) -> Dict:
    """Counts for status displays: per-kernel entry/frontier totals."""
    kernels = {}
    for name in sorted(body.get("kernels", {})):
        entries = body["kernels"][name]["entries"]
        frontier = [e for e in entries if e["on_frontier"]]
        errors = [dec_float(e["error_ulps"]) for e in frontier]
        kernels[name] = {
            "entries": len(entries),
            "frontier": len(frontier),
            "min_error": min(errors) if errors else math.inf,
            "max_speedup": max(dec_float(e["speedup"]) for e in frontier)
            if frontier else 1.0,
        }
    return {"digest": catalog_digest(body), "kernels": kernels,
            "skipped": len(body.get("skipped", []))}
