"""Ablation driver for the design choices DESIGN.md §5 calls out.

Runs matched searches varying one knob at a time — test-case reduction
(max vs sum), cost compression (log2 vs raw), proposal mix (single move
kinds vs all four), annealing constant beta, and test-case count — and
prints a comparison table for each.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.core import CostConfig, SearchConfig, Stoke, run_restarts
from repro.core.strategies import McmcStrategy
from repro.core.transforms import Transforms
from repro.harness.report import format_table
from repro.kernels.libimf import exp_s3d_kernel

ETA = 1.0e12

# Chains per setting and worker processes, set once by main() so every
# ablation row is measured under the same search budget.
RESTARTS = 1
JOBS = 1


def _run(config: CostConfig, proposals: int, seed: int,
         transforms=None, strategy=None) -> Tuple[float, float]:
    spec = exp_s3d_kernel()
    tests = spec.testcases(random.Random(0), 16)
    stoke = Stoke(spec.program, tests, spec.live_outs, config,
                  transforms=transforms)
    restart = run_restarts(stoke, SearchConfig(proposals=proposals,
                                               seed=seed),
                           chains=RESTARTS, jobs=JOBS,
                           strategy=strategy or McmcStrategy())
    accept = sum(c.stats.acceptance_rate for c in restart.chains) \
        / len(restart.chains)
    return restart.best.speedup(), accept


def ablate_reduction(proposals: int, seed: int) -> List[Tuple]:
    rows = []
    for reduction in ("max", "sum"):
        speedup, accept = _run(CostConfig(eta=ETA, k=1.0,
                                          reduction=reduction),
                               proposals, seed)
        rows.append((reduction, f"{speedup:.2f}x", f"{accept:.3f}"))
    return rows


def ablate_compression(proposals: int, seed: int) -> List[Tuple]:
    rows = []
    for compress in ("log2", "none"):
        speedup, accept = _run(CostConfig(eta=ETA, k=1.0,
                                          compress=compress),
                               proposals, seed)
        rows.append((compress, f"{speedup:.2f}x", f"{accept:.3f}"))
    return rows


def ablate_moves(proposals: int, seed: int) -> List[Tuple]:
    spec = exp_s3d_kernel()
    rows = []
    for move in ("opcode", "operand", "swap", "instruction", "all"):
        kinds = None if move == "all" else [move]
        transforms = Transforms(spec.program, move_kinds=kinds)
        speedup, accept = _run(CostConfig(eta=ETA, k=1.0), proposals, seed,
                               transforms=transforms)
        rows.append((move, f"{speedup:.2f}x", f"{accept:.3f}"))
    return rows


def ablate_beta(proposals: int, seed: int) -> List[Tuple]:
    rows = []
    for beta in (0.1, 1.0, 10.0):
        speedup, accept = _run(CostConfig(eta=ETA, k=1.0), proposals, seed,
                               strategy=McmcStrategy(beta=beta))
        rows.append((beta, f"{speedup:.2f}x", f"{accept:.3f}"))
    return rows


def main() -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--proposals", type=int, default=4000)
    parser.add_argument("--seed", type=int, default=5)
    parser.add_argument("--restarts", type=int, default=1,
                        help="chains per ablation setting")
    parser.add_argument("--jobs", type=int, default=0,
                        help="worker processes; 0 = auto (cpu count)")
    args = parser.parse_args()

    global RESTARTS, JOBS
    RESTARTS, JOBS = args.restarts, args.jobs

    print(f"# {RESTARTS} chain(s) per setting, jobs={JOBS or 'auto'}")
    headers = ("setting", "speedup", "accept rate")
    print(format_table(headers, ablate_reduction(args.proposals, args.seed),
                       title="Ablation: test-case reduction (⊕)"))
    print()
    print(format_table(headers,
                       ablate_compression(args.proposals, args.seed),
                       title="Ablation: ULP cost compression"))
    print()
    print(format_table(headers, ablate_moves(args.proposals, args.seed),
                       title="Ablation: proposal move mix"))
    print()
    print(format_table(headers, ablate_beta(args.proposals, args.seed),
                       title="Ablation: annealing constant beta"))


if __name__ == "__main__":
    main()
