"""E12: the decision-procedure scaling wall (Section 4).

The paper observes that bit-blasting decision procedures handle code
"on the order of five lines long" — two orders of magnitude short of the
benchmarks.  Our exhaustive bit-level checker has the same character:
exact on its domain, exponential in input width.  This driver measures
check time against input resolution and against kernel length, printing
the blow-up curve.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List

from repro.x86.assembler import assemble
from repro.x86.testcase import TestCase

from repro.harness.report import format_table
from repro.kernels.libimf import sin_kernel
from repro.kernels.polynomial import horner_asm
from repro.verify import exhaustive_check


@dataclass
class ScalingPoint:
    bits: int
    instructions: int
    cases: int
    seconds: float


def _poly_kernel(terms: int):
    """A Horner chain of the given length (3 instructions per term)."""
    coeffs = [1.0 / (k + 1) for k in range(terms)]
    asm = horner_asm(coeffs, "xmm0", "xmm2", "xmm3") + "movsd xmm2, xmm0\n"
    return assemble(asm)


def run_bits_sweep(bits_list=(4, 6, 8, 10, 12)) -> List[ScalingPoint]:
    """Fixed kernel, growing input resolution: the exponential axis."""
    spec = sin_kernel()
    points = []
    for bits in bits_list:
        start = time.perf_counter()
        result = exhaustive_check(
            spec.program, spec.program, spec.live_outs,
            dict(spec.ranges), lambda: TestCase({}),
            bits_per_input=bits,
        )
        points.append(ScalingPoint(
            bits=bits, instructions=spec.loc,
            cases=result.cases_checked,
            seconds=time.perf_counter() - start,
        ))
    return points


def run_length_sweep(terms_list=(2, 4, 8, 16, 32),
                     bits: int = 8) -> List[ScalingPoint]:
    """Fixed resolution, growing kernel length: the linear axis."""
    points = []
    for terms in terms_list:
        program = _poly_kernel(terms)
        start = time.perf_counter()
        result = exhaustive_check(
            program, program, ["xmm0"], {"xmm0": (-1.0, 1.0)},
            lambda: TestCase({}), bits_per_input=bits,
        )
        points.append(ScalingPoint(
            bits=bits, instructions=program.loc,
            cases=result.cases_checked,
            seconds=time.perf_counter() - start,
        ))
    return points


def report(points: List[ScalingPoint], title: str) -> str:
    rows = [(p.bits, p.instructions, p.cases, f"{p.seconds:.3f}s")
            for p in points]
    return format_table(("input bits", "instructions", "cases", "time"),
                        rows, title=title)


@dataclass
class BnBPoint:
    budget: int
    jobs: int
    bound: float
    boxes: int
    pruned: int
    seconds: float
    termination: str


def run_bnb_sweep(kernel: str = "log", degree: int = 12,
                  budgets=(64, 256, 1024, 4096),
                  jobs_list=(1, 0)) -> List[BnBPoint]:
    """Branch-and-bound convergence: certified bound vs box budget.

    The sound counterpart to the exhaustive wall above — refinement cost
    grows linearly with the budget while the bound tightens, and the
    worker pool parallelizes it (``jobs=0`` = cpu count).
    """
    from repro.core.parallel import default_jobs
    from repro.kernels.libimf import LIBIMF_KERNELS
    from repro.verify.bnb import BnBConfig, BnBVerifier

    factory = LIBIMF_KERNELS[kernel]
    spec = factory()
    verifier = BnBVerifier(spec.program, factory(degree).program,
                           spec.live_outs, dict(spec.ranges))
    points = []
    for jobs in jobs_list:
        resolved = jobs if jobs else default_jobs()
        for budget in budgets:
            result = verifier.run(BnBConfig(max_boxes=budget, jobs=resolved))
            points.append(BnBPoint(
                budget=budget, jobs=resolved, bound=result.bound_ulps,
                boxes=result.boxes_explored, pruned=result.boxes_pruned,
                seconds=result.wall_time, termination=result.termination,
            ))
    return points


def report_bnb(points: List[BnBPoint], title: str) -> str:
    rows = [(p.budget, p.jobs, f"{p.bound:.3e}", p.boxes,
             f"{p.seconds:.3f}s", p.termination) for p in points]
    return format_table(
        ("budget", "jobs", "certified bound", "boxes", "time", "stop"),
        rows, title=title)


def main() -> None:
    print(report(run_bits_sweep(),
                 "E12: exhaustive check vs input resolution (exponential)"))
    print()
    print(report(run_length_sweep(),
                 "E12: exhaustive check vs kernel length (linear)"))
    print()
    print(report_bnb(run_bnb_sweep(),
                     "Branch-and-bound: certified bound vs box budget "
                     "(log kernel vs degree-12 rewrite)"))


if __name__ == "__main__":
    main()
