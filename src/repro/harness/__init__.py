"""Experiment drivers: one module per table/figure in the paper.

Run any driver as a module, e.g.::

    python -m repro.harness.throughput       # E1  (Section 5.1)
    python -m repro.harness.figure4          # E2/E3
    python -m repro.harness.figure5          # E4/E5
    python -m repro.harness.figure8          # E6/E7/E11
    python -m repro.harness.figure9          # E8
    python -m repro.harness.figure10         # E9/E10
    python -m repro.harness.verify_scaling   # E12

See DESIGN.md for the experiment index and EXPERIMENTS.md for
paper-vs-measured results.
"""

from repro.harness import report

__all__ = ["report"]
