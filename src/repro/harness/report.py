"""Plain-text table/series formatting shared by the experiment drivers."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: str = "") -> str:
    """A fixed-width table with a rule under the header."""
    str_rows = [[_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, points: Iterable[Sequence[float]],
                  labels: Sequence[str] = ("x", "y")) -> str:
    """A named (x, y, ...) series, one point per line."""
    lines = [f"# {name}: " + ", ".join(labels)]
    for point in points:
        lines.append("  ".join(_cell(v) for v in point))
    return "\n".join(lines)


def _cell(value) -> str:
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)
