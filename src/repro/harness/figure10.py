"""E9/E10: search-strategy comparison (Figure 10).

Optimization (a-d): run rand / hill / anneal / mcmc on the libimf kernels
at eta = 1e6 and record the best-cost-so-far trace, normalized to 0-100
against the starting cost.

Validation (e-h): run the four input-search variants on a fixed
reduced-precision rewrite of each kernel and record the max-error-so-far
trace, normalized against the best bound any strategy found.

Expected shape (paper): for optimization, random search never improves,
hill climbing is close to MCMC but slightly worse, annealing matches hill
climbing but takes longer; for validation, MCMC and hill climbing are
nearly identical and random search is inconsistent.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.x86.program import Program

from repro.core import CostConfig, SearchConfig, Stoke, make_strategy
from repro.harness.report import format_series
from repro.kernels.libimf import LIBIMF_KERNELS
from repro.validation import ValidationConfig, Validator, make_validation_strategy

STRATEGIES = ("rand", "hill", "anneal", "mcmc")
OPT_ETA = 1.0e6


@dataclass
class StrategyTraces:
    """Normalized best-so-far traces per kernel per strategy."""

    kind: str  # 'optimization' or 'validation'
    traces: Dict[Tuple[str, str], List[Tuple[int, float]]] = field(
        default_factory=dict)


def _reduced_precision_rewrite(name: str) -> Program:
    """A fixed reduced-precision rewrite: the same kernel refit at a much
    lower polynomial degree (the validation subject for Figure 10 e-h)."""
    return LIBIMF_KERNELS[name](degree=4).program


def optimization_traces(kernels=("sin", "log", "tan"),
                        proposals: int = 5_000, testcases: int = 32,
                        seed: int = 0) -> StrategyTraces:
    out = StrategyTraces(kind="optimization")
    for name in kernels:
        spec = LIBIMF_KERNELS[name]()
        tests = spec.testcases(random.Random(seed), testcases)
        stoke = Stoke(spec.program, tests, spec.live_outs,
                      CostConfig(eta=OPT_ETA, k=1.0))
        # Baseline cost for normalization: the target's own cost.
        base = stoke.cost_fn.cost(spec.program).total
        for strat_name in STRATEGIES:
            result = stoke.search(
                SearchConfig(proposals=proposals, seed=seed + 13),
                strategy=make_strategy(strat_name),
            )
            trace = [(it, 100.0 * cost / base if base else 0.0)
                     for it, cost in result.trace]
            out.traces[(name, strat_name)] = trace
    return out


def validation_traces(kernels=("sin", "log", "tan"),
                      proposals: int = 5_000,
                      seed: int = 0) -> StrategyTraces:
    out = StrategyTraces(kind="validation")
    for name in kernels:
        spec = LIBIMF_KERNELS[name]()
        rewrite = _reduced_precision_rewrite(name)
        validator = Validator(spec.program, rewrite, spec.live_outs,
                              dict(spec.ranges), spec.base_testcase)
        results = {}
        for strat_name in STRATEGIES:
            config = ValidationConfig(max_proposals=proposals,
                                      min_samples=proposals + 1,
                                      seed=seed + 17)
            results[strat_name] = validator.validate(
                config, strategy=make_validation_strategy(strat_name))
        best = max(r.max_err for r in results.values()) or 1.0
        for strat_name, res in results.items():
            trace = [(it, 100.0 * err / best) for it, err in res.trace]
            out.traces[(name, strat_name)] = trace
    return out


def report(traces: StrategyTraces) -> str:
    blocks = []
    for (kernel, strategy), trace in sorted(traces.traces.items()):
        label = ("cost (% of start)" if traces.kind == "optimization"
                 else "max err (% of best)")
        blocks.append(format_series(
            f"Figure 10 {traces.kind}: {kernel} / {strategy}",
            trace[:: max(1, len(trace) // 12)],
            labels=("iteration", label)))
    return "\n\n".join(blocks)


def summarize_final(traces: StrategyTraces) -> Dict[Tuple[str, str], float]:
    """Final normalized value per (kernel, strategy) — the headline."""
    return {key: trace[-1][1] for key, trace in traces.traces.items()}


def main() -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--proposals", type=int, default=5_000)
    parser.add_argument("--kernels", nargs="+", default=["sin", "log", "tan"])
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    opt = optimization_traces(tuple(args.kernels),
                              proposals=args.proposals, seed=args.seed)
    print(report(opt))
    print()
    val = validation_traces(tuple(args.kernels),
                            proposals=args.proposals, seed=args.seed)
    print(report(val))


if __name__ == "__main__":
    main()
