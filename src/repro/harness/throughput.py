"""E1: test-case dispatch throughput, emulator vs JIT (Section 5.1).

The paper's JIT-assembler evaluator outperforms the emulator-based
original STOKE by up to two orders of magnitude and dispatches almost one
million test cases per second.  This driver measures both backends of our
simulator on the libimf kernels and reports the ratio (the absolute
numbers are Python-scale; the *gap* is the reproduced result).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import List

from repro.x86.emulator import Emulator
from repro.x86.jit import compile_program

from repro.harness.report import format_table
from repro.kernels.libimf import LIBIMF_KERNELS


@dataclass
class ThroughputResult:
    kernel: str
    emulator_tests_per_sec: float
    jit_tests_per_sec: float

    @property
    def ratio(self) -> float:
        if self.emulator_tests_per_sec == 0:
            return float("inf")
        return self.jit_tests_per_sec / self.emulator_tests_per_sec


def measure_kernel(name: str, tests: int = 300, seed: int = 0,
                   repeats: int = 3) -> ThroughputResult:
    """Dispatch ``tests`` test cases through both backends."""
    spec = LIBIMF_KERNELS[name]()
    rng = random.Random(seed)
    cases = spec.testcases(rng, tests)
    states = [tc.build_state() for tc in cases]

    emulator = Emulator()
    best_emu = float("inf")
    for _ in range(repeats):
        run_states = [s.copy() for s in states]
        start = time.perf_counter()
        for state in run_states:
            emulator.run(spec.program, state)
        best_emu = min(best_emu, time.perf_counter() - start)

    compiled = compile_program(spec.program)
    best_jit = float("inf")
    for _ in range(repeats):
        run_states = [s.copy() for s in states]
        start = time.perf_counter()
        for state in run_states:
            compiled.run(state)
        best_jit = min(best_jit, time.perf_counter() - start)

    return ThroughputResult(
        kernel=name,
        emulator_tests_per_sec=tests / best_emu,
        jit_tests_per_sec=tests / best_jit,
    )


def run(tests: int = 300, seed: int = 0) -> List[ThroughputResult]:
    return [measure_kernel(name, tests=tests, seed=seed)
            for name in LIBIMF_KERNELS]


def report(results: List[ThroughputResult]) -> str:
    rows = [(r.kernel, f"{r.emulator_tests_per_sec:,.0f}",
             f"{r.jit_tests_per_sec:,.0f}", f"{r.ratio:.1f}x")
            for r in results]
    return format_table(
        ("kernel", "emulator tests/s", "JIT tests/s", "JIT/emulator"),
        rows,
        title="E1 (Section 5.1): test-case dispatch throughput",
    )


def main() -> None:
    print(report(run()))


if __name__ == "__main__":
    main()
