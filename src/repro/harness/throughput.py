"""E1: test-case dispatch throughput, emulator vs JIT (Section 5.1).

The paper's JIT-assembler evaluator outperforms the emulator-based
original STOKE by up to two orders of magnitude and dispatches almost one
million test cases per second.  This driver measures both backends of our
simulator on the libimf kernels and reports the ratio (the absolute
numbers are Python-scale; the *gap* is the reproduced result).

It also measures whole-chain throughput at a configurable worker count
(``--jobs``), the quantity the paper's 16-thread restart parallelism
buys; ``benchmarks/bench_parallel.py`` tracks the same number as a
regression baseline.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import List

from repro.x86.emulator import Emulator
from repro.x86.jit import compile_program

from repro.core import CostConfig, SearchConfig, StokeSpec
from repro.core.parallel import resolve_jobs, run_seeded_chains
from repro.harness.report import format_table
from repro.kernels.libimf import LIBIMF_KERNELS


@dataclass
class ThroughputResult:
    kernel: str
    emulator_tests_per_sec: float
    jit_tests_per_sec: float
    jit_batched_tests_per_sec: float

    @property
    def ratio(self) -> float:
        """Batched JIT over emulator — the Section 5.1 gap."""
        if self.emulator_tests_per_sec == 0:
            return float("inf")
        return self.jit_batched_tests_per_sec / self.emulator_tests_per_sec

    @property
    def batch_speedup(self) -> float:
        """Batched over per-test JIT dispatch (the evaluator-batching win)."""
        if self.jit_tests_per_sec == 0:
            return float("inf")
        return self.jit_batched_tests_per_sec / self.jit_tests_per_sec


def measure_kernel(name: str, tests: int = 300, seed: int = 0,
                   repeats: int = 3) -> ThroughputResult:
    """Dispatch ``tests`` test cases through both backends.

    All timed loops reset each test case's pooled machine state in place
    (``pooled_state``) rather than copying a template, matching how the
    search's cost function dispatches tests.
    """
    spec = LIBIMF_KERNELS[name]()
    rng = random.Random(seed)
    cases = spec.testcases(rng, tests)

    emulator = Emulator()
    best_emu = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for tc in cases:
            emulator.run(spec.program, tc.pooled_state())
        best_emu = min(best_emu, time.perf_counter() - start)

    compiled = compile_program(spec.program)
    best_jit = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for tc in cases:
            compiled.run(tc.pooled_state(compiled.writes))
        best_jit = min(best_jit, time.perf_counter() - start)

    compiled.specialize_batch()
    best_batched = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        compiled.run_batch(
            [tc.pooled_state(compiled.writes) for tc in cases])
        best_batched = min(best_batched, time.perf_counter() - start)

    return ThroughputResult(
        kernel=name,
        emulator_tests_per_sec=tests / best_emu,
        jit_tests_per_sec=tests / best_jit,
        jit_batched_tests_per_sec=tests / best_batched,
    )


@dataclass
class ChainThroughputResult:
    """Whole search chains dispatched per second at a worker count."""

    kernel: str
    chains: int
    jobs: int
    proposals: int
    chains_per_sec: float
    proposals_per_sec: float


def measure_chain_throughput(name: str = "exp", chains: int = 4,
                             jobs: int = 1, proposals: int = 1_000,
                             seed: int = 0,
                             testcases: int = 16) -> ChainThroughputResult:
    """Run ``chains`` independent searches and report chains/sec."""
    spec_kernel = LIBIMF_KERNELS[name]()
    tests = spec_kernel.testcases(random.Random(seed), testcases)
    spec = StokeSpec(target=spec_kernel.program, tests=tuple(tests),
                     live_outs=tuple(spec_kernel.live_outs),
                     cost_config=CostConfig(eta=1.0e12, k=1.0))
    jobs = resolve_jobs(jobs, chains)
    start = time.perf_counter()
    results = run_seeded_chains(spec, SearchConfig(proposals=proposals,
                                                   seed=seed),
                                chains=chains, jobs=jobs)
    elapsed = time.perf_counter() - start
    return ChainThroughputResult(
        kernel=name,
        chains=chains,
        jobs=jobs,
        proposals=proposals,
        chains_per_sec=len(results) / elapsed,
        proposals_per_sec=sum(r.stats.proposals for r in results) / elapsed,
    )


def run(tests: int = 300, seed: int = 0) -> List[ThroughputResult]:
    return [measure_kernel(name, tests=tests, seed=seed)
            for name in LIBIMF_KERNELS]


def report(results: List[ThroughputResult]) -> str:
    rows = [(r.kernel, f"{r.emulator_tests_per_sec:,.0f}",
             f"{r.jit_tests_per_sec:,.0f}",
             f"{r.jit_batched_tests_per_sec:,.0f}",
             f"{r.ratio:.1f}x", f"{r.batch_speedup:.2f}x")
            for r in results]
    return format_table(
        ("kernel", "emulator tests/s", "JIT tests/s", "JIT batched tests/s",
         "batched/emulator", "batched/JIT"),
        rows,
        title="E1 (Section 5.1): test-case dispatch throughput",
    )


def report_chains(result: ChainThroughputResult) -> str:
    rows = [(result.kernel, result.chains, result.jobs, result.proposals,
             f"{result.chains_per_sec:.2f}",
             f"{result.proposals_per_sec:,.0f}")]
    return format_table(
        ("kernel", "chains", "jobs", "proposals/chain", "chains/s",
         "proposals/s"),
        rows,
        title="Multi-chain search throughput",
    )


def main() -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=0,
                        help="worker processes for the chain-throughput "
                             "measurement; 0 = auto (cpu count)")
    parser.add_argument("--chains", type=int, default=4)
    parser.add_argument("--proposals", type=int, default=1_000)
    args = parser.parse_args()
    print(report(run()))
    print()
    print(report_chains(measure_chain_throughput(
        chains=args.chains, jobs=args.jobs, proposals=args.proposals)))


if __name__ == "__main__":
    main()
