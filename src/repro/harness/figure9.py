"""E8: ray-traced images under kernel substitution (Figure 9).

Renders the aek scene four ways:

  (a) gcc-style targets only (the reference image);
  (b) bit-wise correct rewrites for scale/dot/add — must be
      pixel-identical to (a);
  (c) adding the valid lower-precision delta rewrite — visually
      identical, but a handful of pixels differ;
  (d) the over-aggressive delta' — depth-of-field blur disappears and
      the image differs everywhere.

Writes PPM images and the white-on-black error maps when ``--out`` is
given, and prints the error-pixel counts either way.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict

from repro.harness.report import format_table
from repro.kernels.aek import (
    RenderConfig,
    add_rewrite,
    delta_prime,
    delta_rewrite,
    dot_rewrite,
    error_map,
    error_pixels,
    render_with,
    scale_rewrite,
)
from repro.kernels.aek.image import Image


@dataclass
class Figure9Result:
    images: Dict[str, Image]
    diffs: Dict[str, int]
    total_pixels: int


def run(width: int = 48, height: int = 32, samples: int = 3,
        seed: int = 12345) -> Figure9Result:
    config = RenderConfig(width=width, height=height, samples=samples,
                          seed=seed)
    reference = render_with(config=config)
    bitwise = render_with(scale=scale_rewrite(), dot=dot_rewrite(),
                          add=add_rewrite(), config=config)
    valid = render_with(scale=scale_rewrite(), dot=dot_rewrite(),
                        add=add_rewrite(), delta=delta_rewrite(),
                        config=config)
    invalid = render_with(delta=delta_prime(), config=config)
    images = {
        "a_reference": reference,
        "b_bitwise": bitwise,
        "c_valid_imprecise": valid,
        "d_invalid": invalid,
    }
    diffs = {
        "b_bitwise": error_pixels(reference, bitwise),
        "c_valid_imprecise": error_pixels(reference, valid),
        "d_invalid": error_pixels(reference, invalid),
    }
    return Figure9Result(images=images, diffs=diffs,
                         total_pixels=width * height)


def report(result: Figure9Result) -> str:
    rows = [
        ("(b) bit-wise rewrites", result.diffs["b_bitwise"],
         result.total_pixels),
        ("(c) + valid imprecise delta", result.diffs["c_valid_imprecise"],
         result.total_pixels),
        ("(d) over-aggressive delta'", result.diffs["d_invalid"],
         result.total_pixels),
    ]
    return format_table(("variant", "error pixels", "total"),
                        rows, title="E8 (Figure 9): image diffs vs reference")


def write_images(result: Figure9Result, out_dir: str) -> None:
    os.makedirs(out_dir, exist_ok=True)
    reference = result.images["a_reference"]
    for name, image in result.images.items():
        image.write_ppm(os.path.join(out_dir, f"{name}.ppm"))
        if name != "a_reference":
            error_map(reference, image).write_ppm(
                os.path.join(out_dir, f"{name}_errors.ppm"))


def main() -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--width", type=int, default=48)
    parser.add_argument("--height", type=int, default=32)
    parser.add_argument("--samples", type=int, default=3)
    parser.add_argument("--out", type=str, default=None,
                        help="directory for PPM output")
    args = parser.parse_args()
    result = run(width=args.width, height=args.height,
                 samples=args.samples)
    print(report(result))
    if args.out:
        write_images(result, args.out)
        print(f"images written to {args.out}/")


if __name__ == "__main__":
    main()
