"""E4/E5: the S3D diffusion leaf task (Figure 5).

Sweeps eta on the shipped S3D exp kernel, and for each rewrite reports:
LOC, kernel speedup, the Amdahl full-task speedup, whether the diffusion
task still tolerates the rewrite (aggregate error within tolerance), and
the MCMC-validated max ULP error.  The largest tolerable eta is the
vertical bar of Figure 5a; the paper's instance was eta = 1e7 with a 2x
kernel / 27% task speedup.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.x86.program import Program

from repro.core import CostConfig, SearchConfig, Stoke
from repro.harness.report import format_table
from repro.kernels.libimf import exp_s3d_kernel
from repro.kernels.lift import lift_kernel
from repro.kernels.s3d import (
    aggregate_error,
    reference_diffusion,
    run_diffusion,
    task_speedup,
    tolerates,
)
from repro.validation import ValidationConfig, Validator

DEFAULT_ETAS = tuple(10.0 ** k for k in (0, 3, 6, 9, 12, 15, 18))


@dataclass
class DiffusionPoint:
    eta: float
    loc: int
    kernel_speedup: float
    task_speedup: float
    aggregate_error: float
    tolerated: bool
    validated_max_ulps: Optional[float]
    rewrite: Optional[Program]


@dataclass
class DiffusionSweep:
    target_loc: int
    target_latency: int
    points: List[DiffusionPoint] = field(default_factory=list)
    max_tolerable_eta: Optional[float] = None


def run(etas=DEFAULT_ETAS, proposals: int = 10_000, testcases: int = 32,
        grid: int = 6, seed: int = 0, validate: bool = True
        ) -> DiffusionSweep:
    spec = exp_s3d_kernel()
    rng = random.Random(seed)
    tests = spec.testcases(rng, testcases)
    reference = reference_diffusion(n=grid, seed=seed)
    sweep = DiffusionSweep(target_loc=spec.loc,
                           target_latency=spec.latency)
    for eta in etas:
        stoke = Stoke(spec.program, tests, spec.live_outs,
                      CostConfig(eta=eta, k=1.0))
        result = stoke.search(SearchConfig(proposals=proposals,
                                           seed=seed + 1))
        rewrite = result.best_correct
        if rewrite is None:
            rewrite = spec.program
        kernel_fn = lift_kernel(spec, rewrite)
        task = run_diffusion(kernel_fn, n=grid, seed=seed)
        err = aggregate_error(task, reference)
        ok = tolerates(task, reference)
        max_ulps = None
        if validate:
            validator = Validator(spec.program, rewrite, spec.live_outs,
                                  dict(spec.ranges), spec.base_testcase)
            vres = validator.validate(ValidationConfig(
                eta=eta, max_proposals=4000, min_samples=1000,
                seed=seed + 2))
            max_ulps = vres.max_err
        point = DiffusionPoint(
            eta=eta,
            loc=rewrite.loc,
            kernel_speedup=result.speedup(),
            task_speedup=task_speedup(result.speedup()),
            aggregate_error=err,
            tolerated=ok,
            validated_max_ulps=max_ulps,
            rewrite=rewrite,
        )
        sweep.points.append(point)
        if ok:
            sweep.max_tolerable_eta = eta
    return sweep


def report(sweep: DiffusionSweep) -> str:
    rows = []
    for p in sweep.points:
        rows.append((
            f"1e{int(math.log10(p.eta)) if p.eta >= 1 else 0:d}",
            p.loc,
            f"{p.kernel_speedup:.2f}x",
            f"{p.task_speedup:.2f}x",
            f"{p.aggregate_error:.2e}",
            "yes" if p.tolerated else "no",
            f"{p.validated_max_ulps:.2e}" if p.validated_max_ulps is not None
            else "-",
        ))
    title = (f"E4 (Figure 5): S3D diffusion — exp target "
             f"{sweep.target_loc} LOC / {sweep.target_latency} cycles; "
             f"max tolerable eta = {sweep.max_tolerable_eta}")
    return format_table(
        ("eta", "LOC", "exp speedup", "task speedup", "agg err",
         "tolerated", "validated max ULPs"),
        rows, title=title)


def main() -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--proposals", type=int, default=10_000)
    parser.add_argument("--grid", type=int, default=6)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    print(report(run(proposals=args.proposals, grid=args.grid,
                     seed=args.seed)))


if __name__ == "__main__":
    main()
