"""Run every experiment and write a single consolidated report.

``python -m repro.harness.all --out report.txt`` regenerates E1-E12 at a
chosen scale and writes the tables/series to one file — the one-command
reproduction entry point.
"""

from __future__ import annotations

import argparse
import io
import sys
import time
from contextlib import redirect_stdout

from repro.harness import (
    ablations,
    figure2,
    figure4,
    figure5,
    figure8,
    figure9,
    figure10,
    throughput,
    verify_scaling,
)


def _capture(title: str, fn, out) -> None:
    print(f"== {title} ==", file=out)
    start = time.perf_counter()
    buffer = io.StringIO()
    try:
        with redirect_stdout(buffer):
            fn()
        out.write(buffer.getvalue())
    except Exception as exc:  # pragma: no cover - report and continue
        out.write(buffer.getvalue())
        print(f"!! {title} failed: {exc!r}", file=out)
    print(f"-- {title} took {time.perf_counter() - start:.1f}s --\n",
          file=out)


def run_all(out, proposals: int, seed: int) -> None:
    _capture("Figures 1-2: formats and error functions", figure2.main, out)
    _capture("E1: throughput (Section 5.1)", throughput.main, out)

    def fig4():
        sweeps = figure4.run(("sin", "log", "tan"),
                             proposals=proposals, seed=seed)
        for sweep in sweeps.values():
            print(figure4.report_sweep(sweep))
            print()

    _capture("E2/E3: Figure 4 eta sweeps", fig4, out)

    def fig5():
        print(figure5.report(figure5.run(proposals=proposals, seed=seed)))

    _capture("E4/E5: Figure 5 S3D diffusion", fig5, out)

    def fig8():
        rows = figure8.run(proposals=proposals, seed=seed)
        print(figure8.report(rows))
        bounds = figure8.delta_bounds(seed=seed)
        print(f"interval static bound: "
              f"{bounds['interval_static_ulps']:.3e} ULPs")
        print(f"MCMC validated bound:  "
              f"{bounds['mcmc_validated_ulps']:.3e} ULPs")

    _capture("E6/E7/E11: Figure 8 aek kernels", fig8, out)

    def fig9():
        print(figure9.report(figure9.run()))

    _capture("E8: Figure 9 images", fig9, out)

    def fig10():
        opt = figure10.optimization_traces(proposals=proposals, seed=seed)
        print(figure10.report(opt))
        val = figure10.validation_traces(proposals=proposals, seed=seed)
        print(figure10.report(val))

    _capture("E9/E10: Figure 10 strategies", fig10, out)
    _capture("E12: verification scaling", verify_scaling.main, out)
    _capture("Ablations", ablations.main, out)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=str, default=None,
                        help="write the report to this file")
    parser.add_argument("--proposals", type=int, default=6000)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    # The sub-drivers parse sys.argv themselves when invoked as mains;
    # neutralize it so they use their defaults.
    sys.argv = [sys.argv[0]]

    if args.out:
        with open(args.out, "w") as fh:
            run_all(fh, args.proposals, args.seed)
        print(f"report written to {args.out}")
    else:
        run_all(sys.stdout, args.proposals, args.seed)


if __name__ == "__main__":
    main()
