"""Figures 1-2 reproduction: format taxonomy and error-function pathologies.

Figure 1 is the IEEE-754 double layout table; Figure 2 shows why absolute
error diverges for large inputs and relative error for denormal inputs,
motivating the ULP measure.  This driver regenerates both as text.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from repro.fp.errors import absolute_error, relative_error
from repro.fp.ieee754 import DOUBLE, FloatClass, bits_to_double, classify_bits
from repro.harness.report import format_series, format_table


def figure1_table() -> str:
    """The Figure 1 taxonomy, regenerated from classify_bits."""
    samples = [
        ("Zero", 0x0000000000000000),
        ("Denormal", 0x0000000000000001),
        ("Denormal", 0x000FFFFFFFFFFFFF),
        ("Normal", 0x0010000000000000),
        ("Normal", 0x3FF0000000000000),
        ("Normal", 0x7FEFFFFFFFFFFFFF),
        ("Infinity", 0x7FF0000000000000),
        ("NaN", 0x7FF0000000000001),
        ("NaN", 0x7FF8000000000000),
    ]
    rows = []
    for expected, bits in samples:
        cls = classify_bits(bits, DOUBLE)
        exponent = (bits >> 52) & 0x7FF
        fraction = bits & ((1 << 52) - 1)
        value = bits_to_double(bits)
        rows.append((expected, f"0x{exponent:03x}", f"0x{fraction:x}",
                     repr(value), cls.value))
        assert cls.value == expected.lower() or (
            expected == "Denormal" and cls is FloatClass.DENORMAL)
    return format_table(
        ("class", "exponent", "fraction", "value", "classified"),
        rows, title="Figure 1: IEEE-754 double-precision taxonomy")


def adjacent_error_series(kind: str, count: int = 24
                          ) -> List[Tuple[float, float]]:
    """Error between adjacent doubles across the magnitude range.

    ``kind`` is 'absolute' or 'relative'.  Absolute error grows with
    magnitude (Figure 2a); relative error is flat for normals and
    diverges in the denormal range (Figure 2b).
    """
    series = []
    for exponent in range(-320, 309, max(1, 629 // count)):
        x = 10.0 ** exponent
        succ = math.nextafter(x, math.inf)
        if kind == "absolute":
            err = absolute_error(x, succ)
        else:
            err = relative_error(x, succ)
        series.append((x, err))
    return series


def main() -> None:
    print(figure1_table())
    print()
    for kind in ("absolute", "relative"):
        series = adjacent_error_series(kind)
        print(format_series(
            f"Figure 2 ({kind} error between adjacent doubles)",
            [(f"1e{int(math.log10(x)):+d}", err) for x, err in series],
            labels=("magnitude", "error")))
        print()
    print("Absolute error spans ~600 orders of magnitude across the range;")
    print("relative error is ~2^-52 for all normals but diverges below")
    print("1e-308 — ULPs (Figure 3) are uniform everywhere instead.")


if __name__ == "__main__":
    main()
