"""E6/E7/E11: the aek kernel table (Figure 8) and its verification story.

For each vector kernel, runs a STOKE search from the gcc-style target,
reports target/rewrite latency and LOC, whether the best rewrite is
bit-wise correct on the test set, and what each static technique can say
about it:

* UF verification (Figure 6): proves the bit-wise rewrites equivalent.
* Interval analysis (Section 6.3): bounds the imprecise delta rewrite,
  far more coarsely than MCMC validation does (1363.5 vs 5 ULPs in the
  paper's instance).

The known paper rewrites are also measured as a reference row, since a
scaled-down search does not always rediscover the best rewrite.

Search rows run through the campaign service (:mod:`repro.service`): the
harness submits one search+select campaign over the four kernels and
reads the select artifacts back, so runs are resumable and a repeat
invocation with ``--store`` reuses every finished search.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.x86.memory import Memory
from repro.x86.program import Program

from repro.core import CostConfig, Stoke
from repro.harness.report import format_table
from repro.kernels.aek import vector as V
from repro.validation import ValidationConfig, Validator
from repro.verify import (
    IntervalUnsupported,
    check_equivalent_uf,
    interval_ulp_bound,
)

# eta used when searching the delta kernel (the imprecise one); bit-wise
# kernels are searched at eta = 0.
DELTA_ETA = 1.0e5


@dataclass
class KernelRow:
    kernel: str
    target_latency: int
    rewrite_latency: int
    target_loc: int
    rewrite_loc: int
    speedup: float
    bitwise: bool
    uf_proved: Optional[bool]
    source: str  # 'search' or 'paper'
    rewrite: Optional[Program] = None
    chains: int = 1  # restart chains behind a 'search' row
    jobs: int = 1  # worker processes that ran them


def _uf_check(spec, rewrite: Program) -> bool:
    result = check_equivalent_uf(
        spec.program, rewrite, spec.live_outs,
        memory=Memory(V.aek_segments()),
        concrete_gp=V.CONCRETE_GP_INDICES,
    )
    return result.proved


def measure_rewrite(name: str, rewrite: Program, spec, tests,
                    source: str) -> KernelRow:
    cost = Stoke(spec.program, tests, spec.live_outs,
                 CostConfig(eta=0.0, k=0.0)).cost_fn
    eq, _ = cost.eq_fast(rewrite)
    bitwise = eq == 0.0
    return KernelRow(
        kernel=name,
        target_latency=spec.latency,
        rewrite_latency=rewrite.latency,
        target_loc=spec.loc,
        rewrite_loc=rewrite.loc,
        speedup=spec.latency / rewrite.latency if rewrite.latency else
        float("inf"),
        bitwise=bitwise,
        uf_proved=_uf_check(spec, rewrite),
        source=source,
        rewrite=rewrite,
    )


def _campaign_spec(names, proposals: int, testcases: int, seed: int,
                   restarts: int):
    """The campaign behind the search rows: one (kernel, eta) cell per
    kernel, search + select stages only (the harness does its own
    measurement against the shared test set)."""
    from repro.service.campaign import CampaignSpec

    return CampaignSpec(
        kernels=tuple((name, DELTA_ETA if name == "delta" else 0.0)
                      for name in names),
        chains=restarts, proposals=proposals, testcases=testcases,
        seed=seed, stages=("search", "select"))


def search_rows(names, proposals: int = 8_000, testcases: int = 32,
                seed: int = 0, restarts: int = 1, jobs: int = 1,
                store: Optional[str] = None) -> List[KernelRow]:
    """Search rows via the campaign service: submit one campaign over
    ``names``, serve it to completion, and read the select artifacts.

    ``store`` persists the ledger across invocations — a re-run with the
    same parameters reuses every finished job instead of searching
    again.  The default is a throwaway directory.  Results are
    bit-identical to the direct ``run_restarts`` path for the same
    seeds (chain *i* searches with ``seed + 1 + i`` on test cases drawn
    from ``seed``).
    """
    import tempfile

    from repro.core.serialize import program_from_dict
    from repro.service import Ledger, Scheduler
    from repro.service.campaign import campaign_cells, submit_campaign

    names = list(names)
    root = store if store is not None else tempfile.mkdtemp(
        prefix="repro-figure8-")
    rows: List[KernelRow] = []
    with Ledger(root) as ledger:
        cid, _ = submit_campaign(
            ledger, _campaign_spec(names, proposals, testcases, seed,
                                   restarts),
            name="figure8")
        Scheduler(ledger, jobs=jobs).run()
        cells = campaign_cells(ledger, cid)
        for name in names:
            eta = DELTA_ETA if name == "delta" else 0.0
            cell = cells.get(f"{name}/eta={eta:g}", {})
            select = cell.get("select")
            if select is None or select["state"] != "done":
                continue
            doc = ledger.result_doc(select["digest"])
            rewrite = program_from_dict(doc["best_correct"])
            spec = V.AEK_KERNELS[name]()
            tests = spec.testcases(random.Random(seed), testcases)
            row = measure_rewrite(name, rewrite, spec, tests, "search")
            row.chains = restarts
            row.jobs = jobs
            rows.append(row)
    return rows


def search_kernel(name: str, proposals: int = 8_000, testcases: int = 32,
                  seed: int = 0, restarts: int = 1, jobs: int = 1,
                  store: Optional[str] = None) -> Optional[KernelRow]:
    rows = search_rows([name], proposals=proposals, testcases=testcases,
                       seed=seed, restarts=restarts, jobs=jobs,
                       store=store)
    return rows[0] if rows else None


def paper_rows(testcases: int = 32, seed: int = 0) -> List[KernelRow]:
    rows = []
    for name in ("scale", "dot", "add", "delta"):
        spec = V.AEK_KERNELS[name]()
        tests = spec.testcases(random.Random(seed), testcases)
        rewrite = V.AEK_REWRITES[name]()
        rows.append(measure_rewrite(name, rewrite, spec, tests, "paper"))
    # delta': the over-aggressive rewrite (unusable; Figure 9d).
    spec = V.delta_kernel()
    tests = spec.testcases(random.Random(seed), testcases)
    rows.append(measure_rewrite("delta'", V.delta_prime(), spec, tests,
                                "paper"))
    return rows


def delta_bounds(seed: int = 0) -> Dict[str, float]:
    """E11: static interval bound vs MCMC-validated bound for delta."""
    spec = V.delta_kernel()
    rewrite = V.delta_rewrite()
    ranges = dict(spec.ranges)
    ranges.update(V.delta_mem_ranges())
    try:
        static = interval_ulp_bound(
            spec.program, rewrite, spec.live_outs, ranges,
            memory=Memory(V.aek_segments()),
            concrete_gp=V.CONCRETE_GP_INDICES, max_boxes=256,
        ).bound_ulps
    except IntervalUnsupported:
        static = float("inf")
    validator = Validator(spec.program, rewrite, spec.live_outs,
                          dict(spec.ranges), spec.base_testcase)
    mcmc = validator.validate(ValidationConfig(
        max_proposals=8000, min_samples=2000, seed=seed)).max_err
    return {"interval_static_ulps": static, "mcmc_validated_ulps": mcmc}


def run(proposals: int = 8_000, testcases: int = 32,
        seed: int = 0, include_search: bool = True,
        restarts: int = 1, jobs: int = 1,
        store: Optional[str] = None) -> List[KernelRow]:
    rows = paper_rows(testcases=testcases, seed=seed)
    if include_search:
        rows.extend(search_rows(("scale", "dot", "add", "delta"),
                                proposals=proposals, testcases=testcases,
                                seed=seed, restarts=restarts, jobs=jobs,
                                store=store))
    return rows


def report(rows: List[KernelRow]) -> str:
    table = [
        (r.kernel, r.source, r.target_latency, r.rewrite_latency,
         r.target_loc, r.rewrite_loc, f"{r.speedup:.2f}x",
         "yes" if r.bitwise else "no",
         "yes" if r.uf_proved else "no",
         f"{r.chains}/{r.jobs}" if r.source == "search" else "-")
        for r in rows
    ]
    return format_table(
        ("kernel", "rewrite", "lat T", "lat R", "LOC T", "LOC R",
         "speedup", "bit-wise", "UF-proved", "chains/jobs"),
        table,
        title="E7 (Figure 8): aek kernel speedups",
    )


def main() -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--proposals", type=int, default=8_000)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--no-search", action="store_true")
    parser.add_argument("--restarts", type=int, default=1,
                        help="independent chains per kernel search "
                             "(the paper runs 16)")
    parser.add_argument("--jobs", type=int, default=0,
                        help="worker processes; 0 = auto (cpu count)")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="persistent campaign store; a re-run with "
                             "the same parameters reuses finished jobs")
    args = parser.parse_args()
    rows = run(proposals=args.proposals, seed=args.seed,
               include_search=not args.no_search,
               restarts=args.restarts, jobs=args.jobs,
               store=args.store)
    print(report(rows))
    print()
    bounds = delta_bounds(seed=args.seed)
    print("E11 (Section 6.3): delta rewrite error bounds")
    print(f"  interval static bound: {bounds['interval_static_ulps']:.1f} ULPs")
    print(f"  MCMC validated bound:  {bounds['mcmc_validated_ulps']:.1f} ULPs")


if __name__ == "__main__":
    main()
