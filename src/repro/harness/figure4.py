"""E2/E3: LOC & speedup vs eta and rewrite error curves (Figure 4).

For each libimf kernel, sweep the minimum acceptable ULP error ``eta``
from 1 to 1e18, run the search at each point, and report the LOC and
latency-model speedup of the best rewrite found (Figure 4a-c).  For the
error curves (Figure 4d-f), evaluate each rewrite against the target over
an input grid and report max/ULP-error samples.

Paper scale: 10M proposals, 1024 test cases, 16 threads.  Defaults here
are scaled down (documented in EXPERIMENTS.md); pass larger values to
approach paper scale.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.fp.ulp import ulp_distance
from repro.x86.program import Program

from repro.core import CostConfig, SearchConfig, Stoke
from repro.harness.report import format_series, format_table
from repro.kernels.libimf import LIBIMF_KERNELS
from repro.kernels.lift import lift_kernel
from repro.kernels.spec import KernelSpec

DEFAULT_ETAS = tuple(10.0 ** k for k in (0, 2, 4, 6, 8, 10, 12, 14, 16, 18))


@dataclass
class SweepPoint:
    eta: float
    loc: int
    latency: int
    speedup: float
    found: bool
    rewrite: Optional[Program]


@dataclass
class KernelSweep:
    kernel: str
    target_loc: int
    target_latency: int
    points: List[SweepPoint] = field(default_factory=list)


def sweep_kernel(name: str, etas=DEFAULT_ETAS, proposals: int = 10_000,
                 testcases: int = 32, seed: int = 0) -> KernelSweep:
    """Run the eta sweep for one kernel (Figure 4a-c data)."""
    spec = LIBIMF_KERNELS[name]()
    rng = random.Random(seed)
    tests = spec.testcases(rng, testcases)
    sweep = KernelSweep(kernel=name, target_loc=spec.loc,
                        target_latency=spec.latency)
    for eta in etas:
        stoke = Stoke(spec.program, tests, spec.live_outs,
                      CostConfig(eta=eta, k=1.0))
        result = stoke.search(SearchConfig(proposals=proposals,
                                           seed=seed + 1))
        best = result.best_correct
        sweep.points.append(SweepPoint(
            eta=eta,
            loc=best.loc if best else spec.loc,
            latency=best.latency if best else spec.latency,
            speedup=result.speedup(),
            found=result.found_correct,
            rewrite=best,
        ))
    return sweep


def error_curve(spec: KernelSpec, rewrite: Program,
                samples: int = 200) -> List[Tuple[float, float]]:
    """ULP error of a rewrite vs the target over the input grid (Fig 4d-f)."""
    target_fn = lift_kernel(spec)
    rewrite_fn = lift_kernel(spec, rewrite)
    (lo, hi) = next(iter(spec.ranges.values()))
    curve = []
    for i in range(samples):
        x = lo + (hi - lo) * i / (samples - 1)
        want = target_fn(x)
        got = rewrite_fn(x)
        if math.isnan(want) or math.isnan(got):
            continue
        curve.append((x, float(ulp_distance(want, got))))
    return curve


def report_sweep(sweep: KernelSweep) -> str:
    rows = [
        (f"1e{int(math.log10(p.eta)):d}", p.loc, p.latency,
         f"{p.speedup:.2f}x", "yes" if p.found else "no")
        for p in sweep.points
    ]
    header = (f"E2 (Figure 4): {sweep.kernel} — target "
              f"{sweep.target_loc} LOC / {sweep.target_latency} cycles")
    return format_table(("eta", "LOC", "latency", "speedup", "found"),
                        rows, title=header)


def run(kernels=("sin", "log", "tan"), etas=DEFAULT_ETAS,
        proposals: int = 10_000, testcases: int = 32,
        seed: int = 0) -> Dict[str, KernelSweep]:
    return {name: sweep_kernel(name, etas, proposals, testcases, seed)
            for name in kernels}


def main() -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--kernels", nargs="+",
                        default=["sin", "log", "tan"])
    parser.add_argument("--proposals", type=int, default=10_000)
    parser.add_argument("--testcases", type=int, default=32)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--curves", action="store_true",
                        help="also print Figure 4d-f error curves")
    args = parser.parse_args()

    sweeps = run(args.kernels, proposals=args.proposals,
                 testcases=args.testcases, seed=args.seed)
    for sweep in sweeps.values():
        print(report_sweep(sweep))
        print()
        if args.curves:
            spec = LIBIMF_KERNELS[sweep.kernel]()
            for point in sweep.points:
                if point.rewrite is None or not point.found:
                    continue
                curve = error_curve(spec, point.rewrite, samples=60)
                print(format_series(
                    f"Figure 4d-f: {sweep.kernel} eta={point.eta:.0e}",
                    curve, labels=("input", "ULP error")))
                print()


if __name__ == "__main__":
    main()
