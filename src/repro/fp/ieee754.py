"""IEEE-754 binary interchange formats (Figure 1 of the paper).

Provides bit-exact conversions between Python values and the raw bit
patterns of the half (binary16), single (binary32) and double (binary64)
formats, plus field-level decomposition and classification.

Python ``float`` is a C ``double`` with round-to-nearest-even semantics, so
double conversions are exact reinterpretations.  Single and half
conversions round through ``numpy.float32``/``numpy.float16``, which
implement correct IEEE-754 rounding.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

import numpy as np

_PACK_D = struct.Struct("<d")
_PACK_Q = struct.Struct("<Q")
_PACK_F = struct.Struct("<f")
_PACK_I = struct.Struct("<I")


class FloatClass(enum.Enum):
    """Classification of a floating-point bit pattern (Figure 1)."""

    ZERO = "zero"
    DENORMAL = "denormal"
    NORMAL = "normal"
    INFINITY = "infinity"
    NAN = "nan"


@dataclass(frozen=True)
class Format:
    """An IEEE-754 binary interchange format.

    Attributes:
        name: Human-readable name.
        exponent_bits: Width of the exponent field.
        fraction_bits: Width of the fraction (significand) field.
    """

    name: str
    exponent_bits: int
    fraction_bits: int

    @property
    def width(self) -> int:
        """Total width in bits, including the sign bit."""
        return 1 + self.exponent_bits + self.fraction_bits

    @property
    def bias(self) -> int:
        """Exponent bias (1023 for double, 127 for single, 15 for half)."""
        return (1 << (self.exponent_bits - 1)) - 1

    @property
    def max_exponent_field(self) -> int:
        """All-ones exponent field value (2047 for double)."""
        return (1 << self.exponent_bits) - 1

    @property
    def mask(self) -> int:
        """Bit mask covering the whole representation."""
        return (1 << self.width) - 1

    @property
    def sign_mask(self) -> int:
        """Mask selecting the sign bit."""
        return 1 << (self.width - 1)

    @property
    def fraction_mask(self) -> int:
        """Mask selecting the fraction field."""
        return (1 << self.fraction_bits) - 1


HALF = Format("half", exponent_bits=5, fraction_bits=10)
SINGLE = Format("single", exponent_bits=8, fraction_bits=23)
DOUBLE = Format("double", exponent_bits=11, fraction_bits=52)


def double_to_bits(value: float) -> int:
    """Reinterpret a double as its 64-bit pattern (no rounding)."""
    return _PACK_Q.unpack(_PACK_D.pack(value))[0]


def bits_to_double(bits: int) -> float:
    """Reinterpret a 64-bit pattern as a double (no rounding)."""
    return _PACK_D.unpack(_PACK_Q.pack(bits & 0xFFFFFFFFFFFFFFFF))[0]


def single_to_bits(value: float) -> int:
    """Round a value to single precision and return its 32-bit pattern."""
    return _PACK_I.unpack(_PACK_F.pack(np.float32(value)))[0]


def bits_to_single(bits: int) -> float:
    """Reinterpret a 32-bit pattern as a single, widened to a double."""
    return _PACK_F.unpack(_PACK_I.pack(bits & 0xFFFFFFFF))[0]


def half_to_bits(value: float) -> int:
    """Round a value to half precision and return its 16-bit pattern."""
    return int(np.float16(value).view(np.uint16))


def bits_to_half(bits: int) -> float:
    """Reinterpret a 16-bit pattern as a half, widened to a double."""
    return float(np.uint16(bits & 0xFFFF).view(np.float16))


def decompose_bits(bits: int, fmt: Format = DOUBLE) -> tuple[int, int, int]:
    """Split a bit pattern into (sign, exponent field, fraction field)."""
    bits &= fmt.mask
    sign = bits >> (fmt.width - 1)
    exponent = (bits >> fmt.fraction_bits) & fmt.max_exponent_field
    fraction = bits & fmt.fraction_mask
    return sign, exponent, fraction


def compose_bits(sign: int, exponent: int, fraction: int, fmt: Format = DOUBLE) -> int:
    """Assemble a bit pattern from (sign, exponent field, fraction field)."""
    if sign not in (0, 1):
        raise ValueError(f"sign must be 0 or 1, got {sign}")
    if not 0 <= exponent <= fmt.max_exponent_field:
        raise ValueError(f"exponent field out of range for {fmt.name}: {exponent}")
    if not 0 <= fraction <= fmt.fraction_mask:
        raise ValueError(f"fraction field out of range for {fmt.name}: {fraction}")
    return (sign << (fmt.width - 1)) | (exponent << fmt.fraction_bits) | fraction


def classify_bits(bits: int, fmt: Format = DOUBLE) -> FloatClass:
    """Classify a bit pattern per the Figure 1 taxonomy."""
    _, exponent, fraction = decompose_bits(bits, fmt)
    if exponent == 0:
        return FloatClass.ZERO if fraction == 0 else FloatClass.DENORMAL
    if exponent == fmt.max_exponent_field:
        return FloatClass.INFINITY if fraction == 0 else FloatClass.NAN
    return FloatClass.NORMAL
