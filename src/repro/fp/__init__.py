"""IEEE-754 substrate: formats, ULP distances, and error functions.

This package implements the floating-point machinery from Sections 2-3 of
the paper: the IEEE-754 double-precision layout (Figure 1), the ULP'
distance between two floating-point values (Equation 17 / Figure 3), the
real-vs-float ULP measure (Equation 7), the absolute/relative error
functions whose pathologies motivate ULPs (Equation 6 / Figure 2), and the
precision constants used to tune ``eta`` (Section 6.1).
"""

from repro.fp.ieee754 import (
    DOUBLE,
    HALF,
    SINGLE,
    FloatClass,
    Format,
    bits_to_double,
    bits_to_half,
    bits_to_single,
    classify_bits,
    compose_bits,
    decompose_bits,
    double_to_bits,
    half_to_bits,
    single_to_bits,
)
from repro.fp.ulp import (
    ordered_from_bits,
    ulp_distance,
    ulp_distance_bits,
    ulp_distance_single,
    ulp_distance_single_bits,
    ulp_from_real,
)
from repro.fp.errors import absolute_error, relative_error
from repro.fp.precision import (
    ETA_HALF,
    ETA_SINGLE,
    eta_for_fraction_bits,
    round_to_fraction_bits,
)

__all__ = [
    "DOUBLE",
    "HALF",
    "SINGLE",
    "FloatClass",
    "Format",
    "bits_to_double",
    "bits_to_half",
    "bits_to_single",
    "classify_bits",
    "compose_bits",
    "decompose_bits",
    "double_to_bits",
    "half_to_bits",
    "single_to_bits",
    "ordered_from_bits",
    "ulp_distance",
    "ulp_distance_bits",
    "ulp_distance_single",
    "ulp_distance_single_bits",
    "ulp_from_real",
    "absolute_error",
    "relative_error",
    "ETA_HALF",
    "ETA_SINGLE",
    "eta_for_fraction_bits",
    "round_to_fraction_bits",
]
