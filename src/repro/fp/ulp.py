"""ULP distances between floating-point values.

Implements the paper's two ULP measures:

* ``ulp_from_real`` — Equation 7, the distance between a representable
  floating-point value and an arbitrary real number, computed exactly with
  rational arithmetic.
* ``ulp_distance`` — Equation 17 / Figure 3, the integer count of
  representable values between two floats, computed with the signed
  reinterpretation trick: reinterpreting an IEEE-754 pattern as a signed
  integer and mapping negative patterns through ``INT_MIN - x`` arranges
  the whole value set in ascending order, so ULP distance is a simple
  subtraction.
"""

from __future__ import annotations

import math
from fractions import Fraction

from repro.fp.ieee754 import (
    DOUBLE,
    SINGLE,
    Format,
    decompose_bits,
    double_to_bits,
    single_to_bits,
)

_INT64_MIN = -(1 << 63)
_INT32_MIN = -(1 << 31)


def ordered_from_bits(bits: int, fmt: Format = DOUBLE) -> int:
    """Map a bit pattern to a monotonically ordered signed integer.

    This is the reordering performed by the C code in Figure 3: patterns
    with the sign bit set (negative values) are reflected through the
    minimum signed integer so that iterating over the resulting integers
    walks the floating-point values in ascending order, from -NaN up
    through -0, +0, and on to +NaN.
    """
    width = fmt.width
    bits &= fmt.mask
    int_min = -(1 << (width - 1))
    signed = bits - (1 << width) if bits & fmt.sign_mask else bits
    return int_min - signed if signed < 0 else signed


def bits_from_ordered(index: int, fmt: Format = DOUBLE) -> int:
    """Inverse of :func:`ordered_from_bits`.

    Maps an ordered signed integer back to the IEEE bit pattern at that
    position, so contiguous index ranges name contiguous runs of
    representable values (the coordinate system of the bit-space
    verification boxes in :mod:`repro.verify.partition`).
    """
    width = fmt.width
    int_min = -(1 << (width - 1))
    if not int_min <= index < -int_min:
        raise ValueError(f"ordered index {index} outside {fmt.name}")
    signed = int_min - index if index < 0 else index
    return (signed + (1 << width)) & fmt.mask if signed < 0 else signed


def ulp_distance_bits(bits_x: int, bits_y: int, fmt: Format = DOUBLE) -> int:
    """Number of representable values separating two bit patterns (Eq 17)."""
    return abs(ordered_from_bits(bits_x, fmt) - ordered_from_bits(bits_y, fmt))


def ulp_distance(x: float, y: float) -> int:
    """ULP' distance between two doubles (Equation 17 / Figure 3)."""
    return ulp_distance_bits(double_to_bits(x), double_to_bits(y), DOUBLE)


def ulp_distance_single_bits(bits_x: int, bits_y: int) -> int:
    """ULP' distance between two 32-bit single patterns."""
    return ulp_distance_bits(bits_x, bits_y, SINGLE)


def ulp_distance_single(x: float, y: float) -> int:
    """ULP' distance between two values after rounding both to single."""
    return ulp_distance_bits(single_to_bits(x), single_to_bits(y), SINGLE)


def _exact_value(bits: int, fmt: Format) -> Fraction:
    """The exact real value of a finite bit pattern, as a Fraction."""
    sign, exponent, fraction = decompose_bits(bits, fmt)
    if exponent == fmt.max_exponent_field:
        raise ValueError("infinity and NaN have no exact real value")
    scale = Fraction(1, 1 << fmt.fraction_bits)
    if exponent == 0:
        significand = Fraction(fraction) * scale
        unbiased = 1 - fmt.bias
    else:
        significand = 1 + Fraction(fraction) * scale
        unbiased = exponent - fmt.bias
    magnitude = significand * Fraction(2) ** unbiased
    return -magnitude if sign else magnitude


def _ulp_size(bits: int, fmt: Format) -> Fraction:
    """The gap between consecutive representable values near ``bits``."""
    _, exponent, _ = decompose_bits(bits, fmt)
    effective = max(exponent, 1) - fmt.bias
    return Fraction(2) ** (effective - fmt.fraction_bits)


def ulp_from_real(f: float, r, fmt: Format = DOUBLE) -> Fraction:
    """Distance in ULPs between a float and a real number (Equation 7).

    ``r`` may be an ``int``, ``float``, or ``Fraction``; the computation is
    exact.  ``f`` must be finite.
    """
    if math.isinf(f) or math.isnan(f):
        raise ValueError("f must be finite")
    if fmt is DOUBLE:
        bits = double_to_bits(f)
    elif fmt is SINGLE:
        bits = single_to_bits(f)
    else:
        raise ValueError(f"unsupported format: {fmt.name}")
    exact_f = _exact_value(bits, fmt)
    exact_r = Fraction(r)
    return abs(exact_f - exact_r) / _ulp_size(bits, fmt)
