"""Absolute and relative error (Equation 6).

These are the two naive rounding-error measures the paper rejects in
favour of ULPs: absolute error over-weights errors between large values
(Figure 2a) and relative error diverges for denormal and zero values
(Figure 2b).  They are retained both for the Figure 2 reproduction and for
use by clients that want them.
"""

from __future__ import annotations

import math


def absolute_error(r1: float, r2: float) -> float:
    """``|r1 - r2|``; infinity if either argument is non-finite."""
    if not (math.isfinite(r1) and math.isfinite(r2)):
        return math.inf
    return abs(r1 - r2)


def relative_error(r1: float, r2: float) -> float:
    """``|(r1 - r2) / r1|``; diverges to infinity as ``r1`` approaches 0."""
    if not (math.isfinite(r1) and math.isfinite(r2)):
        return math.inf
    if r1 == 0.0:
        return 0.0 if r2 == 0.0 else math.inf
    return abs((r1 - r2) / r1)
