"""Tunable-precision constants and helpers (Section 6.1).

The paper highlights two values of the minimum acceptable ULP error
``eta``: 5e9 and 4e12, which correspond to asking STOKE for single- and
half-precision versions of a double-precision kernel.  This module exposes
those constants, a formula relating an effective significand width to an
``eta`` value, and a rounding helper used by tests and by the reference
reduced-precision kernels.
"""

from __future__ import annotations

from repro.fp.ieee754 import DOUBLE, bits_to_double, double_to_bits

# Paper constants (Section 6.1): the ULP rounding error between the
# single-/half-precision representation of a value and its double-precision
# representation.  Setting eta to one of these asks the optimizer for a
# single- or half-precision implementation of a double-precision kernel.
ETA_SINGLE = 5.0e9
ETA_HALF = 4.0e12


def eta_for_fraction_bits(fraction_bits: int) -> float:
    """ULP-error budget for keeping ``fraction_bits`` of double's 52.

    Rounding a double to an effective ``p``-bit significand perturbs it by
    at most half of a ``p``-bit ULP, i.e. ``2**(52 - p - 1)`` double ULPs
    for normal values.  This is the order-of-magnitude rule used to pick
    sweep points; the paper's headline constants (:data:`ETA_SINGLE`,
    :data:`ETA_HALF`) are slightly larger because the narrower formats also
    clamp the exponent range.
    """
    if not 0 <= fraction_bits <= DOUBLE.fraction_bits:
        raise ValueError(f"fraction_bits must be in [0, 52], got {fraction_bits}")
    return float(1 << (DOUBLE.fraction_bits - fraction_bits - 1)) if fraction_bits < 52 else 0.5


def round_to_fraction_bits(value: float, fraction_bits: int) -> float:
    """Round a double to an effective ``fraction_bits``-bit significand.

    Uses round-to-nearest-even on the retained bits.  Infinities and NaNs
    are returned unchanged; the exponent range is not narrowed.
    """
    if not 0 <= fraction_bits <= DOUBLE.fraction_bits:
        raise ValueError(f"fraction_bits must be in [0, 52], got {fraction_bits}")
    bits = double_to_bits(value)
    exponent = (bits >> DOUBLE.fraction_bits) & DOUBLE.max_exponent_field
    if exponent == DOUBLE.max_exponent_field:  # infinity or NaN
        return value
    drop = DOUBLE.fraction_bits - fraction_bits
    if drop == 0:
        return value
    keep_mask = ~((1 << drop) - 1) & 0xFFFFFFFFFFFFFFFF
    half = 1 << (drop - 1)
    low = bits & ((1 << drop) - 1)
    rounded = bits & keep_mask
    if low > half or (low == half and (rounded >> drop) & 1):
        rounded = (rounded + (1 << drop)) & 0xFFFFFFFFFFFFFFFF
    return bits_to_double(rounded)
