"""Lift ISA programs to Python callables.

The end-to-end applications (the S3D diffusion task and the aek ray
tracer) execute their kernels through the simulator, so a rewrite's exact
bit-level semantics — including any precision loss — propagates into the
application's results.  A :class:`LiftedKernel` wraps a JIT-compiled
program as a plain Python function over floats.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.x86.jit import compile_program
from repro.x86.locations import Loc, MemLoc, parse_loc
from repro.x86.program import Program
from repro.x86.testcase import TestCase, decode_from, encode_for

from repro.kernels.spec import KernelSpec

LocLike = Union[str, Loc, MemLoc]


def _as_loc(loc: LocLike):
    return loc if isinstance(loc, (Loc, MemLoc)) else parse_loc(loc)


class KernelSignalled(RuntimeError):
    """The lifted kernel raised a signal on the given arguments."""


class LiftedKernel:
    """A program as a Python function ``f(*args) -> float | tuple``."""

    def __init__(self, program: Program, arg_locs: Sequence[LocLike],
                 out_locs: Sequence[LocLike],
                 base_testcase: Optional[TestCase] = None):
        self.program = program
        self.compiled = compile_program(program)
        self.arg_locs = [_as_loc(loc) for loc in arg_locs]
        self.out_locs = [_as_loc(loc) for loc in out_locs]
        base = base_testcase if base_testcase is not None else TestCase({})
        # One template state reused (copied) per call.
        self._template = base.build_state()

    def __call__(self, *args: float):
        if len(args) != len(self.arg_locs):
            raise TypeError(
                f"kernel takes {len(self.arg_locs)} args, got {len(args)}"
            )
        state = self._template.copy()
        for loc, value in zip(self.arg_locs, args):
            loc.write(state, encode_for(loc, value))
        outcome = self.compiled.run(state)
        if not outcome.ok:
            raise KernelSignalled(f"{outcome.signal.value} on args {args!r}")
        values = tuple(decode_from(loc, loc.read(state))
                       for loc in self.out_locs)
        return values[0] if len(values) == 1 else values


def lift_kernel(spec: KernelSpec,
                program: Optional[Program] = None) -> LiftedKernel:
    """Lift a kernel spec (or a rewrite of it) using the spec's ranged
    inputs as the argument order and its fixed inputs as the environment."""
    return LiftedKernel(
        program if program is not None else spec.program,
        arg_locs=list(spec.ranges),
        out_locs=list(spec.live_outs),
        base_testcase=spec.base_testcase(),
    )
