"""libimf-style math kernels: sin, cos, tan, log, exp (Section 6.1).

Hand-written kernels in the style of Intel's ``math.h`` implementation:
polynomial (near-minimax) approximation with Horner evaluation, plus the
bit-level tricks high-performance libraries use — exponent-field
extraction (``log``), integer/fraction splitting and exponent-field
construction (``exp``), and branchless range adjustment with
``ucomisd``/``cmov`` (``log``).  ``exp`` and ``log`` therefore interleave
fixed- and floating-point computation, the mixture that defeats the
static verification techniques of Section 4.

The S3D ``exp`` variant mirrors the solver's shipped kernel: a plain
polynomial on a bounded range with no range reduction and deliberately no
error handling for irregular values (Section 6.2).

All kernels take their argument in ``xmm0`` and return in ``xmm0``.
"""

from __future__ import annotations

import math
from functools import lru_cache

from repro.fp.ieee754 import double_to_bits
from repro.x86.assembler import assemble

from repro.kernels.polynomial import chebyshev_fit, horner_asm
from repro.kernels.spec import KernelSpec

# fdlibm-style high/low split of ln(2), so e*ln2 keeps extra precision.
_LN2_HI = 6.93147180369123816490e-01  # 0x3FE62E42FEE00000
_LN2_LO = 1.90821492927058770002e-10  # 0x3DEA39EF35793C76
_LOG2E = 1.4426950408889634
_SQRT2 = 1.4142135623730951

SIN_RANGE = (-math.pi, math.pi)
COS_RANGE = (-math.pi, math.pi)
TAN_RANGE = (-1.5, 1.5)
LOG_RANGE = (1.0e-3, 10.0)
EXP_RANGE = (-10.0, 10.0)
EXP_S3D_RANGE = (-3.0, 0.0)


def _imm(value: float) -> str:
    return f"$0x{double_to_bits(value):016x}"


@lru_cache(maxsize=None)
def _sin_coeffs(degree: int) -> tuple:
    # sin(x) = x * P(x^2);  P(z) = sin(sqrt(z)) / sqrt(z) on z in [0, pi^2].
    lo, hi = SIN_RANGE
    def g(z: float) -> float:
        if z <= 0.0:
            return 1.0
        r = math.sqrt(z)
        return math.sin(r) / r
    return tuple(chebyshev_fit(g, 1e-12, hi * hi, degree))


@lru_cache(maxsize=None)
def _cos_coeffs(degree: int) -> tuple:
    def g(z: float) -> float:
        return math.cos(math.sqrt(z)) if z > 0.0 else 1.0
    hi = COS_RANGE[1]
    return tuple(chebyshev_fit(g, 1e-12, hi * hi, degree))


@lru_cache(maxsize=None)
def _tan_sin_coeffs(degree: int) -> tuple:
    hi = TAN_RANGE[1]
    def g(z: float) -> float:
        if z <= 0.0:
            return 1.0
        r = math.sqrt(z)
        return math.sin(r) / r
    return tuple(chebyshev_fit(g, 1e-12, hi * hi, degree))


@lru_cache(maxsize=None)
def _tan_cos_coeffs(degree: int) -> tuple:
    hi = TAN_RANGE[1]
    def g(z: float) -> float:
        return math.cos(math.sqrt(z)) if z > 0.0 else 1.0
    return tuple(chebyshev_fit(g, 1e-12, hi * hi, degree))


@lru_cache(maxsize=None)
def _exp_reduced_coeffs(degree: int) -> tuple:
    # exp(r) on the reduced range [-ln2/2, ln2/2].
    half_ln2 = math.log(2.0) / 2.0
    return tuple(chebyshev_fit(math.exp, -half_ln2, half_ln2, degree))


@lru_cache(maxsize=None)
def _log1p_coeffs(degree: int) -> tuple:
    # log(1 + t) on t in [sqrt2/2 - 1, sqrt2 - 1].  The constant term is
    # pinned to zero (log1p(0) = 0 exactly) so the kernel's ULP error
    # stays bounded near x = 1, as a hand-written library's would.
    coeffs = list(chebyshev_fit(math.log1p, _SQRT2 / 2.0 - 1.0,
                                _SQRT2 - 1.0, degree))
    coeffs[0] = 0.0
    return tuple(coeffs)


@lru_cache(maxsize=None)
def _exp_s3d_coeffs(degree: int) -> tuple:
    lo, hi = EXP_S3D_RANGE
    return tuple(chebyshev_fit(math.exp, lo, hi, degree))


def sin_kernel(degree: int = 11) -> KernelSpec:
    """sin(x) on [-pi, pi]: odd polynomial x * P(x^2)."""
    coeffs = _sin_coeffs(degree)
    asm = (
        "movsd xmm0, xmm1\n"
        "mulsd xmm0, xmm1        # z = x*x\n"
        + horner_asm(coeffs, "xmm1", "xmm2", "xmm3")
        + "mulsd xmm2, xmm0        # x * P(z)\n"
    )
    return KernelSpec(
        name="sin",
        program=assemble(asm),
        live_ins=("xmm0",),
        live_outs=("xmm0",),
        ranges={"xmm0": SIN_RANGE},
        reference=math.sin,
        description="bounded periodic kernel (Figure 4a/4d)",
    )


def cos_kernel(degree: int = 11) -> KernelSpec:
    """cos(x) on [-pi, pi]: even polynomial P(x^2)."""
    coeffs = _cos_coeffs(degree)
    asm = (
        "movsd xmm0, xmm1\n"
        "mulsd xmm0, xmm1        # z = x*x\n"
        + horner_asm(coeffs, "xmm1", "xmm2", "xmm3")
        + "movsd xmm2, xmm0\n"
    )
    return KernelSpec(
        name="cos",
        program=assemble(asm),
        live_ins=("xmm0",),
        live_outs=("xmm0",),
        ranges={"xmm0": COS_RANGE},
        reference=math.cos,
        description="bounded periodic kernel (results similar to sin)",
    )


def tan_kernel(degree: int = 10) -> KernelSpec:
    """tan(x) on [-1.5, 1.5]: sin/cos polynomial ratio (discontinuous
    parent function, Figure 4c/4f)."""
    sin_c = _tan_sin_coeffs(degree)
    cos_c = _tan_cos_coeffs(degree)
    asm = (
        "movsd xmm0, xmm1\n"
        "mulsd xmm0, xmm1        # z = x*x\n"
        + horner_asm(sin_c, "xmm1", "xmm2", "xmm3")
        + "mulsd xmm0, xmm2        # sin = x * Ps(z)\n"
        + horner_asm(cos_c, "xmm1", "xmm5", "xmm3")
        + "divsd xmm5, xmm2        # tan = sin / cos\n"
        + "movsd xmm2, xmm0\n"
    )
    return KernelSpec(
        name="tan",
        program=assemble(asm),
        live_ins=("xmm0",),
        live_outs=("xmm0",),
        ranges={"xmm0": TAN_RANGE},
        reference=math.tan,
        description="discontinuous unbounded kernel (Figure 4c/4f)",
    )


def exp_kernel(degree: int = 10) -> KernelSpec:
    """exp(x) on [-10, 10] with bitwise 2^k scaling (mixed fixed/float)."""
    coeffs = _exp_reduced_coeffs(degree)
    asm = (
        f"movq {_imm(_LOG2E)}, xmm3\n"
        "movsd xmm0, xmm1\n"
        "mulsd xmm3, xmm1        # x * log2(e)\n"
        "cvtsd2si xmm1, rax      # k = round_nearest(x/ln2)\n"
        "cvtsi2sd rax, xmm1      # k as double\n"
        f"movq {_imm(_LN2_HI)}, xmm3\n"
        "mulsd xmm1, xmm3\n"
        "subsd xmm3, xmm0        # r = x - k*ln2_hi\n"
        f"movq {_imm(_LN2_LO)}, xmm3\n"
        "mulsd xmm1, xmm3\n"
        "subsd xmm3, xmm0        # r -= k*ln2_lo\n"
        + horner_asm(coeffs, "xmm0", "xmm2", "xmm3")
        + "add $1023, rax\n"
        "shl $52, rax            # bits of 2^k\n"
        "movq rax, xmm1\n"
        "mulsd xmm1, xmm2        # P(r) * 2^k\n"
        "movsd xmm2, xmm0\n"
    )
    return KernelSpec(
        name="exp",
        program=assemble(asm),
        live_ins=("xmm0",),
        live_outs=("xmm0",),
        ranges={"xmm0": EXP_RANGE},
        reference=math.exp,
        description="continuous unbounded kernel, bit-level 2^k scaling",
    )


def log_kernel(degree: int = 14) -> KernelSpec:
    """log(x) on [1e-3, 10]: exponent extraction + branchless sqrt(2)
    adjustment (ucomisd/cmov) + polynomial (Figure 4b/4e)."""
    coeffs = _log1p_coeffs(degree)
    asm = (
        "movq xmm0, rax          # raw bits of x (x > 0)\n"
        "mov rax, rcx\n"
        "shr $52, rcx            # biased exponent\n"
        "movabs $0x000fffffffffffff, rdx\n"
        "and rdx, rax            # fraction field\n"
        "movabs $0x3ff0000000000000, rbx\n"
        "or rbx, rax             # mantissa m in [1, 2)\n"
        "mov rax, rdx\n"
        "movabs $0x0010000000000000, rbx\n"
        "sub rbx, rdx            # bits of m/2\n"
        "mov rcx, rsi\n"
        "add $1, rsi             # e + 1\n"
        "movq rax, xmm1          # m\n"
        f"movq {_imm(_SQRT2)}, xmm2\n"
        "ucomisd xmm2, xmm1      # m ? sqrt(2)\n"
        "cmovae rdx, rax         # if m >= sqrt2: m /= 2 ...\n"
        "cmovae rsi, rcx         # ... and e += 1\n"
        "movq rax, xmm1          # m' in [sqrt2/2, sqrt2)\n"
        "sub $1023, rcx          # unbias\n"
        "cvtsi2sd rcx, xmm4      # e' as double\n"
        f"movq {_imm(1.0)}, xmm2\n"
        "subsd xmm2, xmm1        # t = m' - 1\n"
        + horner_asm(coeffs, "xmm1", "xmm5", "xmm3")
        + f"movq {_imm(_LN2_LO)}, xmm3\n"
        "mulsd xmm4, xmm3\n"
        "addsd xmm3, xmm5        # P(t) + e*ln2_lo\n"
        f"movq {_imm(_LN2_HI)}, xmm3\n"
        "mulsd xmm4, xmm3\n"
        "addsd xmm5, xmm3        # + e*ln2_hi\n"
        "movsd xmm3, xmm0\n"
    )
    return KernelSpec(
        name="log",
        program=assemble(asm),
        live_ins=("xmm0",),
        live_outs=("xmm0",),
        ranges={"xmm0": LOG_RANGE},
        reference=math.log,
        description="continuous unbounded kernel, exponent bit extraction",
    )


def exp_s3d_kernel(degree: int = 12) -> KernelSpec:
    """The S3D diffusion solver's shipped exp: a bare polynomial on the
    task's input range, no range reduction, no irregular-value handling."""
    coeffs = _exp_s3d_coeffs(degree)
    asm = (
        horner_asm(coeffs, "xmm0", "xmm2", "xmm3")
        + "movsd xmm2, xmm0\n"
    )
    return KernelSpec(
        name="exp_s3d",
        program=assemble(asm),
        live_ins=("xmm0",),
        live_outs=("xmm0",),
        ranges={"xmm0": EXP_S3D_RANGE},
        reference=math.exp,
        description="S3D diffusion leaf-task exp kernel (Figure 5)",
    )


LIBIMF_KERNELS = {
    "sin": sin_kernel,
    "cos": cos_kernel,
    "tan": tan_kernel,
    "log": log_kernel,
    "exp": exp_kernel,
}


def kernel_by_name(name: str, **kwargs) -> KernelSpec:
    """Factory lookup covering both libimf and the S3D exp."""
    factories = dict(LIBIMF_KERNELS)
    factories["exp_s3d"] = exp_s3d_kernel
    try:
        return factories[name](**kwargs)
    except KeyError:
        raise ValueError(f"unknown kernel: {name!r}") from None
