"""Scene description for the aek ray tracer.

Like the business-card original, the spheres are placed from a bitmask —
rows of bits spell out initials — above a checkered floor, under a
gradient sky with a single directional light.
"""

from __future__ import annotations

from typing import List, Tuple

# Rows of sphere bits, top row first (spells a compact "EK").
ART = (
    0b111010010,
    0b100010100,
    0b111011000,
    0b100010100,
    0b111010010,
)

SPHERE_RADIUS = 0.55
LIGHT_DIR = (-0.5, -0.65, 0.57)  # roughly normalized, pointing at scene
FLOOR_Z = 0.0

CAMERA_POS = (2.0, -9.0, 3.2)
CAMERA_GAZE = (0.22, 1.0, -0.12)  # normalized by the tracer
SKY_TOP = (60, 80, 255)
SKY_HORIZON = (200, 210, 255)
FLOOR_A = (196, 48, 48)
FLOOR_B = (220, 220, 220)


def sphere_centers() -> List[Tuple[float, float, float]]:
    """Sphere positions from the ART bitmask, centered on x."""
    centers = []
    rows = len(ART)
    width = max(row.bit_length() for row in ART)
    for r, row in enumerate(ART):
        for c in range(width):
            if row & (1 << (width - 1 - c)):
                x = 1.3 * (c - (width - 1) / 2.0)
                z = 1.3 * (rows - r) + 0.6
                centers.append((x, 4.0, z))
    return centers
