"""aek vector kernels (Section 6.3, Figures 6-8).

The ray tracer's vectors are triplets of floats and — following the
program-wide data-structure layout gcc chose for the original program —
are passed split across two SSE registers::

    v = [xmm0[63:32] = y, xmm0[31:0] = x, xmm1[31:0] = z]

Memory-resident vectors live at ``(reg), 4(reg), 8(reg)`` (x, y, z).
Each kernel is provided in two forms: a gcc -O3-style *target* (with the
stack spills and scalar data movement the paper shows in Figure 6/7) and
the paper's STOKE *rewrite*, used by the verification experiments and the
Figure 9 renderings.  Figure 8's searches rediscover rewrites of the same
shape from the targets.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Tuple

from repro.x86.assembler import assemble
from repro.x86.locations import MemLoc
from repro.x86.memory import Segment
from repro.x86.program import Program

from repro.kernels.spec import KernelSpec

# Sandbox layout shared by all aek kernels.
V1_BASE = 0x2000
V2_BASE = 0x3000
STACK_BASE = 0x7000
STACK_SIZE = 64
RSP = STACK_BASE + 48  # leaves room for red-zone style negative offsets

CONCRETE_GP = {"rdi": V1_BASE, "rsi": V2_BASE, "rsp": RSP}
# GP64 indices for the verification entry points.
CONCRETE_GP_INDICES = {7: V1_BASE, 6: V2_BASE, 4: RSP}

COMPONENT_RANGE = (-10.0, 10.0)
SCALAR_RANGE = (-4.0, 4.0)
UNIT_RANGE = (0.0, 1.0)


def _vec_segment(name: str, base: int) -> Segment:
    # 20 bytes: x, y, z floats plus padding so 16-byte loads at +4 stay
    # in bounds (the Figure 7 rewrite uses lddqu 4(rdi)).
    return Segment(name, base, bytes(20), writable=True)


def aek_segments() -> List[Segment]:
    """Fresh sandbox segments for one aek test case."""
    return [
        _vec_segment("v1", V1_BASE),
        _vec_segment("v2", V2_BASE),
        Segment("stack", STACK_BASE, bytes(STACK_SIZE), writable=True),
    ]


def _mem_ranges(segment: str) -> Dict[MemLoc, Tuple[float, float]]:
    return {
        MemLoc(segment, 4 * i, "f32"): COMPONENT_RANGE for i in range(3)
    }


_VEC_IN_REGS = {
    "xmm0:s0": COMPONENT_RANGE,  # v.x
    "xmm0:s1": COMPONENT_RANGE,  # v.y
    "xmm1:s0": COMPONENT_RANGE,  # v.z
}

_POINTER_INPUTS = {"rdi": V1_BASE, "rsi": V2_BASE, "rsp": RSP}


def _spec(name: str, asm: str, live_outs, ranges, reference,
          description: str) -> KernelSpec:
    return KernelSpec(
        name=name,
        program=assemble(asm),
        live_ins=tuple(ranges) + tuple(_POINTER_INPUTS),
        live_outs=tuple(live_outs),
        ranges=dict(ranges),
        reference=reference,
        segments_factory=aek_segments,
        fixed_inputs=dict(_POINTER_INPUTS),
        description=description,
    )


# ---------------------------------------------------------------------------
# k * v  (vector scale)

_SCALE_TARGET = """
    movq xmm0, -16(rsp)
    movss -16(rsp), xmm3     # x
    mulss xmm2, xmm3
    movss -12(rsp), xmm4     # y
    mulss xmm2, xmm4
    mulss xmm2, xmm1         # z*k
    punpckldq xmm4, xmm3
    movq xmm3, xmm0
"""

_SCALE_REWRITE = """
    pshufd $0, xmm2, xmm3
    mulps xmm3, xmm0
    mulss xmm2, xmm1
"""


def scale_kernel() -> KernelSpec:
    """``k * v``: v in registers, k in xmm2[31:0]."""
    ranges = dict(_VEC_IN_REGS)
    ranges["xmm2:s0"] = SCALAR_RANGE
    return _spec(
        "scale", _SCALE_TARGET,
        live_outs=("xmm0:s0", "xmm0:s1", "xmm1:s0"),
        ranges=ranges,
        reference=lambda x, y, z, k: (k * x, k * y, k * z),
        description="vector scale k*v (Figure 8 row 1)",
    )


def scale_rewrite() -> Program:
    return assemble(_SCALE_REWRITE)


# ---------------------------------------------------------------------------
# <v1, v2>  (dot product, Figure 6 verbatim)

_DOT_TARGET = """
    movq xmm0, -16(rsp)
    mulss 8(rdi), xmm1
    movss (rdi), xmm0
    movss 4(rdi), xmm2
    mulss -16(rsp), xmm0
    mulss -12(rsp), xmm2
    addss xmm2, xmm0
    addss xmm1, xmm0
"""

_DOT_REWRITE = """
    vpshuflw $-2, xmm0, xmm2
    mulss 8(rdi), xmm1
    mulss (rdi), xmm0
    mulss 4(rdi), xmm2
    vaddss xmm0, xmm2, xmm5
    vaddss xmm5, xmm1, xmm0
"""


def dot_kernel() -> KernelSpec:
    """``<v1, v2>``: v1 in registers, v2 at (rdi); float result.

    Note the memory-resident vector lives at ``(rdi)``, i.e. the ``v1``
    segment, matching the Figure 6 listing's use of ``rdi``.
    """
    ranges = dict(_VEC_IN_REGS)
    ranges.update(_mem_ranges("v1"))
    return _spec(
        "dot", _DOT_TARGET,
        live_outs=("xmm0:s0",),
        ranges=ranges,
        reference=None,
        description="vector dot product (Figures 6 and 8 row 2)",
    )


def dot_rewrite() -> Program:
    return assemble(_DOT_REWRITE)


def dot_mem_ranges() -> Dict[MemLoc, Tuple[float, float]]:
    return _mem_ranges("v2")


# ---------------------------------------------------------------------------
# v1 + v2  (vector add)

_ADD_TARGET = """
    movq xmm0, -16(rsp)
    movss (rdi), xmm2
    addss -16(rsp), xmm2     # x + v2.x
    movss 4(rdi), xmm3
    addss -12(rsp), xmm3     # y + v2.y
    addss 8(rdi), xmm1       # z + v2.z
    punpckldq xmm3, xmm2
    movq xmm2, xmm0
"""

_ADD_REWRITE = """
    addps (rdi), xmm0
    addss 8(rdi), xmm1
"""


def add_kernel() -> KernelSpec:
    """``v1 + v2``: v1 in registers, v2 at (rdi); vector result."""
    ranges = dict(_VEC_IN_REGS)
    ranges.update(_mem_ranges("v1"))
    return _spec(
        "add", _ADD_TARGET,
        live_outs=("xmm0:s0", "xmm0:s1", "xmm1:s0"),
        ranges=ranges,
        reference=None,
        description="vector add (Figure 8 row 3)",
    )


def add_rewrite() -> Program:
    return assemble(_ADD_REWRITE)


def add_mem_ranges() -> Dict[MemLoc, Tuple[float, float]]:
    return _mem_ranges("v1")


# ---------------------------------------------------------------------------
# delta(v1, v2, r1, r2)  (random camera perturbation, Figure 7 verbatim)
#
#   gcc:   99*(v1*(r1-0.5)) + 99*(v2*(r2-0.5)), componentwise
#   STOKE: drops the relatively negligible cross terms:
#          (99*(v1.x*(r1-.5)), 99*(v1.y*(r1-.5)), v2.z*(99*(r2-.5)))

_DELTA_TARGET = """
    movl $0.5, eax
    movd eax, xmm2
    subss xmm2, xmm0
    movss 8(rdi), xmm3
    subss xmm2, xmm1
    movss 4(rdi), xmm5
    movss 8(rsi), xmm2
    movss 4(rsi), xmm6
    mulss xmm0, xmm3
    movl $99.0, eax
    movd eax, xmm4
    mulss xmm1, xmm2
    mulss xmm0, xmm5
    mulss xmm1, xmm6
    mulss (rdi), xmm0
    mulss (rsi), xmm1
    mulss xmm4, xmm5
    mulss xmm4, xmm6
    mulss xmm4, xmm3
    mulss xmm4, xmm2
    mulss xmm4, xmm0
    mulss xmm4, xmm1
    addss xmm6, xmm5
    addss xmm1, xmm0
    movss xmm5, -20(rsp)
    movaps xmm3, xmm1
    addss xmm2, xmm1
    movss xmm0, -24(rsp)
    movq -24(rsp), xmm0
"""

_DELTA_REWRITE = """
    movl $0.5, eax
    movd eax, xmm2
    subps xmm2, xmm0
    movl $99.0, eax
    subps xmm2, xmm1
    movd eax, xmm4
    mulss xmm4, xmm1
    lddqu 4(rdi), xmm5
    mulss xmm0, xmm5
    mulss (rdi), xmm0
    mulss xmm4, xmm0
    mulps xmm4, xmm5
    punpckldq xmm5, xmm0
    mulss 8(rsi), xmm1
"""

# The over-aggressive rewrite STOKE finds when eta exceeds the randomness
# noise floor: the perturbation disappears entirely (Figure 9d).
_DELTA_PRIME = """
    xorps xmm0, xmm0
    xorps xmm1, xmm1
"""

# The aek camera basis vectors passed to delta() are program-wide
# constants (Section 6.3): the right vector u lies exactly in the image
# plane (u.z == 0) and the up vector v has only a negligible in-plane
# component, which is why dropping the cross terms is valid — the error
# lands at or below the depth-of-field noise floor.
CAMERA_U = (0.0028, 0.0021, 0.0)
CAMERA_V = (3.0e-8, 2.0e-8, 0.0026)


def delta_fixed_inputs() -> Dict[object, float]:
    """Pointer and camera-constant live-ins for the delta kernel."""
    fixed: Dict[object, float] = dict(_POINTER_INPUTS)
    for i, value in enumerate(CAMERA_U):
        fixed[MemLoc("v1", 4 * i, "f32")] = value
    for i, value in enumerate(CAMERA_V):
        fixed[MemLoc("v2", 4 * i, "f32")] = value
    return fixed


def delta_kernel() -> KernelSpec:
    """Camera perturbation: r1 in xmm0[31:0], r2 in xmm1[31:0],
    v1 = camera u at (rdi), v2 = camera v at (rsi); vector result in the
    register layout.  The camera vectors are fixed program constants."""
    ranges = {"xmm0:s0": UNIT_RANGE, "xmm1:s0": UNIT_RANGE}
    return KernelSpec(
        name="delta",
        program=assemble(_DELTA_TARGET),
        live_ins=tuple(ranges) + ("rdi", "rsi", "rsp"),
        live_outs=("xmm0:s0", "xmm0:s1", "xmm1:s0"),
        ranges=ranges,
        reference=None,
        segments_factory=aek_segments,
        fixed_inputs=delta_fixed_inputs(),
        description="random camera perturbation (Figures 7-9)",
    )


def delta_rewrite() -> Program:
    return assemble(_DELTA_REWRITE)


def delta_prime() -> Program:
    return assemble(_DELTA_PRIME)


def delta_mem_ranges() -> Dict[MemLoc, Tuple[float, float]]:
    """Point ranges pinning the camera constants (for interval analysis).

    The constants are rounded through single precision first, since that
    is what the kernel actually loads from memory.
    """
    import numpy as np

    ranges: Dict[MemLoc, Tuple[float, float]] = {}
    for i, value in enumerate(CAMERA_U):
        v = float(np.float32(value))
        ranges[MemLoc("v1", 4 * i, "f32")] = (v, v)
    for i, value in enumerate(CAMERA_V):
        v = float(np.float32(value))
        ranges[MemLoc("v2", 4 * i, "f32")] = (v, v)
    return ranges


AEK_KERNELS = {
    "scale": scale_kernel,
    "dot": dot_kernel,
    "add": add_kernel,
    "delta": delta_kernel,
}

AEK_REWRITES = {
    "scale": scale_rewrite,
    "dot": dot_rewrite,
    "add": add_rewrite,
    "delta": delta_rewrite,
    "delta_prime": delta_prime,
}


def pack_vector(segment: Segment, x: float, y: float, z: float) -> None:
    """Write three packed singles into a vector segment."""
    segment.data[0:12] = struct.pack("<3f", x, y, z)
