"""Tiny image container for the ray tracer (Figure 9).

8-bit RGB, PPM output, and the error-pixel diff used to compare images
rendered with different kernel variants.
"""

from __future__ import annotations

from typing import Tuple


class Image:
    """A width x height RGB image with byte-valued channels."""

    def __init__(self, width: int, height: int):
        self.width = width
        self.height = height
        self.pixels = bytearray(3 * width * height)

    def put(self, x: int, y: int, rgb: Tuple[int, int, int]) -> None:
        i = 3 * (y * self.width + x)
        self.pixels[i] = max(0, min(255, rgb[0]))
        self.pixels[i + 1] = max(0, min(255, rgb[1]))
        self.pixels[i + 2] = max(0, min(255, rgb[2]))

    def get(self, x: int, y: int) -> Tuple[int, int, int]:
        i = 3 * (y * self.width + x)
        return self.pixels[i], self.pixels[i + 1], self.pixels[i + 2]

    def write_ppm(self, path: str) -> None:
        with open(path, "wb") as fh:
            fh.write(f"P6\n{self.width} {self.height}\n255\n".encode())
            fh.write(bytes(self.pixels))


def error_pixels(a: Image, b: Image, threshold: int = 0) -> int:
    """Pixels whose channel difference exceeds ``threshold`` (Figure 9c/e)."""
    if (a.width, a.height) != (b.width, b.height):
        raise ValueError("image dimensions differ")
    count = 0
    for i in range(0, len(a.pixels), 3):
        if (abs(a.pixels[i] - b.pixels[i]) > threshold
                or abs(a.pixels[i + 1] - b.pixels[i + 1]) > threshold
                or abs(a.pixels[i + 2] - b.pixels[i + 2]) > threshold):
            count += 1
    return count


def error_map(a: Image, b: Image, threshold: int = 0) -> Image:
    """White-on-black map of differing pixels (the Figure 9c/e images)."""
    out = Image(a.width, a.height)
    for y in range(a.height):
        for x in range(a.width):
            if a.get(x, y) != b.get(x, y):
                out.put(x, y, (255, 255, 255))
    return out
