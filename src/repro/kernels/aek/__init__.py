"""The aek ray tracer benchmark (Section 6.3)."""

from repro.kernels.aek.image import Image, error_map, error_pixels
from repro.kernels.aek.raytracer import (
    KernelOps,
    RayTracer,
    RenderConfig,
    render_with,
)
from repro.kernels.aek.vector import (
    AEK_KERNELS,
    AEK_REWRITES,
    CAMERA_U,
    CAMERA_V,
    CONCRETE_GP_INDICES,
    add_kernel,
    add_rewrite,
    aek_segments,
    delta_kernel,
    delta_prime,
    delta_rewrite,
    dot_kernel,
    dot_rewrite,
    scale_kernel,
    scale_rewrite,
)

__all__ = [
    "Image",
    "error_map",
    "error_pixels",
    "KernelOps",
    "RayTracer",
    "RenderConfig",
    "render_with",
    "AEK_KERNELS",
    "AEK_REWRITES",
    "CAMERA_U",
    "CAMERA_V",
    "CONCRETE_GP_INDICES",
    "add_kernel",
    "add_rewrite",
    "aek_segments",
    "delta_kernel",
    "delta_prime",
    "delta_rewrite",
    "dot_kernel",
    "dot_rewrite",
    "scale_kernel",
    "scale_rewrite",
]
