"""The aek ray tracer (Section 6.3, Figure 9).

A compact but complete tracer: textured (checkered) floor, gradient sky,
reflective spheres placed from a bitmask, soft shadows, and depth-of-field
blur induced by randomly perturbing the camera ray with the ``delta``
kernel — the structure of the business-card original.

All vector arithmetic in the inner loop goes through :class:`KernelOps`,
whose four operations execute *simulated machine code* (the gcc-style
targets or any STOKE rewrite), so the bit-level behaviour of an
optimization is what lands in the image.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.x86.program import Program

from repro.kernels.aek import scene as S
from repro.kernels.aek import vector as V
from repro.kernels.aek.image import Image
from repro.kernels.lift import lift_kernel

Vec = Tuple[float, float, float]


class KernelOps:
    """Vector operations backed by simulated kernels.

    Pass rewrite programs to substitute optimized kernels; ``None`` keeps
    the gcc-style target.
    """

    def __init__(self, scale: Optional[Program] = None,
                 dot: Optional[Program] = None,
                 add: Optional[Program] = None,
                 delta: Optional[Program] = None):
        self._scale = lift_kernel(V.scale_kernel(), scale)
        self._dot = lift_kernel(V.dot_kernel(), dot)
        self._add = lift_kernel(V.add_kernel(), add)
        self._delta = lift_kernel(V.delta_kernel(), delta)

    def scale(self, v: Vec, k: float) -> Vec:
        return self._scale(v[0], v[1], v[2], k)

    def dot(self, a: Vec, b: Vec) -> float:
        return self._dot(a[0], a[1], a[2], b[0], b[1], b[2])

    def add(self, a: Vec, b: Vec) -> Vec:
        return self._add(a[0], a[1], a[2], b[0], b[1], b[2])

    def delta(self, r1: float, r2: float) -> Vec:
        return self._delta(r1, r2)

    # Derived helpers (the "rest of the program" gcc compiled; these stay
    # fixed while the four kernels vary).
    def sub(self, a: Vec, b: Vec) -> Vec:
        return self.add(a, self.scale(b, -1.0))

    def norm(self, v: Vec) -> Vec:
        length = math.sqrt(max(self.dot(v, v), 1e-30))
        return self.scale(v, 1.0 / length)


@dataclass
class RenderConfig:
    """Rendering parameters (kept small: every op is simulated)."""

    width: int = 48
    height: int = 32
    samples: int = 4
    seed: int = 12345
    depth_of_field: bool = True


def _normalize_py(v: Vec) -> Vec:
    length = math.sqrt(v[0] ** 2 + v[1] ** 2 + v[2] ** 2) or 1.0
    return (v[0] / length, v[1] / length, v[2] / length)


class RayTracer:
    """Renders the scene with a given set of kernel implementations."""

    def __init__(self, ops: KernelOps):
        self.ops = ops
        self.spheres = S.sphere_centers()
        self.light = _normalize_py(S.LIGHT_DIR)

    # -- geometry ----------------------------------------------------------

    def _hit_spheres(self, origin: Vec, direction: Vec
                     ) -> Tuple[float, Optional[Vec]]:
        """Nearest sphere intersection along a (unit) ray."""
        ops = self.ops
        best_t, best_center = math.inf, None
        r2 = S.SPHERE_RADIUS * S.SPHERE_RADIUS
        for center in self.spheres:
            oc = ops.sub(origin, center)
            b = ops.dot(oc, direction)
            c = ops.dot(oc, oc) - r2
            disc = b * b - c
            if disc <= 0.0:
                continue
            t = -b - math.sqrt(disc)
            if 1e-3 < t < best_t:
                best_t, best_center = t, center
        return best_t, best_center

    def _shadowed(self, point: Vec) -> bool:
        t, _ = self._hit_spheres(point, self.light)
        return t < math.inf

    # -- shading -----------------------------------------------------------

    def shade(self, origin: Vec, direction: Vec, depth: int = 2
              ) -> Tuple[float, float, float]:
        ops = self.ops
        t, center = self._hit_spheres(origin, direction)

        floor_t = math.inf
        if direction[2] < -1e-6:
            floor_t = (S.FLOOR_Z - origin[2]) / direction[2]

        if t < floor_t and center is not None:
            point = ops.add(origin, ops.scale(direction, t))
            normal = ops.norm(ops.sub(point, center))
            diffuse = max(0.0, ops.dot(normal, self.light))
            if diffuse > 0.0 and self._shadowed(ops.add(point, ops.scale(
                    normal, 1e-2))):
                diffuse = 0.0
            base = (0.25 + 0.5 * diffuse)
            color = (base * 90.0, base * 90.0, base * 240.0)
            if depth > 0:
                reflect = ops.sub(
                    direction, ops.scale(normal, 2.0 * ops.dot(direction,
                                                               normal)))
                bounce = self.shade(ops.add(point, ops.scale(normal, 1e-2)),
                                    _normalize_py(reflect), depth - 1)
                color = tuple(0.6 * c + 0.4 * b for c, b in zip(color,
                                                                bounce))
            return color

        if floor_t < math.inf:
            point = ops.add(origin, ops.scale(direction, floor_t))
            checker = (int(math.floor(point[0])) + int(math.floor(point[1]))) & 1
            tile = S.FLOOR_A if checker else S.FLOOR_B
            lit = 1.0
            if self._shadowed((point[0], point[1], point[2] + 1e-2)):
                lit = 0.35
            fade = max(0.25, 1.0 - floor_t / 60.0)
            return tuple(ch * lit * fade for ch in tile)

        # Sky gradient by elevation.
        g = max(0.0, min(1.0, direction[2]))
        return tuple(h + (t_ - h) * g
                     for h, t_ in zip(S.SKY_HORIZON, S.SKY_TOP))

    # -- camera ------------------------------------------------------------

    def render(self, config: RenderConfig = RenderConfig()) -> Image:
        ops = self.ops
        rng = random.Random(config.seed)
        image = Image(config.width, config.height)
        gaze = _normalize_py(S.CAMERA_GAZE)
        # Camera basis: right in the horizontal plane, up from cross.
        right = _normalize_py((gaze[1], -gaze[0], 0.0))
        up = _normalize_py((
            gaze[1] * right[2] - gaze[2] * right[1],
            gaze[2] * right[0] - gaze[0] * right[2],
            gaze[0] * right[1] - gaze[1] * right[0],
        ))
        fov = 0.9
        for y in range(config.height):
            for x in range(config.width):
                acc = [0.0, 0.0, 0.0]
                for _ in range(config.samples):
                    u = ((x + rng.random()) / config.width - 0.5) * fov \
                        * config.width / config.height
                    v = (0.5 - (y + rng.random()) / config.height) * fov
                    direction = _normalize_py((
                        gaze[0] + u * right[0] + v * up[0],
                        gaze[1] + u * right[1] + v * up[1],
                        gaze[2] + u * right[2] + v * up[2],
                    ))
                    origin = S.CAMERA_POS
                    if config.depth_of_field:
                        # Depth-of-field blur: perturb the ray origin with
                        # the delta kernel (the camera constants live in
                        # its sandbox) and re-aim at the focal plane.
                        jitter = ops.delta(rng.random(), rng.random())
                        origin = ops.add(origin, ops.scale(jitter, 160.0))
                        focal = ops.add(S.CAMERA_POS, ops.scale(direction,
                                                                12.0))
                        direction = _normalize_py(ops.sub(focal, origin))
                    color = self.shade(origin, direction)
                    for i in range(3):
                        acc[i] += color[i]
                image.put(x, y, tuple(int(c / config.samples) for c in acc))
        return image


def render_with(scale: Optional[Program] = None,
                dot: Optional[Program] = None,
                add: Optional[Program] = None,
                delta: Optional[Program] = None,
                config: RenderConfig = RenderConfig()) -> Image:
    """Render the scene with the given kernel substitutions."""
    tracer = RayTracer(KernelOps(scale=scale, dot=dot, add=add, delta=delta))
    return tracer.render(config)
