"""Benchmark workloads: libimf kernels, the S3D task, and the aek tracer."""

from repro.kernels.libimf import (
    LIBIMF_KERNELS,
    cos_kernel,
    exp_kernel,
    exp_s3d_kernel,
    kernel_by_name,
    log_kernel,
    sin_kernel,
    tan_kernel,
)
from repro.kernels.lift import KernelSignalled, LiftedKernel, lift_kernel
from repro.kernels.polynomial import chebyshev_fit, horner, horner_asm
from repro.kernels.spec import KernelSpec

# Named workload presets for catalog selection: kernel -> relative call
# count (latency weight).  The aek counts follow the tracer's inner
# loop (one delta probe dominates, with vector arithmetic around it);
# s3d is the single diffusion exponential.
WORKLOADS = {
    "aek": {"scale": 4, "dot": 3, "add": 3, "delta": 6},
    "s3d": {"exp_s3d": 1},
}

__all__ = [
    "WORKLOADS",
    "LIBIMF_KERNELS",
    "cos_kernel",
    "exp_kernel",
    "exp_s3d_kernel",
    "kernel_by_name",
    "log_kernel",
    "sin_kernel",
    "tan_kernel",
    "KernelSignalled",
    "LiftedKernel",
    "lift_kernel",
    "chebyshev_fit",
    "horner",
    "horner_asm",
    "KernelSpec",
]
