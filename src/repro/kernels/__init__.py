"""Benchmark workloads: libimf kernels, the S3D task, and the aek tracer."""

from repro.kernels.libimf import (
    LIBIMF_KERNELS,
    cos_kernel,
    exp_kernel,
    exp_s3d_kernel,
    kernel_by_name,
    log_kernel,
    sin_kernel,
    tan_kernel,
)
from repro.kernels.lift import KernelSignalled, LiftedKernel, lift_kernel
from repro.kernels.polynomial import chebyshev_fit, horner, horner_asm
from repro.kernels.spec import KernelSpec

__all__ = [
    "LIBIMF_KERNELS",
    "cos_kernel",
    "exp_kernel",
    "exp_s3d_kernel",
    "kernel_by_name",
    "log_kernel",
    "sin_kernel",
    "tan_kernel",
    "KernelSignalled",
    "LiftedKernel",
    "lift_kernel",
    "chebyshev_fit",
    "horner",
    "horner_asm",
    "KernelSpec",
]
