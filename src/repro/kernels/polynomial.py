"""Polynomial approximation machinery for the libimf-style kernels.

Intel's math library approximates the transcendental functions with
polynomials whose term count sets their precision (Section 6.1).  This
module fits near-minimax polynomials (Chebyshev interpolation, refit to
the power basis) and emits Horner-scheme assembly for our ISA.

The emitted Horner code deliberately loads each coefficient with a
``movq`` immediate and accumulates with ``mulsd``/``addsd`` pairs: a
single opcode move (``addsd`` → ``movsd``) then truncates the polynomial,
which is precisely the kind of shortcut the stochastic search discovers
when ``eta`` permits.
"""

from __future__ import annotations

import math
from typing import Callable, List, Sequence

import numpy as np

from repro.fp.ieee754 import double_to_bits


def chebyshev_fit(fn: Callable[[float], float], lo: float, hi: float,
                  degree: int) -> List[float]:
    """Near-minimax power-basis coefficients for ``fn`` on ``[lo, hi]``.

    Interpolates at Chebyshev nodes and converts to the power basis.
    Returns coefficients ``[c0, c1, ..., c_degree]`` (ascending powers).
    """
    if degree < 0:
        raise ValueError("degree must be non-negative")
    nodes = np.cos((2 * np.arange(degree + 1) + 1) * np.pi
                   / (2 * (degree + 1)))
    xs = 0.5 * (hi - lo) * nodes + 0.5 * (hi + lo)
    ys = np.array([fn(float(x)) for x in xs])
    # polyfit on exactly degree+1 points interpolates.
    coeffs = np.polynomial.polynomial.polyfit(xs, ys, degree)
    return [float(c) for c in coeffs]


def horner(coeffs: Sequence[float], x: float) -> float:
    """Reference Horner evaluation (ascending coefficients)."""
    acc = 0.0
    for c in reversed(list(coeffs)):
        acc = acc * x + c
    return acc


def horner_asm(coeffs: Sequence[float], x_reg: str, acc_reg: str,
               scratch_reg: str) -> str:
    """Horner-scheme assembly: ``acc = P(x)``.

    ``x_reg`` holds the evaluation point (preserved); the polynomial
    accumulates in ``acc_reg`` using ``scratch_reg`` for coefficient
    loads.  Coefficients are ascending; evaluation runs high-to-low.
    """
    ordered = list(coeffs)
    if not ordered:
        raise ValueError("need at least one coefficient")
    lines = [f"movq $0x{double_to_bits(ordered[-1]):016x}, {acc_reg}"
             f"  # c{len(ordered) - 1} = {ordered[-1]!r}"]
    for power in range(len(ordered) - 2, -1, -1):
        c = ordered[power]
        lines.append(f"mulsd {x_reg}, {acc_reg}")
        lines.append(f"movq $0x{double_to_bits(c):016x}, {scratch_reg}"
                     f"  # c{power} = {c!r}")
        lines.append(f"addsd {scratch_reg}, {acc_reg}")
    return "\n".join(lines) + "\n"


def max_error_ulps(fn: Callable[[float], float],
                   approx: Callable[[float], float],
                   lo: float, hi: float, samples: int = 2001) -> float:
    """Max observed ULP error of an approximation over a sample grid."""
    from repro.fp.ulp import ulp_distance

    worst = 0.0
    for i in range(samples):
        x = lo + (hi - lo) * i / (samples - 1)
        want = fn(x)
        got = approx(x)
        if math.isnan(want) or math.isnan(got):
            continue
        worst = max(worst, float(ulp_distance(want, got)))
    return worst
