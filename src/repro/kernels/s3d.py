"""The S3D diffusion leaf task (Section 6.2, Figure 5).

A scaled-down stand-in for the HCCI-combustion direct numeric simulation:
a 3-D grid of cells, each holding temperature, pressure, and molar-mass
fractions for a handful of chemical species.  The leaf task computes
mixture-averaged diffusion coefficients whose per-cell work is dominated
by ``exp`` evaluations of Arrhenius-style terms — the property that makes
the kernel's performance decide the task's performance.

Two quantities are derived, matching the paper's experiment:

* **correctness** — the task's aggregate output using a rewrite of the
  ``exp`` kernel is compared against the full-precision run; the task
  tolerates rewrites up to a precision threshold (the vertical bar in
  Figure 5a) because it already loses precision elsewhere.
* **task speedup** — the leaf task is compute-bound with a fixed fraction
  of its time in ``exp``, so full-task speedup follows from the kernel
  speedup by Amdahl's law.  The exp fraction is chosen so that the
  paper's observation (a 2x exp kernel gives a 27% task speedup) holds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Tuple

import numpy as np

# Fraction of diffusion-leaf-task time spent in exp(); calibrated so a 2x
# exp speedup produces the paper's 27% end-to-end improvement.
EXP_TIME_FRACTION = 0.425

# Relative aggregate error the diffusion task tolerates before its
# results stop being useful (sets the max tolerable eta, Figure 5a).
AGGREGATE_TOLERANCE = 1.0e-4

# Arrhenius-style activation parameters for the simulated species.
_SPECIES_THETA = (0.35, 0.8, 1.7, 2.6)


@dataclass
class DiffusionResult:
    """Output of one leaf-task evaluation."""

    coefficients: np.ndarray  # (species, n, n, n)
    aggregate: float


def make_fields(n: int, seed: int = 0) -> Tuple[np.ndarray, np.ndarray]:
    """Smooth synthetic temperature and pressure fields on an n^3 grid."""
    rng = np.random.default_rng(seed)
    axis = np.linspace(0.0, 1.0, n)
    x, y, z = np.meshgrid(axis, axis, axis, indexing="ij")
    temperature = 900.0 + 600.0 * np.sin(2.0 * np.pi * x) \
        * np.cos(np.pi * y) * (0.5 + 0.5 * z) \
        + 25.0 * rng.standard_normal((n, n, n))
    pressure = 1.0 + 0.2 * np.cos(np.pi * x * y) + 0.05 * z
    return temperature, pressure


def run_diffusion(exp_fn: Callable[[float], float], n: int = 8,
                  seed: int = 0) -> DiffusionResult:
    """Evaluate the leaf task with a given scalar ``exp`` kernel.

    ``exp_fn`` is called with arguments in ``[-3, 0]`` — the range the
    shipped S3D kernel is specialized to (it deliberately has no handling
    for irregular values outside it).
    """
    temperature, pressure = make_fields(n, seed)
    # Normalized inverse temperature in [0, 1].
    inv_t = (1200.0 / np.clip(temperature, 300.0, 1500.0) - 0.8) / 3.2
    inv_t = np.clip(inv_t, 0.0, 1.0)
    coeffs = np.empty((len(_SPECIES_THETA),) + temperature.shape)
    flat_inv_t = inv_t.ravel()
    for s, theta in enumerate(_SPECIES_THETA):
        args = -theta * flat_inv_t - 0.05 * s  # in [-3, 0]
        out = np.fromiter((exp_fn(float(a)) for a in args), dtype=float,
                          count=args.size)
        coeffs[s] = out.reshape(temperature.shape)
    # Mixture averaging (the non-exp floating-point work of the task);
    # per-species molar weights keep the exp terms from cancelling.
    molar = np.array([2.0, 18.0, 28.0, 44.0]).reshape(-1, 1, 1, 1)
    weights = pressure / np.sqrt(molar * np.maximum(temperature, 1.0))
    mixture = (coeffs * weights).sum(axis=0) / (coeffs.sum(axis=0) + 1e-9)
    return DiffusionResult(coefficients=coeffs,
                           aggregate=float(mixture.mean()))


def aggregate_error(result: DiffusionResult,
                    reference: DiffusionResult) -> float:
    """Relative aggregate error of a run against the reference run."""
    denom = abs(reference.aggregate) or 1.0
    return abs(result.aggregate - reference.aggregate) / denom


def tolerates(result: DiffusionResult, reference: DiffusionResult,
              tolerance: float = AGGREGATE_TOLERANCE) -> bool:
    """Whether the task still produces useful results with this kernel."""
    return aggregate_error(result, reference) <= tolerance


def task_speedup(kernel_speedup: float,
                 exp_fraction: float = EXP_TIME_FRACTION) -> float:
    """Amdahl's-law full-task speedup from an exp-kernel speedup."""
    if kernel_speedup <= 0.0:
        raise ValueError("kernel speedup must be positive")
    return 1.0 / ((1.0 - exp_fraction) + exp_fraction / kernel_speedup)


def reference_diffusion(n: int = 8, seed: int = 0) -> DiffusionResult:
    """The full-precision run (libm exp)."""
    return run_diffusion(math.exp, n=n, seed=seed)
