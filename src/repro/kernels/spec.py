"""Kernel specifications: a program plus everything needed to optimize it.

A :class:`KernelSpec` bundles the target program with its calling
convention (live-ins/live-outs), the user-specified input ranges
(Equation 16), the sandbox layout, and a Python reference implementation,
so the search, validation, verification, and benchmark layers all consume
kernels uniformly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.x86.locations import parse_loc
from repro.x86.memory import Segment
from repro.x86.program import Program
from repro.x86.testcase import TestCase, encode_for, uniform_testcases


@dataclass
class KernelSpec:
    """A named optimization target."""

    name: str
    program: Program
    live_ins: Tuple[str, ...]
    live_outs: Tuple[str, ...]
    ranges: Dict[str, Tuple[float, float]]
    reference: Optional[Callable] = None
    segments_factory: Optional[Callable[[], Sequence[Segment]]] = None
    fixed_inputs: Dict[str, float] = field(default_factory=dict)
    description: str = ""

    def base_testcase(self) -> TestCase:
        """A test case with ranged inputs at range midpoints."""
        values: Dict[str, float] = {}
        for loc_text, (lo, hi) in self.ranges.items():
            values[loc_text] = (lo + hi) / 2.0
        values.update(self.fixed_inputs)
        segments = self.segments_factory() if self.segments_factory else ()
        return TestCase.from_values(values, segments)

    def testcases(self, rng: random.Random, count: int) -> List[TestCase]:
        """Random test cases over the declared input ranges."""
        cases = uniform_testcases(
            rng, count, dict(self.ranges),
            segments_factory=self.segments_factory,
        )
        if self.fixed_inputs:
            fixed = {_loc_of(k): v for k, v in self.fixed_inputs.items()}
            cases = [
                _with_fixed(tc, fixed) for tc in cases
            ]
        return cases

    @property
    def loc(self) -> int:
        return self.program.loc

    @property
    def latency(self) -> int:
        return self.program.latency


def _loc_of(key):
    from repro.x86.locations import Loc, MemLoc

    return key if isinstance(key, (Loc, MemLoc)) else parse_loc(key)


def _with_fixed(tc: TestCase, fixed) -> TestCase:
    for loc, value in fixed.items():
        tc = tc.replace(loc, encode_for(loc, value))
    return tc
