"""Multi-chain search: independent seeded restarts.

The paper runs 16 search threads per benchmark and keeps the best result;
with Python's GIL the equivalent is sequential (or process-pooled)
independent chains.  Chains are fully deterministic given their seeds, so
restart runs are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional

from repro.core.result import SearchResult
from repro.core.search import SearchConfig, Stoke
from repro.core.strategies import Strategy


@dataclass
class RestartResult:
    """Best-of-N chains, with the per-chain results retained."""

    best: SearchResult
    chains: List[SearchResult] = field(default_factory=list)

    @property
    def chains_with_correct(self) -> int:
        return sum(1 for c in self.chains if c.found_correct)


def _better(a: SearchResult, b: SearchResult) -> SearchResult:
    """Prefer a correct rewrite; among correct ones, the fastest."""
    if a.found_correct != b.found_correct:
        return a if a.found_correct else b
    if a.found_correct:
        return a if a.best_correct_latency <= b.best_correct_latency else b
    return a if a.best_cost <= b.best_cost else b


def run_restarts(stoke: Stoke, config: SearchConfig, chains: int,
                 strategy: Optional[Strategy] = None) -> RestartResult:
    """Run ``chains`` independent searches with derived seeds.

    Seeds are ``config.seed, config.seed + 1, ...`` so a restart run is
    reproducible and any individual chain can be re-run in isolation.
    """
    if chains < 1:
        raise ValueError("need at least one chain")
    results: List[SearchResult] = []
    for chain in range(chains):
        chain_config = replace(config, seed=config.seed + chain)
        results.append(stoke.search(chain_config, strategy=strategy))
    best = results[0]
    for result in results[1:]:
        best = _better(best, result)
    return RestartResult(best=best, chains=results)
