"""Multi-chain search: independent seeded restarts.

The paper runs 16 search threads per benchmark and keeps the best result;
with Python's GIL the equivalent is independent chains run sequentially
(``jobs=1``) or fanned out over a process pool (``jobs>1``, see
:mod:`repro.core.parallel`).  Chains are fully deterministic given their
seeds and are always aggregated in seed order, so a restart run produces
bit-identical results for any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional

from repro.core.result import SearchResult
from repro.core.search import SearchConfig, Stoke
from repro.core.strategies import Strategy


@dataclass
class RestartResult:
    """Best-of-N chains, with the per-chain results retained.

    ``jobs`` records the worker count the run actually used, so harness
    output and benchmark baselines can report it.
    """

    best: SearchResult
    chains: List[SearchResult] = field(default_factory=list)
    jobs: int = 1

    @property
    def chains_with_correct(self) -> int:
        return sum(1 for c in self.chains if c.found_correct)

    @property
    def telemetry(self) -> List[dict]:
        """Per-chain debugging summary (seed, rates, best-cost trace)."""
        return [c.telemetry for c in self.chains]

    def to_dict(self) -> dict:
        """Versioned JSON-safe document (see :mod:`repro.core.serialize`)."""
        from repro.core.serialize import restart_result_to_dict

        return restart_result_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "RestartResult":
        from repro.core.serialize import restart_result_from_dict

        return restart_result_from_dict(data)


def _better(a: SearchResult, b: SearchResult) -> SearchResult:
    """Prefer a correct rewrite; among correct ones, the fastest."""
    if a.found_correct != b.found_correct:
        return a if a.found_correct else b
    if a.found_correct:
        return a if a.best_correct_latency <= b.best_correct_latency else b
    return a if a.best_cost <= b.best_cost else b


def aggregate(chains: List[SearchResult], jobs: int = 1) -> RestartResult:
    """Fold per-chain results (in seed order) into a RestartResult."""
    if not chains:
        raise ValueError("need at least one chain result")
    best = chains[0]
    for result in chains[1:]:
        best = _better(best, result)
    return RestartResult(best=best, chains=list(chains), jobs=jobs)


def run_restarts(stoke: Stoke, config: SearchConfig, chains: int,
                 strategy: Optional[Strategy] = None,
                 jobs: Optional[int] = 1,
                 spec=None,
                 on_result: Optional[Callable[[SearchResult], None]] = None,
                 ) -> RestartResult:
    """Run ``chains`` independent searches with derived seeds.

    Seeds are ``config.seed, config.seed + 1, ...`` so a restart run is
    reproducible and any individual chain can be re-run in isolation.

    ``jobs`` selects the worker count: ``1`` (the default) runs the
    chains serially on ``stoke``; ``None`` or ``0`` auto-sizes to the
    CPU count; ``>1`` fans chains out over a process pool, where each
    worker rebuilds its own optimizer from ``spec`` (derived from
    ``stoke`` when not given — a ``Stoke`` with a ``slow_check`` needs
    an explicit picklable spec or factory).  Aggregate results are
    bit-identical across worker counts for a fixed seed list.
    """
    if chains < 1:
        raise ValueError("need at least one chain")
    from repro.core.parallel import StokeSpec, resolve_jobs, run_seeded_chains

    jobs = resolve_jobs(jobs, chains)
    if jobs == 1:
        results: List[SearchResult] = []
        for chain in range(chains):
            chain_config = replace(config, seed=config.seed + chain)
            result = stoke.search(chain_config, strategy=strategy)
            if on_result is not None:
                on_result(result)
            results.append(result)
        return aggregate(results, jobs=1)

    if spec is None:
        spec = StokeSpec.from_stoke(stoke)
    results = run_seeded_chains(spec, config, chains, jobs=jobs,
                                strategy=strategy, on_result=on_result)
    return aggregate(results, jobs=jobs)
