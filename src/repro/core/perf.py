"""The performance term ``perf(R; T)`` of Equation 2.

STOKE's performance estimate during search is a static sum of
per-instruction latencies (fast to compute and monotone in the true cost
for straight-line code); final speedup numbers reported by the harness are
ratios of these latency sums, and wall-clock throughput is measured
separately by the benchmark suite.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.x86.program import Program


@dataclass(frozen=True)
class LatencyPerf:
    """Latency-ratio performance term, normalized to the target.

    ``perf(R) = scale * latency(R) / latency(T)``, so a rewrite as fast as
    the target costs ``scale`` and the empty rewrite costs 0.  ``scale``
    fixes the exchange rate between cycles and the (log-compressed) ULP
    error units of the equivalence term.
    """

    target_latency: int
    scale: float = 20.0

    def __call__(self, rewrite: Program) -> float:
        if self.target_latency <= 0:
            return float(rewrite.latency)
        return self.scale * rewrite.latency / self.target_latency


def speedup(target: Program, rewrite: Program) -> float:
    """Speedup of a rewrite over the target under the latency model."""
    rl = rewrite.latency
    return float("inf") if rl == 0 else target.latency / rl


def measure_ns_per_test(program: Program, tests, live_outs,
                        backend: str = "vector",
                        repeats: int = 3) -> float:
    """Measured wall-clock latency: best-of-``repeats`` nanoseconds per
    test of one :meth:`~repro.core.runner.Runner.run_batch` pass.

    This is the catalog's optional measured latency axis.  Wall-clock
    numbers are machine-dependent, so they never enter content-addressed
    documents — callers attach them as side-band measurements.
    """
    import time

    from repro.core.runner import Runner

    if not tests:
        raise ValueError("latency probe needs at least one test case")
    runner = Runner(live_outs, backend=backend)
    prepared = runner.prepare(program)
    runner.run_batch(prepared, tests)  # warm-up: compile + caches
    best = float("inf")
    for _ in range(max(repeats, 1)):
        start = time.perf_counter()
        runner.run_batch(prepared, tests)
        best = min(best, time.perf_counter() - start)
    return best * 1e9 / len(tests)
