"""The execution-backend registry: one source of truth for backend names.

Every seam that accepts a backend choice — :class:`repro.core.runner.Runner`,
the cost function's incremental planner, the CLI's ``--backend`` flags, and
service job payloads — validates against this registry, so adding a backend
(or catching a typo with a helpful error) happens in exactly one place.

A backend is either *compiled* (``prepare`` translates the program once
into an object exposing the ``CompiledProgram`` execution surface —
``writes``, ``run``, ``run_batch``, ``run_from``, ``run_batch_from``) or
*interpreted* (``prepare`` is the identity and execution goes through an
:class:`~repro.x86.emulator.Emulator`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from repro.x86.jit import compile_program
from repro.x86.program import Program
from repro.x86.vector import vectorize_program


@dataclass(frozen=True)
class Backend:
    """A named execution strategy.

    ``compiled`` tells the Runner which dispatch shape to use: compiled
    backends execute through the prepared object itself and report a
    ``writes`` promise for pooled-state reuse; interpreted backends keep
    the program as-is and run it through an Emulator.
    """

    name: str
    compiled: bool
    prepare: Callable[[Program], object]


_REGISTRY: Dict[str, Backend] = {}


def register_backend(backend: Backend) -> Backend:
    """Add a backend to the registry (last registration wins)."""
    _REGISTRY[backend.name] = backend
    return backend


def known_backends() -> Tuple[str, ...]:
    """Registered backend names, sorted for stable display."""
    return tuple(sorted(_REGISTRY))


def resolve_backend(name: str) -> Backend:
    """Look up a backend by name; unknown names list the valid choices."""
    try:
        return _REGISTRY[name]
    except KeyError:
        choices = ", ".join(known_backends())
        raise ValueError(
            f"unknown backend: {name!r} (known backends: {choices})"
        ) from None


register_backend(Backend("jit", compiled=True, prepare=compile_program))
register_backend(Backend("emulator", compiled=False,
                         prepare=lambda program: program))
register_backend(Backend("vector", compiled=True, prepare=vectorize_program))
