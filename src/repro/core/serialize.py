"""Stable JSON schemas for search, validation, and checkpoint state.

Every value the campaign service persists — results in the ledger,
artifacts in the content-addressed store, resume checkpoints on disk —
round-trips through the functions here.  The schema is versioned
(``SCHEMA_VERSION``) so a ledger written by one build is either readable
by the next or rejected loudly, never misparsed.

Programs serialize as their full textual rendering (UNUSED slots
included) plus the slot count, so ``assemble`` reconstructs a
slot-for-slot identical :class:`~repro.x86.program.Program`.  Test cases
serialize as ``{location: bits}`` over their live-ins; memory segments
are *not* serialized — they are environment, reconstructed from the
kernel spec by whoever deserializes.  Non-finite floats are encoded as
the strings ``"inf"`` / ``"-inf"`` / ``"nan"`` so every document stays
strict JSON.
"""

from __future__ import annotations

import hashlib
import json
import math
import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.x86.program import Program
from repro.x86.testcase import TestCase

SCHEMA_VERSION = 1


class SchemaError(ValueError):
    """A document's schema version or shape is not understood."""


def check_version(data: Dict, kind: str) -> None:
    version = data.get("version")
    if version != SCHEMA_VERSION:
        raise SchemaError(
            f"unsupported {kind} schema version {version!r} "
            f"(this build reads version {SCHEMA_VERSION})")


# ---------------------------------------------------------------------------
# Scalars

def enc_float(value: Optional[float]):
    """JSON-safe float: non-finite values become strings."""
    if value is None:
        return None
    value = float(value)
    if math.isnan(value):
        return "nan"
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    return value


def dec_float(raw) -> Optional[float]:
    if raw is None:
        return None
    if isinstance(raw, str):
        return float(raw)
    return float(raw)


def enc_rng_state(state: tuple) -> list:
    """``random.Random.getstate()`` as a JSON array."""
    version, internal, gauss_next = state
    return [version, list(internal), gauss_next]


def dec_rng_state(raw: Sequence) -> tuple:
    version, internal, gauss_next = raw
    return (version, tuple(internal), gauss_next)


# ---------------------------------------------------------------------------
# Programs and test cases

def program_to_dict(program: Optional[Program]) -> Optional[Dict]:
    if program is None:
        return None
    return {
        "text": program.to_text(include_unused=True),
        "slots": len(program.slots),
    }


def program_from_dict(data: Optional[Dict]) -> Optional[Program]:
    if data is None:
        return None
    from repro.x86.assembler import assemble

    program = assemble(data["text"], total_slots=int(data["slots"]))
    if len(program.slots) != int(data["slots"]):
        raise SchemaError(
            f"program text has {len(program.slots)} slots, "
            f"header says {data['slots']}")
    return program


def testcase_to_dict(test: Optional[TestCase]) -> Optional[Dict]:
    """Live-in bits by location; segments are the caller's problem."""
    if test is None:
        return None
    return {"inputs": {str(loc): bits for loc, bits in test.inputs.items()}}


def testcase_from_dict(data: Optional[Dict],
                       segments: Sequence = ()) -> Optional[TestCase]:
    if data is None:
        return None
    return TestCase(dict(data["inputs"]), segments)


# ---------------------------------------------------------------------------
# Search results

def search_stats_to_dict(stats) -> Dict:
    return {
        "proposals": stats.proposals,
        "accepted": stats.accepted,
        "invalid_proposals": stats.invalid_proposals,
        "elapsed_seconds": stats.elapsed_seconds,
        "moves_proposed": dict(stats.moves_proposed),
        "moves_accepted": dict(stats.moves_accepted),
        "jit_cache": dict(stats.jit_cache),
        "incremental": dict(stats.incremental),
        "dce_cache": dict(stats.dce_cache),
        "test_ordering": dict(stats.test_ordering),
    }


def search_stats_from_dict(data: Dict):
    from repro.core.result import SearchStats

    return SearchStats(
        proposals=int(data["proposals"]),
        accepted=int(data["accepted"]),
        invalid_proposals=int(data["invalid_proposals"]),
        elapsed_seconds=float(data["elapsed_seconds"]),
        moves_proposed=dict(data["moves_proposed"]),
        moves_accepted=dict(data["moves_accepted"]),
        jit_cache=dict(data.get("jit_cache", {})),
        incremental=dict(data.get("incremental", {})),
        dce_cache=dict(data.get("dce_cache", {})),
        test_ordering=dict(data.get("test_ordering", {})),
    )


def search_result_to_dict(result) -> Dict:
    return {
        "version": SCHEMA_VERSION,
        "kind": "search_result",
        "target": program_to_dict(result.target),
        "best_program": program_to_dict(result.best_program),
        "best_cost": enc_float(result.best_cost),
        "best_correct": program_to_dict(result.best_correct),
        "best_correct_latency": result.best_correct_latency,
        "stats": search_stats_to_dict(result.stats),
        "trace": [[i, enc_float(c)] for i, c in result.trace],
        "seed": result.seed,
    }


def search_result_from_dict(data: Dict):
    from repro.core.result import SearchResult

    check_version(data, "SearchResult")
    latency = data["best_correct_latency"]
    return SearchResult(
        target=program_from_dict(data["target"]),
        best_program=program_from_dict(data["best_program"]),
        best_cost=dec_float(data["best_cost"]),
        best_correct=program_from_dict(data["best_correct"]),
        best_correct_latency=None if latency is None else int(latency),
        stats=search_stats_from_dict(data["stats"]),
        trace=[(int(i), dec_float(c)) for i, c in data["trace"]],
        seed=None if data["seed"] is None else int(data["seed"]),
    )


def restart_result_to_dict(result) -> Dict:
    return {
        "version": SCHEMA_VERSION,
        "kind": "restart_result",
        "best_seed": result.best.seed,
        "chains": [search_result_to_dict(c) for c in result.chains],
        "jobs": result.jobs,
    }


def restart_result_from_dict(data: Dict):
    from repro.core.restarts import RestartResult

    check_version(data, "RestartResult")
    chains = [search_result_from_dict(c) for c in data["chains"]]
    best = next((c for c in chains if c.seed == data["best_seed"]),
                chains[0] if chains else None)
    if best is None:
        raise SchemaError("restart result with no chains")
    return RestartResult(best=best, chains=chains, jobs=int(data["jobs"]))


# ---------------------------------------------------------------------------
# Validation results

def validation_result_to_dict(result) -> Dict:
    return {
        "version": SCHEMA_VERSION,
        "kind": "validation_result",
        "max_err": enc_float(result.max_err),
        "argmax": testcase_to_dict(result.argmax),
        "samples": result.samples,
        "converged": result.converged,
        "passed": result.passed,
        "z_scores": [[i, enc_float(z)] for i, z in result.z_scores],
        "trace": [[i, enc_float(e)] for i, e in result.trace],
        "chain": None if result.chain is None
        else [enc_float(v) for v in result.chain],
        "evaluations": result.evaluations,
        "wasted": result.wasted,
    }


def validation_result_from_dict(data: Dict, segments: Sequence = ()):
    from repro.validation.validator import ValidationResult

    check_version(data, "ValidationResult")
    return ValidationResult(
        max_err=dec_float(data["max_err"]),
        argmax=testcase_from_dict(data["argmax"], segments),
        samples=int(data["samples"]),
        converged=bool(data["converged"]),
        passed=bool(data["passed"]),
        z_scores=[(int(i), dec_float(z)) for i, z in data["z_scores"]],
        trace=[(int(i), dec_float(e)) for i, e in data["trace"]],
        chain=None if data["chain"] is None
        else [dec_float(v) for v in data["chain"]],
        evaluations=int(data["evaluations"]),
        wasted=int(data["wasted"]),
    )


# ---------------------------------------------------------------------------
# Canonical JSON (content addressing)

def canonical_json(data) -> str:
    """Deterministic rendering: sorted keys, no whitespace, strict JSON."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


def content_digest(data) -> str:
    """SHA-256 over the canonical JSON rendering.

    The one content-addressing function: job identities, campaign ids,
    and catalog documents all hash through here, so "same value, same
    digest" holds across every layer that persists JSON.
    """
    return hashlib.sha256(canonical_json(data).encode("utf-8")).hexdigest()


def fresh_rng(state: Optional[Sequence]) -> random.Random:
    """A ``random.Random`` restored from an encoded state (or fresh)."""
    rng = random.Random()
    if state is not None:
        rng.setstate(dec_rng_state(state))
    return rng
