"""Shared program-execution plumbing for cost functions and validation.

A :class:`Runner` binds the live-out locations and a backend choice
(``"jit"`` or ``"emulator"``) and turns (program, test case) pairs into
output bit patterns or a signal.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.x86.emulator import Emulator
from repro.x86.jit import compile_program
from repro.x86.locations import Loc, MemLoc, parse_loc
from repro.x86.program import Program
from repro.x86.signals import Signal
from repro.x86.testcase import TestCase

Location = Union[Loc, MemLoc]


def resolve_locations(locs: Iterable[Union[str, Location]]) -> Tuple[Location, ...]:
    """Accept location strings or objects; return Loc/MemLoc objects."""
    out: List[Location] = []
    for loc in locs:
        out.append(parse_loc(loc) if isinstance(loc, str) else loc)
    return tuple(out)


class Runner:
    """Executes programs on test cases and reads back live-out values."""

    def __init__(self, live_outs: Iterable[Union[str, Location]],
                 backend: str = "jit"):
        if backend not in ("jit", "emulator"):
            raise ValueError(f"unknown backend: {backend!r}")
        self.live_outs = resolve_locations(live_outs)
        self.backend = backend
        self._emulator = Emulator() if backend == "emulator" else None

    def prepare(self, program: Program):
        """Pre-process a program for repeated execution."""
        if self.backend == "jit":
            return compile_program(program)
        return program

    def run(self, prepared, test: TestCase
            ) -> Tuple[Optional[Dict[Location, int]], Optional[Signal]]:
        """Execute and return ({location: bits}, None) or (None, signal)."""
        state = test.build_state()
        if self.backend == "jit":
            outcome = prepared.run(state)
        else:
            outcome = self._emulator.run(prepared, state)
        if not outcome.ok:
            return None, outcome.signal
        return {loc: loc.read(state) for loc in self.live_outs}, None

    def run_program(self, program: Program, test: TestCase):
        """One-shot convenience wrapper around prepare + run."""
        return self.run(self.prepare(program), test)

    def outputs_for(self, program: Program, tests: Sequence[TestCase]
                    ) -> List[Dict[Location, int]]:
        """Outputs on every test; raises if any execution signals."""
        prepared = self.prepare(program)
        results = []
        for test in tests:
            outputs, signal = self.run(prepared, test)
            if signal is not None:
                raise RuntimeError(
                    f"program raised {signal.value} on {test!r}"
                )
            results.append(outputs)
        return results
