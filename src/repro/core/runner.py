"""Shared program-execution plumbing for cost functions and validation.

A :class:`Runner` binds the live-out locations and a backend choice
(any name in :func:`repro.core.backends.known_backends`) and turns
(program, test case) pairs into output bit patterns or a signal.
Compiled backends (jit, vector) execute through the prepared object and
its ``writes`` promise; interpreted ones go through the Emulator.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.x86.emulator import Emulator
from repro.x86.locations import Loc, MemLoc, make_reader, parse_loc
from repro.x86.program import Program
from repro.x86.signals import Signal
from repro.x86.testcase import TestCase

from repro.core.backends import resolve_backend

Location = Union[Loc, MemLoc]


def resolve_locations(locs: Iterable[Union[str, Location]]) -> Tuple[Location, ...]:
    """Accept location strings or objects; return Loc/MemLoc objects."""
    out: List[Location] = []
    for loc in locs:
        out.append(parse_loc(loc) if isinstance(loc, str) else loc)
    return tuple(out)


class Runner:
    """Executes programs on test cases and reads back live-out values."""

    def __init__(self, live_outs: Iterable[Union[str, Location]],
                 backend: str = "jit"):
        self._backend = resolve_backend(backend)
        self.live_outs = resolve_locations(live_outs)
        self.backend = self._backend.name
        self._compiled = self._backend.compiled
        self._emulator = None if self._compiled else Emulator()
        # Vector fast path: live-outs are read straight from the lane
        # arrays (one C-level row conversion per location instead of one
        # reader call per test), and the batch executes from cached
        # pristine pack images rather than pooled scalar states.
        if self.backend == "vector":
            from repro.x86.vector import make_column_readers
            self._column_readers = make_column_readers(self.live_outs)
        else:
            self._column_readers = None
        self._pack_cache = None
        # Precompiled per-location readers: location resolution happens
        # here, once, instead of on every execution's read-back.
        self._readers = tuple(make_reader(loc) for loc in self.live_outs)
        self._loc_readers = tuple(zip(self.live_outs, self._readers))
        # Most kernels have exactly one live-out; reading it without the
        # tuple(generator) machinery is measurably cheaper per test.
        self._single_reader = (self._readers[0]
                               if len(self._readers) == 1 else None)

    def prepare(self, program: Program):
        """Pre-process a program for repeated execution."""
        return self._backend.prepare(program)

    def read_values(self, state) -> Tuple[int, ...]:
        """Live-out bit patterns of a state, in ``live_outs`` order."""
        return tuple(read(state) for read in self._readers)

    def run(self, prepared, test: TestCase
            ) -> Tuple[Optional[Dict[Location, int]], Optional[Signal]]:
        """Execute and return ({location: bits}, None) or (None, signal)."""
        if self._compiled:
            state = test.pooled_state(prepared.writes)
            outcome = prepared.run(state)
        else:
            state = test.pooled_state()
            outcome = self._emulator.run(prepared, state)
        if not outcome.ok:
            return None, outcome.signal
        return {loc: read(state) for loc, read in self._loc_readers}, None

    def run_values(self, prepared, test: TestCase
                   ) -> Tuple[Optional[Tuple[int, ...]], Optional[Signal]]:
        """Like :meth:`run` but returns a live-out bits tuple, not a dict.

        This is the hot-path variant: no dict is built, and the test
        case's pooled state is reused in place.
        """
        if self._compiled:
            state = test.pooled_state(prepared.writes)
            outcome = prepared.run(state)
        else:
            state = test.pooled_state()
            outcome = self._emulator.run(prepared, state)
        if not outcome.ok:
            return None, outcome.signal
        read_one = self._single_reader
        if read_one is not None:
            return (read_one(state),), None
        return tuple(read(state) for read in self._readers), None

    def run_batch(self, prepared, tests: Sequence[TestCase]
                  ) -> List[Tuple[Optional[Tuple[int, ...]],
                                  Optional[Signal]]]:
        """Execute on every test and read back live-outs, batched.

        On compiled backends the whole test set executes inside one
        prepared-program call (one generated function for the JIT, one
        vectorized pass for the vector backend); the emulator keeps
        per-test dispatch but shares the pooled-state reuse.  Returns one ``(values, signal)``
        pair per test, where ``values`` is a live-out bits tuple (None
        when the execution signalled).
        """
        if self._column_readers is not None:
            return self._run_batch_columns(prepared, tests)
        writes = prepared.writes if self._compiled else None
        states = []
        seen = set()
        for test in tests:
            # A duplicated test object cannot share its pooled state
            # within one batch — both slots would alias one state and the
            # second execution would start from the first one's output.
            ident = id(test)
            if ident in seen:
                states.append(test.build_state())
            else:
                seen.add(ident)
                states.append(test.pooled_state(writes))
        if self._compiled:
            signals = prepared.run_batch(states)
        else:
            signals = self._emulator.run_batch(prepared, states)
        read_one = self._single_reader
        if read_one is not None:
            return [(None, signal) if signal is not None
                    else ((read_one(state),), None)
                    for state, signal in zip(states, signals)]
        readers = self._readers
        return [(None, signal) if signal is not None
                else (tuple(read(state) for read in readers), None)
                for state, signal in zip(states, signals)]

    def _run_batch_columns(self, prepared, tests: Sequence[TestCase]
                           ) -> List[Tuple[Optional[Tuple[int, ...]],
                                           Optional[Signal]]]:
        """Vector-backend batch: execute in lane arrays, read live-outs
        at array level, never write register state back.

        Programs that cannot store to memory run on the tests' shared
        pristine templates — no pooled-state restore at all, and the
        full-register pack image is cached across batches (the search
        evaluates thousands of proposals against one fixed test set).
        Memory-writing programs mutate per-lane sandbox segments in
        place, so they take each test's pooled state with a
        registers-clean promise; the register files still never leave
        the lane arrays.
        """
        if prepared.writes[3]:
            promise = ((), (), (), True)
            states = []
            seen = set()
            for test in tests:
                ident = id(test)
                if ident in seen:
                    states.append(test.build_state())
                else:
                    seen.add(ident)
                    states.append(test.pooled_state(promise))
            packed = None
        else:
            states, packed = self._packed_templates(tests)
        signals, ctx = prepared.run_batch_columns(states, packed)
        if ctx is None:
            return []
        readers = self._column_readers
        if len(readers) == 1:
            column = readers[0](ctx, states)
            return [(None, signal) if signal is not None
                    else ((column[j],), None)
                    for j, signal in enumerate(signals)]
        columns = [read(ctx, states) for read in readers]
        return [(None, signal) if signal is not None
                else (tuple(column[j] for column in columns), None)
                for j, signal in enumerate(signals)]

    def _packed_templates(self, tests: Sequence[TestCase]):
        """(template states, owned pack image) for a test sequence.

        The cache maps test-object identity to a column in a growing
        full-register pack built from each test's pristine template;
        a batch's image is then one C-level ``np.take`` gather per
        array, however the cost function slices or reorders its test
        list.  The cache holds strong references to its tests, so the
        ids stay valid as long as their columns do.  Duplicated test
        objects are harmless here — templates are read-only to the
        vector path.
        """
        import numpy as np

        from repro.x86.vector import pack_states
        cache = self._pack_cache
        if cache is None or len(cache["tests"]) > 8192:
            cache = self._pack_cache = {
                "index": {}, "tests": [], "templates": [],
                "gp": None, "xl": None, "xh": None,
            }
        index = cache["index"]
        missing = [test for test in tests if id(test) not in index]
        if missing:
            fresh = [test.template_state() for test in missing]
            gp, xl, xh = pack_states(fresh)
            base = len(cache["tests"])
            for offset, test in enumerate(missing):
                index[id(test)] = base + offset
            cache["tests"].extend(missing)
            cache["templates"].extend(fresh)
            for key, cols in (("gp", gp), ("xl", xl), ("xh", xh)):
                held = cache[key]
                cache[key] = cols if held is None else \
                    np.concatenate((held, cols), axis=1)
        columns = [index[id(test)] for test in tests]
        templates = cache["templates"]
        states = [templates[col] for col in columns]
        packed = tuple(np.take(cache[key], columns, axis=1)
                       for key in ("gp", "xl", "xh"))
        return states, packed

    def values_of(self, state) -> Tuple[int, ...]:
        """Live-out bits of an already-executed state (hot-path variant
        of :meth:`read_values` with the single-reader fast path)."""
        read_one = self._single_reader
        if read_one is not None:
            return (read_one(state),)
        return tuple(read(state) for read in self._readers)

    def execute_from(self, prepared, state, start: int,
                     stop: Optional[int] = None) -> Optional[Signal]:
        """Run ``[start, stop)`` of a prepared program on an explicit
        state; returns the signal (None = clean).  The incremental
        evaluator uses this for checkpoint capture segments and
        single-test suffix runs."""
        if self._compiled:
            outcome = prepared.run_from(start, state, stop)
        else:
            outcome = self._emulator.run_from(prepared, state, start, stop)
        return outcome.signal

    def execute_batch_from(self, prepared, states, start: int
                           ) -> List[Optional[Signal]]:
        """Batched :meth:`execute_from` over explicit states (each must
        already hold its test's checkpoint at ``start``)."""
        if self._compiled:
            return prepared.run_batch_from(start, states)
        return self._emulator.run_batch_from(prepared, states, start)

    def run_program(self, program: Program, test: TestCase):
        """One-shot convenience wrapper around prepare + run."""
        return self.run(self.prepare(program), test)

    def outputs_for(self, program: Program, tests: Sequence[TestCase]
                    ) -> List[Dict[Location, int]]:
        """Outputs on every test; raises if any execution signals."""
        prepared = self.prepare(program)
        results = []
        for test in tests:
            outputs, signal = self.run(prepared, test)
            if signal is not None:
                raise RuntimeError(
                    f"program raised {signal.value} on {test!r}"
                )
            results.append(outputs)
        return results
