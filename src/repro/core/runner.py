"""Shared program-execution plumbing for cost functions and validation.

A :class:`Runner` binds the live-out locations and a backend choice
(``"jit"`` or ``"emulator"``) and turns (program, test case) pairs into
output bit patterns or a signal.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.x86.emulator import Emulator
from repro.x86.jit import compile_program
from repro.x86.locations import Loc, MemLoc, make_reader, parse_loc
from repro.x86.program import Program
from repro.x86.signals import Signal
from repro.x86.testcase import TestCase

Location = Union[Loc, MemLoc]


def resolve_locations(locs: Iterable[Union[str, Location]]) -> Tuple[Location, ...]:
    """Accept location strings or objects; return Loc/MemLoc objects."""
    out: List[Location] = []
    for loc in locs:
        out.append(parse_loc(loc) if isinstance(loc, str) else loc)
    return tuple(out)


class Runner:
    """Executes programs on test cases and reads back live-out values."""

    def __init__(self, live_outs: Iterable[Union[str, Location]],
                 backend: str = "jit"):
        if backend not in ("jit", "emulator"):
            raise ValueError(f"unknown backend: {backend!r}")
        self.live_outs = resolve_locations(live_outs)
        self.backend = backend
        self._emulator = Emulator() if backend == "emulator" else None
        # Precompiled per-location readers: location resolution happens
        # here, once, instead of on every execution's read-back.
        self._readers = tuple(make_reader(loc) for loc in self.live_outs)
        self._loc_readers = tuple(zip(self.live_outs, self._readers))
        # Most kernels have exactly one live-out; reading it without the
        # tuple(generator) machinery is measurably cheaper per test.
        self._single_reader = (self._readers[0]
                               if len(self._readers) == 1 else None)

    def prepare(self, program: Program):
        """Pre-process a program for repeated execution."""
        if self.backend == "jit":
            return compile_program(program)
        return program

    def read_values(self, state) -> Tuple[int, ...]:
        """Live-out bit patterns of a state, in ``live_outs`` order."""
        return tuple(read(state) for read in self._readers)

    def run(self, prepared, test: TestCase
            ) -> Tuple[Optional[Dict[Location, int]], Optional[Signal]]:
        """Execute and return ({location: bits}, None) or (None, signal)."""
        if self.backend == "jit":
            state = test.pooled_state(prepared.writes)
            outcome = prepared.run(state)
        else:
            state = test.pooled_state()
            outcome = self._emulator.run(prepared, state)
        if not outcome.ok:
            return None, outcome.signal
        return {loc: read(state) for loc, read in self._loc_readers}, None

    def run_values(self, prepared, test: TestCase
                   ) -> Tuple[Optional[Tuple[int, ...]], Optional[Signal]]:
        """Like :meth:`run` but returns a live-out bits tuple, not a dict.

        This is the hot-path variant: no dict is built, and the test
        case's pooled state is reused in place.
        """
        if self.backend == "jit":
            state = test.pooled_state(prepared.writes)
            outcome = prepared.run(state)
        else:
            state = test.pooled_state()
            outcome = self._emulator.run(prepared, state)
        if not outcome.ok:
            return None, outcome.signal
        read_one = self._single_reader
        if read_one is not None:
            return (read_one(state),), None
        return tuple(read(state) for read in self._readers), None

    def run_batch(self, prepared, tests: Sequence[TestCase]
                  ) -> List[Tuple[Optional[Tuple[int, ...]],
                                  Optional[Signal]]]:
        """Execute on every test and read back live-outs, batched.

        On the JIT backend the whole test set executes inside one
        compiled-function call; the emulator keeps per-test dispatch but
        shares the pooled-state reuse.  Returns one ``(values, signal)``
        pair per test, where ``values`` is a live-out bits tuple (None
        when the execution signalled).
        """
        writes = prepared.writes if self.backend == "jit" else None
        states = []
        seen = set()
        for test in tests:
            # A duplicated test object cannot share its pooled state
            # within one batch — both slots would alias one state and the
            # second execution would start from the first one's output.
            ident = id(test)
            if ident in seen:
                states.append(test.build_state())
            else:
                seen.add(ident)
                states.append(test.pooled_state(writes))
        if self.backend == "jit":
            signals = prepared.run_batch(states)
        else:
            signals = self._emulator.run_batch(prepared, states)
        read_one = self._single_reader
        if read_one is not None:
            return [(None, signal) if signal is not None
                    else ((read_one(state),), None)
                    for state, signal in zip(states, signals)]
        readers = self._readers
        return [(None, signal) if signal is not None
                else (tuple(read(state) for read in readers), None)
                for state, signal in zip(states, signals)]

    def values_of(self, state) -> Tuple[int, ...]:
        """Live-out bits of an already-executed state (hot-path variant
        of :meth:`read_values` with the single-reader fast path)."""
        read_one = self._single_reader
        if read_one is not None:
            return (read_one(state),)
        return tuple(read(state) for read in self._readers)

    def execute_from(self, prepared, state, start: int,
                     stop: Optional[int] = None) -> Optional[Signal]:
        """Run ``[start, stop)`` of a prepared program on an explicit
        state; returns the signal (None = clean).  The incremental
        evaluator uses this for checkpoint capture segments and
        single-test suffix runs."""
        if self.backend == "jit":
            outcome = prepared.run_from(start, state, stop)
        else:
            outcome = self._emulator.run_from(prepared, state, start, stop)
        return outcome.signal

    def execute_batch_from(self, prepared, states, start: int
                           ) -> List[Optional[Signal]]:
        """Batched :meth:`execute_from` over explicit states (each must
        already hold its test's checkpoint at ``start``)."""
        if self.backend == "jit":
            return prepared.run_batch_from(start, states)
        return self._emulator.run_batch_from(prepared, states, start)

    def run_program(self, program: Program, test: TestCase):
        """One-shot convenience wrapper around prepare + run."""
        return self.run(self.prepare(program), test)

    def outputs_for(self, program: Program, tests: Sequence[TestCase]
                    ) -> List[Dict[Location, int]]:
        """Outputs on every test; raises if any execution signals."""
        prepared = self.prepare(program)
        results = []
        for test in tests:
            outputs, signal = self.run(prepared, test)
            if signal is not None:
                raise RuntimeError(
                    f"program raised {signal.value} on {test!r}"
                )
            results.append(outputs)
        return results
