"""Metropolis-Hastings machinery (Equations 1, 3, 4).

With symmetric proposals the acceptance probability reduces to the
Metropolis ratio ``min(1, exp(-beta * (c(x*) - c(x))))``; costs map to the
(unnormalized) density ``p(x) ∝ exp(-beta * c(x))`` of Equation 3.
"""

from __future__ import annotations

import math
import random


def acceptance_probability(current_cost: float, proposal_cost: float,
                           beta: float = 1.0) -> float:
    """Equation 4: ``min(1, exp(-beta * (c(R*) - c(R))))``."""
    delta = proposal_cost - current_cost
    if delta <= 0.0:
        return 1.0
    exponent = -beta * delta
    if exponent < -745.0:  # exp underflows to 0.0 below this
        return 0.0
    return math.exp(exponent)


def metropolis_accept(rng: random.Random, current_cost: float,
                      proposal_cost: float, beta: float = 1.0) -> bool:
    """One Metropolis acceptance decision."""
    p = acceptance_probability(current_cost, proposal_cost, beta)
    return p >= 1.0 or rng.random() < p


def rejection_threshold(current_cost: float, beta: float,
                        log_tolerance: float = 46.0) -> float:
    """A proposal cost above this is rejected with probability ~1 - 1e-20.

    Used to stop evaluating test cases early on hopeless proposals: once
    the running cost lower bound passes this threshold, the remaining
    test cases cannot change the accept/reject outcome in practice.
    """
    if beta <= 0.0:
        return math.inf
    return current_cost + log_tolerance / beta
