"""The stochastic superoptimizer: cost function, transforms, and search."""

from repro.core.backends import (
    Backend,
    known_backends,
    register_backend,
    resolve_backend,
)
from repro.core.cost import CostConfig, CostFunction, CostResult
from repro.core.mcmc import acceptance_probability, metropolis_accept
from repro.core.perf import LatencyPerf, speedup
from repro.core.result import SearchResult, SearchStats
from repro.core.runner import Runner, resolve_locations
from repro.core.parallel import (
    StokeSpec,
    default_jobs,
    run_chains,
    run_seeded_chains,
)
from repro.core.restarts import RestartResult, run_restarts
from repro.core.search import SearchConfig, Stoke
from repro.core.slowcheck import (
    SlowCheckStats,
    counting,
    uf_slow_check,
    validation_slow_check,
)
from repro.core.strategies import (
    AnnealStrategy,
    HillClimbStrategy,
    McmcStrategy,
    RandomStrategy,
    Strategy,
    make_strategy,
)
from repro.core.transforms import OperandPool, Transforms, default_opcode_pool

__all__ = [
    "Backend",
    "known_backends",
    "register_backend",
    "resolve_backend",
    "CostConfig",
    "CostFunction",
    "CostResult",
    "acceptance_probability",
    "metropolis_accept",
    "LatencyPerf",
    "speedup",
    "SearchResult",
    "SearchStats",
    "Runner",
    "resolve_locations",
    "StokeSpec",
    "default_jobs",
    "run_chains",
    "run_seeded_chains",
    "RestartResult",
    "run_restarts",
    "SearchConfig",
    "Stoke",
    "SlowCheckStats",
    "counting",
    "uf_slow_check",
    "validation_slow_check",
    "AnnealStrategy",
    "HillClimbStrategy",
    "McmcStrategy",
    "RandomStrategy",
    "Strategy",
    "make_strategy",
    "OperandPool",
    "Transforms",
    "default_opcode_pool",
]
