"""The proposal distribution ``q(·)``: STOKE's four program transforms.

Opcode, Operand, Swap, and Instruction moves (Section 2.2), proposed with
equal probability.  Together the four moves are ergodic: any program can
reach any other through a finite sequence of proposals.

On symmetry: the Opcode, Operand, and Swap moves are exactly symmetric
(``q(x -> x*) = q(x* -> x)``).  The Instruction move is not — deleting a
line (proposing UNUSED) and re-inserting the exact instruction it
replaced have different probabilities — but, following both STOKE
(ASPLOS 2013) and this paper, the acceptance rule treats the proposal
distribution as symmetric and applies the plain Metropolis ratio of
Equation 4.  What matters in practice is that the *occupancy drift* of
the instruction move is balanced: with a fixed small probability of
proposing UNUSED, an accept-everything walk saturates at full occupancy
and the chain never explores shorter programs.  The move therefore
scales its deletion probability with slot occupancy (see
:meth:`Transforms.delete_probability`): on an empty program it almost
always inserts, on a full program it deletes with probability
``1 - unused_probability``, and the zero-drift point sits at half
occupancy, so length-reducing rewrites stay reachable.

Random operands are drawn from an :class:`OperandPool` seeded from the
target — the registers, memory references, and immediates the target
mentions, plus a small default register set — mirroring how STOKE keeps
its proposal space anchored to the code being optimized.

Sampling is deterministic given the ``random.Random`` instance: candidate
operands are always enumerated in a sorted order (never raw ``set`` /
``frozenset`` iteration order, which varies with per-process string-hash
randomization), so a seeded chain replays bit-identically across
interpreter invocations and across the worker processes of
:mod:`repro.core.parallel`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.x86.instruction import UNUSED, Instruction
from repro.x86.opcodes import OPCODES
from repro.x86.operands import Imm, Kind, Mem, Operand, Reg32, Reg64, Xmm
from repro.x86.program import Program

MOVE_KINDS = ("opcode", "operand", "swap", "instruction")

_DEFAULT_IMMS = (0, 1, 2, 3, 4, 8, 16, 31, 32, 52, 63)


class OperandPool:
    """Candidate operands for random proposals, grouped by kind."""

    def __init__(self, target: Program,
                 extra_xmm: int = 8, extra_gp: int = 4,
                 extra_imms: Sequence[int] = _DEFAULT_IMMS):
        xmm: Set[int] = set(range(extra_xmm))
        gp: Set[int] = set()
        imms: Set[int] = set(extra_imms)
        mems: Set[Mem] = set()
        for instr in target.code:
            for op in instr.operands:
                if isinstance(op, Xmm):
                    xmm.add(op.index)
                elif isinstance(op, (Reg64, Reg32)):
                    gp.add(op.index)
                elif isinstance(op, Imm):
                    imms.add(op.value)
                elif isinstance(op, Mem):
                    mems.add(op)
                    gp.add(op.base)
                    if op.index is not None:
                        gp.add(op.index)
        # A few scratch GP registers beyond what the target uses
        # (avoiding rsp, which anchors the stack segment).
        for idx in (0, 1, 2, 3):  # rax, rcx, rdx, rbx
            if len(gp) >= extra_gp:
                break
            gp.add(idx)

        self.by_kind: Dict[Kind, List[Operand]] = {
            Kind.XMM: [Xmm(i) for i in sorted(xmm)],
            Kind.R64: [Reg64(i) for i in sorted(gp)],
            Kind.R32: [Reg32(i) for i in sorted(gp)],
            Kind.IMM: [Imm(v) for v in sorted(imms)],
            Kind.M32: sorted((m for m in mems if m.size == 4), key=str),
            Kind.M64: sorted((m for m in mems if m.size == 8), key=str),
            Kind.M128: sorted((m for m in mems if m.size == 16), key=str),
        }

    def sample(self, rng: random.Random, kinds: frozenset) -> Optional[Operand]:
        """Draw a random operand matching one of ``kinds``.

        Kinds are visited in sorted order: ``frozenset`` iteration order
        depends on string-hash randomization (``Kind`` hashes by member
        name), which would make seeded chains diverge across processes.
        """
        candidates: List[Operand] = []
        for kind in sorted(kinds, key=lambda k: k.value):
            candidates.extend(self.by_kind.get(kind, ()))
        if not candidates:
            return None
        return rng.choice(candidates)


def default_opcode_pool(target: Program,
                        include_flavors: Tuple[str, ...] = ("float", "int",
                                                            "move", "cmp"),
                        ) -> List[str]:
    """Opcodes eligible for proposals: everything in the registry except
    the UNUSED token (inserted explicitly by the Instruction move)."""
    del target  # the pool is currently target-independent
    return [name for name, spec in sorted(OPCODES.items())
            if spec.flavor in include_flavors]


class Transforms:
    """Samples random program modifications."""

    def __init__(self, target: Program,
                 opcode_pool: Optional[Sequence[str]] = None,
                 operand_pool: Optional[OperandPool] = None,
                 unused_probability: float = 0.20,
                 max_tries: int = 16,
                 move_kinds: Optional[Sequence[str]] = None):
        """``move_kinds`` restricts proposals to a subset of
        :data:`MOVE_KINDS` (used by the move-mix ablation); the default is
        all four moves with equal probability."""
        self.opcode_pool = list(opcode_pool) if opcode_pool is not None \
            else default_opcode_pool(target)
        self.operand_pool = operand_pool if operand_pool is not None \
            else OperandPool(target)
        self.unused_probability = unused_probability
        self.max_tries = max_tries
        kinds = tuple(move_kinds) if move_kinds is not None else MOVE_KINDS
        unknown = [k for k in kinds if k not in MOVE_KINDS]
        if unknown or not kinds:
            raise ValueError(f"bad move kinds: {unknown or kinds!r}")
        self.move_kinds = kinds

    # -- individual moves -------------------------------------------------
    #
    # Every move returns ``(proposal, edit_span)`` (or None): the edit
    # span is the lowest program index whose instruction changed, which
    # the incremental evaluator uses to resume from a prefix checkpoint
    # instead of re-executing the whole candidate.  Swaps report the
    # lower of their two indices.

    def propose_opcode(self, rng: random.Random, program: Program
                       ) -> Optional[Tuple[Program, int]]:
        """Replace one instruction's opcode, keeping its operands."""
        slots = [i for i, ins in enumerate(program.slots) if not ins.is_unused]
        if not slots:
            return None
        index = rng.choice(slots)
        instr = program.slots[index]
        compatible = [name for name in self.opcode_pool
                      if name != instr.opcode
                      and OPCODES[name].accepts(instr.operands)]
        if not compatible:
            return None
        return program.with_slot(
            index, Instruction(rng.choice(compatible), instr.operands)), index

    def propose_operand(self, rng: random.Random, program: Program
                        ) -> Optional[Tuple[Program, int]]:
        """Replace one operand of one instruction."""
        slots = [i for i, ins in enumerate(program.slots)
                 if not ins.is_unused and ins.operands]
        if not slots:
            return None
        index = rng.choice(slots)
        instr = program.slots[index]
        spec = instr.spec
        pos = rng.randrange(len(instr.operands))
        for _ in range(self.max_tries):
            op = self.operand_pool.sample(rng, spec.slots[pos].kinds)
            if op is None:
                return None
            operands = tuple(op if i == pos else old
                             for i, old in enumerate(instr.operands))
            if spec.accepts(operands):
                return program.with_slot(index, Instruction(instr.opcode,
                                                            operands)), index
        return None

    def propose_swap(self, rng: random.Random, program: Program
                     ) -> Optional[Tuple[Program, int]]:
        """Interchange two lines of code."""
        n = len(program.slots)
        if n < 2:
            return None
        i = rng.randrange(n)
        j = rng.randrange(n - 1)
        if j >= i:
            j += 1
        return program.with_swap(i, j), min(i, j)

    def random_instruction(self, rng: random.Random) -> Optional[Instruction]:
        """A uniformly random valid instruction from the pools."""
        for _ in range(self.max_tries):
            name = rng.choice(self.opcode_pool)
            spec = OPCODES[name]
            operands = []
            ok = True
            for sl in spec.slots:
                op = self.operand_pool.sample(rng, sl.kinds)
                if op is None:
                    ok = False
                    break
                operands.append(op)
            if ok and spec.accepts(tuple(operands)):
                return Instruction(name, tuple(operands))
        return None

    def delete_probability(self, program: Program) -> float:
        """Probability that the instruction move proposes UNUSED.

        Interpolates with slot occupancy between ``unused_probability``
        (empty program) and ``1 - unused_probability`` (full program).
        Writing ``p`` for this value and ``o`` for the occupied fraction,
        an accept-everything walk deletes at rate ``o * p`` and inserts at
        rate ``(1 - o) * (1 - p)``; these balance at half occupancy, so
        the raw walk drifts toward ``slots / 2`` instead of saturating at
        full occupancy the way a fixed ``p < 0.5`` does.
        """
        n = len(program.slots)
        if n == 0:
            return self.unused_probability
        used = sum(1 for ins in program.slots if not ins.is_unused)
        lo = self.unused_probability
        return lo + (1.0 - 2.0 * lo) * (used / n)

    def propose_instruction(self, rng: random.Random, program: Program
                            ) -> Optional[Tuple[Program, int]]:
        """Replace a slot with UNUSED or with a random instruction."""
        if not program.slots:
            return None
        index = rng.randrange(len(program.slots))
        if rng.random() < self.delete_probability(program):
            return program.with_slot(index, UNUSED), index
        instr = self.random_instruction(rng)
        if instr is None:
            return None
        return program.with_slot(index, instr), index

    # -- combined proposal -------------------------------------------------

    def propose(self, rng: random.Random, program: Program
                ) -> Tuple[Optional[Program], str, Optional[int]]:
        """One move drawn uniformly from the enabled move kinds.

        Returns ``(proposal, kind, edit_span)``; the span is the lowest
        changed slot index (None for invalid proposals).
        """
        kind = rng.choice(self.move_kinds)
        proposed = getattr(self, f"propose_{kind}")(rng, program)
        if proposed is None:
            return None, kind, None
        proposal, span = proposed
        return proposal, kind, span
