"""Alternate search strategies (Section 6.4).

The paper compares the MCMC search kernel against pure random search,
greedy hill climbing, and simulated annealing, for both optimization and
validation.  Each strategy is an acceptance rule over cost deltas; the
surrounding search loop is shared.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.core.mcmc import metropolis_accept


class Strategy:
    """Acceptance policy interface."""

    name = "strategy"

    def accept(self, rng: random.Random, current_cost: float,
               proposal_cost: float, iteration: int, total: int) -> bool:
        raise NotImplementedError


@dataclass
class McmcStrategy(Strategy):
    """Metropolis-Hastings acceptance at fixed inverse temperature."""

    beta: float = 1.0
    name = "mcmc"

    def accept(self, rng, current_cost, proposal_cost, iteration, total):
        return metropolis_accept(rng, current_cost, proposal_cost, self.beta)


@dataclass
class HillClimbStrategy(Strategy):
    """Greedy: accept only non-worsening proposals."""

    name = "hill"

    def accept(self, rng, current_cost, proposal_cost, iteration, total):
        return proposal_cost <= current_cost


@dataclass
class RandomStrategy(Strategy):
    """Pure random walk: accept everything, remember the best seen."""

    name = "rand"

    def accept(self, rng, current_cost, proposal_cost, iteration, total):
        return True


@dataclass
class AnnealStrategy(Strategy):
    """Simulated annealing with a geometric cooling schedule.

    The temperature interpolates from ``t_start`` to ``t_end`` over the
    run, so early behaviour approximates random search and late behaviour
    approximates greedy hill climbing — the hybrid the paper describes.
    """

    t_start: float = 64.0
    t_end: float = 0.05
    name = "anneal"

    def temperature(self, iteration: int, total: int) -> float:
        if total <= 1:
            return self.t_end
        frac = min(1.0, iteration / (total - 1))
        return self.t_start * (self.t_end / self.t_start) ** frac

    def accept(self, rng, current_cost, proposal_cost, iteration, total):
        delta = proposal_cost - current_cost
        if delta <= 0.0:
            return True
        temp = self.temperature(iteration, total)
        if temp <= 0.0:
            return False
        exponent = -delta / temp
        return exponent > -745.0 and rng.random() < math.exp(exponent)


def make_strategy(name: str, beta: float = 1.0) -> Strategy:
    """Factory used by the Figure 10 harness."""
    if name == "mcmc":
        return McmcStrategy(beta=beta)
    if name == "hill":
        return HillClimbStrategy()
    if name == "rand":
        return RandomStrategy()
    if name == "anneal":
        return AnnealStrategy()
    raise ValueError(f"unknown strategy: {name!r}")
