"""The STOKE search driver.

Runs the Metropolis-Hastings chain of Section 2.2 (or one of the
Section 6.4 alternates) over programs: propose a transform, evaluate the
cost function, accept or reject, and remember both the best-cost sample
and the best *correct* rewrite seen.  ``k = 0`` in the cost config puts
the search in synthesis mode; any other value is optimization mode.
"""

from __future__ import annotations

import random
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Union

from repro.x86.checkpoint import checkpoint_store_stats
from repro.x86.instruction import UNUSED
from repro.x86.jit import compile_cache_stats
from repro.x86.liveness import dead_code_eliminate
from repro.x86.program import Program

from repro.core.cost import CostConfig, CostFunction
from repro.core.mcmc import rejection_threshold
from repro.core.result import SearchResult, SearchStats
from repro.core.runner import Location
from repro.core.strategies import McmcStrategy, Strategy
from repro.core.transforms import Transforms


@dataclass(frozen=True)
class SearchConfig:
    """Knobs of one search run.

    The paper runs 10M proposals across 16 threads; pure-Python defaults
    are scaled down and every harness documents its choice.
    """

    proposals: int = 20_000
    seed: int = 0
    init: str = "target"  # 'target' | 'empty'
    extra_slots: int = 0  # UNUSED padding appended to the target
    trace_points: int = 64
    early_reject: bool = True
    # Checkpointed-prefix incremental evaluation (bit-identical fast
    # path; disabled automatically for 'empty' init, where prefixes are
    # mostly UNUSED and checkpoints save nothing).
    incremental: bool = True


@dataclass
class SearchCheckpoint:
    """Exact mid-chain state: resuming reproduces the uninterrupted run.

    Everything the chain's future depends on is captured — the RNG
    state, the current/best programs, and the cumulative counters — so
    ``search(config, resume=cp)`` emits the bit-identical remainder of
    the chain (programs, costs, trace, counters; wall-clock timings and
    evaluator-cache telemetry are measured per call and excluded from
    the identity).  The config echo guards against resuming a
    checkpoint under a different search.
    """

    iteration: int
    rng_state: tuple
    current: Program
    best_program: Program
    best_cost: float
    best_correct: Optional[Program]
    best_correct_latency: Optional[int]
    proposals: int
    accepted: int
    invalid_proposals: int
    moves_proposed: dict
    moves_accepted: dict
    trace: list
    elapsed_seconds: float
    # Config echo checked by resume.
    seed: int = 0
    total_proposals: int = 0
    init: str = "target"
    extra_slots: int = 0

    def to_dict(self) -> dict:
        from repro.core import serialize as S

        return {
            "version": S.SCHEMA_VERSION,
            "kind": "search_checkpoint",
            "iteration": self.iteration,
            "rng_state": S.enc_rng_state(self.rng_state),
            "current": S.program_to_dict(self.current),
            "best_program": S.program_to_dict(self.best_program),
            "best_cost": S.enc_float(self.best_cost),
            "best_correct": S.program_to_dict(self.best_correct),
            "best_correct_latency": self.best_correct_latency,
            "proposals": self.proposals,
            "accepted": self.accepted,
            "invalid_proposals": self.invalid_proposals,
            "moves_proposed": dict(self.moves_proposed),
            "moves_accepted": dict(self.moves_accepted),
            "trace": [[i, S.enc_float(c)] for i, c in self.trace],
            "elapsed_seconds": self.elapsed_seconds,
            "seed": self.seed,
            "total_proposals": self.total_proposals,
            "init": self.init,
            "extra_slots": self.extra_slots,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SearchCheckpoint":
        from repro.core import serialize as S

        S.check_version(data, "SearchCheckpoint")
        latency = data["best_correct_latency"]
        return cls(
            iteration=int(data["iteration"]),
            rng_state=S.dec_rng_state(data["rng_state"]),
            current=S.program_from_dict(data["current"]),
            best_program=S.program_from_dict(data["best_program"]),
            best_cost=S.dec_float(data["best_cost"]),
            best_correct=S.program_from_dict(data["best_correct"]),
            best_correct_latency=None if latency is None else int(latency),
            proposals=int(data["proposals"]),
            accepted=int(data["accepted"]),
            invalid_proposals=int(data["invalid_proposals"]),
            moves_proposed=dict(data["moves_proposed"]),
            moves_accepted=dict(data["moves_accepted"]),
            trace=[(int(i), S.dec_float(c)) for i, c in data["trace"]],
            elapsed_seconds=float(data["elapsed_seconds"]),
            seed=int(data["seed"]),
            total_proposals=int(data["total_proposals"]),
            init=data["init"],
            extra_slots=int(data["extra_slots"]),
        )


class Stoke:
    """A configured stochastic optimizer for one target program."""

    # Remembered slow-check failures are bounded: a long chain can push
    # an unbounded stream of distinct near-correct candidates through the
    # slow check, and remembering every one of them forever leaked memory
    # on multi-hour searches.  LRU eviction keeps the candidates the
    # chain is actually revisiting.
    SLOW_CHECK_FAILURE_CAP = 1024
    # Memoized dead-code elimination results (chains sit on and revisit
    # the same correct programs for long stretches).
    DCE_CACHE_CAP = 4096

    def __init__(
        self,
        target: Program,
        tests: Sequence,
        live_outs: Sequence[Union[str, Location]],
        cost_config: CostConfig = CostConfig(),
        transforms: Optional[Transforms] = None,
        backend: str = "jit",
        slow_check=None,
    ):
        """``slow_check`` is the second tier of Equation 5: a callable
        ``Program -> bool`` run on candidate best rewrites after they pass
        the fast test-case check (see :mod:`repro.core.slowcheck`)."""
        self.target = target
        self.cost_fn = CostFunction(target, tests, live_outs,
                                    config=cost_config, backend=backend)
        self.transforms = transforms if transforms is not None \
            else Transforms(target)
        self.slow_check = slow_check
        self._slow_check_failures: "OrderedDict[Program, None]" = \
            OrderedDict()
        self._dce_cache: "OrderedDict[Program, Program]" = OrderedDict()
        self._dce_hits = 0
        self._dce_misses = 0
        self.live_out_names = {
            getattr(loc, "reg", "mem") for loc in self.cost_fn.runner.live_outs
        }

    def _dce(self, program: Program) -> Program:
        """Memoized :func:`dead_code_eliminate` over this search's
        live-outs (bounded LRU; chains revisit correct candidates)."""
        cached = self._dce_cache.get(program)
        if cached is not None:
            self._dce_cache.move_to_end(program)
            self._dce_hits += 1
            return cached
        self._dce_misses += 1
        cleaned = dead_code_eliminate(program, self.live_out_names)
        while len(self._dce_cache) >= self.DCE_CACHE_CAP:
            self._dce_cache.popitem(last=False)
        self._dce_cache[program] = cleaned
        return cleaned

    def _record_correct(self, program: Program,
                        best: Optional[Program],
                        best_latency: Optional[int]):
        """Fold a correct program into the best-correct pair.

        The DCE-cleaned form is preferred when the conservative cleaning
        is confirmed still correct on the test set; comparing cleaned
        latencies (cleaned <= raw always) means a rewrite whose raw form
        loses but whose cleaned form wins is not missed.
        """
        cleaned = self._dce(program)
        if best is not None and cleaned.latency >= best_latency:
            return best, best_latency
        candidate = program
        if cleaned != program and self.cost_fn.eq_fast(cleaned)[0] == 0.0:
            candidate = cleaned
        if (best is None or candidate.latency < best_latency) \
                and self._passes_slow_check(candidate):
            return candidate, candidate.latency
        return best, best_latency

    def _passes_slow_check(self, program: Program) -> bool:
        if self.slow_check is None:
            return True
        failures = self._slow_check_failures
        if program in failures:
            failures.move_to_end(program)
            return False
        if self.slow_check(program):
            return True
        while len(failures) >= self.SLOW_CHECK_FAILURE_CAP:
            failures.popitem(last=False)
        failures[program] = None
        return False

    def _initial(self, config: SearchConfig) -> Program:
        padded = self.target.padded(len(self.target.slots) + config.extra_slots)
        if config.init == "target":
            return padded
        if config.init == "empty":
            return Program([UNUSED] * len(padded.slots))
        raise ValueError(f"unknown init: {config.init!r}")

    def _step(self, rng, strategy, beta: float, config: SearchConfig,
              stats: SearchStats, iteration: int, current: Program,
              current_cost, use_incremental: bool):
        """One propose -> evaluate -> accept step of the chain.

        The proposal's edit span flows into the cost function here: an
        accepted move also re-anchors the checkpoint store on the new
        current program.  Returns ``(current, current_cost, proposal,
        result)`` with ``proposal``/``result`` None for invalid moves.
        """
        proposal, move, edit = self.transforms.propose(rng, current)
        stats.moves_proposed[move] = stats.moves_proposed.get(move, 0) + 1
        if proposal is None:
            stats.invalid_proposals += 1
            return current, current_cost, None, None
        threshold = None
        if config.early_reject and isinstance(strategy, McmcStrategy):
            threshold = rejection_threshold(current_cost.total, beta)
        result = self.cost_fn.cost(
            proposal, early_reject_above=threshold,
            edit_index=edit if use_incremental else None)
        if strategy.accept(rng, current_cost.total, result.total,
                           iteration, config.proposals):
            stats.accepted += 1
            stats.moves_accepted[move] = stats.moves_accepted.get(move, 0) + 1
            if use_incremental:
                self.cost_fn.set_current(proposal)
            current, current_cost = proposal, result
        return current, current_cost, proposal, result

    def search(self, config: SearchConfig = SearchConfig(),
               strategy: Optional[Strategy] = None,
               checkpoint_every: int = 0,
               on_checkpoint: Optional[Callable[[SearchCheckpoint], None]]
               = None,
               resume: Optional[SearchCheckpoint] = None) -> SearchResult:
        """Run one chain and return the results.

        ``checkpoint_every`` > 0 calls ``on_checkpoint`` with an exact
        :class:`SearchCheckpoint` every that-many iterations; ``resume``
        continues a chain from such a checkpoint and produces the
        bit-identical remainder of the uninterrupted run (wall-clock
        timings and evaluator-cache telemetry excepted — those are
        measured per call).
        """
        strategy = strategy if strategy is not None else McmcStrategy()
        rng = random.Random(config.seed)
        stats = SearchStats()
        beta = getattr(strategy, "beta", 1.0)
        jit_cache_before = compile_cache_stats()
        inc_before = self.cost_fn.incremental_stats()
        store_before = checkpoint_store_stats()
        dce_before = (self._dce_hits, self._dce_misses)
        ordering_before = (self.cost_fn.promote_moves,
                           self.cost_fn.promote_skips)
        use_incremental = config.incremental and config.init != "empty"

        elapsed_base = 0.0
        if resume is not None:
            echo = (resume.seed, resume.total_proposals, resume.init,
                    resume.extra_slots)
            want = (config.seed, config.proposals, config.init,
                    config.extra_slots)
            if echo != want:
                raise ValueError(
                    f"checkpoint was taken under config {echo} "
                    f"(seed, proposals, init, extra_slots); "
                    f"resuming under {want}")
            rng.setstate(resume.rng_state)
            current = resume.current
            current_cost = self.cost_fn.cost(current)
            best_program, best_cost = resume.best_program, resume.best_cost
            best_correct = resume.best_correct
            best_correct_latency = resume.best_correct_latency
            stats.proposals = resume.proposals
            stats.accepted = resume.accepted
            stats.invalid_proposals = resume.invalid_proposals
            stats.moves_proposed = dict(resume.moves_proposed)
            stats.moves_accepted = dict(resume.moves_accepted)
            trace = list(resume.trace)
            elapsed_base = resume.elapsed_seconds
            first_iteration = resume.iteration + 1
        else:
            current = self._initial(config)
            current_cost = self.cost_fn.cost(current)
            best_program, best_cost = current, current_cost.total
            best_correct = None
            best_correct_latency = None
            if current_cost.correct:
                best_correct, best_correct_latency = \
                    self._record_correct(current, None, None)
            trace = [(0, best_cost)]
            first_iteration = 1

        trace_stride = max(1, config.proposals // max(1, config.trace_points))
        started = time.perf_counter()

        for iteration in range(first_iteration, config.proposals + 1):
            stats.proposals += 1
            current, current_cost, proposal, result = self._step(
                rng, strategy, beta, config, stats, iteration,
                current, current_cost, use_incremental)
            if result is not None:
                if result.correct:
                    best_correct, best_correct_latency = \
                        self._record_correct(proposal, best_correct,
                                             best_correct_latency)
                if result.total < best_cost:
                    best_program, best_cost = proposal, result.total
            if iteration % trace_stride == 0 or iteration == config.proposals:
                trace.append((iteration, best_cost))
            if (checkpoint_every and on_checkpoint is not None
                    and iteration % checkpoint_every == 0
                    and iteration < config.proposals):
                on_checkpoint(SearchCheckpoint(
                    iteration=iteration,
                    rng_state=rng.getstate(),
                    current=current,
                    best_program=best_program,
                    best_cost=best_cost,
                    best_correct=best_correct,
                    best_correct_latency=best_correct_latency,
                    proposals=stats.proposals,
                    accepted=stats.accepted,
                    invalid_proposals=stats.invalid_proposals,
                    moves_proposed=dict(stats.moves_proposed),
                    moves_accepted=dict(stats.moves_accepted),
                    trace=list(trace),
                    elapsed_seconds=elapsed_base
                    + (time.perf_counter() - started),
                    seed=config.seed,
                    total_proposals=config.proposals,
                    init=config.init,
                    extra_slots=config.extra_slots,
                ))

        stats.elapsed_seconds = elapsed_base + (time.perf_counter() - started)
        jit_cache_after = compile_cache_stats()
        stats.jit_cache = {
            key: jit_cache_after[key] - jit_cache_before[key]
            for key in ("hits", "misses", "evictions")
        }
        stats.jit_cache["size"] = jit_cache_after["size"]
        inc_after = self.cost_fn.incremental_stats()
        store_after = checkpoint_store_stats()
        stats.incremental = {
            key: inc_after[key] - inc_before[key] for key in inc_after
        }
        stats.incremental["checkpoint_bytes"] = store_after["bytes"]
        stats.incremental["checkpoint_entries"] = store_after["entries"]
        stats.incremental["store_evictions"] = (
            store_after["evictions"] - store_before["evictions"])
        stats.dce_cache = {
            "hits": self._dce_hits - dce_before[0],
            "misses": self._dce_misses - dce_before[1],
        }
        stats.test_ordering = {
            "moves": self.cost_fn.promote_moves - ordering_before[0],
            "skips": self.cost_fn.promote_skips - ordering_before[1],
        }
        return SearchResult(
            target=self.target,
            best_program=best_program,
            best_cost=best_cost,
            best_correct=best_correct,
            best_correct_latency=best_correct_latency,
            stats=stats,
            trace=trace,
            seed=config.seed,
        )

    def optimize(self, config: SearchConfig = SearchConfig()) -> SearchResult:
        """MCMC optimization with the default strategy."""
        return self.search(config, McmcStrategy())
