"""Slow equality checks — the second tier of Equation 5.

STOKE's cost function uses a fast, unsound test-case check to discard
most incorrect rewrites and reserves a slower, stronger check for those
that pass (Equations 5 and 12).  For floating-point programs the paper's
"slow" options are uninterpreted-function verification where it applies
and MCMC validation elsewhere (Section 4); this module packages both as
hooks the search driver invokes on candidate best rewrites.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.x86.memory import Memory
from repro.x86.program import Program
from repro.x86.testcase import TestCase

SlowCheck = Callable[[Program], bool]


@dataclass
class SlowCheckStats:
    """How often the slow tier ran and what it decided."""

    invocations: int = 0
    accepted: int = 0
    rejected: int = 0


def uf_slow_check(target: Program,
                  live_outs: Sequence,
                  memory: Optional[Memory] = None,
                  concrete_gp: Optional[Dict[int, int]] = None,
                  ) -> SlowCheck:
    """A sound slow check: accept only UF-provable rewrites.

    Incomplete — rewrites that are correct but not bit-wise identical in
    UF terms are rejected, exactly as a sound-but-incomplete
    ``verif(R;T)`` of Equation 12 would be.
    """
    from repro.verify.uf import check_equivalent_uf

    def check(rewrite: Program) -> bool:
        result = check_equivalent_uf(target, rewrite, live_outs,
                                     memory=memory, concrete_gp=concrete_gp)
        return result.proved

    return check


def validation_slow_check(target: Program,
                          live_outs: Sequence,
                          ranges: Dict[str, Tuple[float, float]],
                          base_testcase_factory: Callable[[], TestCase],
                          eta: float,
                          max_proposals: int = 2_000,
                          seed: int = 0) -> SlowCheck:
    """The paper's validation as a slow check: a short MCMC input search
    must fail to push the error above eta."""
    from repro.validation.validator import ValidationConfig, Validator

    def check(rewrite: Program) -> bool:
        validator = Validator(target, rewrite, live_outs, ranges,
                              base_testcase_factory)
        result = validator.validate(ValidationConfig(
            eta=eta, max_proposals=max_proposals,
            min_samples=max(200, max_proposals // 4), seed=seed))
        return result.passed

    return check


def counting(check: SlowCheck) -> Tuple[SlowCheck, SlowCheckStats]:
    """Wrap a slow check with invocation statistics."""
    stats = SlowCheckStats()

    def wrapped(rewrite: Program) -> bool:
        stats.invocations += 1
        ok = check(rewrite)
        if ok:
            stats.accepted += 1
        else:
            stats.rejected += 1
        return ok

    return wrapped, stats
