"""Search results and cost traces."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.x86.program import Program


@dataclass
class SearchStats:
    """Aggregate statistics of one search run."""

    proposals: int = 0
    accepted: int = 0
    invalid_proposals: int = 0
    elapsed_seconds: float = 0.0
    moves_proposed: dict = field(default_factory=dict)
    moves_accepted: dict = field(default_factory=dict)
    # JIT compile-cache hit/miss/eviction deltas attributable to this
    # chain (empty when the search ran on the emulator backend).
    jit_cache: dict = field(default_factory=dict)
    # Incremental-evaluator telemetry: proposals that took the
    # checkpointed-suffix path (hits), proposals with an edit hint that
    # fell back to full evaluation (fallbacks), on-demand checkpoint
    # captures, and the global checkpoint store's byte occupancy.
    incremental: dict = field(default_factory=dict)
    # DCE memoization hit/miss deltas (Stoke._dce).
    dce_cache: dict = field(default_factory=dict)
    # Adaptive test-ordering promotions: actual reorders vs. skipped
    # stable-window promotions.
    test_ordering: dict = field(default_factory=dict)

    @property
    def acceptance_rate(self) -> float:
        evaluated = self.proposals - self.invalid_proposals
        return self.accepted / evaluated if evaluated else 0.0

    @property
    def proposals_per_second(self) -> float:
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.proposals / self.elapsed_seconds


@dataclass
class SearchResult:
    """Outcome of a STOKE search.

    ``best_correct`` is the lowest-latency rewrite whose equivalence cost
    was exactly zero (every test case within ``eta``); ``best_program`` is
    the lowest-total-cost sample seen regardless of correctness.  The
    ``trace`` records ``(iteration, best_cost_so_far)`` pairs for the
    Figure 10 convergence plots.  ``seed`` is the chain's RNG seed, so an
    individual chain of a multi-chain run can be re-run in isolation.
    """

    target: Program
    best_program: Program
    best_cost: float
    best_correct: Optional[Program]
    best_correct_latency: Optional[int]
    stats: SearchStats
    trace: List[Tuple[int, float]] = field(default_factory=list)
    seed: Optional[int] = None

    @property
    def found_correct(self) -> bool:
        return self.best_correct is not None

    @property
    def telemetry(self) -> dict:
        """JSON-friendly per-chain debugging summary."""
        return {
            "seed": self.seed,
            "proposals": self.stats.proposals,
            "proposals_per_second": self.stats.proposals_per_second,
            "acceptance_rate": self.stats.acceptance_rate,
            "invalid_proposals": self.stats.invalid_proposals,
            "elapsed_seconds": self.stats.elapsed_seconds,
            "best_cost": self.best_cost,
            "found_correct": self.found_correct,
            "best_correct_latency": self.best_correct_latency,
            "jit_compile_cache": dict(self.stats.jit_cache),
            "incremental": dict(self.stats.incremental),
            "dce_cache": dict(self.stats.dce_cache),
            "test_ordering": dict(self.stats.test_ordering),
            "best_cost_trace": list(self.trace),
        }

    def speedup(self) -> float:
        """Latency-model speedup of the best correct rewrite."""
        if self.best_correct is None:
            return 1.0
        latency = self.best_correct.latency
        return float("inf") if latency == 0 else self.target.latency / latency

    def to_dict(self) -> dict:
        """Versioned JSON-safe document (see :mod:`repro.core.serialize`)."""
        from repro.core.serialize import search_result_to_dict

        return search_result_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "SearchResult":
        from repro.core.serialize import search_result_from_dict

        return search_result_from_dict(data)
