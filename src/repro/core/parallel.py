"""Process-parallel multi-chain search: the paper's 16-thread runs.

The paper spreads every search over 16 threads (Section 6) and relies on
that restart parallelism for its wall-clock numbers.  CPython's GIL makes
thread parallelism useless for a pure-Python interpreter loop, so this
module fans independent seeded chains out over a ``multiprocessing``
worker pool instead.

Design constraints, in order:

1. **Determinism.**  Chain *i* always runs with seed ``config.seed + i``
   and is a pure function of its :class:`StokeSpec` and
   :class:`~repro.core.search.SearchConfig`; results are collected into
   seed order before aggregation.  A fixed seed list therefore produces
   bit-identical aggregate results (best cost, best rewrite, per-chain
   stats — everything except wall-clock timings) for any worker count,
   including the in-process ``jobs=1`` path.
2. **Workers rebuild, never unpickle, the optimizer.**  Each worker
   process builds its own ``Stoke``/``CostFunction`` once, from a small
   picklable :class:`StokeSpec` (or a picklable zero-argument factory for
   exotic setups), then serves many chains from it.  Only specs, configs,
   and :class:`~repro.core.result.SearchResult` values cross the process
   boundary.
3. **Streaming.**  Results are streamed back as chains finish
   (``imap_unordered``); pass ``on_result`` to observe completions live.
   Every ``SearchResult`` carries its seed and full stats, so
   ``result.telemetry`` keeps parallel runs debuggable per chain.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.x86.program import Program
from repro.x86.testcase import TestCase

from repro.core.cost import CostConfig
from repro.core.result import SearchResult
from repro.core.runner import Location
from repro.core.search import SearchConfig, Stoke
from repro.core.strategies import Strategy
from repro.core.transforms import Transforms


@dataclass(frozen=True)
class StokeSpec:
    """Picklable recipe for constructing a :class:`Stoke` in a worker.

    Covers everything a plain ``Stoke`` needs; setups with a
    ``slow_check`` (closures do not pickle) must pass a module-level
    zero-argument factory instead.
    """

    target: Program
    tests: Tuple[TestCase, ...]
    live_outs: Tuple[Union[str, Location], ...]
    cost_config: CostConfig = CostConfig()
    backend: str = "jit"
    transforms: Optional[Transforms] = None

    @classmethod
    def from_stoke(cls, stoke: Stoke) -> "StokeSpec":
        """Derive the spec that reconstructs an existing optimizer."""
        if stoke.slow_check is not None:
            raise ValueError(
                "cannot derive a picklable spec from a Stoke with a "
                "slow_check; pass a StokeSpec or zero-argument factory "
                "explicitly (see run_restarts(spec=...))")
        return cls(
            target=stoke.target,
            tests=tuple(stoke.cost_fn.tests),
            live_outs=tuple(stoke.cost_fn.runner.live_outs),
            cost_config=stoke.cost_fn.config,
            backend=stoke.cost_fn.runner.backend,
            transforms=stoke.transforms,
        )

    def build(self) -> Stoke:
        return Stoke(
            self.target,
            list(self.tests),
            list(self.live_outs),
            cost_config=self.cost_config,
            transforms=self.transforms,
            backend=self.backend,
        )


SpecLike = Union[StokeSpec, Callable[[], Stoke]]


def build_stoke(spec: SpecLike) -> Stoke:
    """Build an optimizer from a spec or factory."""
    return spec.build() if isinstance(spec, StokeSpec) else spec()


def default_jobs(chains: Optional[int] = None) -> int:
    """CPU-count-aware worker count, capped at the number of chains."""
    cores = os.cpu_count() or 1
    if chains is None:
        return max(1, cores)
    return max(1, min(cores, chains))


def resolve_jobs(jobs: Optional[int], chains: int) -> int:
    """Normalize a user-facing ``jobs`` value (``None``/``0`` = auto)."""
    if jobs is None or jobs == 0:
        return default_jobs(chains)
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return min(jobs, chains) if chains else jobs


def chain_configs(config: SearchConfig, chains: int) -> List[SearchConfig]:
    """Derived per-chain configs: seeds ``config.seed, seed + 1, ...``."""
    if chains < 1:
        raise ValueError("need at least one chain")
    return [replace(config, seed=config.seed + i) for i in range(chains)]


def _preferred_start_method() -> str:
    """``fork`` where available: workers start in milliseconds and a
    forked child sees the parent's hash seed, so even hash-order-dependent
    code behaves identically in every worker."""
    methods = mp.get_all_start_methods()
    return "fork" if "fork" in methods else methods[0]


# Per-worker-process optimizer, built once by the pool initializer and
# reused for every chain the worker runs.
_WORKER_STOKE: Optional[Stoke] = None


def _init_worker(spec: SpecLike) -> None:
    global _WORKER_STOKE
    _WORKER_STOKE = build_stoke(spec)


def _run_chain(task: Tuple[int, SearchConfig, Optional[Strategy]]
               ) -> Tuple[int, SearchResult]:
    index, config, strategy = task
    assert _WORKER_STOKE is not None, "worker pool not initialized"
    return index, _WORKER_STOKE.search(config, strategy=strategy)


def run_chains(
    spec: SpecLike,
    configs: Sequence[SearchConfig],
    jobs: Optional[int] = None,
    strategy: Optional[Strategy] = None,
    on_result: Optional[Callable[[SearchResult], None]] = None,
    start_method: Optional[str] = None,
) -> List[SearchResult]:
    """Run one search per config, fanned out over ``jobs`` processes.

    Returns results in config order regardless of completion order.
    ``jobs=None``/``0`` picks :func:`default_jobs`; ``jobs=1`` runs
    in-process with a single shared optimizer (no pool, no pickling).
    ``on_result`` fires once per chain as it completes — in completion
    order for ``jobs > 1``, which is the streaming path.
    """
    configs = list(configs)
    if not configs:
        return []
    jobs = resolve_jobs(jobs, len(configs))

    if jobs == 1 or len(configs) == 1:
        stoke = build_stoke(spec)
        results = []
        for config in configs:
            result = stoke.search(config, strategy=strategy)
            if on_result is not None:
                on_result(result)
            results.append(result)
        return results

    ctx = mp.get_context(start_method or _preferred_start_method())
    tasks = [(i, config, strategy) for i, config in enumerate(configs)]
    results: List[Optional[SearchResult]] = [None] * len(configs)
    with ctx.Pool(processes=jobs, initializer=_init_worker,
                  initargs=(spec,)) as pool:
        for index, result in pool.imap_unordered(_run_chain, tasks):
            results[index] = result
            if on_result is not None:
                on_result(result)
    assert all(r is not None for r in results)
    return results  # type: ignore[return-value]


# ---------------------------------------------------------------------------
# Generic persistent task pool (used by the branch-and-bound verifier)

# Per-worker-process context for TaskPool jobs, built once by the pool
# initializer from a picklable (factory, spec, task_fn) triple.
_TASK_CONTEXT = None
_TASK_FN: Optional[Callable] = None


def _init_task_worker(context_factory: Callable, spec, task_fn: Callable
                      ) -> None:
    global _TASK_CONTEXT, _TASK_FN
    _TASK_CONTEXT = context_factory(spec)
    _TASK_FN = task_fn


def _run_task(task: Tuple[int, object]) -> Tuple[int, object]:
    index, item = task
    assert _TASK_FN is not None, "task pool worker not initialized"
    return index, _TASK_FN(_TASK_CONTEXT, item)


class TaskPool:
    """Persistent worker pool over a once-per-worker context.

    The same worker discipline as :func:`run_chains`, factored out for
    reuse: each worker builds its context exactly once from a small
    picklable ``spec`` via the module-level ``context_factory``, then
    serves many ``task_fn(context, item)`` calls from it.  ``jobs=1``
    (or a single-item map) runs inline — no subprocesses, no pickling —
    so callers get a deterministic serial path for free.

    ``context_factory`` and ``task_fn`` must be module-level functions
    (pickled by reference into the workers).
    """

    def __init__(self, context_factory: Callable, spec,
                 task_fn: Callable, jobs: Optional[int] = None,
                 start_method: Optional[str] = None):
        if jobs is not None and jobs < 0:
            raise ValueError(f"jobs must be >= 0, got {jobs}")
        self.jobs = default_jobs() if not jobs else jobs
        self._task_fn = task_fn
        self._pool = None
        self._context = None
        if self.jobs == 1:
            self._context = context_factory(spec)
        else:
            ctx = mp.get_context(start_method or _preferred_start_method())
            self._pool = ctx.Pool(
                processes=self.jobs, initializer=_init_task_worker,
                initargs=(context_factory, spec, task_fn))

    def map(self, items: Sequence) -> List:
        """Apply the task function to every item; results in item order."""
        items = list(items)
        if not items:
            return []
        if self._pool is None:
            return [self._task_fn(self._context, item) for item in items]
        tasks = list(enumerate(items))
        results: List = [None] * len(items)
        for index, result in self._pool.imap_unordered(_run_task, tasks):
            results[index] = result
        return results

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "TaskPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def run_seeded_chains(
    spec: SpecLike,
    config: SearchConfig,
    chains: int,
    jobs: Optional[int] = None,
    strategy: Optional[Strategy] = None,
    on_result: Optional[Callable[[SearchResult], None]] = None,
) -> List[SearchResult]:
    """``chains`` independent searches with seeds derived from ``config``."""
    return run_chains(spec, chain_configs(config, chains), jobs=jobs,
                      strategy=strategy, on_result=on_result)
