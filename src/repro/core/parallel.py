"""Process-parallel multi-chain search: the paper's 16-thread runs.

The paper spreads every search over 16 threads (Section 6) and relies on
that restart parallelism for its wall-clock numbers.  CPython's GIL makes
thread parallelism useless for a pure-Python interpreter loop, so this
module fans independent seeded chains out over a ``multiprocessing``
worker pool instead.

Design constraints, in order:

1. **Determinism.**  Chain *i* always runs with seed ``config.seed + i``
   and is a pure function of its :class:`StokeSpec` and
   :class:`~repro.core.search.SearchConfig`; results are collected into
   seed order before aggregation.  A fixed seed list therefore produces
   bit-identical aggregate results (best cost, best rewrite, per-chain
   stats — everything except wall-clock timings) for any worker count,
   including the in-process ``jobs=1`` path.
2. **Workers rebuild, never unpickle, the optimizer.**  Each worker
   process builds its own ``Stoke``/``CostFunction`` once, from a small
   picklable :class:`StokeSpec` (or a picklable zero-argument factory for
   exotic setups), then serves many chains from it.  Only specs, configs,
   and :class:`~repro.core.result.SearchResult` values cross the process
   boundary.
3. **Streaming.**  Results are streamed back as chains finish
   (``imap_unordered``); pass ``on_result`` to observe completions live.
   Every ``SearchResult`` carries its seed and full stats, so
   ``result.telemetry`` keeps parallel runs debuggable per chain.
"""

from __future__ import annotations

import multiprocessing as mp
import multiprocessing.connection
import os
import time
from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.x86.program import Program
from repro.x86.testcase import TestCase

from repro.core.cost import CostConfig
from repro.core.result import SearchResult
from repro.core.runner import Location
from repro.core.search import SearchConfig, Stoke
from repro.core.strategies import Strategy
from repro.core.transforms import Transforms


@dataclass(frozen=True)
class StokeSpec:
    """Picklable recipe for constructing a :class:`Stoke` in a worker.

    Covers everything a plain ``Stoke`` needs; setups with a
    ``slow_check`` (closures do not pickle) must pass a module-level
    zero-argument factory instead.
    """

    target: Program
    tests: Tuple[TestCase, ...]
    live_outs: Tuple[Union[str, Location], ...]
    cost_config: CostConfig = CostConfig()
    backend: str = "jit"
    transforms: Optional[Transforms] = None

    @classmethod
    def from_stoke(cls, stoke: Stoke) -> "StokeSpec":
        """Derive the spec that reconstructs an existing optimizer."""
        if stoke.slow_check is not None:
            raise ValueError(
                "cannot derive a picklable spec from a Stoke with a "
                "slow_check; pass a StokeSpec or zero-argument factory "
                "explicitly (see run_restarts(spec=...))")
        return cls(
            target=stoke.target,
            tests=tuple(stoke.cost_fn.tests),
            live_outs=tuple(stoke.cost_fn.runner.live_outs),
            cost_config=stoke.cost_fn.config,
            backend=stoke.cost_fn.runner.backend,
            transforms=stoke.transforms,
        )

    def build(self) -> Stoke:
        return Stoke(
            self.target,
            list(self.tests),
            list(self.live_outs),
            cost_config=self.cost_config,
            transforms=self.transforms,
            backend=self.backend,
        )


SpecLike = Union[StokeSpec, Callable[[], Stoke]]


def build_stoke(spec: SpecLike) -> Stoke:
    """Build an optimizer from a spec or factory."""
    return spec.build() if isinstance(spec, StokeSpec) else spec()


def default_jobs(chains: Optional[int] = None) -> int:
    """CPU-count-aware worker count, capped at the number of chains."""
    cores = os.cpu_count() or 1
    if chains is None:
        return max(1, cores)
    return max(1, min(cores, chains))


def resolve_jobs(jobs: Optional[int], chains: int) -> int:
    """Normalize a user-facing ``jobs`` value (``None``/``0`` = auto)."""
    if jobs is None or jobs == 0:
        return default_jobs(chains)
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return min(jobs, chains) if chains else jobs


def chain_configs(config: SearchConfig, chains: int) -> List[SearchConfig]:
    """Derived per-chain configs: seeds ``config.seed, seed + 1, ...``."""
    if chains < 1:
        raise ValueError("need at least one chain")
    return [replace(config, seed=config.seed + i) for i in range(chains)]


def _preferred_start_method() -> str:
    """``fork`` where available: workers start in milliseconds and a
    forked child sees the parent's hash seed, so even hash-order-dependent
    code behaves identically in every worker."""
    methods = mp.get_all_start_methods()
    return "fork" if "fork" in methods else methods[0]


# Per-worker-process optimizer, built once by the pool initializer and
# reused for every chain the worker runs.
_WORKER_STOKE: Optional[Stoke] = None


def _init_worker(spec: SpecLike) -> None:
    global _WORKER_STOKE
    _WORKER_STOKE = build_stoke(spec)


def _run_chain(task: Tuple[int, SearchConfig, Optional[Strategy]]
               ) -> Tuple[int, SearchResult]:
    index, config, strategy = task
    assert _WORKER_STOKE is not None, "worker pool not initialized"
    return index, _WORKER_STOKE.search(config, strategy=strategy)


def run_chains(
    spec: SpecLike,
    configs: Sequence[SearchConfig],
    jobs: Optional[int] = None,
    strategy: Optional[Strategy] = None,
    on_result: Optional[Callable[[SearchResult], None]] = None,
    start_method: Optional[str] = None,
) -> List[SearchResult]:
    """Run one search per config, fanned out over ``jobs`` processes.

    Returns results in config order regardless of completion order.
    ``jobs=None``/``0`` picks :func:`default_jobs`; ``jobs=1`` runs
    in-process with a single shared optimizer (no pool, no pickling).
    ``on_result`` fires once per chain as it completes — in completion
    order for ``jobs > 1``, which is the streaming path.
    """
    configs = list(configs)
    if not configs:
        return []
    jobs = resolve_jobs(jobs, len(configs))

    if jobs == 1 or len(configs) == 1:
        stoke = build_stoke(spec)
        results = []
        for config in configs:
            result = stoke.search(config, strategy=strategy)
            if on_result is not None:
                on_result(result)
            results.append(result)
        return results

    ctx = mp.get_context(start_method or _preferred_start_method())
    tasks = [(i, config, strategy) for i, config in enumerate(configs)]
    results: List[Optional[SearchResult]] = [None] * len(configs)
    with ctx.Pool(processes=jobs, initializer=_init_worker,
                  initargs=(spec,)) as pool:
        for index, result in pool.imap_unordered(_run_chain, tasks):
            results[index] = result
            if on_result is not None:
                on_result(result)
    assert all(r is not None for r in results)
    return results  # type: ignore[return-value]


# ---------------------------------------------------------------------------
# Generic persistent task pool (used by the branch-and-bound verifier and
# the campaign scheduler)


@dataclass
class TaskOutcome:
    """One task's fate: a value, an error, a timeout, or a worker crash."""

    key: object
    ok: bool
    value: object = None
    error: Optional[str] = None
    kind: str = "ok"  # 'ok' | 'error' | 'timeout' | 'crash'
    elapsed: float = 0.0


class TaskError(RuntimeError):
    """A task function raised in a worker."""


class TaskTimeout(TaskError):
    """A task exceeded its per-task deadline and its worker was killed."""


class TaskCrash(TaskError):
    """A worker process died mid-task (killed, segfaulted, OOMed)."""


def _pool_worker(context_factory: Callable, spec, task_fn: Callable,
                 conn, parent_pid: int) -> None:
    """Worker loop: build the context once, then serve tasks off a pipe.

    SIGINT is ignored so a Ctrl-C in the parent's terminal (delivered to
    the whole process group) never kills a worker mid-protocol; the
    parent owns shutdown and terminates workers explicitly.  The loop
    also watches its parent pid: if the parent is SIGKILLed the orphaned
    worker exits on its own instead of lingering.
    """
    import signal as _signal

    _signal.signal(_signal.SIGINT, _signal.SIG_IGN)
    try:
        context = context_factory(spec)
    except BaseException as exc:  # noqa: BLE001 — report, then die
        try:
            conn.send(("init_error", f"{type(exc).__name__}: {exc}"))
        except (BrokenPipeError, OSError):
            pass
        return
    while True:
        try:
            if not conn.poll(0.2):
                if os.getppid() != parent_pid:
                    return  # orphaned
                continue
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message is None:
            return
        key, item = message
        try:
            value = task_fn(context, item)
            reply = ("done", (key, value))
        except BaseException as exc:  # noqa: BLE001 — task errors travel back
            reply = ("fail", (key, f"{type(exc).__name__}: {exc}"))
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            return


class _Worker:
    __slots__ = ("proc", "conn", "key", "item", "started", "deadline")

    def __init__(self, proc, conn):
        self.proc = proc
        self.conn = conn
        self.key = None  # key of the task being run, None when idle
        self.item = None
        self.started = 0.0
        self.deadline: Optional[float] = None

    @property
    def busy(self) -> bool:
        return self.key is not None


class TaskPool:
    """Persistent worker pool over a once-per-worker context.

    Each worker builds its context exactly once from a small picklable
    ``spec`` via the module-level ``context_factory``, then serves many
    ``task_fn(context, item)`` calls from it.  ``jobs=1`` runs inline —
    no subprocesses, no pickling — so callers get a deterministic serial
    path for free.  ``context_factory`` and ``task_fn`` must be
    module-level functions (pickled by reference into the workers).

    Unlike a ``multiprocessing.Pool``, the pool survives misbehaving
    tasks: a worker that dies mid-task (kill -9, segfault, OOM) is
    detected through its process sentinel, its task is reported as a
    ``'crash'`` outcome, and a replacement worker is spawned; a task
    that exceeds its deadline (``task_timeout`` or the per-submit
    override) has its worker killed and is reported as ``'timeout'``.
    ``KeyboardInterrupt`` during :meth:`map`/:meth:`run` terminates all
    workers before re-raising, so no subprocess outlives the batch.

    Two surfaces:

    * :meth:`map` / :meth:`run` — synchronous batches (the verifier).
    * :meth:`submit` / :meth:`poll` — streaming dispatch with completion
      draining (the campaign scheduler), where tasks are fed as their
      dependencies resolve rather than as one pre-known batch.
    """

    # A fresh worker must survive at least one task this many times in a
    # row before the pool declares the setup broken (guards against a
    # context_factory that dies on every spawn => infinite respawn).
    MAX_CONSECUTIVE_SPAWN_DEATHS = 3

    def __init__(self, context_factory: Callable, spec,
                 task_fn: Callable, jobs: Optional[int] = None,
                 start_method: Optional[str] = None,
                 task_timeout: Optional[float] = None):
        if jobs is not None and jobs < 0:
            raise ValueError(f"jobs must be >= 0, got {jobs}")
        if task_timeout is not None and task_timeout <= 0:
            raise ValueError(f"task_timeout must be > 0, got {task_timeout}")
        self.jobs = default_jobs() if not jobs else jobs
        self.task_timeout = task_timeout
        self._factory = context_factory
        self._spec = spec
        self._task_fn = task_fn
        self._context = None
        self._workers: List[_Worker] = []
        self._pending: List[Tuple[object, object, Optional[float]]] = []
        self._completed: List[TaskOutcome] = []
        self._in_flight = 0
        self._spawn_deaths = 0
        self._closed = False
        if self.jobs == 1:
            self._ctx = None
            self._context = context_factory(spec)
        else:
            self._ctx = mp.get_context(start_method
                                       or _preferred_start_method())
            for _ in range(self.jobs):
                self._workers.append(self._spawn())

    # -- compatibility shim: truthy when subprocess-backed ---------------
    @property
    def inline(self) -> bool:
        """True when tasks run in-process (``jobs=1``)."""
        return self._ctx is None

    def set_context(self, context) -> None:
        """Replace the inline context (callers with a prebuilt one)."""
        if not self.inline:
            raise ValueError("set_context only applies to inline pools")
        self._context = context

    # -- worker lifecycle -------------------------------------------------

    def _spawn(self) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_pool_worker,
            args=(self._factory, self._spec, self._task_fn, child_conn,
                  os.getpid()),
            daemon=True)
        proc.start()
        child_conn.close()
        return _Worker(proc, parent_conn)

    def _retire(self, worker: _Worker, outcome_kind: Optional[str],
                error: Optional[str]) -> None:
        """Bury a dead/killed worker, reporting its task if it had one."""
        if worker.busy:
            self._finish(TaskOutcome(
                key=worker.key, ok=False, error=error, kind=outcome_kind,
                elapsed=time.monotonic() - worker.started))
            self._spawn_deaths = 0  # progress: death was task-attributed
        else:
            self._spawn_deaths += 1
        try:
            worker.conn.close()
        except OSError:
            pass
        if worker.proc.is_alive():
            worker.proc.kill()
        worker.proc.join()
        self._workers.remove(worker)
        if self._spawn_deaths > self.MAX_CONSECUTIVE_SPAWN_DEATHS:
            raise RuntimeError(
                "task pool workers keep dying before serving any task "
                f"(last error: {error})")
        self._workers.append(self._spawn())

    def _finish(self, outcome: TaskOutcome) -> None:
        self._completed.append(outcome)
        self._in_flight -= 1

    # -- dispatch/collect -------------------------------------------------

    def _dispatch(self) -> None:
        if not self._pending:
            return
        for worker in self._workers:
            if not self._pending:
                break
            if worker.busy or not worker.proc.is_alive():
                continue
            key, item, timeout = self._pending.pop(0)
            try:
                worker.conn.send((key, item))
            except (BrokenPipeError, OSError):
                self._pending.insert(0, (key, item, timeout))
                self._retire(worker, None, "worker pipe closed")
                continue
            worker.key, worker.item = key, item
            worker.started = time.monotonic()
            worker.deadline = None if timeout is None \
                else worker.started + timeout

    def _receive(self, worker: _Worker) -> None:
        try:
            tag, payload = worker.conn.recv()
        except (EOFError, OSError):
            self._retire(worker, "crash",
                         "worker died mid-task (pipe EOF)")
            return
        if tag == "init_error":
            self._retire(worker, "crash", f"worker init failed: {payload}")
            return
        key, value = payload
        elapsed = time.monotonic() - worker.started
        worker.key = worker.item = worker.deadline = None
        if tag == "done":
            self._finish(TaskOutcome(key=key, ok=True, value=value,
                                     elapsed=elapsed))
        else:  # 'fail': value is the formatted exception
            self._finish(TaskOutcome(key=key, ok=False, value=None,
                                     error=value, kind="error",
                                     elapsed=elapsed))

    def _kill_deadline_breakers(self, now: float) -> None:
        for worker in list(self._workers):
            if not worker.busy or worker.deadline is None \
                    or now < worker.deadline:
                continue
            # Consume a result that raced the deadline, if any.
            if worker.conn.poll(0):
                self._receive(worker)
                continue
            worker.proc.kill()
            worker.proc.join()
            self._retire(worker, "timeout",
                         f"task exceeded {worker.deadline - worker.started:.3g}s "
                         f"deadline")

    def _pump(self, wait: float) -> None:
        """One event-loop turn: dispatch, wait for events, collect."""
        self._dispatch()
        now = time.monotonic()
        deadlines = [w.deadline for w in self._workers
                     if w.busy and w.deadline is not None]
        if deadlines:
            wait = max(0.0, min(wait, min(deadlines) - now))
        watch = []
        for worker in self._workers:
            watch.append(worker.conn)
            watch.append(worker.proc.sentinel)
        ready = mp.connection.wait(watch, timeout=wait) if watch else []
        ready = set(ready)
        for worker in list(self._workers):
            if worker not in self._workers:
                continue  # retired by an earlier iteration
            if worker.conn in ready:
                self._receive(worker)
            elif worker.proc.sentinel in ready:
                self._retire(worker, "crash",
                             f"worker died mid-task "
                             f"(exitcode {worker.proc.exitcode})")
        self._kill_deadline_breakers(time.monotonic())
        self._dispatch()

    # -- public: streaming ------------------------------------------------

    def submit(self, key, item, timeout: Optional[float] = None) -> None:
        """Queue one task; its outcome arrives via :meth:`poll` under
        ``key``.  ``timeout`` overrides the pool's ``task_timeout``
        (inline pools cannot enforce deadlines and run to completion).
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        self._in_flight += 1
        if self.inline:
            started = time.monotonic()
            try:
                value = self._task_fn(self._context, item)
                self._finish(TaskOutcome(
                    key=key, ok=True, value=value,
                    elapsed=time.monotonic() - started))
            except Exception as exc:  # noqa: BLE001
                self._finish(TaskOutcome(
                    key=key, ok=False, error=f"{type(exc).__name__}: {exc}",
                    kind="error", elapsed=time.monotonic() - started))
            return
        self._pending.append(
            (key, item, self.task_timeout if timeout is None else timeout))
        self._dispatch()

    def poll(self, timeout: float = 0.0) -> List[TaskOutcome]:
        """Drain completed outcomes, waiting up to ``timeout`` for the
        first one; returns immediately once anything has completed."""
        if not self.inline:
            deadline = time.monotonic() + timeout
            while not self._completed:
                remaining = deadline - time.monotonic()
                if self._in_flight == 0 or remaining < 0:
                    break
                self._pump(min(0.2, max(0.0, remaining)))
        drained = self._completed
        self._completed = []
        return drained

    @property
    def in_flight(self) -> int:
        """Tasks submitted whose outcomes have not been drained."""
        return self._in_flight

    @property
    def idle_workers(self) -> int:
        """Workers alive and not running a task (0 for inline pools).

        Streaming callers use this to size speculative dispatch: keep
        submitting while capacity is free, stop once saturated.
        """
        if self.inline:
            return 0
        return sum(1 for w in self._workers
                   if not w.busy and w.proc.is_alive())

    # -- public: batches --------------------------------------------------

    def run(self, items: Sequence,
            timeout: Optional[float] = None) -> List[TaskOutcome]:
        """Run a batch; outcomes in item order, errors as values."""
        items = list(items)
        if self._in_flight:
            raise RuntimeError("run() needs an idle pool; drain poll() first")
        try:
            for index, item in enumerate(items):
                self.submit(index, item, timeout=timeout)
            collected: List[TaskOutcome] = []
            while len(collected) < len(items):
                drained = self.poll(timeout=60.0)
                if not drained and self._in_flight == 0:
                    raise RuntimeError(
                        f"pool lost track of {len(items) - len(collected)} "
                        "task(s)")
                collected.extend(drained)
        except KeyboardInterrupt:
            self.close()
            raise
        collected.sort(key=lambda o: o.key)
        return collected

    def map(self, items: Sequence) -> List:
        """Apply the task function to every item; results in item order.

        Raises :class:`TaskError` / :class:`TaskTimeout` /
        :class:`TaskCrash` on the first failed task (after the batch
        drains), matching the fail-fast contract of the original
        ``multiprocessing.Pool`` implementation.
        """
        items = list(items)
        if not items:
            return []
        if self.inline:
            return [self._task_fn(self._context, item) for item in items]
        outcomes = self.run(items, timeout=self.task_timeout)
        for outcome in outcomes:
            if not outcome.ok:
                exc_type = {"timeout": TaskTimeout,
                            "crash": TaskCrash}.get(outcome.kind, TaskError)
                raise exc_type(f"task {outcome.key}: {outcome.error}")
        return [outcome.value for outcome in outcomes]

    def close(self) -> None:
        self._closed = True
        for worker in self._workers:
            try:
                worker.conn.close()
            except OSError:
                pass
            if worker.proc.is_alive():
                worker.proc.kill()
        for worker in self._workers:
            worker.proc.join()
        self._workers = []
        self._pending = []

    def __enter__(self) -> "TaskPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def run_seeded_chains(
    spec: SpecLike,
    config: SearchConfig,
    chains: int,
    jobs: Optional[int] = None,
    strategy: Optional[Strategy] = None,
    on_result: Optional[Callable[[SearchResult], None]] = None,
) -> List[SearchResult]:
    """``chains`` independent searches with seeds derived from ``config``."""
    return run_chains(spec, chain_configs(config, chains), jobs=jobs,
                      strategy=strategy, on_result=on_result)
