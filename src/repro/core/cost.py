"""The floating-point cost function (Equations 9-11 and Section 5.2).

``eq_fast`` measures, per test case, the ULP' distance between each
live-out location of the rewrite and of the target, discards anything at
or below the minimum acceptable rounding error ``eta``, adds a penalty for
divergent signal behaviour, and reduces over the test set with ``⊕``
(``max`` by default, per Section 5.2, so correctness cost cannot overflow
no matter how many test cases are used).

Two knobs the paper leaves implicit are exposed explicitly (and covered by
ablation benchmarks):

* ``compress`` — ULP excesses span ~19 orders of magnitude; with raw
  values a unit annealing constant reduces MCMC to hill climbing.  The
  default ``"log2"`` compresses each location's excess to its bit length,
  keeping acceptance probabilities meaningful across the whole range.
* ``reduction`` — ``"max"`` (the paper's choice) or ``"sum"`` (original
  STOKE) over test cases.
"""

from __future__ import annotations

import math
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, Union

from repro.fp.ieee754 import DOUBLE, SINGLE
from repro.fp.ulp import ulp_distance_bits
from repro.x86.checkpoint import (Checkpoint, PrefixKey, checkpoint_stride,
                                  flags_live_in, program_writes,
                                  union_writes)
from repro.x86.jit import compile_program
from repro.x86.locations import Loc, MemLoc
from repro.x86.program import Program
from repro.x86.signals import SignalError
from repro.x86.stepper import bound_steps
from repro.x86.testcase import TestCase

from repro.core.perf import LatencyPerf
from repro.core.runner import Location, Runner

# Penalty used when the rewrite signals and the target does not; chosen to
# dominate any achievable per-location error cost.
_SIG_DEFAULT = 256.0


@dataclass(frozen=True)
class CostConfig:
    """Weights and shape of the cost function.

    Attributes:
        eta: Minimum unacceptable ULP rounding error (Equation 10); errors
            at or below ``eta`` are free.
        k: Weight of the performance term (Equation 2); ``k = 0`` is
            synthesis mode.
        wr / wm / ws: Register / memory / signal error weights (Eq 9).
        reduction: ``"max"`` (Section 5.2) or ``"sum"`` over test cases.
        compress: ``"log2"`` or ``"none"`` compression of ULP excesses.
        perf_scale: Exchange rate passed to :class:`LatencyPerf`.
    """

    eta: float = 0.0
    k: float = 1.0
    wr: float = 1.0
    wm: float = 1.0
    ws: float = _SIG_DEFAULT
    reduction: str = "max"
    compress: str = "log2"
    perf_scale: float = 20.0

    def __post_init__(self) -> None:
        if self.reduction not in ("max", "sum"):
            raise ValueError(f"bad reduction: {self.reduction!r}")
        if self.compress not in ("log2", "none"):
            raise ValueError(f"bad compress: {self.compress!r}")
        if self.eta < 0:
            raise ValueError("eta must be non-negative")


@dataclass(frozen=True)
class CostResult:
    """Breakdown of one cost evaluation."""

    total: float
    eq: float
    perf: float
    signalled: bool

    @property
    def correct(self) -> bool:
        """True when the rewrite met the eta bound on every test case."""
        return self.eq == 0.0


def location_ulp_distance(loc: Location, bits_a: int, bits_b: int) -> float:
    """ULP' distance for FP locations; Hamming distance for fixed-point.

    Using Hamming distance for integer locations matches the original
    STOKE cost, and keeps mixed fixed/floating kernels well-behaved.
    """
    if loc.ftype == "f64":
        return float(ulp_distance_bits(bits_a, bits_b, DOUBLE))
    if loc.ftype == "f32":
        return float(ulp_distance_bits(bits_a, bits_b, SINGLE))
    return float(bin(bits_a ^ bits_b).count("1"))


class _IncPlan:
    """Per-evaluation context of one incremental cost evaluation.

    Built once per proposal from its edit span; holds the resume
    boundary, the content-addressed prefix key, the fallback capture
    bases, and backend-bound segment/suffix executors.
    """

    __slots__ = ("slots", "boundary", "prefix_key", "bases", "writes_at_b",
                 "promise", "run_suffix", "run_segment")


class CostFunction:
    """``c(R; T) = eq(R; T) + k * perf(R; T)`` bound to a target."""

    def __init__(
        self,
        target: Program,
        tests: Sequence[TestCase],
        live_outs: Sequence[Union[str, Location]],
        config: CostConfig = CostConfig(),
        backend: str = "jit",
        cache_size: int = 8192,
    ):
        if not tests:
            raise ValueError("at least one test case is required")
        if cache_size < 1:
            raise ValueError("cache_size must be positive")
        self.config = config
        self.runner = Runner(live_outs, backend=backend)
        self.target = target
        # Test order is adaptive: when a proposal is early-rejected, the
        # test that rejected it moves to the front (STOKE's fast-out
        # heuristic), so the next doomed proposal usually dies on its
        # first execution.  tests / target_outputs / _expected are
        # permuted in lockstep; every cost value is order-independent.
        self.tests = list(tests)
        self.perf = LatencyPerf(target.latency, scale=config.perf_scale)
        # The target must run cleanly on every test case.
        self.target_outputs = self.runner.outputs_for(target, self.tests)
        # Hot-path views of the expected outputs: one bits tuple per test
        # in runner.live_outs order, plus per-location weights, so the
        # inner loop never touches a dict.
        locs = self.runner.live_outs
        self._expected = [tuple(outs[loc] for loc in locs)
                          for outs in self.target_outputs]
        self._weights = tuple(
            config.wm if isinstance(loc, MemLoc) else config.wr
            for loc in locs)
        # Full (non-early-terminated) evaluations are memoized in a
        # bounded LRU: MCMC proposals frequently revisit recently seen
        # programs, and evicting one-at-a-time avoids the cold-cache
        # stall that wiping the whole memo mid-search used to cause.
        self._cache: "OrderedDict[Program, CostResult]" = OrderedDict()
        self._cache_max = cache_size
        self.cache_hits = 0
        self.cache_misses = 0
        # Incremental (checkpointed-prefix) evaluation bookkeeping.  A
        # duplicated test object would alias one pooled state between
        # its two slots on the incremental path, so dup test sets always
        # take the full batch path.
        self._has_dup_tests = len({id(t) for t in self.tests}) != \
            len(self.tests)
        self.incremental_hits = 0
        self.incremental_fallbacks = 0
        self.incremental_captures = 0
        # Adaptive-ordering stability window: identities of recently
        # promoted tests.  A promotion of a test already in this window
        # that sits within the window of the front is skipped — the
        # order is effectively stable and the list surgery is wasted.
        self._recent_promotes: deque = deque(maxlen=self._PROMOTE_WINDOW)
        self.promote_moves = 0
        self.promote_skips = 0

    # -- equivalence -----------------------------------------------------

    def _excess(self, ulps: float) -> float:
        """max(0, ulps - eta), optionally log2-compressed."""
        excess = ulps - self.config.eta
        if excess <= 0.0:
            return 0.0
        if self.config.compress == "log2":
            return math.log2(1.0 + excess)
        return excess

    def err_fast(self, outputs: Optional[Dict[Location, int]],
                 expected: Dict[Location, int],
                 signalled: bool) -> float:
        """Per-test-case error (Equation 9) against precomputed outputs."""
        cfg = self.config
        if signalled or outputs is None:
            return cfg.ws
        total = 0.0
        for loc, want in expected.items():
            if loc not in outputs:
                raise KeyError(
                    f"live-out location {loc} is missing from the outputs "
                    f"of the {self.runner.backend!r} backend run; outputs "
                    f"cover [{', '.join(str(k) for k in outputs)}]. The "
                    "rewrite was likely executed through a Runner with "
                    "different live-outs than this cost function's.")
            ulps = location_ulp_distance(loc, outputs[loc], want)
            weight = cfg.wm if isinstance(loc, MemLoc) else cfg.wr
            total += weight * self._excess(ulps)
        return total

    def _err_values(self, values: Tuple[int, ...],
                    expected: Tuple[int, ...]) -> float:
        """Equation 9 over aligned live-out bits tuples (hot path)."""
        total = 0.0
        for loc, weight, got, want in zip(self.runner.live_outs,
                                          self._weights, values, expected):
            total += weight * self._excess(
                location_ulp_distance(loc, got, want))
        return total

    # Batch chunk ladder: the first chunk is a single test case (with
    # adaptive ordering it alone kills most doomed proposals), then chunk
    # sizes grow geometrically so surviving proposals approach one
    # compiled-function call per test set.
    _CHUNK_GROWTH = 8
    _FIRST_CHUNK = 1
    _PROMOTE_WINDOW = 4

    def _eq_loop(self, run_chunk, early_reject_above: Optional[float],
                 perf_term: float) -> Tuple[float, bool, bool]:
        """The shared chunk-ladder reduction over the test set.

        ``run_chunk(index, end)`` executes tests ``[index, end)`` and
        returns one ``(values, signal)`` pair per test.  Both the full
        and the incremental evaluation paths run through this one loop,
        so their chunk schedule, ⊕-reduction, early-reject bound, and
        promotion behaviour are identical by construction — only the way
        a chunk is executed differs.

        Returns ``(eq, any_signal, completed)``.  When
        ``early_reject_above`` is given and the running lower bound on
        the total cost passes it, evaluation stops (``completed`` False)
        and the worst test seen so far is promoted to the front of the
        test order.
        """
        cfg = self.config
        is_max = cfg.reduction == "max"
        expected = self._expected
        count = len(self.tests)
        eq = 0.0
        signalled = False
        worst_index = 0
        worst_err = -1.0
        index = 0
        chunk = self._FIRST_CHUNK
        while index < count:
            end = min(count, index + chunk)
            results = run_chunk(index, end)
            for offset, (values, signal) in enumerate(results):
                if signal is not None:
                    err = cfg.ws
                    signalled = True
                else:
                    err = self._err_values(values, expected[index + offset])
                if err > worst_err:
                    worst_err, worst_index = err, index + offset
                if is_max:
                    if err > eq:
                        eq = err
                else:
                    eq += err
            index = end
            if (early_reject_above is not None and index < count
                    and eq + perf_term > early_reject_above):
                self._promote(worst_index)
                return eq, signalled, False
            chunk *= self._CHUNK_GROWTH
        return eq, signalled, True

    def _eq(self, prepared, early_reject_above: Optional[float] = None,
            perf_term: float = 0.0) -> Tuple[float, bool, bool]:
        """Evaluate the ⊕-reduced test error with batched dispatch."""
        tests = self.tests
        runner = self.runner

        def run_chunk(index: int, end: int):
            if end - index == 1:
                # A one-test chunk goes through the scalar entry point:
                # proposals that die on the (adaptively fronted) first
                # test never pay for compiling the batched entry point.
                return (runner.run_values(prepared, tests[index]),)
            return runner.run_batch(prepared, tests[index:end])

        return self._eq_loop(run_chunk, early_reject_above, perf_term)

    def _promote(self, index: int) -> None:
        """Move the test at ``index`` to the front of the test order.

        Promotions of a recently promoted test that already sits within
        the stability window are skipped: the order the ladder sees is
        effectively unchanged, and the triple list surgery on the hot
        path is pure waste (``promote_skips`` counts them).
        """
        if index == 0:
            self.promote_skips += 1
            return
        recent = self._recent_promotes
        ident = id(self.tests[index])
        if index < self._PROMOTE_WINDOW and ident in recent:
            self.promote_skips += 1
            return
        self.promote_moves += 1
        recent.append(ident)
        for seq in (self.tests, self.target_outputs, self._expected):
            seq.insert(0, seq.pop(index))

    def eq_fast(self, rewrite: Program) -> Tuple[float, bool]:
        """Reduce per-test errors with ⊕; returns (eq, any_signal)."""
        prepared = self.runner.prepare(rewrite)
        eq, signalled, _ = self._eq(prepared)
        return eq, signalled

    # -- incremental evaluation ------------------------------------------

    def _incremental_plan(self, rewrite: Program,
                          edit_index: int) -> Optional[_IncPlan]:
        """Resolve an edit span into an incremental evaluation plan.

        Returns None (full evaluation) when any fallback condition
        holds: the program is too short for checkpoints, the edit is at
        index 0, the flags-liveness rule pushes the boundary to 0, or
        the test set contains duplicated test objects.
        """
        if self._has_dup_tests:
            return None
        slots = rewrite.slots
        n = len(slots)
        stride = checkpoint_stride(n)
        if stride <= 0 or edit_index <= 0:
            return None
        boundary = (min(edit_index, n - 1) // stride) * stride
        if boundary <= 0:
            return None
        flags = flags_live_in(rewrite)
        while boundary > 0 and flags[boundary]:
            boundary -= stride
        if boundary <= 0:
            return None
        plan = _IncPlan()
        plan.slots = slots
        plan.boundary = boundary
        plan.prefix_key = PrefixKey(slots[:boundary])
        # Warm capture bases: lower flags-safe boundaries a missing
        # checkpoint can be built from instead of replaying the whole
        # prefix (descending, nearest first).
        plan.bases = tuple(b for b in range(boundary - stride, 0, -stride)
                           if not flags[b])
        if self.runner.backend == "jit":
            # The rewrite is never compiled on this path.  Its suffix
            # contains the edit, so it is a never-before-seen program on
            # almost every proposal and a JIT compile (~400us) can never
            # amortize — interpreting the suffix via bound steps
            # (~1us/instruction) is an order of magnitude cheaper.  The
            # interpreter semantics are bit-identical to the JIT's
            # (tests/x86/test_differential.py is the load-bearing
            # contract; tests/x86/test_stepper.py pins bound steps to
            # it), and the flags-safe boundary guarantees the suffix
            # never reads status flags, the one state component the
            # interpreter touches that the pooled-state promise below
            # does not cover (the JIT itself neither reads nor writes
            # ``state.flags``).  Prefix segments ARE shared with the
            # current program across proposals, so cold-checkpoint
            # captures still run compiled code out of the global cache.
            plan.writes_at_b = compile_program(Program(plan.prefix_key)).writes
            plan.promise = union_writes(
                plan.writes_at_b, program_writes(rewrite, boundary))
            steps = bound_steps(slots[boundary:])

            def run_suffix(states, _steps=steps):
                signals = [None] * len(states)
                for i, state in enumerate(states):
                    try:
                        for fn, operands in _steps:
                            fn(state, operands)
                    except SignalError as exc:
                        signals[i] = exc.signal
                return signals

            plan.run_suffix = run_suffix
            plan.run_segment = lambda state, base: compile_program(
                Program(slots[base:boundary])).run(state).signal
        elif self.runner._compiled:
            # Vector (or any future compiled backend with cheap
            # preparation): the prepared object exposes the same
            # run_from/run_batch_from surface as the JIT, and
            # vectorize_program is a memoized translation — no machine
            # code is generated, so preparing the rewrite itself is
            # fine here, unlike the JIT case above.  The flags-safe
            # boundary keeps the resume sound: the suffix never reads
            # flags left by the prefix, matching the backend's
            # all-clear flag start.
            prepared = self.runner._backend.prepare(rewrite)
            plan.writes_at_b = program_writes(rewrite, 0, boundary)
            plan.promise = union_writes(
                plan.writes_at_b, program_writes(rewrite, boundary))
            plan.run_suffix = lambda states: prepared.run_batch_from(
                boundary, states)
            plan.run_segment = lambda state, base: prepared.run_from(
                base, state, boundary).signal
        else:
            emulator = self.runner._emulator
            plan.writes_at_b = program_writes(rewrite, 0, boundary)
            plan.promise = None  # full pooled restore (flags included)
            plan.run_suffix = lambda states: emulator.run_batch_from(
                rewrite, states, boundary)
            plan.run_segment = lambda state, base: emulator.run_from(
                rewrite, state, base, boundary).signal
        return plan

    def _ensure_checkpoint(self, test: TestCase, plan: _IncPlan):
        """The test's checkpoint at the plan boundary, capturing it on
        demand.

        Returns ``(checkpoint, live_state)``: ``live_state`` is non-None
        only when the checkpoint was captured just now, in which case it
        is the test's pooled state still holding the post-prefix values
        — the caller can run the suffix on it directly without a
        restore/apply round trip.
        """
        cp = test.get_checkpoint(plan.prefix_key)
        if cp is not None:
            return cp, None
        slots = plan.slots
        base = 0
        base_cp = None
        for b in plan.bases:
            candidate = test._checkpoints.get(slots[:b])
            if candidate is not None:
                base, base_cp = b, candidate
                break
        if base_cp is not None and base_cp.signal is not None:
            # The prefix already faults below the warm base; propagate
            # the sentinel without executing anything.
            cp = Checkpoint.fault(base_cp.signal)
            test.put_checkpoint(plan.prefix_key, cp)
            return cp, None
        state = test.pooled_state(plan.promise)
        if base_cp is not None:
            base_cp.apply(state)
        signal = plan.run_segment(state, base)
        self.incremental_captures += 1
        if signal is not None:
            cp = Checkpoint.fault(signal)
            test.put_checkpoint(plan.prefix_key, cp)
            return cp, None
        cp = Checkpoint.capture(state, plan.writes_at_b)
        test.put_checkpoint(plan.prefix_key, cp)
        return cp, state

    def _eq_incremental(self, plan: _IncPlan,
                        early_reject_above: Optional[float] = None,
                        perf_term: float = 0.0) -> Tuple[float, bool, bool]:
        """The chunk ladder with checkpointed-prefix chunk execution.

        Per test: fault sentinels short-circuit to the prefix's signal,
        warm checkpoints are applied onto the pooled state and only the
        suffix executes, cold checkpoints are captured on demand (the
        capture run doubles as the prefix execution).
        """
        tests = self.tests
        values_of = self.runner.values_of
        run_suffix = plan.run_suffix
        promise = plan.promise

        def run_chunk(index: int, end: int):
            chunk_tests = tests[index:end]
            out: list = [None] * len(chunk_tests)
            states = []
            positions = []
            for pos, test in enumerate(chunk_tests):
                cp, live = self._ensure_checkpoint(test, plan)
                if cp.signal is not None:
                    out[pos] = (None, cp.signal)
                    continue
                if live is None:
                    state = test.pooled_state(promise)
                    cp.apply(state)
                else:
                    state = live
                states.append(state)
                positions.append(pos)
            if states:
                signals = run_suffix(states)
                for state, pos, signal in zip(states, positions, signals):
                    out[pos] = ((None, signal) if signal is not None
                                else (values_of(state), None))
            return out

        return self._eq_loop(run_chunk, early_reject_above, perf_term)

    def set_current(self, program: Program) -> None:
        """Tell the cost function the search accepted ``program``.

        Checkpoints are content-addressed, so stale entries can never
        corrupt a result; pruning the ones whose prefix the new current
        program does not share just keeps the store from carrying
        unreachable state.
        """
        slots = program.slots
        for test in self.tests:
            test.prune_checkpoints(slots)

    def incremental_stats(self) -> Dict[str, int]:
        """Hit/fallback/capture counters of the incremental path."""
        return {
            "hits": self.incremental_hits,
            "fallbacks": self.incremental_fallbacks,
            "captures": self.incremental_captures,
        }

    # -- full cost -------------------------------------------------------

    def cost(self, rewrite: Program,
             early_reject_above: Optional[float] = None,
             edit_index: Optional[int] = None) -> CostResult:
        """Evaluate ``c(R; T)``.

        ``early_reject_above``: if the running lower bound on the total
        cost exceeds this threshold, evaluation stops early and returns an
        upper-bound-ish result; the search only uses this for proposals
        it would reject with near certainty anyway.

        ``edit_index``: the proposal's edit span (lowest changed slot
        index) relative to the chain's current program.  When given, the
        evaluator resumes from a checkpointed prefix state and
        re-executes only ``[boundary, end)`` per test; results are
        bit-identical to full evaluation, so this is purely a fast path
        (with the fallbacks listed in :meth:`_incremental_plan`).
        """
        cached = self._cache.get(rewrite)
        if cached is not None:
            self._cache.move_to_end(rewrite)
            self.cache_hits += 1
            return cached
        self.cache_misses += 1
        cfg = self.config
        perf = self.perf(rewrite) if cfg.k != 0.0 else 0.0
        plan = None
        if edit_index is not None:
            plan = self._incremental_plan(rewrite, edit_index)
            if plan is None:
                self.incremental_fallbacks += 1
            else:
                self.incremental_hits += 1
        if plan is not None:
            eq, signalled, completed = self._eq_incremental(
                plan, early_reject_above=early_reject_above,
                perf_term=cfg.k * perf)
        else:
            prepared = self.runner.prepare(rewrite)
            eq, signalled, completed = self._eq(
                prepared, early_reject_above=early_reject_above,
                perf_term=cfg.k * perf)
        total = eq + cfg.k * perf
        result = CostResult(total=total, eq=eq, perf=perf, signalled=signalled)
        if completed:
            while len(self._cache) >= self._cache_max:
                self._cache.popitem(last=False)
            self._cache[rewrite] = result
        return result

    def __call__(self, rewrite: Program) -> CostResult:
        return self.cost(rewrite)
