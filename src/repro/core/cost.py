"""The floating-point cost function (Equations 9-11 and Section 5.2).

``eq_fast`` measures, per test case, the ULP' distance between each
live-out location of the rewrite and of the target, discards anything at
or below the minimum acceptable rounding error ``eta``, adds a penalty for
divergent signal behaviour, and reduces over the test set with ``⊕``
(``max`` by default, per Section 5.2, so correctness cost cannot overflow
no matter how many test cases are used).

Two knobs the paper leaves implicit are exposed explicitly (and covered by
ablation benchmarks):

* ``compress`` — ULP excesses span ~19 orders of magnitude; with raw
  values a unit annealing constant reduces MCMC to hill climbing.  The
  default ``"log2"`` compresses each location's excess to its bit length,
  keeping acceptance probabilities meaningful across the whole range.
* ``reduction`` — ``"max"`` (the paper's choice) or ``"sum"`` (original
  STOKE) over test cases.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, Union

from repro.fp.ieee754 import DOUBLE, SINGLE
from repro.fp.ulp import ulp_distance_bits
from repro.x86.locations import Loc, MemLoc
from repro.x86.program import Program
from repro.x86.testcase import TestCase

from repro.core.perf import LatencyPerf
from repro.core.runner import Location, Runner

# Penalty used when the rewrite signals and the target does not; chosen to
# dominate any achievable per-location error cost.
_SIG_DEFAULT = 256.0


@dataclass(frozen=True)
class CostConfig:
    """Weights and shape of the cost function.

    Attributes:
        eta: Minimum unacceptable ULP rounding error (Equation 10); errors
            at or below ``eta`` are free.
        k: Weight of the performance term (Equation 2); ``k = 0`` is
            synthesis mode.
        wr / wm / ws: Register / memory / signal error weights (Eq 9).
        reduction: ``"max"`` (Section 5.2) or ``"sum"`` over test cases.
        compress: ``"log2"`` or ``"none"`` compression of ULP excesses.
        perf_scale: Exchange rate passed to :class:`LatencyPerf`.
    """

    eta: float = 0.0
    k: float = 1.0
    wr: float = 1.0
    wm: float = 1.0
    ws: float = _SIG_DEFAULT
    reduction: str = "max"
    compress: str = "log2"
    perf_scale: float = 20.0

    def __post_init__(self) -> None:
        if self.reduction not in ("max", "sum"):
            raise ValueError(f"bad reduction: {self.reduction!r}")
        if self.compress not in ("log2", "none"):
            raise ValueError(f"bad compress: {self.compress!r}")
        if self.eta < 0:
            raise ValueError("eta must be non-negative")


@dataclass(frozen=True)
class CostResult:
    """Breakdown of one cost evaluation."""

    total: float
    eq: float
    perf: float
    signalled: bool

    @property
    def correct(self) -> bool:
        """True when the rewrite met the eta bound on every test case."""
        return self.eq == 0.0


def location_ulp_distance(loc: Location, bits_a: int, bits_b: int) -> float:
    """ULP' distance for FP locations; Hamming distance for fixed-point.

    Using Hamming distance for integer locations matches the original
    STOKE cost, and keeps mixed fixed/floating kernels well-behaved.
    """
    if loc.ftype == "f64":
        return float(ulp_distance_bits(bits_a, bits_b, DOUBLE))
    if loc.ftype == "f32":
        return float(ulp_distance_bits(bits_a, bits_b, SINGLE))
    return float(bin(bits_a ^ bits_b).count("1"))


class CostFunction:
    """``c(R; T) = eq(R; T) + k * perf(R; T)`` bound to a target."""

    def __init__(
        self,
        target: Program,
        tests: Sequence[TestCase],
        live_outs: Sequence[Union[str, Location]],
        config: CostConfig = CostConfig(),
        backend: str = "jit",
        cache_size: int = 8192,
    ):
        if not tests:
            raise ValueError("at least one test case is required")
        if cache_size < 1:
            raise ValueError("cache_size must be positive")
        self.config = config
        self.runner = Runner(live_outs, backend=backend)
        self.target = target
        # Test order is adaptive: when a proposal is early-rejected, the
        # test that rejected it moves to the front (STOKE's fast-out
        # heuristic), so the next doomed proposal usually dies on its
        # first execution.  tests / target_outputs / _expected are
        # permuted in lockstep; every cost value is order-independent.
        self.tests = list(tests)
        self.perf = LatencyPerf(target.latency, scale=config.perf_scale)
        # The target must run cleanly on every test case.
        self.target_outputs = self.runner.outputs_for(target, self.tests)
        # Hot-path views of the expected outputs: one bits tuple per test
        # in runner.live_outs order, plus per-location weights, so the
        # inner loop never touches a dict.
        locs = self.runner.live_outs
        self._expected = [tuple(outs[loc] for loc in locs)
                          for outs in self.target_outputs]
        self._weights = tuple(
            config.wm if isinstance(loc, MemLoc) else config.wr
            for loc in locs)
        # Full (non-early-terminated) evaluations are memoized in a
        # bounded LRU: MCMC proposals frequently revisit recently seen
        # programs, and evicting one-at-a-time avoids the cold-cache
        # stall that wiping the whole memo mid-search used to cause.
        self._cache: "OrderedDict[Program, CostResult]" = OrderedDict()
        self._cache_max = cache_size
        self.cache_hits = 0
        self.cache_misses = 0

    # -- equivalence -----------------------------------------------------

    def _excess(self, ulps: float) -> float:
        """max(0, ulps - eta), optionally log2-compressed."""
        excess = ulps - self.config.eta
        if excess <= 0.0:
            return 0.0
        if self.config.compress == "log2":
            return math.log2(1.0 + excess)
        return excess

    def err_fast(self, outputs: Optional[Dict[Location, int]],
                 expected: Dict[Location, int],
                 signalled: bool) -> float:
        """Per-test-case error (Equation 9) against precomputed outputs."""
        cfg = self.config
        if signalled or outputs is None:
            return cfg.ws
        total = 0.0
        for loc, want in expected.items():
            if loc not in outputs:
                raise KeyError(
                    f"live-out location {loc} is missing from the outputs "
                    f"of the {self.runner.backend!r} backend run; outputs "
                    f"cover [{', '.join(str(k) for k in outputs)}]. The "
                    "rewrite was likely executed through a Runner with "
                    "different live-outs than this cost function's.")
            ulps = location_ulp_distance(loc, outputs[loc], want)
            weight = cfg.wm if isinstance(loc, MemLoc) else cfg.wr
            total += weight * self._excess(ulps)
        return total

    def _err_values(self, values: Tuple[int, ...],
                    expected: Tuple[int, ...]) -> float:
        """Equation 9 over aligned live-out bits tuples (hot path)."""
        total = 0.0
        for loc, weight, got, want in zip(self.runner.live_outs,
                                          self._weights, values, expected):
            total += weight * self._excess(
                location_ulp_distance(loc, got, want))
        return total

    # Batch chunk ladder: the first chunk is a single test case (with
    # adaptive ordering it alone kills most doomed proposals), then chunk
    # sizes grow geometrically so surviving proposals approach one
    # compiled-function call per test set.
    _CHUNK_GROWTH = 8
    _FIRST_CHUNK = 1

    def _eq(self, prepared, early_reject_above: Optional[float] = None,
            perf_term: float = 0.0) -> Tuple[float, bool, bool]:
        """Evaluate the ⊕-reduced test error with batched dispatch.

        Returns ``(eq, any_signal, completed)``.  When
        ``early_reject_above`` is given and the running lower bound on
        the total cost passes it, evaluation stops (``completed`` False)
        and the worst test seen so far is promoted to the front of the
        test order.
        """
        cfg = self.config
        is_max = cfg.reduction == "max"
        tests, expected = self.tests, self._expected
        count = len(tests)
        eq = 0.0
        signalled = False
        worst_index = 0
        worst_err = -1.0
        index = 0
        chunk = self._FIRST_CHUNK
        while index < count:
            end = min(count, index + chunk)
            if end - index == 1:
                # A one-test chunk goes through the scalar entry point:
                # proposals that die on the (adaptively fronted) first
                # test never pay for compiling the batched entry point.
                results = (self.runner.run_values(prepared, tests[index]),)
            else:
                results = self.runner.run_batch(prepared, tests[index:end])
            for offset, (values, signal) in enumerate(results):
                if signal is not None:
                    err = cfg.ws
                    signalled = True
                else:
                    err = self._err_values(values, expected[index + offset])
                if err > worst_err:
                    worst_err, worst_index = err, index + offset
                if is_max:
                    if err > eq:
                        eq = err
                else:
                    eq += err
            index = end
            if (early_reject_above is not None and index < count
                    and eq + perf_term > early_reject_above):
                self._promote(worst_index)
                return eq, signalled, False
            chunk *= self._CHUNK_GROWTH
        return eq, signalled, True

    def _promote(self, index: int) -> None:
        """Move the test at ``index`` to the front of the test order."""
        if index == 0:
            return
        for seq in (self.tests, self.target_outputs, self._expected):
            seq.insert(0, seq.pop(index))

    def eq_fast(self, rewrite: Program) -> Tuple[float, bool]:
        """Reduce per-test errors with ⊕; returns (eq, any_signal)."""
        prepared = self.runner.prepare(rewrite)
        eq, signalled, _ = self._eq(prepared)
        return eq, signalled

    # -- full cost -------------------------------------------------------

    def cost(self, rewrite: Program,
             early_reject_above: Optional[float] = None) -> CostResult:
        """Evaluate ``c(R; T)``.

        ``early_reject_above``: if the running lower bound on the total
        cost exceeds this threshold, evaluation stops early and returns an
        upper-bound-ish result; the search only uses this for proposals
        it would reject with near certainty anyway.
        """
        cached = self._cache.get(rewrite)
        if cached is not None:
            self._cache.move_to_end(rewrite)
            self.cache_hits += 1
            return cached
        self.cache_misses += 1
        cfg = self.config
        perf = self.perf(rewrite) if cfg.k != 0.0 else 0.0
        prepared = self.runner.prepare(rewrite)
        eq, signalled, completed = self._eq(
            prepared, early_reject_above=early_reject_above,
            perf_term=cfg.k * perf)
        total = eq + cfg.k * perf
        result = CostResult(total=total, eq=eq, perf=perf, signalled=signalled)
        if completed:
            while len(self._cache) >= self._cache_max:
                self._cache.popitem(last=False)
            self._cache[rewrite] = result
        return result

    def __call__(self, rewrite: Program) -> CostResult:
        return self.cost(rewrite)
