"""Stochastic optimization of floating-point programs with tunable precision.

A full reproduction of Schkufza, Sharma & Aiken (PLDI 2014): a STOKE-style
stochastic superoptimizer for a faithfully modelled x86-64 subset, with a
ULP-based tunable-precision cost function, an MCMC validation technique
with Geweke-diagnosed termination, static verification stand-ins
(uninterpreted functions, interval analysis, bounded-exhaustive checking),
and the paper's three benchmark applications (libimf math kernels, the S3D
diffusion leaf task, and the aek ray tracer).

Quickstart::

    from repro import assemble, Stoke, SearchConfig, CostConfig, uniform_testcases
    import random

    target = assemble('''
        movq $2.0d, xmm1
        mulsd xmm1, xmm0
        addsd xmm0, xmm0
    ''')
    tests = uniform_testcases(random.Random(0), 32, {"xmm0": (-100, 100)})
    stoke = Stoke(target, tests, ["xmm0"], CostConfig(eta=0.0, k=1.0))
    result = stoke.optimize(SearchConfig(proposals=5000, seed=1))
    print(result.best_correct.to_text(), result.speedup())
"""

from repro.core import (
    CostConfig,
    CostFunction,
    SearchConfig,
    SearchResult,
    Stoke,
    make_strategy,
)
from repro.fp import ETA_HALF, ETA_SINGLE, ulp_distance, ulp_distance_bits
from repro.validation import ValidationConfig, ValidationResult, Validator, validate
from repro.verify import check_equivalent_uf, exhaustive_check, interval_ulp_bound
from repro.x86 import (
    Emulator,
    Instruction,
    MachineState,
    Memory,
    Program,
    Segment,
    TestCase,
    assemble,
    compile_program,
    disassemble,
    uniform_testcases,
)

__version__ = "1.0.0"

__all__ = [
    "CostConfig",
    "CostFunction",
    "SearchConfig",
    "SearchResult",
    "Stoke",
    "make_strategy",
    "ETA_HALF",
    "ETA_SINGLE",
    "ulp_distance",
    "ulp_distance_bits",
    "ValidationConfig",
    "ValidationResult",
    "Validator",
    "validate",
    "check_equivalent_uf",
    "exhaustive_check",
    "interval_ulp_bound",
    "Emulator",
    "Instruction",
    "MachineState",
    "Memory",
    "Program",
    "Segment",
    "TestCase",
    "assemble",
    "compile_program",
    "disassemble",
    "uniform_testcases",
    "__version__",
]
