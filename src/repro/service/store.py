"""Crash-safe ledger and content-addressed artifact store.

One SQLite database (WAL mode) records jobs, their dependency edges,
attempts, telemetry snapshots, and campaign membership; artifacts live
next to it as content-addressed files (``artifacts/ab/abcdef...``)
written atomically (tmp + rename), so a SIGKILL at any instant leaves
either the old state or the new state, never a torn one.

Any number of schedulers and fleet agents may share one ledger.  Every
mutation runs in its own ``BEGIN IMMEDIATE`` transaction (WAL readers
never block, writers serialize with a busy timeout), and *claims are
leases*: :meth:`Ledger.claim_ready` grants a worker-id'd lease with an
expiry, the owner extends it with :meth:`Ledger.heartbeat` while the
job runs, and :meth:`Ledger.reap_expired` requeues any job whose owner
stopped heartbeating — attempt refunded, checkpoint intact — exactly
like the graceful-drain path.  Completion calls (:meth:`finish`,
:meth:`fail`, :meth:`release`) are owner-guarded, so a worker whose
lease was reaped and re-granted elsewhere cannot clobber the new
owner's run.  Workers never open the database; they communicate over
pipes or HTTP and write only their own per-job checkpoint files.

Job lifecycle::

    pending --claim (lease granted)--> running --ok--> done
       ^                                  |
       |                                  +--error, attempts left--> pending (backoff)
       |                                  +--error, attempts exhausted--> failed
       +--lease expired / drain / recover() (attempt refunded,
          recorded as 'interrupted')

A job whose dependency fails is failed eagerly (``upstream failed``)
so campaigns always terminate.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import time
import uuid
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.core.serialize import canonical_json

from repro.service.jobs import JobSpec

LEDGER_SCHEMA_VERSION = 2

# Default lease duration granted per claim.  Owners heartbeat at a
# fraction of this; a scheduler that dies stops heartbeating and its
# jobs are requeued once the lease runs out.  Leases compare on the
# epoch clock because they must be meaningful across hosts.
DEFAULT_LEASE = 15.0

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS jobs (
    digest TEXT PRIMARY KEY,
    kind TEXT NOT NULL,
    payload TEXT NOT NULL,
    role TEXT NOT NULL DEFAULT '',
    state TEXT NOT NULL DEFAULT 'pending',
    attempts INTEGER NOT NULL DEFAULT 0,
    max_attempts INTEGER NOT NULL DEFAULT 3,
    not_before REAL NOT NULL DEFAULT 0,
    lease_owner TEXT NOT NULL DEFAULT '',
    lease_expires REAL NOT NULL DEFAULT 0,
    error TEXT,
    created_at REAL NOT NULL,
    updated_at REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS jobs_state ON jobs (state);
CREATE TABLE IF NOT EXISTS job_deps (
    job TEXT NOT NULL,
    dep TEXT NOT NULL,
    PRIMARY KEY (job, dep)
);
CREATE INDEX IF NOT EXISTS job_deps_dep ON job_deps (dep);
CREATE TABLE IF NOT EXISTS campaigns (
    id TEXT PRIMARY KEY,
    name TEXT NOT NULL,
    spec TEXT NOT NULL,
    created_at REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS campaign_jobs (
    campaign TEXT NOT NULL,
    job TEXT NOT NULL,
    role TEXT NOT NULL DEFAULT '',
    PRIMARY KEY (campaign, job)
);
CREATE TABLE IF NOT EXISTS attempts (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    job TEXT NOT NULL,
    number INTEGER NOT NULL,
    started_at REAL NOT NULL,
    finished_at REAL,
    outcome TEXT,
    error TEXT
);
CREATE INDEX IF NOT EXISTS attempts_job ON attempts (job);
CREATE TABLE IF NOT EXISTS telemetry (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    job TEXT NOT NULL,
    at REAL NOT NULL,
    kind TEXT NOT NULL,
    data TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS artifacts (
    digest TEXT PRIMARY KEY,
    kind TEXT NOT NULL DEFAULT '',
    size INTEGER NOT NULL,
    created_at REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS job_artifacts (
    job TEXT NOT NULL,
    name TEXT NOT NULL,
    artifact TEXT NOT NULL,
    PRIMARY KEY (job, name)
);
"""

# Job states a job can rest in between scheduler turns.
JOB_STATES = ("pending", "running", "done", "failed")


def _atomic_write(path: str, data: bytes) -> None:
    """Write via tmp + rename so readers never see a torn file."""
    tmp = f"{path}.tmp.{os.getpid()}.{uuid.uuid4().hex[:8]}"
    with open(tmp, "wb") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


class Ledger:
    """The campaign service's durable state, rooted at one directory."""

    def __init__(self, root: str):
        self.root = os.path.abspath(root)
        os.makedirs(self.root, exist_ok=True)
        os.makedirs(os.path.join(self.root, "artifacts"), exist_ok=True)
        os.makedirs(os.path.join(self.root, "checkpoints"), exist_ok=True)
        self.db_path = os.path.join(self.root, "ledger.sqlite3")
        # Retry backoff deadlines on the monotonic clock, by job digest.
        # The epoch ``not_before`` column is kept for display, ledger
        # records, and the cross-process fallback — but elapsed-time
        # decisions ("has the backoff passed?") this process makes use
        # these, so a wall clock step (NTP, suspend/resume) can neither
        # stall a retry indefinitely nor fire it early.  On handoff
        # (release or close) the *remaining* monotonic delay is written
        # back into ``not_before``, so the next claimant — another
        # scheduler sharing the ledger, or a restart — honors the same
        # backoff even if the wall clock stepped in between.
        self._backoff: Dict[str, float] = {}
        self._conn = sqlite3.connect(self.db_path, timeout=30.0,
                                     isolation_level=None)
        self._conn.row_factory = sqlite3.Row
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute("PRAGMA foreign_keys=ON")
        # executescript commits on its own; keep it outside _tx.
        self._conn.executescript(_SCHEMA)
        with self._tx():
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key='schema_version'"
            ).fetchone()
            if row is None:
                self._conn.execute(
                    "INSERT INTO meta (key, value) VALUES (?, ?)",
                    ("schema_version", str(LEDGER_SCHEMA_VERSION)))
            elif int(row["value"]) == 1:
                # v1 -> v2: single-writer claims become leases.  Old
                # rows get the empty owner / epoch-zero expiry, which
                # reads as "expired", so recovery requeues them just as
                # v1's recover() would have.
                self._conn.execute(
                    "ALTER TABLE jobs ADD COLUMN lease_owner TEXT "
                    "NOT NULL DEFAULT ''")
                self._conn.execute(
                    "ALTER TABLE jobs ADD COLUMN lease_expires REAL "
                    "NOT NULL DEFAULT 0")
                self._conn.execute(
                    "UPDATE meta SET value=? WHERE key='schema_version'",
                    (str(LEDGER_SCHEMA_VERSION),))
            elif int(row["value"]) != LEDGER_SCHEMA_VERSION:
                raise RuntimeError(
                    f"ledger at {self.db_path} has schema version "
                    f"{row['value']}, this build reads "
                    f"{LEDGER_SCHEMA_VERSION}")

    def close(self) -> None:
        # Backoff deadlines live on this process's monotonic clock;
        # hand the remaining delays to whoever opens the ledger next.
        if self._backoff:
            try:
                with self._tx() as conn:
                    now = time.time()
                    for digest in list(self._backoff):
                        self._flush_backoff(conn, digest, now)
            except sqlite3.Error:
                pass
        self._conn.close()

    def __enter__(self) -> "Ledger":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @contextmanager
    def _tx(self):
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            yield self._conn
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        else:
            self._conn.execute("COMMIT")

    # -- jobs -------------------------------------------------------------

    def add_job(self, spec: JobSpec, max_attempts: int = 3) -> bool:
        """Record a job; returns False when its digest already exists.

        Dedupe is the point: a duplicate submission (same kind +
        payload) is a no-op regardless of the state the original is in.
        """
        digest = spec.digest
        now = time.time()
        with self._tx() as conn:
            cur = conn.execute(
                "INSERT OR IGNORE INTO jobs (digest, kind, payload, role, "
                "state, max_attempts, created_at, updated_at) "
                "VALUES (?, ?, ?, ?, 'pending', ?, ?, ?)",
                (digest, spec.kind, canonical_json(spec.payload), spec.role,
                 max_attempts, now, now))
            created = cur.rowcount > 0
            if created:
                for dep in spec.deps:
                    conn.execute(
                        "INSERT OR IGNORE INTO job_deps (job, dep) "
                        "VALUES (?, ?)", (digest, dep))
        return created

    def job(self, digest: str) -> Optional[Dict]:
        row = self._conn.execute(
            "SELECT * FROM jobs WHERE digest=?", (digest,)).fetchone()
        return dict(row) if row else None

    def deps_of(self, digest: str) -> List[str]:
        rows = self._conn.execute(
            "SELECT dep FROM job_deps WHERE job=? ORDER BY dep",
            (digest,)).fetchall()
        return [r["dep"] for r in rows]

    def resolve_prefix(self, prefix: str, limit: int = 8) -> List[str]:
        """Job digests starting with ``prefix``, at most ``limit``.

        Digests are lowercase hex, so the half-open range
        ``[prefix, prefix + 'g')`` captures exactly the prefix matches
        and rides the primary-key index — no table scan, no LIKE.
        Callers decide what multiple matches mean; the CLI and API
        treat >1 as an ambiguity error and show this list.
        """
        rows = self._conn.execute(
            "SELECT digest FROM jobs WHERE digest >= ? AND digest < ? "
            "ORDER BY digest LIMIT ?",
            (prefix, prefix + "g", limit)).fetchall()
        return [r["digest"] for r in rows]

    def jobs(self, state: Optional[str] = None,
             campaign: Optional[str] = None) -> List[Dict]:
        query = "SELECT jobs.* FROM jobs"
        args: List = []
        clauses = []
        if campaign is not None:
            query += (" JOIN campaign_jobs ON campaign_jobs.job = "
                      "jobs.digest")
            clauses.append("campaign_jobs.campaign = ?")
            args.append(campaign)
        if state is not None:
            clauses.append("jobs.state = ?")
            args.append(state)
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY jobs.created_at, jobs.digest"
        return [dict(r) for r in self._conn.execute(query, args)]

    def counts(self, campaign: Optional[str] = None) -> Dict[str, int]:
        out = {state: 0 for state in JOB_STATES}
        for row in self.jobs(campaign=campaign):
            out[row["state"]] = out.get(row["state"], 0) + 1
        return out

    def claim_ready(self, limit: int, now: Optional[float] = None,
                    owner: str = "", lease: float = 0.0) -> List[Dict]:
        """Atomically lease up to ``limit`` runnable jobs to ``owner``.

        Runnable: ``pending``, past its backoff time, with every
        dependency ``done``.  Each claimed job moves to ``running``
        with ``lease_owner=owner`` and ``lease_expires=now+lease``, and
        an attempt row is opened.  The owner must :meth:`heartbeat`
        before the lease runs out or :meth:`reap_expired` will requeue
        the job.  A claim with ``lease=0`` (the legacy single-writer
        mode) is born expired: it is recoverable by anyone, which is
        exactly v1's semantics.

        Backoff gating: jobs whose retry this process scheduled are
        gated by their monotonic deadline (immune to wall-clock steps);
        jobs inherited from another process fall back to the epoch
        ``not_before`` stamp.  Passing ``now`` explicitly selects pure
        epoch comparison — the simulated-time mode the scheduler tests
        use.
        """
        if limit <= 0:
            return []
        epoch_only = now is not None
        now = time.time() if now is None else now
        expires = now + lease if lease else 0.0
        claimed: List[Dict] = []
        with self._tx() as conn:
            rows = conn.execute(
                "SELECT * FROM jobs WHERE state='pending' "
                "AND NOT EXISTS (SELECT 1 FROM job_deps JOIN jobs AS d ON "
                "d.digest = job_deps.dep WHERE job_deps.job = jobs.digest "
                "AND d.state != 'done') "
                "ORDER BY created_at, digest").fetchall()
            ready = []
            for row in rows:
                deadline = self._backoff.get(row["digest"])
                if not epoch_only and deadline is not None:
                    if time.monotonic() < deadline:
                        continue
                elif row["not_before"] > now:
                    continue
                ready.append(row)
                if len(ready) >= limit:
                    break
            for row in ready:
                self._backoff.pop(row["digest"], None)
                conn.execute(
                    "UPDATE jobs SET state='running', attempts=attempts+1, "
                    "lease_owner=?, lease_expires=?, updated_at=? "
                    "WHERE digest=?",
                    (owner, expires, now, row["digest"]))
                conn.execute(
                    "INSERT INTO attempts (job, number, started_at) "
                    "VALUES (?, ?, ?)",
                    (row["digest"], row["attempts"] + 1, now))
                job = dict(row)
                job["state"] = "running"
                job["attempts"] = row["attempts"] + 1
                job["lease_owner"] = owner
                job["lease_expires"] = expires
                claimed.append(job)
        return claimed

    def heartbeat(self, digests: List[str], owner: str, lease: float,
                  now: Optional[float] = None) -> List[str]:
        """Extend ``owner``'s leases on ``digests`` to ``now + lease``.

        Returns the digests still held.  A digest missing from the
        result means the lease was lost — reaped after an expiry and
        possibly re-granted — and the caller must treat its in-flight
        execution as abandoned (its completion calls will be rejected
        by the owner guard).
        """
        if not digests:
            return []
        now = time.time() if now is None else now
        kept: List[str] = []
        with self._tx() as conn:
            for digest in digests:
                cur = conn.execute(
                    "UPDATE jobs SET lease_expires=?, updated_at=? "
                    "WHERE digest=? AND state='running' AND lease_owner=?",
                    (now + lease, now, digest, owner))
                if cur.rowcount:
                    kept.append(digest)
        return kept

    def reap_expired(self, now: Optional[float] = None) -> List[str]:
        """Requeue every ``running`` job whose lease has expired.

        The dead owner's attempt is closed as ``interrupted`` and
        refunded (a crash loop cannot exhaust the retry budget), the
        checkpoint file survives, and the job is immediately claimable
        — by any scheduler sharing the ledger.  Returns the digests
        requeued.  One transaction, so concurrent reapers cannot
        double-refund.
        """
        wall = time.time()
        now = wall if now is None else now
        reaped: List[str] = []
        with self._tx() as conn:
            rows = conn.execute(
                "SELECT digest FROM jobs WHERE state='running' AND "
                "lease_expires <= ? ORDER BY created_at, digest",
                (now,)).fetchall()
            for row in rows:
                conn.execute(
                    "UPDATE jobs SET state='pending', "
                    "attempts=MAX(attempts-1, 0), lease_owner='', "
                    "lease_expires=0, updated_at=? WHERE digest=?",
                    (wall, row["digest"]))
                self._close_attempt(conn, row["digest"], "interrupted",
                                    "lease expired", wall)
                reaped.append(row["digest"])
        return reaped

    def _close_attempt(self, conn, digest: str, outcome: str,
                       error: Optional[str], now: float) -> None:
        conn.execute(
            "UPDATE attempts SET finished_at=?, outcome=?, error=? "
            "WHERE id = (SELECT id FROM attempts WHERE job=? AND "
            "finished_at IS NULL ORDER BY id DESC LIMIT 1)",
            (now, outcome, error, digest))

    def finish(self, digest: str, owner: Optional[str] = None) -> bool:
        """Mark a job ``done``; returns whether the update applied.

        With ``owner`` given, only the current lease holder of a
        ``running`` job may finish it — a worker whose lease was reaped
        gets ``False`` back and must discard its result.
        """
        self._backoff.pop(digest, None)
        now = time.time()
        with self._tx() as conn:
            query = ("UPDATE jobs SET state='done', error=NULL, "
                     "lease_owner='', lease_expires=0, updated_at=? "
                     "WHERE digest=?")
            args: List = [now, digest]
            if owner is not None:
                query += " AND state='running' AND lease_owner=?"
                args.append(owner)
            cur = conn.execute(query, args)
            if cur.rowcount:
                self._close_attempt(conn, digest, "ok", None, now)
        return cur.rowcount > 0

    def fail(self, digest: str, error: str,
             retry_in: Union[float, None, Callable[[int], float]],
             owner: Optional[str] = None) -> str:
        """Record a failed attempt.  Retries (state back to ``pending``
        with ``not_before = now + retry_in``) while attempts remain and
        ``retry_in`` is given; otherwise the job is failed and every
        transitive dependent is failed with it.  Returns the resulting
        state.

        ``retry_in`` may be a callable ``attempts -> seconds``; it is
        evaluated inside the transaction on the row's own post-claim
        attempt count, so backoff schedules never act on a stale
        claim-time snapshot.  With ``owner`` given, a caller that no
        longer holds the lease mutates nothing and gets the job's
        current state back.
        """
        now = time.time()
        with self._tx() as conn:
            row = conn.execute(
                "SELECT state, attempts, max_attempts, lease_owner "
                "FROM jobs WHERE digest=?", (digest,)).fetchone()
            if row is None:
                raise KeyError(f"no such job {digest}")
            if owner is not None and (row["state"] != "running"
                                      or row["lease_owner"] != owner):
                return row["state"]
            if callable(retry_in):
                retry_in = retry_in(row["attempts"])
            retry = (retry_in is not None
                     and row["attempts"] < row["max_attempts"])
            state = "pending" if retry else "failed"
            # Epoch stamp for display/ledger; the claim-time decision
            # uses the monotonic deadline recorded alongside it.
            not_before = now + retry_in if retry else 0
            if retry:
                self._backoff[digest] = time.monotonic() + retry_in
            else:
                self._backoff.pop(digest, None)
            conn.execute(
                "UPDATE jobs SET state=?, error=?, not_before=?, "
                "lease_owner='', lease_expires=0, updated_at=? "
                "WHERE digest=?",
                (state, error, not_before, now, digest))
            self._close_attempt(conn, digest, "error", error, now)
            if state == "failed":
                self._fail_dependents(conn, digest, now)
        return state

    def fail_attempt(self, digest: str, error: str, retry_base: float,
                     owner: Optional[str] = None) -> Dict:
        """Fail one attempt with exponential backoff pinned to the
        ledger's own attempt count: retry *n* waits
        ``retry_base * 2**(n-1)`` seconds (0.25/0.5/1.0s at the default
        base).  Returns ``{state, attempts, retry_in}``; ``retry_in``
        is ``None`` unless the job went back to ``pending``."""
        info: Dict = {"attempts": 0, "retry_in": None}

        def backoff(attempts: int) -> float:
            info["attempts"] = attempts
            info["retry_in"] = retry_base * (2 ** max(attempts - 1, 0))
            return info["retry_in"]

        info["state"] = self.fail(digest, error, backoff, owner=owner)
        if info["state"] != "pending":
            info["retry_in"] = None
        return info

    def _fail_dependents(self, conn, digest: str, now: float) -> None:
        frontier = [digest]
        while frontier:
            dep = frontier.pop()
            rows = conn.execute(
                "SELECT job FROM job_deps JOIN jobs ON jobs.digest = "
                "job_deps.job WHERE job_deps.dep=? AND jobs.state IN "
                "('pending', 'running')", (dep,)).fetchall()
            for row in rows:
                conn.execute(
                    "UPDATE jobs SET state='failed', error=?, updated_at=? "
                    "WHERE digest=?",
                    (f"upstream failed: {dep[:12]}", now, row["job"]))
                frontier.append(row["job"])

    def _flush_backoff(self, conn, digest: str, now: float) -> None:
        """Persist the remaining monotonic backoff delay into the epoch
        ``not_before`` stamp.  Called at handoff points (release,
        close): without this, a scheduler dropping its in-memory
        deadline would let the next claimant fire the retry early
        whenever the wall clock had stepped forward past the original
        epoch stamp."""
        deadline = self._backoff.pop(digest, None)
        if deadline is None:
            return
        remaining = deadline - time.monotonic()
        if remaining > 0:
            conn.execute(
                "UPDATE jobs SET not_before=? "
                "WHERE digest=? AND state='pending'",
                (now + remaining, digest))

    def release(self, digest: str, note: str = "interrupted",
                owner: Optional[str] = None) -> bool:
        """Return one ``running`` job to ``pending`` (attempt closed as
        interrupted, attempt count refunded); its checkpoint survives.
        With ``owner`` given, only the lease holder may release.  Any
        pending monotonic backoff is persisted, not dropped."""
        now = time.time()
        with self._tx() as conn:
            self._flush_backoff(conn, digest, now)
            query = ("UPDATE jobs SET state='pending', "
                     "attempts=MAX(attempts-1, 0), lease_owner='', "
                     "lease_expires=0, updated_at=? "
                     "WHERE digest=? AND state='running'")
            args: List = [now, digest]
            if owner is not None:
                query += " AND lease_owner=?"
                args.append(owner)
            cur = conn.execute(query, args)
            if cur.rowcount:
                self._close_attempt(conn, digest, "interrupted", note, now)
        return cur.rowcount > 0

    def recover(self) -> int:
        """Startup recovery, lease-scoped: requeue every ``running``
        job whose lease has expired — which includes the lease-less
        claims of a v1-era (or ``lease=0``) scheduler.  Jobs under a
        live lease belong to another scheduler sharing the ledger and
        are left alone, so a newcomer's recovery cannot steal (and
        double-run) in-flight work.  Returns how many were requeued."""
        return len(self.reap_expired())

    # -- campaigns --------------------------------------------------------

    def add_campaign(self, campaign_id: str, name: str, spec: Dict) -> bool:
        with self._tx() as conn:
            cur = conn.execute(
                "INSERT OR IGNORE INTO campaigns (id, name, spec, "
                "created_at) VALUES (?, ?, ?, ?)",
                (campaign_id, name, canonical_json(spec), time.time()))
            return cur.rowcount > 0

    def link_campaign(self, campaign_id: str, digest: str,
                      role: str = "") -> None:
        with self._tx() as conn:
            conn.execute(
                "INSERT OR IGNORE INTO campaign_jobs (campaign, job, role) "
                "VALUES (?, ?, ?)", (campaign_id, digest, role))

    def campaigns(self) -> List[Dict]:
        rows = self._conn.execute(
            "SELECT * FROM campaigns ORDER BY created_at").fetchall()
        return [dict(r) for r in rows]

    def campaign(self, campaign_id: str) -> Optional[Dict]:
        row = self._conn.execute(
            "SELECT * FROM campaigns WHERE id=?", (campaign_id,)).fetchone()
        return dict(row) if row else None

    def campaign_roles(self, campaign_id: str) -> List[Tuple[str, str]]:
        """(job digest, role) pairs of one campaign, submission order."""
        rows = self._conn.execute(
            "SELECT job, role FROM campaign_jobs WHERE campaign=? "
            "ORDER BY rowid", (campaign_id,)).fetchall()
        return [(r["job"], r["role"]) for r in rows]

    def campaign_jobs(self, campaign_id: str) -> List[Dict]:
        """Full job rows of one campaign, submission order, in a single
        query (membership primary key -> jobs primary key join).  Each
        row carries the campaign-facing ``role``.  The per-job-lookup
        alternative is O(N) round trips; this is one."""
        rows = self._conn.execute(
            "SELECT jobs.*, campaign_jobs.role AS campaign_role "
            "FROM campaign_jobs JOIN jobs ON jobs.digest = "
            "campaign_jobs.job WHERE campaign_jobs.campaign=? "
            "ORDER BY campaign_jobs.rowid", (campaign_id,)).fetchall()
        out: List[Dict] = []
        for r in rows:
            job = dict(r)
            job["role"] = job.pop("campaign_role")
            out.append(job)
        return out

    # -- meta pointers ----------------------------------------------------

    def set_meta(self, key: str, value: str) -> None:
        """Set a named pointer (e.g. ``catalog:latest`` -> artifact
        digest).  The schema-version key is the store's own; refuse to
        let callers clobber it."""
        if key == "schema_version":
            raise ValueError("schema_version is managed by the store")
        with self._tx() as conn:
            conn.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                (key, value))

    def get_meta(self, key: str) -> Optional[str]:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key=?", (key,)).fetchone()
        return row["value"] if row else None

    # -- telemetry --------------------------------------------------------

    def record_telemetry(self, digest: str, kind: str, data: Dict) -> None:
        with self._tx() as conn:
            conn.execute(
                "INSERT INTO telemetry (job, at, kind, data) "
                "VALUES (?, ?, ?, ?)",
                (digest, time.time(), kind, json.dumps(data)))

    def telemetry_of(self, digest: str) -> List[Dict]:
        rows = self._conn.execute(
            "SELECT at, kind, data FROM telemetry WHERE job=? ORDER BY id",
            (digest,)).fetchall()
        return [{"at": r["at"], "kind": r["kind"],
                 "data": json.loads(r["data"])} for r in rows]

    def attempts_of(self, digest: str) -> List[Dict]:
        rows = self._conn.execute(
            "SELECT * FROM attempts WHERE job=? ORDER BY id",
            (digest,)).fetchall()
        return [dict(r) for r in rows]

    # -- artifacts --------------------------------------------------------

    def _artifact_path(self, digest: str) -> str:
        return os.path.join(self.root, "artifacts", digest[:2], digest)

    def put_artifact(self, data: bytes, kind: str = "") -> str:
        """Store content-addressed bytes; returns the content digest."""
        digest = hashlib.sha256(data).hexdigest()
        path = self._artifact_path(digest)
        if not os.path.exists(path):
            os.makedirs(os.path.dirname(path), exist_ok=True)
            _atomic_write(path, data)
        with self._tx() as conn:
            conn.execute(
                "INSERT OR IGNORE INTO artifacts (digest, kind, size, "
                "created_at) VALUES (?, ?, ?, ?)",
                (digest, kind, len(data), time.time()))
        return digest

    def get_artifact(self, digest: str) -> bytes:
        with open(self._artifact_path(digest), "rb") as fh:
            data = fh.read()
        if hashlib.sha256(data).hexdigest() != digest:
            raise IOError(f"artifact {digest[:12]} content does not match "
                          "its digest (corrupt store)")
        return data

    def link_artifact(self, job: str, name: str, artifact: str) -> None:
        with self._tx() as conn:
            conn.execute(
                "INSERT OR REPLACE INTO job_artifacts (job, name, artifact) "
                "VALUES (?, ?, ?)", (job, name, artifact))

    def artifacts_of(self, job: str) -> Dict[str, str]:
        rows = self._conn.execute(
            "SELECT name, artifact FROM job_artifacts WHERE job=? "
            "ORDER BY name", (job,)).fetchall()
        return {r["name"]: r["artifact"] for r in rows}

    def result_doc(self, job: str) -> Optional[Dict]:
        """The job's ``result.json`` artifact, parsed (None if absent)."""
        named = self.artifacts_of(job)
        if "result.json" not in named:
            return None
        return json.loads(self.get_artifact(named["result.json"]))

    # -- checkpoints ------------------------------------------------------

    def checkpoint_path(self, digest: str) -> str:
        return os.path.join(self.root, "checkpoints", f"{digest}.json")

    def read_checkpoint(self, digest: str) -> Optional[Dict]:
        path = self.checkpoint_path(digest)
        try:
            with open(path, "r") as fh:
                return json.load(fh)
        except FileNotFoundError:
            return None
        except ValueError:
            # Torn writes are impossible (tmp + rename); a JSON error
            # here means foreign bytes.  Ignore and restart the job.
            return None

    def write_checkpoint(self, digest: str, doc: Dict) -> None:
        _atomic_write(self.checkpoint_path(digest),
                      json.dumps(doc).encode("utf-8"))

    def clear_checkpoint(self, digest: str) -> None:
        try:
            os.remove(self.checkpoint_path(digest))
        except FileNotFoundError:
            pass
