"""Job execution: one job kind -> one deterministic result document.

Runs inside :class:`~repro.core.parallel.TaskPool` workers (or inline
for ``jobs=1``).  Workers never open the ledger database — they receive
their payload and dependency result documents over the pipe and write
only their own per-job checkpoint file (atomic tmp + rename), so the
single-writer discipline of the store holds no matter how workers die.

Every executor is a pure function of ``(payload, dep docs)``: re-running
a job — fresh or resumed from its checkpoint — produces byte-identical
``result.json`` content (wall-clock telemetry is scrubbed from the
canonical document before it is stored).
"""

from __future__ import annotations

import hashlib
import os
from typing import Callable, Dict, Optional

from repro.core import serialize as S
from repro.service.jobs import resolve_kernel, verify_environment
from repro.service.store import _atomic_write

# Fields that record wall-clock or cache behaviour, not results; they
# differ between interrupted and uninterrupted runs, so the canonical
# stored documents zero them (raw values travel via telemetry instead).
_SEARCH_STATS_SCRUB = ("elapsed_seconds",)


class JobFailed(RuntimeError):
    """The job ran to completion but its outcome is a failure."""


def worker_context(store_root: str) -> Dict:
    """Per-worker context: where checkpoints live, plus a kernel cache."""
    return {"root": store_root, "kernels": {}}


def _checkpoint_path(context: Dict, digest: str) -> str:
    return os.path.join(context["root"], "checkpoints", f"{digest}.json")


def _load_checkpoint(context: Dict, digest: str, kind: str,
                     decode: Callable) -> Optional[object]:
    """Best-effort checkpoint load; anything unreadable means a fresh
    start (a checkpoint is an optimization, never a correctness input).
    """
    import json

    path = _checkpoint_path(context, digest)
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (FileNotFoundError, ValueError):
        return None
    if doc.get("job_kind") != kind:
        return None
    try:
        return decode(doc["state"])
    except (KeyError, ValueError):
        return None


def _saver(context: Dict, digest: str, kind: str) -> Callable:
    path = _checkpoint_path(context, digest)

    def save(checkpoint) -> None:
        doc = {"job_kind": kind, "state": checkpoint.to_dict()}
        _atomic_write(path, S.canonical_json(doc).encode("utf-8"))

    return save


def _kernel(context: Dict, name: str):
    cache = context.setdefault("kernels", {})
    if name not in cache:
        cache[name] = resolve_kernel(name)
    return cache[name]


# ---------------------------------------------------------------------------
# Executors


def _run_search(context: Dict, digest: str, payload: Dict,
                deps: Dict, policy: Dict) -> Dict:
    import random

    from repro.core import CostConfig, SearchConfig, Stoke
    from repro.core.search import SearchCheckpoint

    spec = _kernel(context, payload["kernel"])
    tests = spec.testcases(random.Random(payload["tests_seed"]),
                           payload["testcases"])
    stoke = Stoke(spec.program, tests, spec.live_outs,
                  CostConfig(eta=payload["eta"], k=payload["k"]),
                  backend=payload["backend"])
    config = SearchConfig(proposals=payload["proposals"],
                          seed=payload["seed"])
    resume = _load_checkpoint(context, digest, "search",
                              SearchCheckpoint.from_dict)
    result = stoke.search(
        config,
        checkpoint_every=int(policy.get("checkpoint_every", 0)),
        on_checkpoint=_saver(context, digest, "search"),
        resume=resume)
    doc = result.to_dict()
    for key in _SEARCH_STATS_SCRUB:
        doc["stats"][key] = 0.0
    # Cache/ordering telemetry depends on where the run was interrupted;
    # it is observability, not a result.
    for key in ("jit_cache", "incremental", "dce_cache", "test_ordering"):
        doc["stats"][key] = {}
    return {"doc": doc, "files": {},
            "telemetry": {"elapsed_seconds": result.stats.elapsed_seconds,
                          "resumed_at": resume.iteration if resume else 0}}


def _run_select(context: Dict, digest: str, payload: Dict,
                deps: Dict, policy: Dict) -> Dict:
    from repro.core.restarts import aggregate
    from repro.core.serialize import search_result_from_dict

    chains = []
    for dep in payload["searches"]:
        if dep not in deps:
            raise JobFailed(f"missing search result {dep[:12]}")
        chains.append(search_result_from_dict(deps[dep]))
    restart = aggregate(chains, jobs=len(chains))
    best = restart.best
    if best.best_correct is None:
        raise JobFailed(
            f"no chain found a correct rewrite "
            f"({len(chains)} chain(s), best cost {best.best_cost:g})")
    spec = _kernel(context, payload["kernel"])
    doc = {
        "version": S.SCHEMA_VERSION,
        "kind": "select_result",
        "kernel": payload["kernel"],
        "eta": S.enc_float(payload["eta"]),
        "best_seed": best.seed,
        "best_correct": S.program_to_dict(best.best_correct),
        "latency": best.best_correct_latency,
        "target_latency": spec.program.latency,
        "speedup": (spec.program.latency / best.best_correct_latency
                    if best.best_correct_latency else None),
        "chains_with_correct": restart.chains_with_correct,
        "chains": len(chains),
    }
    return {"doc": doc,
            "files": {"rewrite.s": best.best_correct.to_text()},
            "telemetry": {"chains_with_correct":
                          restart.chains_with_correct}}


def _rewrite_of(deps: Dict, select_digest: str):
    if select_digest not in deps:
        raise JobFailed(f"missing select result {select_digest[:12]}")
    return S.program_from_dict(deps[select_digest]["best_correct"])


def _run_validate(context: Dict, digest: str, payload: Dict,
                  deps: Dict, policy: Dict) -> Dict:
    from repro.validation.validator import (ValidationCheckpoint,
                                            ValidationConfig, Validator)

    spec = _kernel(context, payload["kernel"])
    rewrite = _rewrite_of(deps, payload["select"])
    validator = Validator(spec.program, rewrite, spec.live_outs,
                          dict(spec.ranges), spec.base_testcase)
    config = ValidationConfig(eta=payload["eta"],
                              max_proposals=payload["max_proposals"],
                              seed=payload["seed"])
    resume = _load_checkpoint(context, digest, "validate",
                              ValidationCheckpoint.from_dict)
    result = validator.validate(
        config,
        checkpoint_every=int(policy.get("checkpoint_every", 0)),
        on_checkpoint=_saver(context, digest, "validate"),
        resume=resume)
    doc = S.validation_result_to_dict(result)
    doc["kernel"] = payload["kernel"]
    doc["eta"] = S.enc_float(payload["eta"])
    return {"doc": doc, "files": {},
            "telemetry": {"samples": result.samples,
                          "evaluations": result.evaluations,
                          "resumed_at": resume.iteration if resume else 0}}


def _run_verify(context: Dict, digest: str, payload: Dict,
                deps: Dict, policy: Dict) -> Dict:
    from repro.verify.certificate import program_digest

    spec = _kernel(context, payload["kernel"])
    rewrite = _rewrite_of(deps, payload["select"])
    # Program identities ride in the result document so downstream
    # consumers (the catalog job foremost) can pin what was verified
    # without re-resolving the kernel or re-reading dep artifacts.
    identity = {
        "target_digest": program_digest(spec.program),
        "rewrite_digest": program_digest(rewrite),
    }

    if payload["engine"] == "uf":
        from repro.verify import check_equivalent_uf

        memory, concrete_gp, _ = verify_environment(payload["kernel"])
        outcome = check_equivalent_uf(spec.program, rewrite,
                                      spec.live_outs, memory=memory,
                                      concrete_gp=concrete_gp)
        doc = {
            "version": S.SCHEMA_VERSION,
            "kind": "verify_result",
            "engine": "uf",
            "kernel": payload["kernel"],
            "eta": S.enc_float(payload["eta"]),
            "proved": bool(outcome.proved),
            **identity,
        }
        return {"doc": doc, "files": {},
                "telemetry": {"proved": bool(outcome.proved)}}

    from repro.verify.bnb import BnBCheckpoint, BnBConfig, BnBVerifier

    memory, concrete_gp, ranges = verify_environment(payload["kernel"])
    domain = payload.get("domain", "separate")
    verifier = BnBVerifier(spec.program, rewrite, spec.live_outs, ranges,
                           memory=memory, concrete_gp=concrete_gp,
                           domain=domain)
    # Workers are (daemonic) pool processes and must not nest pools, so
    # the refinement always runs inline here; campaign parallelism comes
    # from running many verify jobs at once.
    config = BnBConfig(max_boxes=payload["max_boxes"], jobs=1)
    resume = _load_checkpoint(context, digest, "verify",
                              BnBCheckpoint.from_dict)
    if resume is not None and resume.domain != domain:
        # A stale checkpoint from a different domain cannot seed this
        # search; start fresh rather than mixing leaf partitions.
        resume = None
    result = verifier.run(
        config, resume=resume,
        checkpoint_rounds=int(policy.get("checkpoint_rounds", 0)),
        on_checkpoint=_saver(context, digest, "verify"),
        checkpoint_seconds=float(policy.get("checkpoint_seconds", 0.0)))
    cert = verifier.certificate(result, config=config)
    cert_doc = cert.to_dict()
    # Wall time is telemetry; scrub it so certificates are reproducible
    # byte-for-byte across interrupted and uninterrupted runs.
    cert_doc.get("stats", {})["wall_time"] = 0.0
    cert_bytes = S.canonical_json(cert_doc)
    doc = {
        "version": S.SCHEMA_VERSION,
        "kind": "verify_result",
        "engine": "bnb",
        "domain": domain,
        "kernel": payload["kernel"],
        "eta": S.enc_float(payload["eta"]),
        "bound_ulps": S.enc_float(result.bound_ulps),
        "lower_bound": S.enc_float(result.lower_bound),
        "complete": bool(result.complete),
        "termination": result.termination,
        "boxes_explored": result.boxes_explored,
        "boxes_pruned": result.boxes_pruned,
        "leaves": len(result.leaves),
        # The certificate is deterministic (wall time scrubbed above),
        # so its content address belongs in the canonical result: it is
        # how catalog entries pin the exact proof they cite.
        "certificate_digest": hashlib.sha256(
            cert_bytes.encode("utf-8")).hexdigest(),
        **identity,
    }
    return {"doc": doc,
            "files": {"certificate.json": cert_bytes},
            "telemetry": {"wall_time": result.wall_time,
                          "boxes_explored": result.boxes_explored,
                          "boxes_per_second": result.boxes_per_second,
                          "transfer_seconds":
                              result.stats.transfer_seconds,
                          "resumed": resume is not None}}


def _run_catalog(context: Dict, digest: str, payload: Dict,
                 deps: Dict, policy: Dict) -> Dict:
    from repro.catalog.frontier import (CatalogError, assemble_catalog,
                                        catalog_digest)

    cells = [(kernel, S.dec_float(eta), select, verify)
             for kernel, eta, select, verify in payload["cells"]]
    try:
        body = assemble_catalog(cells, deps)
    except CatalogError as exc:
        raise JobFailed(str(exc))
    summary = {
        "digest": catalog_digest(body),
        "kernels": len(body["kernels"]),
        "entries": sum(len(k["entries"])
                       for k in body["kernels"].values()),
        "skipped": len(body["skipped"]),
    }
    # The body IS the result document: the scheduler stores it as
    # canonical JSON, so the result artifact's content address equals
    # catalog_digest(body) and rebuilds dedupe in the artifact store.
    return {"doc": body, "files": {}, "telemetry": summary}


_EXECUTORS = {
    "search": _run_search,
    "select": _run_select,
    "validate": _run_validate,
    "verify": _run_verify,
    "catalog": _run_catalog,
}


def execute_job(context: Dict, item: Dict) -> Dict:
    """TaskPool entry point.  ``item`` carries everything the job needs:
    ``{digest, kind, payload, deps: {digest: result doc}, policy}``.
    Returns ``{doc, files, telemetry}``; raises on failure (the pool
    forwards the error string to the scheduler).
    """
    executor = _EXECUTORS.get(item["kind"])
    if executor is None:
        raise JobFailed(f"unknown job kind {item['kind']!r}")
    return executor(context, item["digest"], item["payload"],
                    item.get("deps", {}), item.get("policy", {}))
