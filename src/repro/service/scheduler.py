"""The scheduler: claims ready jobs, fans them out, survives anything.

One scheduler process owns the ledger.  Each turn it claims runnable
jobs (dependencies done, backoff elapsed), ships them to a
:class:`~repro.core.parallel.TaskPool` with their dependency result
documents, and folds outcomes back into the ledger:

* success  -> artifacts stored (content-addressed), job ``done``,
  checkpoint file deleted;
* error / timeout / worker crash -> bounded retry with exponential
  backoff (``retry_base * 2**(attempt-1)``) while attempts remain,
  ``failed`` (cascading to dependents) after that.  The job's
  checkpoint file survives, so the retry resumes mid-run.

Shutdown is two-stage: the first SIGINT/SIGTERM stops claiming and
drains in-flight jobs (they keep checkpointing); a second signal
releases the in-flight jobs back to ``pending`` and kills the workers.
A SIGKILLed scheduler needs no cooperation at all — the next
scheduler's :meth:`~repro.service.store.Ledger.recover` returns its
orphaned ``running`` jobs to ``pending`` and their checkpoints resume.
"""

from __future__ import annotations

import signal
import time
from typing import Callable, Dict, List, Optional

from repro.core.parallel import TaskOutcome, TaskPool, default_jobs

from repro.service.store import Ledger
from repro.service.worker import execute_job, worker_context


class Scheduler:
    """Dispatch loop over a ledger and a worker pool."""

    def __init__(self, ledger: Ledger, jobs: int = 1,
                 checkpoint_every: int = 500,
                 checkpoint_rounds: int = 4,
                 retry_base: float = 0.25,
                 task_timeout: Optional[float] = None,
                 on_event: Optional[Callable[[str, str, Dict], None]] = None):
        self.ledger = ledger
        self.jobs = jobs if jobs else default_jobs()
        self.policy = {"checkpoint_every": int(checkpoint_every),
                       "checkpoint_rounds": int(checkpoint_rounds)}
        self.retry_base = retry_base
        self.task_timeout = task_timeout
        self.on_event = on_event
        self._pool: Optional[TaskPool] = None
        self._stop = False
        self._abort = False
        self._claimed: Dict[str, Dict] = {}  # digest -> claimed job row

    # -- events -----------------------------------------------------------

    def _emit(self, digest: str, event: str, info: Dict) -> None:
        if self.on_event is not None:
            self.on_event(digest, event, info)

    # -- signals ----------------------------------------------------------

    def _on_signal(self, signum, frame) -> None:
        if self._stop:
            self._abort = True
        self._stop = True

    # -- dispatch ---------------------------------------------------------

    def _submit(self, pool: TaskPool, job: Dict) -> None:
        import json

        digest = job["digest"]
        deps: Dict[str, Dict] = {}
        for dep in self.ledger.deps_of(digest):
            doc = self.ledger.result_doc(dep)
            if doc is None:
                self.ledger.fail(digest,
                                 f"missing dependency result {dep[:12]}",
                                 retry_in=None)
                self._emit(digest, "failed",
                           {"error": "missing dependency result"})
                return
            deps[dep] = doc
        item = {
            "digest": digest,
            "kind": job["kind"],
            "payload": json.loads(job["payload"]),
            "deps": deps,
            "policy": dict(self.policy),
        }
        self._claimed[digest] = job
        self._emit(digest, "start",
                   {"kind": job["kind"], "attempt": job["attempts"]})
        pool.submit(digest, item, timeout=self.task_timeout)

    def _absorb(self, outcome: TaskOutcome) -> None:
        digest = str(outcome.key)
        job = self._claimed.pop(digest, None) or self.ledger.job(digest)
        if outcome.ok:
            value = outcome.value or {}
            doc = value.get("doc", {})
            from repro.core.serialize import canonical_json

            art = self.ledger.put_artifact(
                canonical_json(doc).encode("utf-8"), kind="result")
            self.ledger.link_artifact(digest, "result.json", art)
            for name, text in (value.get("files") or {}).items():
                file_digest = self.ledger.put_artifact(
                    text.encode("utf-8"), kind="file")
                self.ledger.link_artifact(digest, name, file_digest)
            telemetry = dict(value.get("telemetry") or {})
            telemetry["scheduler_elapsed"] = outcome.elapsed
            self.ledger.record_telemetry(digest, "attempt", telemetry)
            self.ledger.finish(digest)
            self.ledger.clear_checkpoint(digest)
            self._emit(digest, "done", {"elapsed": outcome.elapsed})
            return
        attempt = (job or {}).get("attempts", 1)
        # Worker crashes and timeouts retry exactly like task errors:
        # the checkpoint file survives, so the retry resumes.
        retry_in = self.retry_base * (2 ** max(attempt - 1, 0))
        state = self.ledger.fail(digest, f"{outcome.kind}: {outcome.error}",
                                 retry_in=retry_in)
        self.ledger.record_telemetry(
            digest, "failure",
            {"kind": outcome.kind, "error": outcome.error,
             "attempt": attempt, "elapsed": outcome.elapsed})
        self._emit(digest, "retry" if state == "pending" else "failed",
                   {"kind": outcome.kind, "error": outcome.error,
                    "attempt": attempt})

    # -- the loop ---------------------------------------------------------

    def run(self, until_idle: bool = True,
            poll_interval: float = 0.25) -> Dict[str, int]:
        """Serve jobs until the ledger is idle (or drained by signals).

        Returns the final job-state counts.  ``until_idle=False`` keeps
        polling for new submissions until a signal arrives.
        """
        released = self.ledger.recover()
        if released:
            self._emit("", "recovered", {"jobs": released})
        self._stop = False
        self._abort = False
        old_int = signal.signal(signal.SIGINT, self._on_signal)
        old_term = signal.signal(signal.SIGTERM, self._on_signal)
        pool = TaskPool(worker_context, self.ledger.root, execute_job,
                        jobs=self.jobs, task_timeout=self.task_timeout)
        self._pool = pool
        try:
            while True:
                claimed_now = 0
                if not self._stop:
                    free = self.jobs - len(self._claimed)
                    for job in self.ledger.claim_ready(free):
                        self._submit(pool, job)
                        claimed_now += 1
                outcomes = pool.poll(timeout=poll_interval)
                for outcome in outcomes:
                    self._absorb(outcome)
                if self._abort:
                    break
                if self._stop and not self._claimed:
                    break
                if until_idle and not self._claimed and not claimed_now:
                    counts = self.ledger.counts()
                    if counts["pending"] == 0 and counts["running"] == 0:
                        break
                if not self._claimed and not claimed_now and not outcomes:
                    # Nothing in flight and nothing runnable: a backoff
                    # (or, with until_idle=False, a future submission) is
                    # what we're waiting on — don't spin hot.
                    time.sleep(min(poll_interval, 0.05))
        finally:
            # Jobs still in flight (abort path) go back to pending; their
            # checkpoints resume under the next scheduler.
            for digest in list(self._claimed):
                self.ledger.release(digest, note="drain")
                self._emit(digest, "released", {})
            self._claimed.clear()
            pool.close()
            self._pool = None
            signal.signal(signal.SIGINT, old_int)
            signal.signal(signal.SIGTERM, old_term)
        return self.ledger.counts()
