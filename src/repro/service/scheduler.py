"""The scheduler: leases ready jobs, fans them out, survives anything.

Any number of schedulers may share one ledger.  Each turn a scheduler
claims runnable jobs under a worker-id'd *lease* (dependencies done,
backoff elapsed), ships them to its :class:`~repro.service.queue.JobQueue`
with their dependency result documents, heartbeats the leases it holds,
reaps leases other schedulers let expire, and folds outcomes back in:

* success  -> artifacts stored (content-addressed), job ``done``,
  checkpoint file deleted;
* error / timeout / worker crash -> bounded retry with exponential
  backoff (``retry_base * 2**(n-1)``, computed from the ledger's own
  attempt count inside the failing transaction) while attempts remain,
  ``failed`` (cascading to dependents) after that.  The job's
  checkpoint file survives, so the retry resumes mid-run.
* unreadable dependency result -> retried with the same backoff (a
  transiently missing or corrupt artifact heals); failed permanently
  only when the dependency job itself is ``failed``.

Completion calls are owner-guarded in the store, so a scheduler whose
lease expired (a long GC pause, a partitioned host) cannot clobber the
job's new owner; it observes the lost lease at its next heartbeat and
discards the stale execution.

Shutdown is two-stage: the first SIGINT/SIGTERM stops claiming and
drains in-flight jobs (they keep checkpointing); a second signal
releases the in-flight jobs back to ``pending`` and kills the workers.
A SIGKILLed scheduler needs no cooperation at all — its leases expire,
any surviving scheduler's reaper requeues the jobs, and their
checkpoints resume bit-identically elsewhere.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import threading
import time
import uuid
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.core.parallel import TaskOutcome, default_jobs
from repro.core.serialize import canonical_json

from repro.service.queue import JobQueue, LocalQueue
from repro.service.store import DEFAULT_LEASE, Ledger


def default_worker_id() -> str:
    """A cluster-unique lease owner id: host, pid, and a nonce (so a
    restarted process never inherits its predecessor's live leases)."""
    return (f"{socket.gethostname()}-{os.getpid()}-"
            f"{uuid.uuid4().hex[:8]}")


class LocalSource:
    """Scheduler-facing view of a shared-store :class:`Ledger`.

    This is the job-source seam: the scheduler only ever talks to one
    of these (or to :class:`repro.service.agent.RemoteSource`, its
    HTTP twin), so the same dispatch loop serves an in-process pool on
    the store host and a pull-worker fleet across the network.
    """

    def __init__(self, ledger: Ledger):
        self.ledger = ledger
        self.root = ledger.root

    def startup(self) -> int:
        return self.ledger.recover()

    def reap(self) -> List[str]:
        return self.ledger.reap_expired()

    def claim(self, owner: str, limit: int, lease: float) -> List[Dict]:
        return [
            {"digest": row["digest"], "kind": row["kind"],
             "payload": json.loads(row["payload"]),
             "attempts": row["attempts"]}
            for row in self.ledger.claim_ready(limit, owner=owner,
                                               lease=lease)
        ]

    def dependency_docs(self, digest: str
                        ) -> Tuple[str, str, Optional[Dict]]:
        """Resolve a claimed job's dependency result documents.

        Returns ``('ok', '', docs)``, ``('retry', reason, None)`` for a
        transiently unreadable result (missing or corrupt artifact
        file — it may heal, or another node may restore it), or
        ``('fatal', reason, None)`` when the dependency job itself is
        failed or unknown.
        """
        docs: Dict[str, Dict] = {}
        for dep in self.ledger.deps_of(digest):
            try:
                doc = self.ledger.result_doc(dep)
            except (OSError, ValueError):
                doc = None
            if doc is None:
                row = self.ledger.job(dep)
                if row is None:
                    return "fatal", f"unknown dependency {dep[:12]}", None
                if row["state"] == "failed":
                    return ("fatal", f"dependency failed: {dep[:12]}",
                            None)
                return ("retry",
                        f"dependency result {dep[:12]} unreadable", None)
            docs[dep] = doc
        return "ok", "", docs

    def heartbeat(self, owner: str, digests: List[str],
                  lease: float) -> Set[str]:
        return set(self.ledger.heartbeat(digests, owner, lease))

    def heartbeater(self) -> "_ThreadHeartbeat":
        """A thread-confined heartbeat channel.

        SQLite connections must not cross threads, so the scheduler's
        heartbeat thread gets its own connection to the same store
        rather than sharing this source's ledger."""
        return _ThreadHeartbeat(self.root)

    def succeed(self, digest: str, value: Dict, elapsed: float,
                owner: str) -> bool:
        doc = value.get("doc", {})
        kind = "catalog" if doc.get("kind") == "catalog" else "result"
        art = self.ledger.put_artifact(
            canonical_json(doc).encode("utf-8"), kind=kind)
        self.ledger.link_artifact(digest, "result.json", art)
        if kind == "catalog":
            # A finished catalog job is the sweep's terminal stage;
            # advance the serving head so readers pick it up.
            self.ledger.set_meta("catalog:latest", art)
        for name, text in (value.get("files") or {}).items():
            file_digest = self.ledger.put_artifact(
                text.encode("utf-8"), kind="file")
            self.ledger.link_artifact(digest, name, file_digest)
        telemetry = dict(value.get("telemetry") or {})
        telemetry["scheduler_elapsed"] = elapsed
        self.ledger.record_telemetry(digest, "attempt", telemetry)
        applied = self.ledger.finish(digest, owner=owner)
        if applied:
            self.ledger.clear_checkpoint(digest)
        return applied

    def fail_attempt(self, digest: str, error: str, retry_base: float,
                     owner: str) -> Dict:
        return self.ledger.fail_attempt(digest, error, retry_base,
                                        owner=owner)

    def fail_hard(self, digest: str, error: str) -> str:
        return self.ledger.fail(digest, error, retry_in=None)

    def record_failure(self, digest: str, data: Dict) -> None:
        self.ledger.record_telemetry(digest, "failure", data)

    def release(self, digest: str, owner: str, note: str) -> bool:
        return self.ledger.release(digest, note=note, owner=owner)

    def counts(self) -> Dict[str, int]:
        return self.ledger.counts()

    def close(self) -> None:
        pass


class _ThreadHeartbeat:
    """Heartbeat channel owned by a single thread: opens its own
    :class:`Ledger` lazily (in the calling thread) and renews leases
    through it."""

    def __init__(self, root: str):
        self._root = root
        self._ledger: Optional[Ledger] = None

    def __call__(self, owner: str, digests: List[str],
                 lease: float) -> Set[str]:
        if self._ledger is None:
            self._ledger = Ledger(self._root)
        return set(self._ledger.heartbeat(digests, owner, lease))

    def close(self) -> None:
        if self._ledger is not None:
            self._ledger.close()
            self._ledger = None


class Scheduler:
    """Dispatch loop over a job source and an execution queue.

    ``ledger`` may be a :class:`Ledger` (wrapped in a
    :class:`LocalSource`) or any object with the source interface.
    ``queue`` defaults to a :class:`LocalQueue` built over the source's
    root; pass one explicitly to share it or to substitute a test
    double.  ``dispatch=False`` turns the scheduler into a pure
    coordinator — it reaps expired leases, serves events, and waits,
    while fleet agents do the executing.
    """

    def __init__(self, ledger, jobs: int = 1,
                 checkpoint_every: int = 500,
                 checkpoint_rounds: int = 4,
                 checkpoint_seconds: float = 1.0,
                 retry_base: float = 0.25,
                 task_timeout: Optional[float] = None,
                 on_event: Optional[Callable[[str, str, Dict], None]] = None,
                 queue: Optional[JobQueue] = None,
                 worker_id: Optional[str] = None,
                 lease: float = DEFAULT_LEASE,
                 dispatch: bool = True):
        if isinstance(ledger, Ledger):
            self.source = LocalSource(ledger)
            self.ledger: Optional[Ledger] = ledger
        else:
            self.source = ledger
            self.ledger = getattr(ledger, "ledger", None)
        self.jobs = jobs if jobs else default_jobs()
        self.policy = {"checkpoint_every": int(checkpoint_every),
                       "checkpoint_rounds": int(checkpoint_rounds),
                       "checkpoint_seconds": float(checkpoint_seconds)}
        self.retry_base = retry_base
        self.task_timeout = task_timeout
        self.on_event = on_event
        self.worker_id = worker_id or default_worker_id()
        self.lease = lease
        self.dispatch = dispatch
        self._queue = queue
        self._stop = False
        self._abort = False
        self._claimed: Dict[str, Dict] = {}  # digest -> claimed job
        self._lost: Set[str] = set()  # leases lost mid-flight

    # -- events -----------------------------------------------------------

    def _emit(self, digest: str, event: str, info: Dict) -> None:
        if self.on_event is not None:
            self.on_event(digest, event, info)

    # -- signals ----------------------------------------------------------

    def _on_signal(self, signum, frame) -> None:
        if self._stop:
            self._abort = True
        self._stop = True

    # -- dispatch ---------------------------------------------------------

    def _submit(self, queue: JobQueue, job: Dict) -> bool:
        """Ship one claimed job to the queue; returns whether it was
        dispatched (a dependency problem resolves the claim instead)."""
        digest = job["digest"]
        status, reason, docs = self.source.dependency_docs(digest)
        if status == "fatal":
            self.source.fail_hard(digest, reason)
            self._emit(digest, "failed", {"error": reason})
            return False
        if status == "retry":
            info = self.source.fail_attempt(digest, reason,
                                            self.retry_base,
                                            self.worker_id)
            self._emit(digest,
                       "retry" if info["state"] == "pending" else "failed",
                       {"error": reason, "attempt": info["attempts"]})
            return False
        item = {
            "digest": digest,
            "kind": job["kind"],
            "payload": job["payload"],
            "deps": docs,
            "policy": dict(self.policy),
        }
        self._lost.discard(digest)
        self._claimed[digest] = job
        self._emit(digest, "start",
                   {"kind": job["kind"], "attempt": job["attempts"]})
        queue.submit(digest, item, timeout=self.task_timeout)
        return True

    def _absorb(self, outcome: TaskOutcome) -> None:
        digest = str(outcome.key)
        self._claimed.pop(digest, None)
        if digest in self._lost:
            # The lease was reaped mid-run; the job belongs to another
            # scheduler now and this execution is void.  (Results are
            # deterministic, so nothing of value is discarded.)
            self._lost.discard(digest)
            self._emit(digest, "stale-result", {"kind": outcome.kind})
            return
        if outcome.ok:
            applied = self.source.succeed(digest, outcome.value or {},
                                          outcome.elapsed, self.worker_id)
            self._emit(digest, "done" if applied else "stale-result",
                       {"elapsed": outcome.elapsed})
            return
        info = self.source.fail_attempt(
            digest, f"{outcome.kind}: {outcome.error}", self.retry_base,
            self.worker_id)
        self.source.record_failure(
            digest,
            {"kind": outcome.kind, "error": outcome.error,
             "attempt": info["attempts"], "elapsed": outcome.elapsed})
        self._emit(digest,
                   "retry" if info["state"] == "pending" else "failed",
                   {"kind": outcome.kind, "error": outcome.error,
                    "attempt": info["attempts"]})

    def _heartbeat(self) -> None:
        digests = [d for d in self._claimed if d not in self._lost]
        if not digests:
            return
        kept = self.source.heartbeat(self.worker_id, digests, self.lease)
        for digest in digests:
            if digest not in kept:
                # Cannot cancel the in-flight execution; mark it void
                # so its eventual outcome is dropped (the store's owner
                # guard rejects it anyway).
                self._lost.add(digest)
                self._emit(digest, "lease-lost", {})

    def _heartbeat_loop(self, stop: "threading.Event") -> None:
        """Renew leases from a background thread.

        A synchronous queue executes inside ``submit()``, so the main
        loop cannot heartbeat mid-job; this thread does, over its own
        store connection, which lets inline execution hold the same
        short lease as everyone else.  A SIGKILL stops the thread with
        the process, the leases expire on schedule, and a surviving
        scheduler reaps the jobs promptly.
        """
        channel = self.source.heartbeater()
        try:
            period = max(self.lease / 3.0, 0.05)
            while not stop.wait(period):
                digests = [d for d in list(self._claimed)
                           if d not in self._lost]
                if not digests:
                    continue
                try:
                    kept = channel(self.worker_id, digests, self.lease)
                except Exception:
                    continue  # transient store contention; next beat
                for digest in digests:
                    # Re-check _claimed: the main thread may have
                    # absorbed the outcome (clearing the lease) between
                    # our snapshot and the renewal.
                    if digest not in kept and digest in self._claimed:
                        self._lost.add(digest)
        finally:
            channel.close()

    # -- the loop ---------------------------------------------------------

    def run(self, until_idle: bool = True,
            poll_interval: float = 0.25) -> Dict[str, int]:
        """Serve jobs until the ledger is idle (or drained by signals).

        Returns the final job-state counts.  ``until_idle=False`` keeps
        polling for new submissions until a signal arrives.  Idle means
        nothing pending *and* nothing running anywhere — jobs leased by
        other schedulers count, so a fleet member never exits while a
        peer still works.
        """
        requeued = self.source.startup()
        if requeued:
            self._emit("", "recovered", {"jobs": requeued})
        self._stop = False
        self._abort = False
        self._lost.clear()
        old_int = signal.signal(signal.SIGINT, self._on_signal)
        old_term = signal.signal(signal.SIGTERM, self._on_signal)
        queue = self._queue
        owns_queue = queue is None
        if owns_queue:
            queue = LocalQueue(self.source.root, jobs=self.jobs,
                               task_timeout=self.task_timeout)
        hb_thread: Optional[threading.Thread] = None
        hb_stop = threading.Event()
        if self.dispatch and queue.synchronous:
            # Inline execution blocks this thread inside submit(); keep
            # the leases alive from a sidecar thread instead.
            hb_thread = threading.Thread(target=self._heartbeat_loop,
                                         args=(hb_stop,),
                                         name="lease-heartbeat",
                                         daemon=True)
            hb_thread.start()
        heartbeat_every = max(self.lease / 3.0, 0.05)
        last_heartbeat = time.monotonic()
        try:
            while True:
                reaped = self.source.reap()
                for digest in reaped:
                    self._emit(digest, "reaped", {})
                claimed_now = 0
                if self.dispatch and not self._stop:
                    free = queue.jobs - len(self._claimed)
                    for job in self.source.claim(self.worker_id, free,
                                                 self.lease):
                        if self._submit(queue, job):
                            claimed_now += 1
                if hb_thread is None and \
                        time.monotonic() - last_heartbeat >= heartbeat_every:
                    self._heartbeat()
                    last_heartbeat = time.monotonic()
                outcomes = queue.poll(timeout=poll_interval)
                for outcome in outcomes:
                    self._absorb(outcome)
                if self._abort:
                    break
                if self._stop and not self._claimed:
                    break
                if until_idle and not self._claimed and not claimed_now:
                    counts = self.source.counts()
                    if counts["pending"] == 0 and counts["running"] == 0:
                        break
                if not self._claimed and not claimed_now and not outcomes:
                    # Nothing in flight and nothing runnable: a backoff,
                    # a peer's lease, or (with until_idle=False) a
                    # future submission is what we're waiting on —
                    # don't spin hot.
                    time.sleep(min(poll_interval, 0.05))
        finally:
            if hb_thread is not None:
                hb_stop.set()
                hb_thread.join(timeout=5.0)
            # Jobs still in flight (abort path) go back to pending; their
            # checkpoints resume under the next scheduler.
            for digest in list(self._claimed):
                if digest not in self._lost and \
                        self.source.release(digest, self.worker_id,
                                            "drain"):
                    self._emit(digest, "released", {})
            self._claimed.clear()
            self._lost.clear()
            if owns_queue:
                queue.close()
            signal.signal(signal.SIGINT, old_int)
            signal.signal(signal.SIGTERM, old_term)
        return self.source.counts()
