"""Campaign service: persistent, resumable optimization jobs.

The service turns one-shot library calls (search, validate, verify) into
durable *jobs* in a crash-safe SQLite ledger with a content-addressed
artifact store, shared by any number of schedulers and fleet agents:

* :mod:`repro.service.store` — the ledger and artifact store; claims
  are worker-id'd leases with heartbeats, so a dead node's jobs are
  requeued (attempt refunded) once its leases expire.
* :mod:`repro.service.jobs` — job kinds, payload schemas, and the
  content digests that give every job its identity.
* :mod:`repro.service.worker` — executes one job in a worker process,
  checkpointing so an interrupted job resumes bit-identically.
* :mod:`repro.service.queue` — pluggable execution backends; the
  in-process :class:`~repro.core.parallel.TaskPool` queue is the
  default.
* :mod:`repro.service.scheduler` — the dispatch loop: claim leases,
  fan out, heartbeat, reap, absorb outcomes.
* :mod:`repro.service.campaign` — expands an eta-sweep x restart matrix
  into a job DAG (search -> select -> validate -> verify).
* :mod:`repro.service.api` — stdlib HTTP front end (REST + SSE) and
  its urllib client.
* :mod:`repro.service.agent` — pull-worker fleet agent, shared-store
  or HTTP mode, with server-synced checkpoints.

Everything is keyed by content: two submissions of the same (kernel,
eta, seed, config) collapse to one job, and a finished job is never
re-run.
"""

from repro.service.campaign import CampaignSpec, plan_campaign, submit_campaign
from repro.service.jobs import JobSpec, job_digest, resolve_kernel
from repro.service.scheduler import Scheduler
from repro.service.store import Ledger

__all__ = [
    "CampaignSpec",
    "JobSpec",
    "Ledger",
    "Scheduler",
    "job_digest",
    "plan_campaign",
    "resolve_kernel",
    "submit_campaign",
]
