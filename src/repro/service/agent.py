"""Pull-worker fleet agent: execute leased jobs on a remote host.

An agent is the same :class:`~repro.service.scheduler.Scheduler` loop as
``repro serve``, pointed at a different job source:

* **shared-store mode** (``repro agent --store DIR``): the host mounts
  the store directory; the agent opens the ledger directly and is just
  another scheduler in the fleet.
* **HTTP mode** (``repro agent --url http://host:port``): the host has
  no access to the store at all.  :class:`RemoteSource` speaks the
  agent surface of :class:`~repro.service.api.ApiServer` — claim leases
  (dependency documents and the last uploaded checkpoint ride along in
  the claim response), heartbeat while running, upload results — and
  executes through the ordinary local :class:`~repro.service.queue.
  LocalQueue` over a scratch directory.

Checkpoint sync makes HTTP agents crash-equivalent to local ones: the
claim response carries the job's last uploaded checkpoint (written into
the scratch directory before the job starts, so ``worker.execute_job``
resumes from it), and every heartbeat uploads the checkpoint file if it
changed since the last sync.  Kill the agent at any instant and the
server still holds a recent checkpoint; once the lease expires the job
re-runs elsewhere from that checkpoint, bit-identical by the resume
guarantees of the underlying engines.

Network hiccups are never treated as lost leases — only an explicit
heartbeat response that omits a digest is.  A server outage therefore
stalls an agent (it keeps executing and retrying) rather than making
it abandon work the server still considers leased to it.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.core.serialize import canonical_json

from repro.service.api import ServiceClient, ServiceError
from repro.service.scheduler import Scheduler
from repro.service.store import DEFAULT_LEASE, Ledger, _atomic_write


class RemoteSource:
    """Scheduler job source over the service HTTP API.

    ``workdir`` is this agent's scratch root: workers read and write
    checkpoints under ``workdir/checkpoints`` exactly as they would on
    the store host, and this source keeps those files in sync with the
    server (download on claim, upload on heartbeat and release).
    """

    def __init__(self, client: ServiceClient, workdir: str,
                 retry_base: float = 0.25):
        self.client = client
        self.root = os.path.abspath(workdir)
        self.retry_base = retry_base
        os.makedirs(os.path.join(self.root, "checkpoints"), exist_ok=True)
        self._lock = threading.Lock()
        self._deps: Dict[str, Dict] = {}  # digest -> dep result docs
        self._uploaded: Dict[str, str] = {}  # digest -> sha of last sync

    # -- local checkpoint files ------------------------------------------

    def _checkpoint_path(self, digest: str) -> str:
        return os.path.join(self.root, "checkpoints", f"{digest}.json")

    def _drop(self, digest: str) -> None:
        with self._lock:
            self._deps.pop(digest, None)
            self._uploaded.pop(digest, None)
        try:
            os.remove(self._checkpoint_path(digest))
        except OSError:
            pass

    def _sync_checkpoints(self, owner: str, digests: List[str]) -> None:
        """Upload any checkpoint file that changed since its last sync."""
        for digest in digests:
            try:
                with open(self._checkpoint_path(digest), "rb") as fh:
                    data = fh.read()
            except OSError:
                continue
            sha = hashlib.sha256(data).hexdigest()
            with self._lock:
                if self._uploaded.get(digest) == sha:
                    continue
            try:
                doc = json.loads(data)
            except ValueError:
                continue
            try:
                if self.client.put_checkpoint(digest, owner, doc):
                    with self._lock:
                        self._uploaded[digest] = sha
            except ServiceError:
                pass  # retried on the next heartbeat

    # -- source protocol --------------------------------------------------

    def startup(self) -> int:
        return 0  # recovery belongs to the store-side reaper

    def reap(self) -> List[str]:
        return []  # ditto

    def claim(self, owner: str, limit: int, lease: float) -> List[Dict]:
        try:
            granted = self.client.claim(owner, limit, lease,
                                        retry_base=self.retry_base)
        except ServiceError:
            return []  # server unreachable: try again next turn
        jobs: List[Dict] = []
        for job in granted:
            digest = job["digest"]
            with self._lock:
                self._deps[digest] = job.get("deps") or {}
            checkpoint = job.get("checkpoint")
            path = self._checkpoint_path(digest)
            if checkpoint is not None:
                data = canonical_json(checkpoint).encode("utf-8")
                _atomic_write(path, data)
                with self._lock:
                    self._uploaded[digest] = \
                        hashlib.sha256(data).hexdigest()
            else:
                # No server-side checkpoint: scrub any stale local one
                # so the job starts fresh, as it would on the store host.
                try:
                    os.remove(path)
                except OSError:
                    pass
                with self._lock:
                    self._uploaded.pop(digest, None)
            jobs.append({"digest": digest, "kind": job["kind"],
                         "payload": job["payload"],
                         "attempts": job["attempts"]})
        return jobs

    def dependency_docs(self, digest: str
                        ) -> Tuple[str, str, Optional[Dict]]:
        # Triage already happened server-side at claim time; a granted
        # job always arrives with its dependency documents.
        return "ok", "", self._deps.get(digest, {})

    def heartbeat(self, owner: str, digests: List[str],
                  lease: float) -> Set[str]:
        self._sync_checkpoints(owner, digests)
        try:
            kept = set(self.client.heartbeat(owner, digests, lease))
        except ServiceError:
            # Unreachable server is not a lost lease; keep working and
            # let the next heartbeat (or the server's reaper) decide.
            return set(digests)
        for digest in set(digests) - kept:
            self._drop(digest)
        return kept

    def heartbeater(self) -> "_RemoteHeartbeat":
        return _RemoteHeartbeat(self)

    def succeed(self, digest: str, value: Dict, elapsed: float,
                owner: str) -> bool:
        try:
            applied = self.client.finish(digest, owner, value, elapsed)
        except ServiceError:
            applied = False  # lease will expire; the job re-runs
        self._drop(digest)
        return applied

    def fail_attempt(self, digest: str, error: str, retry_base: float,
                     owner: str) -> Dict:
        self._drop(digest)
        try:
            return self.client.fail(digest, owner, error,
                                    retry_base=retry_base)
        except ServiceError:
            return {"state": "pending", "attempts": 0, "retry_in": None}

    def fail_hard(self, digest: str, error: str) -> str:
        self._drop(digest)
        try:
            return self.client.fail(digest, "", error, hard=True)["state"]
        except ServiceError:
            return "failed"

    def record_failure(self, digest: str, data: Dict) -> None:
        try:
            self.client.telemetry(digest, "failure", data)
        except ServiceError:
            pass

    def release(self, digest: str, owner: str, note: str) -> bool:
        # Final checkpoint sync first: the drain handoff should resume
        # from where this agent actually stopped, not its last beat.
        self._sync_checkpoints(owner, [digest])
        try:
            applied = self.client.release(digest, owner, note=note)
        except ServiceError:
            applied = False
        self._drop(digest)
        return applied

    def counts(self) -> Dict[str, int]:
        try:
            return self.client.status()["totals"]
        except ServiceError:
            # Unknown is not idle: report phantom pending work so an
            # until_idle agent rides out a server restart.
            return {"pending": 1, "running": 0, "done": 0, "failed": 0}

    def close(self) -> None:
        pass


class _RemoteHeartbeat:
    """Heartbeat channel for the scheduler's sidecar thread.  HTTP
    requests are independent per call; the source's lock guards the
    shared checkpoint-sync state."""

    def __init__(self, source: RemoteSource):
        self._source = source

    def __call__(self, owner: str, digests: List[str],
                 lease: float) -> Set[str]:
        return self._source.heartbeat(owner, digests, lease)

    def close(self) -> None:
        pass


def run_agent(url: Optional[str] = None, store: Optional[str] = None,
              workdir: Optional[str] = None, jobs: int = 1,
              lease: float = DEFAULT_LEASE,
              checkpoint_every: int = 500, checkpoint_rounds: int = 4,
              checkpoint_seconds: float = 1.0,
              retry_base: float = 0.25,
              task_timeout: Optional[float] = None,
              on_event: Optional[Callable[[str, str, Dict], None]] = None,
              worker_id: Optional[str] = None,
              until_idle: bool = True,
              poll_interval: float = 0.25) -> Dict[str, int]:
    """Run one fleet agent until the service is idle (or signalled).

    Exactly one of ``url`` (HTTP mode) and ``store`` (shared-store
    mode) must be given.  Returns the final job-state counts as the
    agent saw them.
    """
    if (url is None) == (store is None):
        raise ValueError("agent needs exactly one of url= or store=")
    kwargs = dict(jobs=jobs, checkpoint_every=checkpoint_every,
                  checkpoint_rounds=checkpoint_rounds,
                  checkpoint_seconds=checkpoint_seconds,
                  retry_base=retry_base, task_timeout=task_timeout,
                  on_event=on_event, worker_id=worker_id, lease=lease)
    if store is not None:
        with Ledger(store) as ledger:
            scheduler = Scheduler(ledger, **kwargs)
            return scheduler.run(until_idle=until_idle,
                                 poll_interval=poll_interval)
    scratch = workdir or tempfile.mkdtemp(prefix="repro-agent-")
    source = RemoteSource(ServiceClient(url), scratch,
                          retry_base=retry_base)
    scheduler = Scheduler(source, **kwargs)
    return scheduler.run(until_idle=until_idle,
                         poll_interval=poll_interval)
