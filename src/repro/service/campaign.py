"""Campaign planner: eta-sweep x restart matrix -> job DAG.

A campaign names a set of ``(kernel, eta)`` cells; each cell expands to::

    search[0..chains-1]  ->  select  ->  validate  ->  verify
         (independent)       (best-of)    (MCMC bound)  (uf / bnb + cert)

with downstream jobs gated on their upstream's *job-level* success (a
validate job that measures a large error still succeeds — the verdict
lives in its result document; only a crashed or exhausted job blocks
the verify stage).  The verify engine is picked per cell: ``uf``
(equivalence proof) for bit-wise cells (eta == 0), ``bnb`` (sound bound
+ certificate) otherwise.

Job identities are content digests, so submitting an overlapping
campaign — same kernel, more etas; same sweep, higher budget elsewhere —
reuses every job that already exists in the ledger, in whatever state
it is.  Only genuinely new work is added.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.serialize import content_digest, enc_float

from repro.service import jobs as J
from repro.service.store import Ledger

# The per-cell pipeline; every campaign runs these.
DEFAULT_STAGES = ("search", "select", "validate", "verify")
# Plus the optional campaign-wide terminal stage: one catalog job that
# joins every cell's (select, verify) pair into the certified Pareto
# catalog (opt-in — ``--catalog`` — because it gates on *all* cells).
ALL_STAGES = DEFAULT_STAGES + ("catalog",)


@dataclass(frozen=True)
class CampaignSpec:
    """Everything a campaign's jobs are derived from (pure data)."""

    kernels: Tuple[Tuple[str, float], ...]  # ((name, eta), ...)
    chains: int = 1
    proposals: int = 2_000
    testcases: int = 16
    seed: int = 0
    k: float = 1.0
    backend: str = "jit"
    stages: Tuple[str, ...] = DEFAULT_STAGES
    validate_proposals: int = 2_000
    verify_budget: int = 128
    # Abstract domain for bnb verify cells ('separate' | 'relational').
    verify_domain: str = "separate"

    def __post_init__(self):
        if self.verify_domain not in ("separate", "relational"):
            raise ValueError(
                f"unknown verify domain {self.verify_domain!r}")
        if not self.kernels:
            raise ValueError("campaign needs at least one (kernel, eta)")
        if self.chains < 1:
            raise ValueError("campaign needs at least one chain")
        unknown = [s for s in self.stages if s not in ALL_STAGES]
        if unknown:
            raise ValueError(f"unknown stages {unknown} "
                             f"(known: {ALL_STAGES})")
        for stage in self.stages:
            upstream = ALL_STAGES[:ALL_STAGES.index(stage)]
            missing = [u for u in upstream if u not in self.stages]
            if missing:
                raise ValueError(
                    f"stage {stage!r} needs upstream stage(s) {missing}")

    def to_dict(self) -> Dict:
        data = {
            "kernels": [[name, enc_float(eta)] for name, eta in
                        self.kernels],
            "chains": self.chains,
            "proposals": self.proposals,
            "testcases": self.testcases,
            "seed": self.seed,
            "k": self.k,
            "backend": self.backend,
            "stages": list(self.stages),
            "validate_proposals": self.validate_proposals,
            "verify_budget": self.verify_budget,
        }
        # Sparse: the default domain is omitted so existing campaign
        # ids (content digests of this dict) are unchanged.
        if self.verify_domain != "separate":
            data["verify_domain"] = self.verify_domain
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "CampaignSpec":
        from repro.core.serialize import dec_float

        return cls(
            kernels=tuple((name, dec_float(eta))
                          for name, eta in data["kernels"]),
            chains=int(data["chains"]),
            proposals=int(data["proposals"]),
            testcases=int(data["testcases"]),
            seed=int(data["seed"]),
            k=float(data["k"]),
            backend=data["backend"],
            stages=tuple(data["stages"]),
            validate_proposals=int(data["validate_proposals"]),
            verify_budget=int(data["verify_budget"]),
            verify_domain=str(data.get("verify_domain", "separate")),
        )


def campaign_id(spec: CampaignSpec, name: str = "campaign") -> str:
    return content_digest({"name": name, "spec": spec.to_dict()})[:16]


def plan_campaign(spec: CampaignSpec) -> List[J.JobSpec]:
    """Expand the campaign into its job DAG (deterministic order:
    upstream before downstream, cells in declaration order)."""
    plan: List[J.JobSpec] = []
    catalog_cells: List[Tuple[str, float, str, str]] = []
    for name, eta in spec.kernels:
        cell = f"{name}/eta={eta:g}"
        search_digests: List[str] = []
        for i in range(spec.chains):
            job = J.JobSpec(
                "search",
                J.search_payload(name, eta, seed=spec.seed + 1 + i,
                                 proposals=spec.proposals,
                                 testcases=spec.testcases,
                                 tests_seed=spec.seed, k=spec.k,
                                 backend=spec.backend),
                role=f"{cell}/search[{i}]")
            plan.append(job)
            search_digests.append(job.digest)
        if "select" not in spec.stages:
            continue
        select = J.JobSpec(
            "select", J.select_payload(name, eta, search_digests),
            deps=tuple(search_digests), role=f"{cell}/select")
        plan.append(select)
        validate = None
        if "validate" in spec.stages:
            validate = J.JobSpec(
                "validate",
                J.validate_payload(name, eta, select.digest,
                                   max_proposals=spec.validate_proposals,
                                   seed=spec.seed),
                deps=(select.digest,), role=f"{cell}/validate")
            plan.append(validate)
        if "verify" in spec.stages:
            engine = "uf" if eta == 0.0 else "bnb"
            deps = [select.digest]
            if validate is not None:
                deps.append(validate.digest)
            verify = J.JobSpec(
                "verify",
                J.verify_payload(name, eta, select.digest, engine,
                                 max_boxes=spec.verify_budget,
                                 domain=(spec.verify_domain
                                         if engine == "bnb"
                                         else "separate")),
                deps=tuple(deps), role=f"{cell}/verify")
            plan.append(verify)
            catalog_cells.append((name, eta, select.digest,
                                  verify.digest))
    if "catalog" in spec.stages and catalog_cells:
        # One campaign-wide terminal job: depends on every cell's
        # select (for the rewrite + latency) and verify (for the sound
        # bound), so it runs exactly when the sweep is fully certified.
        deps = tuple(d for _, _, sel, ver in catalog_cells
                     for d in (sel, ver))
        plan.append(J.JobSpec(
            "catalog", J.catalog_payload(catalog_cells),
            deps=deps, role="campaign/catalog"))
    return plan


def submit_campaign(ledger: Ledger, spec: CampaignSpec,
                    name: str = "campaign",
                    max_attempts: int = 3) -> Tuple[str, Dict[str, int]]:
    """Plan + record a campaign; returns ``(campaign id, counts)``.

    ``counts['new']`` is how many jobs were actually added;
    ``counts['reused']`` is how many already existed (dedupe hits).
    """
    cid = campaign_id(spec, name)
    ledger.add_campaign(cid, name, spec.to_dict())
    new = reused = 0
    for job in plan_campaign(spec):
        if ledger.add_job(job, max_attempts=max_attempts):
            new += 1
        else:
            reused += 1
        ledger.link_campaign(cid, job.digest, role=job.role)
    return cid, {"jobs": new + reused, "new": new, "reused": reused}


def campaign_cells(ledger: Ledger, cid: str) -> Dict[str, Dict[str, Dict]]:
    """Job rows of one campaign grouped by cell and stage (for status
    displays and harnesses): ``{cell: {stage: job row}}`` where search
    rows appear as ``search[i]``.

    One indexed query (:meth:`Ledger.campaign_jobs` joins membership to
    job rows over the ``campaign_jobs`` primary key), not a per-job
    lookup — status polls against a million-job ledger stay O(campaign).
    """
    cells: Dict[str, Dict[str, Dict]] = {}
    for job in ledger.campaign_jobs(cid):
        cell, _, stage = job["role"].rpartition("/")
        cells.setdefault(cell, {})[stage] = job
    return cells
