"""HTTP front end for the campaign service (stdlib only).

One :class:`ApiServer` exposes a store over REST+JSON so remote users
submit work and remote agents execute it without ever opening the
SQLite database:

User surface::

    POST /v1/jobs                       submit one job (dedupe -> 200)
    POST /v1/campaigns                  submit a campaign (dedupe -> 200)
    GET  /v1/jobs/{digest}              job row + artifacts + attempts
    GET  /v1/jobs/{digest}/artifacts/{name}   raw artifact bytes
    GET  /v1/campaigns/{id}             campaign jobs + states
    GET  /v1/status                     job-state counts + campaigns
    GET  /v1/events                     Server-Sent Events progress feed
    GET  /v1/health                     liveness probe

Catalog surface (read-heavy; served from an in-memory cache)::

    GET  /v1/catalog                    summary, ?full=1 document,
                                        ?kernel=&max_error=&frontier=1
                                        filtered entries
    GET  /v1/catalog/select             ?budget=&workload= assignment
    POST /v1/catalog/build              assemble a campaign's catalog

Agent surface (the HTTP twin of the scheduler's job source)::

    POST /v1/leases                     claim runnable jobs under a lease
    POST /v1/leases/heartbeat           renew leases; learn what was lost
    POST /v1/jobs/{digest}/finish       owner-guarded completion
    POST /v1/jobs/{digest}/fail         record a failing attempt (backoff)
    POST /v1/jobs/{digest}/release      hand a claimed job back
    POST /v1/jobs/{digest}/telemetry    attach observability records
    GET  /v1/jobs/{digest}/checkpoint   last uploaded checkpoint
    PUT  /v1/jobs/{digest}/checkpoint   owner-guarded checkpoint upload

Every request opens its own :class:`~repro.service.store.Ledger`
connection (SQLite connections are thread-confined; WAL keeps the
concurrency honest), so the server composes with any number of local
schedulers and shared-store agents on the same directory.  Submissions
dedupe on content digest exactly like local submissions — a duplicate
``POST`` is a cheap 200, never a second execution.

The progress feed is an :class:`EventBus`: the serving scheduler's
``on_event`` publishes into it, the API handlers publish remote-agent
activity into it, and any number of SSE subscribers drain it (slow
subscribers drop events rather than stall the service).
"""

from __future__ import annotations

import json
import queue
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Iterator, List, Optional, Tuple
from urllib import error as urlerror
from urllib import parse as urlparse
from urllib import request as urlrequest

from repro.catalog import (
    CatalogError,
    build_catalog,
    catalog_summary,
    load_catalog_bytes,
    parse_workload_spec,
    query_catalog,
    resolve_catalog,
    select_for_budget,
    store_catalog,
    wrap_catalog,
)
from repro.service.campaign import CampaignSpec, campaign_cells, \
    submit_campaign
from repro.service.jobs import JOB_KINDS, JobSpec
from repro.service.scheduler import LocalSource
from repro.service.store import DEFAULT_LEASE, Ledger

API_VERSION = "v1"


class EventBus:
    """Fan-out of progress events to any number of subscribers.

    Publishing never blocks: a subscriber whose queue is full (a stalled
    SSE client) loses events, the service does not.
    """

    def __init__(self, capacity: int = 512):
        self._capacity = capacity
        self._subscribers: List["queue.Queue[Dict]"] = []
        self._lock = threading.Lock()

    def publish(self, event: Dict) -> None:
        with self._lock:
            subscribers = list(self._subscribers)
        for sub in subscribers:
            try:
                sub.put_nowait(event)
            except queue.Full:
                pass

    def subscribe(self) -> "queue.Queue[Dict]":
        sub: "queue.Queue[Dict]" = queue.Queue(self._capacity)
        with self._lock:
            self._subscribers.append(sub)
        return sub

    def unsubscribe(self, sub: "queue.Queue[Dict]") -> None:
        with self._lock:
            if sub in self._subscribers:
                self._subscribers.remove(sub)


class _HttpFail(Exception):
    """Internal: abort the request with this status + JSON error."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


_ROUTES: List[Tuple[str, "re.Pattern[str]", str]] = []


def _route(method: str, pattern: str):
    compiled = re.compile(f"^{pattern}$")

    def register(fn):
        _ROUTES.append((method, compiled, fn.__name__))
        return fn

    return register


_DIGEST = r"(?P<digest>[0-9a-f]{6,64})"


class CatalogCache:
    """In-memory read cache of parsed catalog bodies, keyed by artifact
    digest.  Content-addressed keys make invalidation trivial — a
    rebuilt catalog has a new digest, and an unchanged rebuild hits the
    same entry.  LRU with a small capacity: a node serves a handful of
    live catalogs, not thousands, and each body is small.
    """

    def __init__(self, capacity: int = 8):
        self._capacity = capacity
        self._entries: Dict[str, Dict] = {}  # insertion order = LRU
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, digest: str) -> Optional[Dict]:
        with self._lock:
            body = self._entries.pop(digest, None)
            if body is None:
                self.misses += 1
                return None
            self._entries[digest] = body  # re-insert: most recent
            self.hits += 1
            return body

    def put(self, digest: str, body: Dict) -> None:
        with self._lock:
            self._entries.pop(digest, None)
            self._entries[digest] = body
            while len(self._entries) > self._capacity:
                self._entries.pop(next(iter(self._entries)))


class _Handler(BaseHTTPRequestHandler):
    """Routes one request; the server class injects ``root`` and ``bus``."""

    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    # -- plumbing ---------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if self.server.verbose:  # type: ignore[attr-defined]
            BaseHTTPRequestHandler.log_message(self, format, *args)

    def _dispatch(self, method: str) -> None:
        path = self.path.split("?", 1)[0]
        try:
            for route_method, pattern, name in _ROUTES:
                if route_method != method:
                    continue
                match = pattern.match(path)
                if match is None:
                    continue
                getattr(self, name)(**match.groupdict())
                return
            raise _HttpFail(404, f"no such endpoint: {method} {path}")
        except _HttpFail as exc:
            self._send_json({"error": exc.message}, status=exc.status)
        except (ValueError, KeyError) as exc:
            self._send_json({"error": str(exc)}, status=400)
        except BrokenPipeError:
            pass

    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")

    def do_PUT(self) -> None:
        self._dispatch("PUT")

    def _body(self) -> Dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return {}
        raw = self.rfile.read(length)
        try:
            doc = json.loads(raw)
        except ValueError:
            raise _HttpFail(400, "request body is not valid JSON")
        if not isinstance(doc, dict):
            raise _HttpFail(400, "request body must be a JSON object")
        return doc

    def _send_json(self, payload: Dict, status: int = 200) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_bytes(self, data: bytes, content_type: str) -> None:
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _ledger(self) -> Ledger:
        return Ledger(self.server.root)  # type: ignore[attr-defined]

    def _publish(self, digest: str, event: str, info: Dict) -> None:
        self.server.bus.publish(  # type: ignore[attr-defined]
            {"digest": digest, "event": event, "info": info})

    def _query(self) -> Dict[str, str]:
        """Query-string parameters (last value wins)."""
        parts = self.path.split("?", 1)
        if len(parts) == 1:
            return {}
        return {key: values[-1] for key, values in
                urlparse.parse_qs(parts[1]).items()}

    def _resolve(self, ledger: Ledger, digest: str) -> str:
        row = ledger.job(digest)
        if row is not None:
            return digest
        matches = ledger.resolve_prefix(digest)
        if len(matches) == 1:
            return matches[0]
        if matches:
            # Never guess between siblings: show the caller exactly
            # which digests collide so they can extend the prefix.
            shown = ", ".join(m[:16] for m in matches)
            raise _HttpFail(
                409, f"job prefix {digest!r} is ambiguous: matches "
                     f"{shown}")
        raise _HttpFail(404, f"no such job: {digest}")

    # -- catalog surface --------------------------------------------------

    def _catalog_body(self, ledger: Ledger,
                      campaign: Optional[str]) -> Tuple[str, Dict]:
        """Resolve + load the catalog to serve, through the cache."""
        digest = resolve_catalog(ledger, campaign)
        if digest is None:
            where = f"campaign {campaign}" if campaign else "this store"
            raise _HttpFail(
                404, f"no catalog for {where} (run `repro catalog "
                     f"build` or submit with --catalog)")
        cache: CatalogCache = \
            self.server.catalog_cache  # type: ignore[attr-defined]
        body = cache.get(digest)
        if body is None:
            try:
                body = load_catalog_bytes(ledger.get_artifact(digest))
            except FileNotFoundError:
                raise _HttpFail(
                    404, f"catalog artifact {digest[:12]} is missing")
            except (OSError, CatalogError) as exc:
                raise _HttpFail(
                    500, f"catalog artifact {digest[:12]} unreadable: "
                         f"{exc}")
            cache.put(digest, body)
        return digest, body

    @_route("GET", "/v1/catalog")
    def _catalog(self) -> None:
        params = self._query()
        with self._ledger() as ledger:
            digest, body = self._catalog_body(ledger,
                                              params.get("campaign"))
        if params.get("full"):
            self._send_json({"digest": digest,
                             "document": wrap_catalog(body)})
            return
        if "kernel" in params or "max_error" in params:
            max_error = (float(params["max_error"])
                         if "max_error" in params else None)
            try:
                entries = query_catalog(
                    body, kernel=params.get("kernel"),
                    max_error=max_error,
                    frontier_only=bool(params.get("frontier")))
            except CatalogError as exc:
                raise _HttpFail(404, str(exc))
            self._send_json({"digest": digest, "entries": entries})
            return
        self._send_json({"digest": digest,
                         "summary": catalog_summary(body)})

    @_route("GET", "/v1/catalog/select")
    def _catalog_select(self) -> None:
        params = self._query()
        if "budget" not in params:
            raise _HttpFail(400, "select needs a ?budget= error bound")
        budget = float(params["budget"])
        with self._ledger() as ledger:
            digest, body = self._catalog_body(ledger,
                                              params.get("campaign"))
        try:
            workload = parse_workload_spec(
                params.get("workload") or "aek")
            result = select_for_budget(body, workload, budget)
        except CatalogError as exc:
            raise _HttpFail(409, str(exc))
        self._send_json({"digest": digest, **result})

    @_route("POST", "/v1/catalog/build")
    def _catalog_build(self) -> None:
        body = self._body()
        cid = str(body.get("campaign") or "")
        if not cid:
            raise _HttpFail(400, "catalog build needs a campaign id")
        with self._ledger() as ledger:
            try:
                catalog = build_catalog(ledger, cid)
            except CatalogError as exc:
                raise _HttpFail(409, str(exc))
            digest = store_catalog(ledger, catalog, campaign=cid)
        self._publish("", "catalog-built",
                      {"campaign": cid, "digest": digest})
        self._send_json({"digest": digest,
                         "summary": catalog_summary(catalog)})

    # -- user surface -----------------------------------------------------

    @_route("GET", "/v1/health")
    def _health(self) -> None:
        self._send_json({"ok": True, "version": API_VERSION})

    @_route("GET", "/v1/status")
    def _status(self) -> None:
        with self._ledger() as ledger:
            campaigns = [
                {"campaign": row["id"], "name": row["name"],
                 "counts": ledger.counts(campaign=row["id"])}
                for row in ledger.campaigns()]
            payload = {"totals": ledger.counts(), "campaigns": campaigns}
        self._send_json(payload)

    @_route("POST", "/v1/jobs")
    def _submit_job(self) -> None:
        body = self._body()
        kind = body.get("kind")
        payload = body.get("payload")
        if kind not in JOB_KINDS:
            raise _HttpFail(400, f"unknown job kind {kind!r} "
                                 f"(known: {JOB_KINDS})")
        if not isinstance(payload, dict):
            raise _HttpFail(400, "payload must be a JSON object")
        spec = JobSpec(kind, payload,
                       deps=tuple(body.get("deps") or ()),
                       role=str(body.get("role") or ""))
        with self._ledger() as ledger:
            created = ledger.add_job(
                spec, max_attempts=int(body.get("max_attempts") or 3))
            state = ledger.job(spec.digest)["state"]
        if created:
            self._publish(spec.digest, "submitted", {"kind": kind})
        self._send_json({"digest": spec.digest, "created": created,
                         "state": state})

    @_route("POST", "/v1/campaigns")
    def _submit_campaign(self) -> None:
        body = self._body()
        try:
            spec = CampaignSpec.from_dict(body["spec"])
        except KeyError as exc:
            raise _HttpFail(400, f"campaign spec missing field {exc}")
        name = str(body.get("name") or "campaign")
        with self._ledger() as ledger:
            cid, counts = submit_campaign(
                ledger, spec, name=name,
                max_attempts=int(body.get("max_attempts") or 3))
            jobs = [{"digest": digest, "role": role}
                    for digest, role in ledger.campaign_roles(cid)]
        self._publish("", "campaign-submitted",
                      {"campaign": cid, **counts})
        self._send_json({"campaign": cid, "name": name, **counts,
                         "jobs": jobs})

    @_route("GET", f"/v1/jobs/{_DIGEST}")
    def _job(self, digest: str) -> None:
        with self._ledger() as ledger:
            digest = self._resolve(ledger, digest)
            row = ledger.job(digest)
            payload = {
                **row,
                "payload": json.loads(row["payload"]),
                "deps": ledger.deps_of(digest),
                "artifacts": ledger.artifacts_of(digest),
                "attempts_log": ledger.attempts_of(digest),
            }
        self._send_json(payload)

    @_route("GET", f"/v1/jobs/{_DIGEST}/artifacts/(?P<name>[^/]+)")
    def _artifact(self, digest: str, name: str) -> None:
        with self._ledger() as ledger:
            digest = self._resolve(ledger, digest)
            named = ledger.artifacts_of(digest)
            if name not in named:
                raise _HttpFail(
                    404, f"job {digest[:12]} has no artifact {name!r} "
                         f"(has: {', '.join(sorted(named)) or 'none'})")
            data = ledger.get_artifact(named[name])
        content_type = ("application/json" if name.endswith(".json")
                        else "text/plain; charset=utf-8")
        self._send_bytes(data, content_type)

    @_route("GET", "/v1/campaigns/(?P<cid>[0-9a-f]{4,16})")
    def _campaign(self, cid: str) -> None:
        with self._ledger() as ledger:
            row = ledger.campaign(cid)
            if row is None:
                raise _HttpFail(404, f"no such campaign: {cid}")
            jobs = [{"digest": digest, "role": role,
                     **{k: ledger.job(digest)[k]
                        for k in ("kind", "state", "attempts", "error")}}
                    for digest, role in ledger.campaign_roles(cid)]
            payload = {"campaign": cid, "name": row["name"],
                       "spec": json.loads(row["spec"]),
                       "counts": ledger.counts(campaign=cid),
                       "jobs": jobs,
                       "cells": {
                           cell: {stage: job["state"]
                                  for stage, job in stages.items()}
                           for cell, stages in
                           campaign_cells(ledger, cid).items()}}
        self._send_json(payload)

    @_route("GET", "/v1/events")
    def _events(self) -> None:
        bus: EventBus = self.server.bus  # type: ignore[attr-defined]
        sub = bus.subscribe()
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.end_headers()
        try:
            while True:
                try:
                    event = sub.get(timeout=10.0)
                except queue.Empty:
                    self.wfile.write(b": keepalive\n\n")
                    self.wfile.flush()
                    continue
                data = json.dumps(event, sort_keys=True)
                self.wfile.write(f"data: {data}\n\n".encode("utf-8"))
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass
        finally:
            bus.unsubscribe(sub)
        # SSE owns the socket until the client hangs up.
        self.close_connection = True

    # -- agent surface ----------------------------------------------------

    @_route("POST", "/v1/leases")
    def _claim(self) -> None:
        body = self._body()
        owner = str(body.get("owner") or "")
        if not owner:
            raise _HttpFail(400, "lease claims need an owner id")
        limit = int(body["limit"]) if "limit" in body else 1
        lease = (float(body["lease"]) if "lease" in body
                 else DEFAULT_LEASE)
        granted: List[Dict] = []
        with self._ledger() as ledger:
            source = LocalSource(ledger)
            for job in source.claim(owner, limit, lease):
                digest = job["digest"]
                # Resolve dependency documents server-side so agents
                # receive only dispatchable jobs (and the triage of a
                # missing/corrupt dep artifact stays in one place).
                status, reason, docs = source.dependency_docs(digest)
                if status == "fatal":
                    source.fail_hard(digest, reason)
                    self._publish(digest, "failed", {"error": reason})
                    continue
                if status == "retry":
                    info = source.fail_attempt(
                        digest, reason,
                        float(body.get("retry_base") or 0.25), owner)
                    self._publish(
                        digest,
                        "retry" if info["state"] == "pending" else "failed",
                        {"error": reason, "attempt": info["attempts"]})
                    continue
                job["deps"] = docs
                job["checkpoint"] = ledger.read_checkpoint(digest)
                granted.append(job)
                self._publish(digest, "leased",
                              {"owner": owner, "kind": job["kind"],
                               "attempt": job["attempts"]})
        self._send_json({"jobs": granted, "lease": lease})

    @_route("POST", "/v1/leases/heartbeat")
    def _heartbeat(self) -> None:
        body = self._body()
        with self._ledger() as ledger:
            kept = ledger.heartbeat(
                [str(d) for d in body.get("digests") or []],
                str(body.get("owner") or ""),
                float(body.get("lease") or DEFAULT_LEASE))
        self._send_json({"kept": sorted(kept)})

    @_route("POST", f"/v1/jobs/{_DIGEST}/finish")
    def _finish(self, digest: str) -> None:
        body = self._body()
        owner = str(body.get("owner") or "")
        value = body.get("value") or {}
        with self._ledger() as ledger:
            digest = self._resolve(ledger, digest)
            applied = LocalSource(ledger).succeed(
                digest, value, float(body.get("elapsed") or 0.0), owner)
        self._publish(digest, "done" if applied else "stale-result",
                      {"owner": owner})
        self._send_json({"applied": applied})

    @_route("POST", f"/v1/jobs/{_DIGEST}/fail")
    def _fail(self, digest: str) -> None:
        body = self._body()
        owner = str(body.get("owner") or "")
        error = str(body.get("error") or "unknown error")
        with self._ledger() as ledger:
            digest = self._resolve(ledger, digest)
            source = LocalSource(ledger)
            if body.get("hard"):
                state = source.fail_hard(digest, error)
                info = {"state": state, "attempts": 0, "retry_in": None}
            else:
                info = source.fail_attempt(
                    digest, error, float(body.get("retry_base") or 0.25),
                    owner)
        self._publish(digest,
                      "retry" if info["state"] == "pending" else "failed",
                      {"error": error, "attempt": info["attempts"],
                       "owner": owner})
        self._send_json(info)

    @_route("POST", f"/v1/jobs/{_DIGEST}/release")
    def _release(self, digest: str) -> None:
        body = self._body()
        with self._ledger() as ledger:
            digest = self._resolve(ledger, digest)
            applied = ledger.release(
                digest, note=str(body.get("note") or "released"),
                owner=str(body.get("owner") or "") or None)
        if applied:
            self._publish(digest, "released",
                          {"owner": str(body.get("owner") or "")})
        self._send_json({"applied": applied})

    @_route("POST", f"/v1/jobs/{_DIGEST}/telemetry")
    def _telemetry(self, digest: str) -> None:
        body = self._body()
        with self._ledger() as ledger:
            digest = self._resolve(ledger, digest)
            ledger.record_telemetry(digest,
                                    str(body.get("kind") or "event"),
                                    body.get("data") or {})
        self._send_json({"ok": True})

    @_route("GET", f"/v1/jobs/{_DIGEST}/checkpoint")
    def _get_checkpoint(self, digest: str) -> None:
        with self._ledger() as ledger:
            digest = self._resolve(ledger, digest)
            doc = ledger.read_checkpoint(digest)
        if doc is None:
            raise _HttpFail(404, f"job {digest[:12]} has no checkpoint")
        self._send_json({"checkpoint": doc})

    @_route("PUT", f"/v1/jobs/{_DIGEST}/checkpoint")
    def _put_checkpoint(self, digest: str) -> None:
        body = self._body()
        owner = str(body.get("owner") or "")
        doc = body.get("checkpoint")
        if not isinstance(doc, dict):
            raise _HttpFail(400, "checkpoint must be a JSON object")
        with self._ledger() as ledger:
            digest = self._resolve(ledger, digest)
            row = ledger.job(digest)
            # Owner guard: a reaped agent must not clobber the new
            # owner's resume state.
            if row["state"] != "running" or row["lease_owner"] != owner:
                self._send_json({"applied": False}, status=409)
                return
            ledger.write_checkpoint(digest, doc)
        self._send_json({"applied": True})


class ApiServer:
    """Threaded HTTP server over one store directory.

    ``port=0`` picks a free port (see :attr:`port` after construction).
    Run with :meth:`start` (background thread) or :meth:`serve_forever`.
    """

    def __init__(self, root: str, host: str = "127.0.0.1", port: int = 0,
                 bus: Optional[EventBus] = None, verbose: bool = False):
        self.bus = bus if bus is not None else EventBus()
        self.catalog_cache = CatalogCache()
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.root = root  # type: ignore[attr-defined]
        self._httpd.bus = self.bus  # type: ignore[attr-defined]
        self._httpd.verbose = verbose  # type: ignore[attr-defined]
        self._httpd.catalog_cache = \
            self.catalog_cache  # type: ignore[attr-defined]
        self.host, self.port = self._httpd.server_address[:2]
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ApiServer":
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        name="api-server", daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self._httpd.serve_forever()

    def stop(self) -> None:
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "ApiServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


# ---------------------------------------------------------------------------
# Client


class ServiceError(RuntimeError):
    """An HTTP request the service rejected (4xx/5xx with JSON error)."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceClient:
    """Minimal urllib client for :class:`ApiServer`.

    Mirrors the local CLI verbs (submit/status/artifacts) plus the
    agent RPCs; everything is plain JSON over HTTP, no sessions, no
    state beyond the base URL.
    """

    def __init__(self, url: str, timeout: float = 30.0):
        self.url = url.rstrip("/")
        self.timeout = timeout

    # -- plumbing ---------------------------------------------------------

    def _request(self, method: str, path: str,
                 body: Optional[Dict] = None, raw: bool = False):
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        req = urlrequest.Request(f"{self.url}{path}", data=data,
                                 headers=headers, method=method)
        try:
            with urlrequest.urlopen(req, timeout=self.timeout) as resp:
                payload = resp.read()
        except urlerror.HTTPError as exc:
            try:
                message = json.loads(exc.read()).get("error", str(exc))
            except (ValueError, AttributeError):
                message = str(exc)
            raise ServiceError(exc.code, message) from None
        except urlerror.URLError as exc:
            raise ServiceError(0, f"service unreachable: {exc.reason}") \
                from None
        if raw:
            return payload
        return json.loads(payload) if payload else {}

    # -- user surface -----------------------------------------------------

    def health(self) -> Dict:
        return self._request("GET", "/v1/health")

    def status(self) -> Dict:
        return self._request("GET", "/v1/status")

    def submit_job(self, kind: str, payload: Dict, deps=(),
                   role: str = "", max_attempts: int = 3) -> Dict:
        return self._request("POST", "/v1/jobs", {
            "kind": kind, "payload": payload, "deps": list(deps),
            "role": role, "max_attempts": max_attempts})

    def submit_campaign(self, spec, name: str = "campaign",
                        max_attempts: int = 3) -> Dict:
        doc = spec.to_dict() if isinstance(spec, CampaignSpec) else spec
        return self._request("POST", "/v1/campaigns", {
            "spec": doc, "name": name, "max_attempts": max_attempts})

    def job(self, digest: str) -> Dict:
        return self._request("GET", f"/v1/jobs/{digest}")

    def campaign(self, cid: str) -> Dict:
        return self._request("GET", f"/v1/campaigns/{cid}")

    def artifact(self, digest: str, name: str) -> bytes:
        return self._request("GET", f"/v1/jobs/{digest}/artifacts/{name}",
                             raw=True)

    # -- catalog surface --------------------------------------------------

    def _catalog_path(self, path: str, params: Dict) -> str:
        # None/"" means "not given"; flags are included only when set
        # by the callers below (the server reads bare truthiness).
        filtered = {k: str(v) for k, v in params.items()
                    if v is not None and v != ""}
        if filtered:
            path += "?" + urlparse.urlencode(filtered)
        return path

    def catalog(self, campaign: Optional[str] = None,
                kernel: Optional[str] = None,
                max_error: Optional[float] = None,
                frontier: bool = False, full: bool = False) -> Dict:
        params: Dict = {"campaign": campaign, "kernel": kernel,
                        "max_error": max_error}
        if frontier:
            params["frontier"] = 1
        if full:
            params["full"] = 1
        return self._request(
            "GET", self._catalog_path("/v1/catalog", params))

    def catalog_select(self, budget: float, workload: str = "aek",
                       campaign: Optional[str] = None) -> Dict:
        return self._request(
            "GET", self._catalog_path("/v1/catalog/select", {
                "budget": budget, "workload": workload,
                "campaign": campaign}))

    def catalog_build(self, campaign: str) -> Dict:
        return self._request("POST", "/v1/catalog/build",
                             {"campaign": campaign})

    def events(self) -> Iterator[Dict]:
        """Yield progress events from the SSE feed until the server
        closes the stream (blocking; run it in its own thread)."""
        req = urlrequest.Request(f"{self.url}/v1/events")
        with urlrequest.urlopen(req, timeout=None) as resp:
            for line in resp:
                line = line.strip()
                if line.startswith(b"data: "):
                    yield json.loads(line[len(b"data: "):])

    # -- agent surface ----------------------------------------------------

    def claim(self, owner: str, limit: int, lease: float,
              retry_base: float = 0.25) -> List[Dict]:
        return self._request("POST", "/v1/leases", {
            "owner": owner, "limit": limit, "lease": lease,
            "retry_base": retry_base})["jobs"]

    def heartbeat(self, owner: str, digests: List[str],
                  lease: float) -> List[str]:
        return self._request("POST", "/v1/leases/heartbeat", {
            "owner": owner, "digests": list(digests),
            "lease": lease})["kept"]

    def finish(self, digest: str, owner: str, value: Dict,
               elapsed: float) -> bool:
        return self._request("POST", f"/v1/jobs/{digest}/finish", {
            "owner": owner, "value": value,
            "elapsed": elapsed})["applied"]

    def fail(self, digest: str, owner: str, error: str,
             retry_base: float = 0.25, hard: bool = False) -> Dict:
        return self._request("POST", f"/v1/jobs/{digest}/fail", {
            "owner": owner, "error": error, "retry_base": retry_base,
            "hard": hard})

    def release(self, digest: str, owner: str,
                note: str = "released") -> bool:
        return self._request("POST", f"/v1/jobs/{digest}/release", {
            "owner": owner, "note": note})["applied"]

    def telemetry(self, digest: str, kind: str, data: Dict) -> None:
        self._request("POST", f"/v1/jobs/{digest}/telemetry",
                      {"kind": kind, "data": data})

    def get_checkpoint(self, digest: str) -> Optional[Dict]:
        try:
            return self._request(
                "GET", f"/v1/jobs/{digest}/checkpoint")["checkpoint"]
        except ServiceError as exc:
            if exc.status == 404:
                return None
            raise

    def put_checkpoint(self, digest: str, owner: str, doc: Dict) -> bool:
        try:
            return self._request("PUT", f"/v1/jobs/{digest}/checkpoint", {
                "owner": owner, "checkpoint": doc})["applied"]
        except ServiceError as exc:
            if exc.status == 409:
                return False
            raise
