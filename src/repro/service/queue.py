"""Pluggable execution queues for the campaign scheduler.

The scheduler's dispatch loop is queue-agnostic: it claims leased jobs
from a :class:`~repro.service.store.Ledger` (or an HTTP job source),
hands each one to a :class:`JobQueue`, and folds
:class:`~repro.core.parallel.TaskOutcome`\\ s back into the ledger.
Every queue implementation runs jobs through the same executor
(:func:`repro.service.worker.execute_job`), so the in-process pool of
``repro serve`` and the pull-worker fleets of ``repro agent`` share one
dispatch path and one set of result/checkpoint semantics.

Queues are deliberately dumb: no retry policy, no ledger access, no
lease awareness.  All of that lives with the scheduler and the store,
which is what makes N schedulers over one ledger coherent.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.parallel import TaskOutcome, TaskPool

from repro.service.worker import execute_job, worker_context


class JobQueue:
    """Interface the scheduler dispatches through.

    ``jobs`` is the queue's concurrency (how many items it will work on
    at once — the scheduler claims no more leases than it has free
    slots).  ``synchronous`` queues execute inside :meth:`submit`
    itself; the scheduler compensates by renewing leases from a sidecar
    heartbeat thread, since its own loop is blocked while the queue
    runs.
    """

    jobs: int = 1
    synchronous: bool = False

    def submit(self, key: str, item: dict,
               timeout: Optional[float] = None) -> None:
        raise NotImplementedError

    def poll(self, timeout: float = 0.0) -> List[TaskOutcome]:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    def __enter__(self) -> "JobQueue":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class LocalQueue(JobQueue):
    """Execute jobs on this host via a :class:`TaskPool`.

    ``jobs=1`` runs inline (no subprocesses, deterministic serial
    path); ``jobs>1`` fans out over worker processes that each build
    their kernel cache once.  ``root`` is where the workers read and
    write checkpoint files — the store directory for a shared-store
    scheduler, a local scratch directory for a remote agent.
    """

    def __init__(self, root: str, jobs: int = 1,
                 task_timeout: Optional[float] = None):
        self._pool = TaskPool(worker_context, root, execute_job,
                              jobs=jobs, task_timeout=task_timeout)
        self.jobs = self._pool.jobs
        self.synchronous = self._pool.inline

    def submit(self, key: str, item: dict,
               timeout: Optional[float] = None) -> None:
        self._pool.submit(key, item, timeout=timeout)

    def poll(self, timeout: float = 0.0) -> List[TaskOutcome]:
        return self._pool.poll(timeout=timeout)

    def close(self) -> None:
        self._pool.close()
