"""Job kinds, payload schemas, and content-addressed job identity.

A job is a *pure function* of its payload plus the result documents of
its dependencies: running it twice produces bit-identical result
documents (wall-clock telemetry excluded, and scrubbed before anything
is stored).  Its identity is therefore the SHA-256 digest of the
canonical JSON rendering of ``{kind, payload}`` — the ledger dedupes on
it, the artifact store keys checkpoints by it, and a re-submitted
campaign collapses onto whatever jobs already ran.

Payloads contain only JSON scalars.  Runtime *policy* — checkpoint
cadence, worker counts, retry budgets — is deliberately excluded from
the payload (and hence the digest): by the resume bit-identity
guarantees of the search/validate/verify layers, policy cannot change a
job's result, only how it gets there.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.backends import resolve_backend
from repro.core.serialize import content_digest

JOB_KINDS = ("search", "select", "validate", "verify", "catalog")


def job_digest(kind: str, payload: Dict) -> str:
    """SHA-256 identity of a job: kind + canonical payload."""
    if kind not in JOB_KINDS:
        raise ValueError(f"unknown job kind {kind!r} (known: {JOB_KINDS})")
    return content_digest({"kind": kind, "payload": payload})


@dataclass(frozen=True)
class JobSpec:
    """One job: what to run (payload) and what it waits for (deps)."""

    kind: str
    payload: Dict
    deps: Tuple[str, ...] = ()
    role: str = ""  # campaign-facing label, e.g. 'dot/eta=0/search[2]'

    @property
    def digest(self) -> str:
        return job_digest(self.kind, self.payload)


def resolve_kernel(name: str):
    """Kernel spec by name, across the aek and libimf families."""
    from repro.kernels.aek.vector import AEK_KERNELS
    from repro.kernels.libimf import LIBIMF_KERNELS

    if name in AEK_KERNELS:
        return AEK_KERNELS[name]()
    if name in LIBIMF_KERNELS:
        return LIBIMF_KERNELS[name]()
    known = sorted(AEK_KERNELS) + sorted(LIBIMF_KERNELS)
    raise KeyError(f"unknown kernel {name!r} (known: {', '.join(known)})")


def verify_environment(name: str):
    """(memory, concrete_gp, verify_ranges) for the sound verifier.

    The aek kernels execute against a fixed sandbox image and pinned
    general-purpose registers; ``delta`` additionally widens its ranges
    over the memory operands it reads (mirrors ``repro verify
    --kernel``).  The libimf kernels are register-pure.
    """
    from repro.kernels.aek import vector as V

    spec = resolve_kernel(name)
    ranges = dict(spec.ranges)
    if name == "delta":
        from repro.x86.memory import Memory

        ranges.update(V.delta_mem_ranges())
        return Memory(V.aek_segments()), dict(V.CONCRETE_GP_INDICES), ranges
    if name in ("scale", "dot", "add"):
        from repro.x86.memory import Memory

        return Memory(V.aek_segments()), dict(V.CONCRETE_GP_INDICES), ranges
    return None, None, ranges


# ---------------------------------------------------------------------------
# Payload constructors (the only places payload schemas are spelled out)


def search_payload(kernel: str, eta: float, seed: int, proposals: int,
                   testcases: int, tests_seed: int, k: float = 1.0,
                   backend: str = "jit") -> Dict:
    # Validate here, at enqueue time: a typo'd backend should fail the
    # submission with the registry's known-backends error, not surface
    # as a retried worker crash hours later.
    resolve_backend(backend)
    return {
        "kernel": kernel,
        "eta": float(eta),
        "seed": int(seed),
        "proposals": int(proposals),
        "testcases": int(testcases),
        "tests_seed": int(tests_seed),
        "k": float(k),
        "backend": backend,
    }


def select_payload(kernel: str, eta: float,
                   search_digests: List[str]) -> Dict:
    return {
        "kernel": kernel,
        "eta": float(eta),
        "searches": list(search_digests),
    }


def validate_payload(kernel: str, eta: float, select_digest: str,
                     max_proposals: int, seed: int) -> Dict:
    return {
        "kernel": kernel,
        "eta": float(eta),
        "select": select_digest,
        "max_proposals": int(max_proposals),
        "seed": int(seed),
    }


def verify_payload(kernel: str, eta: float, select_digest: str,
                   engine: str, max_boxes: int = 256,
                   domain: str = "separate") -> Dict:
    if engine not in ("uf", "bnb"):
        raise ValueError(f"unknown verify engine {engine!r}")
    if domain not in ("separate", "relational"):
        raise ValueError(f"unknown verify domain {domain!r}")
    payload = {
        "kernel": kernel,
        "eta": float(eta),
        "select": select_digest,
        "engine": engine,
        "max_boxes": int(max_boxes),
    }
    # Sparse encoding: the default domain is omitted so pre-existing
    # campaigns keep their content-addressed job digests.
    if domain != "separate":
        payload["domain"] = domain
    return payload


def catalog_payload(cells: List[Tuple[str, float, str, str]]) -> Dict:
    """A catalog job: join ``(kernel, eta, select, verify)`` cells into
    the campaign's certified Pareto catalog.  Pure function of the dep
    result documents, so the same finished cells always produce the
    same catalog bytes regardless of which campaign asked."""
    return {
        "cells": [[kernel, float(eta), select, verify]
                  for kernel, eta, select, verify in cells],
    }
